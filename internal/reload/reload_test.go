package reload

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// applyRecorder is a fail-closed applier over a string: valid contents
// (no "BAD" marker) replace the value, invalid contents leave it.
type applyRecorder struct {
	mu    sync.Mutex
	value string
	calls int
}

func (a *applyRecorder) apply(data []byte) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.calls++
	if strings.Contains(string(data), "BAD") {
		return errors.New("corrupt contents")
	}
	a.value = string(data)
	return nil
}

func (a *applyRecorder) get() string {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.value
}

func writeFile(t *testing.T, path, contents string) {
	t.Helper()
	if err := os.WriteFile(path, []byte(contents), 0o600); err != nil {
		t.Fatal(err)
	}
}

func TestReloadAppliesChanges(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "conf")
	writeFile(t, path, "v1")

	rec := &applyRecorder{}
	w := New(time.Hour) // ticks never fire; we drive polls by hand
	defer w.Close()
	w.Watch("conf", path, rec.apply)

	if err := w.Reload(); err != nil {
		t.Fatalf("initial reload: %v", err)
	}
	if got := rec.get(); got != "v1" {
		t.Fatalf("value = %q, want v1", got)
	}
	// Unchanged stat: a plain poll is a no-op.
	if err := w.poll(false); err != nil {
		t.Fatalf("no-op poll: %v", err)
	}
	if rec.calls != 1 {
		t.Fatalf("apply ran %d times on unchanged file, want 1", rec.calls)
	}

	// mtime granularity can be coarse; force a visible change via size.
	writeFile(t, path, "v2+grown")
	if err := w.poll(false); err != nil {
		t.Fatalf("poll after change: %v", err)
	}
	if got := rec.get(); got != "v2+grown" {
		t.Fatalf("value = %q, want v2+grown", got)
	}
	st := w.Stats()
	if st.Reloads != 2 || st.Failures != 0 {
		t.Fatalf("stats = %+v, want 2 reloads 0 failures", st)
	}
}

func TestReloadFailClosed(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "conf")
	writeFile(t, path, "good")

	rec := &applyRecorder{}
	w := New(time.Hour)
	defer w.Close()
	var events []string
	w.OnEvent(func(name string, err error) {
		if err != nil {
			events = append(events, name)
		}
	})
	w.Watch("conf", path, rec.apply)
	if err := w.Reload(); err != nil {
		t.Fatal(err)
	}

	// A corrupt intermediate write: old state stays live, the failure
	// counter moves, the event fires.
	writeFile(t, path, "BAD bytes")
	if err := w.poll(false); err == nil {
		t.Fatal("poll over corrupt file returned nil error")
	}
	if got := rec.get(); got != "good" {
		t.Fatalf("corrupt write replaced state: value = %q", got)
	}
	if st := w.Stats(); st.Failures != 1 {
		t.Fatalf("failures = %d, want 1", st.Failures)
	}
	if len(events) != 1 || events[0] != "conf" {
		t.Fatalf("failure events = %v", events)
	}
	status := w.Status()
	if len(status) != 1 || status[0].Healthy || status[0].Error == "" {
		t.Fatalf("status = %+v, want unhealthy with message", status)
	}

	// Same bad stat: not retried by plain polls...
	calls := rec.calls
	if err := w.poll(false); err != nil {
		t.Fatalf("re-poll of already-tried bad file should be a no-op, got %v", err)
	}
	if rec.calls != calls {
		t.Fatal("bad file re-applied without a new write")
	}
	// ...but a forced Reload does retry, and failure still keeps old state.
	if err := w.Reload(); err == nil {
		t.Fatal("forced reload over corrupt file returned nil")
	}
	if rec.calls != calls+1 {
		t.Fatal("forced reload did not retry")
	}

	// The write settling fixes everything.
	writeFile(t, path, "good again!")
	if err := w.poll(false); err != nil {
		t.Fatalf("poll after fix: %v", err)
	}
	if got := rec.get(); got != "good again!" {
		t.Fatalf("value = %q", got)
	}
	if status := w.Status(); !status[0].Healthy {
		t.Fatalf("status after fix = %+v", status[0])
	}
}

func TestReloadMissingFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "absent")
	rec := &applyRecorder{value: "initial"}
	w := New(time.Hour)
	defer w.Close()
	w.Watch("conf", path, rec.apply)

	if err := w.Reload(); err == nil {
		t.Fatal("reload of missing file returned nil")
	}
	if got := rec.get(); got != "initial" {
		t.Fatalf("missing file clobbered state: %q", got)
	}
	// Still missing: plain polls don't spin on it.
	if err := w.poll(false); err != nil {
		t.Fatalf("re-poll of known-missing file: %v", err)
	}
	// The file appearing is a change.
	writeFile(t, path, "now present")
	if err := w.poll(false); err != nil {
		t.Fatalf("poll after file appeared: %v", err)
	}
	if got := rec.get(); got != "now present" {
		t.Fatalf("value = %q", got)
	}
}

func TestWatcherStartClose(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "conf")
	writeFile(t, path, "v1")
	rec := &applyRecorder{}
	w := New(time.Millisecond)
	w.Watch("conf", path, rec.apply)
	w.Start()
	deadline := time.Now().Add(5 * time.Second)
	for rec.get() != "v1" {
		if time.Now().After(deadline) {
			t.Fatal("started watcher never applied the file")
		}
		time.Sleep(time.Millisecond)
	}
	w.Close()
	w.Close() // idempotent
}
