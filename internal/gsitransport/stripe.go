package gsitransport

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync"

	"repro/internal/record"
)

// Striped transfer: one logical byte stream fanned over K secured
// connections, GridFTP parallel-stripes style. The sender stamps every
// DATA chunk with a *global* sequence number before dealing it
// round-robin to a stripe, so each stripe's record protection covers
// the ordering information; the receiver reassembles through a
// windowed StripeAssembler. Every stripe terminates with a FIN whose
// sequence field carries the transfer's total chunk count — the FIN
// trailer — so a stripe that dies mid-flight always surfaces as an
// error, never as a silently truncated file (see internal/record's
// stripe.go for the invariant).

// ErrStripeAborted reports a striped transfer torn down by Abort.
var ErrStripeAborted = errors.New("gsitransport: striped transfer aborted")

type laneFrame struct {
	buf *record.Buf
	n   int // chunk record length, assembled at offset Headroom
}

// StripedWriter fans one stream over K connections. Chunks are
// assembled and sequence-stamped by the writing goroutine; each stripe
// has a sender goroutine sealing and writing on its own connection, so
// K stripes drive up to K cores. Not safe for concurrent Write.
type StripedWriter struct {
	ctx       context.Context
	conns     []*Conn
	lanes     []chan laneFrame
	chunkSize int
	seq       uint64 // next global DATA chunk sequence number
	finSent   bool
	closed    bool
	wg        sync.WaitGroup

	mu  sync.Mutex
	err error
}

// laneDepth bounds the per-stripe queue of assembled-but-unsent
// chunks; depth × chunk size × stripes is the sender-side memory bound.
const laneDepth = 4

// NewStripedWriter starts a striped writer over conns. The caller's
// protocol must have put all K connections in agreement that chunk
// records for this one transfer follow.
func NewStripedWriter(ctx context.Context, conns []*Conn) *StripedWriter {
	if ctx == nil {
		ctx = context.Background()
	}
	w := &StripedWriter{
		ctx:       ctx,
		conns:     conns,
		lanes:     make([]chan laneFrame, len(conns)),
		chunkSize: record.DefaultChunkSize,
	}
	for i, c := range conns {
		w.lanes[i] = make(chan laneFrame, laneDepth)
		w.wg.Add(1)
		go w.runLane(c, w.lanes[i])
	}
	return w
}

func (w *StripedWriter) fail(err error) {
	w.mu.Lock()
	if w.err == nil {
		w.err = err
	}
	w.mu.Unlock()
}

// Err returns the first stripe failure, if any.
func (w *StripedWriter) Err() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.err
}

func (w *StripedWriter) runLane(c *Conn, ch chan laneFrame) {
	defer w.wg.Done()
	for f := range ch {
		err := c.SendAssembled(w.ctx, f.buf.B[:Headroom+f.n])
		f.buf.Free()
		if err != nil {
			w.fail(err)
			break
		}
	}
	// After a failure keep draining so the writing goroutine never
	// blocks on a dead lane's queue.
	for f := range ch {
		f.buf.Free()
	}
}

// Write deals p across the stripes as globally sequenced DATA chunks.
func (w *StripedWriter) Write(p []byte) (int, error) {
	if w.finSent || w.closed {
		return 0, ErrWriteHalfClosed
	}
	written := 0
	for written < len(p) {
		if err := w.Err(); err != nil {
			return written, err
		}
		piece := p[written:]
		if len(piece) > w.chunkSize {
			piece = piece[:w.chunkSize]
		}
		buf := record.Get(Headroom + record.ChunkHeader + len(piece) + SendOverhead)
		rec := record.AppendChunk(buf.B[:Headroom], record.ChunkData, w.seq, piece)
		lane := int(w.seq % uint64(len(w.lanes)))
		w.seq++
		w.lanes[lane] <- laneFrame{buf: buf, n: len(rec) - Headroom}
		written += len(piece)
	}
	return written, nil
}

// terminate fans one terminal record (built by mk) to every stripe.
func (w *StripedWriter) terminate(mk func(dst []byte) []byte) {
	for _, lane := range w.lanes {
		buf := record.Get(Headroom + record.ChunkHeader + record.MaxErrorPayload + SendOverhead)
		rec := mk(buf.B[:Headroom])
		lane <- laneFrame{buf: buf, n: len(rec) - Headroom}
	}
}

// Close sends the FIN trailer — total chunk count — on every stripe,
// waits for all lanes to flush, and returns the first failure.
func (w *StripedWriter) Close() error {
	if !w.closed {
		w.closed = true
		if !w.finSent && w.Err() == nil {
			w.finSent = true
			total := w.seq
			w.terminate(func(dst []byte) []byte {
				return record.AppendChunk(dst, record.ChunkFIN, total, nil)
			})
		}
		for _, lane := range w.lanes {
			close(lane)
		}
		w.wg.Wait()
	}
	return w.Err()
}

// CloseWithError aborts the transfer: every stripe carries the ERROR
// record so the receiver fails with a *record.PeerError no matter which
// stripe it reads first.
func (w *StripedWriter) CloseWithError(msg string) error {
	if w.closed {
		return w.Err()
	}
	w.closed = true
	if !w.finSent {
		w.finSent = true
		seq := w.seq
		w.terminate(func(dst []byte) []byte {
			return record.AppendErrorChunk(dst, seq, msg)
		})
	}
	for _, lane := range w.lanes {
		close(lane)
	}
	w.wg.Wait()
	return w.Err()
}

// StripedReader reassembles one stream from K connections. A reader
// goroutine per stripe feeds a shared windowed assembler; Read/ReadAll
// deliver bytes in global sequence order. A connection that fails
// before its FIN fails the whole transfer.
type StripedReader struct {
	conns []*Conn
	wg    sync.WaitGroup

	mu     sync.Mutex
	cond   *sync.Cond
	asm    *record.StripeAssembler
	err    error
	cur    []byte
	curBuf *record.Buf
}

// NewStripedReader starts reader goroutines over conns with the given
// reassembly window (0 = record.DefaultStripeWindow).
func NewStripedReader(ctx context.Context, conns []*Conn, window int) *StripedReader {
	if ctx == nil {
		ctx = context.Background()
	}
	r := &StripedReader{
		conns: conns,
		asm:   record.NewStripeAssembler(len(conns), window),
	}
	r.cond = sync.NewCond(&r.mu)
	for _, c := range conns {
		c.SetReceiveSizeHint(chunkRecvHint)
		r.wg.Add(1)
		go r.runStripe(ctx, c)
	}
	return r
}

func (r *StripedReader) runStripe(ctx context.Context, c *Conn) {
	defer r.wg.Done()
	for {
		view, buf, err := c.ReceiveView(ctx)
		if err != nil {
			r.mu.Lock()
			if r.err == nil && !r.asm.Done() {
				// Dead stripe before its FIN: with the FIN trailer pinning
				// the chunk population this is always detected, never a
				// silent truncation.
				r.err = fmt.Errorf("gsitransport: stripe lost before FIN: %w", err)
			}
			r.cond.Broadcast()
			r.mu.Unlock()
			return
		}
		typ, seq, _, perr := record.ParseChunk(view)
		r.mu.Lock()
		// Flow control: a stripe that ran ahead of the delivery cursor
		// parks here until the consumer drains the window. Only DATA
		// chunks wait — FIN may legitimately carry a far-ahead total and
		// ERROR must overtake everything.
		for r.err == nil && perr == nil && typ == record.ChunkData && !r.asm.Fits(seq) {
			r.cond.Wait()
		}
		if r.err != nil {
			r.mu.Unlock()
			buf.Free()
			return
		}
		if aerr := r.asm.Accept(view, buf); aerr != nil {
			var peerErr *record.PeerError
			if !errors.As(aerr, &peerErr) {
				c.broken.Store(true)
			}
			r.err = aerr
			r.cond.Broadcast()
			r.mu.Unlock()
			buf.Free()
			return
		}
		fin := perr == nil && typ == record.ChunkFIN
		r.cond.Broadcast()
		r.mu.Unlock()
		if fin {
			// FIN buffers stay with the caller; this stripe's record flow
			// ends here, leaving its connection synchronized.
			buf.Free()
			c.SetReceiveSizeHint(0)
			return
		}
	}
}

// Read delivers stream bytes in global order, io.EOF after every
// stripe's FIN agrees the stream is complete.
func (r *StripedReader) Read(p []byte) (int, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for {
		if len(r.cur) > 0 {
			n := copy(p, r.cur)
			r.cur = r.cur[n:]
			if len(r.cur) == 0 {
				r.curBuf.Free()
				r.curBuf = nil
			}
			return n, nil
		}
		if payload, buf, ok := r.asm.Pop(); ok {
			r.cur, r.curBuf = payload, buf
			// The cursor moved: wake stripes parked on the window.
			r.cond.Broadcast()
			continue
		}
		if r.asm.Done() {
			return 0, io.EOF
		}
		if r.err != nil {
			return 0, r.err
		}
		if len(p) == 0 {
			return 0, nil
		}
		r.cond.Wait()
	}
}

// ReadAll consumes the whole transfer, preallocating sizeHint.
func (r *StripedReader) ReadAll(sizeHint int) ([]byte, error) {
	if sizeHint < 0 {
		sizeHint = 0
	}
	data := make([]byte, 0, sizeHint)
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.cur) > 0 {
		data = append(data, r.cur...)
		r.cur = nil
		r.curBuf.Free()
		r.curBuf = nil
	}
	for {
		if payload, buf, ok := r.asm.Pop(); ok {
			data = append(data, payload...)
			buf.Free()
			r.cond.Broadcast()
			continue
		}
		if r.asm.Done() {
			return data, nil
		}
		if r.err != nil {
			return data, r.err
		}
		r.cond.Wait()
	}
}

// Join waits for every stripe goroutine to finish after a clean read to
// EOF, leaving the connections reusable.
func (r *StripedReader) Join() {
	r.wg.Wait()
}

// Abort tears the transfer down from the consumer side: poisons every
// connection, wakes blocked stripe readers, reaps them, and frees all
// buffered chunks. The connections are not reusable afterwards.
func (r *StripedReader) Abort() {
	r.mu.Lock()
	if r.err == nil {
		r.err = ErrStripeAborted
	}
	if r.curBuf != nil {
		r.curBuf.Free()
		r.curBuf = nil
		r.cur = nil
	}
	r.cond.Broadcast()
	r.mu.Unlock()
	for _, c := range r.conns {
		c.abortReads()
	}
	r.wg.Wait()
	r.mu.Lock()
	r.asm.Release()
	r.mu.Unlock()
}
