package gsitransport

import (
	"bytes"
	"context"
	"errors"
	"io"
	"testing"

	"repro/internal/record"
)

// A stream must carry an arbitrarily chunk-unaligned byte sequence in
// order, terminate with FIN, and leave the connection reusable for
// ordinary exchanges afterwards.
func TestStreamRoundTripAndResync(t *testing.T) {
	creds := newCreds(t)
	client, server := pipePair(t, creds)
	defer client.Close()
	defer server.Close()

	payload := make([]byte, 3*record.DefaultChunkSize+12345)
	for i := range payload {
		payload[i] = byte(i * 31)
	}

	errc := make(chan error, 1)
	var got bytes.Buffer
	go func() {
		st := NewStream(context.Background(), server)
		if _, err := io.Copy(&got, st); err != nil {
			errc <- err
			return
		}
		// Post-stream: the record stream must be clean for a plain reply.
		errc <- server.Send([]byte("stream received"))
	}()

	st := NewStream(context.Background(), client)
	// Deliberately awkward write sizes: sub-chunk, multi-chunk, empty.
	for _, n := range []int{1, record.DefaultChunkSize - 1, 2*record.DefaultChunkSize + 100, len(payload)} {
		if n > len(payload) {
			n = len(payload)
		}
		if _, err := st.Write(payload[:n]); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := st.Write(nil); err != nil {
		t.Fatal(err)
	}
	if err := st.CloseWrite(); err != nil {
		t.Fatal(err)
	}
	if err := st.CloseWrite(); err != nil { // idempotent
		t.Fatal(err)
	}
	if _, err := st.Write([]byte("late")); !errors.Is(err, ErrWriteHalfClosed) {
		t.Fatalf("write after FIN: %v", err)
	}
	// Receive before joining the server goroutine: its reply Send
	// rendezvouses with this read on the synchronous pipe.
	reply, err := client.Receive()
	if err != nil {
		t.Fatal(err)
	}
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
	want := 1 + (record.DefaultChunkSize - 1) + (2*record.DefaultChunkSize + 100) + len(payload)
	if got.Len() != want {
		t.Fatalf("received %d bytes, want %d", got.Len(), want)
	}
	if string(reply) != "stream received" {
		t.Fatalf("post-stream exchange: %q", reply)
	}
	if !client.Healthy() || !server.Healthy() {
		t.Fatal("clean stream broke the connection")
	}
}

// A mid-stream abort surfaces to the reader as *record.PeerError and
// keeps the connection usable (the terminal record resynchronized it).
func TestStreamMidStreamError(t *testing.T) {
	creds := newCreds(t)
	client, server := pipePair(t, creds)
	defer client.Close()
	defer server.Close()

	done := make(chan error, 1)
	go func() {
		st := NewStream(context.Background(), server)
		_, err := io.Copy(io.Discard, st)
		done <- err
	}()

	st := NewStream(context.Background(), client)
	if _, err := st.Write(make([]byte, 1000)); err != nil {
		t.Fatal(err)
	}
	if err := st.CloseWithError("source storage failed"); err != nil {
		t.Fatal(err)
	}
	err := <-done
	var pe *record.PeerError
	if !errors.As(err, &pe) || pe.Msg != "source storage failed" {
		t.Fatalf("reader saw %v", err)
	}
	if !client.Healthy() || !server.Healthy() {
		t.Fatal("clean abort broke the connection")
	}
}

// Duplex: both directions stream concurrently on one connection.
func TestStreamDuplex(t *testing.T) {
	creds := newCreds(t)
	client, server := pipePair(t, creds)
	defer client.Close()
	defer server.Close()

	up := bytes.Repeat([]byte("up"), 100_000)
	down := bytes.Repeat([]byte("down"), 80_000)

	errc := make(chan error, 2)
	var gotUp bytes.Buffer
	go func() {
		st := NewStream(context.Background(), server)
		if _, err := io.Copy(&gotUp, st); err != nil {
			errc <- err
			return
		}
		if _, err := st.Write(down); err != nil {
			errc <- err
			return
		}
		errc <- st.CloseWrite()
	}()

	st := NewStream(context.Background(), client)
	go func() {
		if _, err := st.Write(up); err != nil {
			errc <- err
			return
		}
		errc <- st.CloseWrite()
	}()
	var gotDown bytes.Buffer
	if _, err := io.Copy(&gotDown, st); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if err := <-errc; err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(gotUp.Bytes(), up) || !bytes.Equal(gotDown.Bytes(), down) {
		t.Fatal("duplex stream corrupted")
	}
}
