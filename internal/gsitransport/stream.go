package gsitransport

import (
	"context"
	"errors"
	"io"

	"repro/internal/gss"
	"repro/internal/record"
)

// chunkRecvHint pre-sizes record reads for streams: a full DATA chunk
// record (header + payload) plus the wrap expansion, so chunk reads hit
// one pool class and never grow.
const chunkRecvHint = record.ChunkHeader + record.DefaultChunkSize + SendOverhead

// ErrWriteHalfClosed reports a Write after CloseWrite.
var ErrWriteHalfClosed = errors.New("gsitransport: stream write half closed")

// Stream is a secured byte stream carried as chunk records on a Conn's
// record stream (record package, chunked mode). While a stream is in
// flight it owns the connection's record stream: the application
// protocol above it decides when a stream starts and both ends must
// agree, after which DATA records flow until the explicit FIN (or
// ERROR) terminal record. Each half is independently usable — a
// transfer may stream in one direction only — and each half must be
// driven by a single goroutine at a time.
//
// A stream that terminates cleanly (FIN sent and/or FIN read, per the
// protocol's direction) leaves the connection synchronized and reusable
// for further exchanges or streams; any I/O or sequence error breaks
// the connection.
type Stream struct {
	c   *Conn
	ctx context.Context

	// Send half.
	sender    record.ChunkSender
	chunkSize int

	// Receive half.
	asm    record.Assembler
	cur    []byte // unread remainder of the current DATA chunk
	curBuf *record.Buf
	rerr   error // terminal receive state: io.EOF after FIN, else the failure
}

// NewStream starts a stream on c, with ctx governing every record it
// sends or receives. The caller's protocol must have put both ends in
// agreement that chunk records follow.
func NewStream(ctx context.Context, c *Conn) *Stream {
	if ctx == nil {
		ctx = context.Background()
	}
	c.SetReceiveSizeHint(chunkRecvHint)
	return &Stream{c: c, ctx: ctx, chunkSize: record.DefaultChunkSize}
}

// Conn returns the connection the stream rides on.
func (s *Stream) Conn() *Conn { return s.c }

// bulkWriteThreshold is the write size past which Write switches to the
// pipelined seal path: enough chunks that worker fan-out and vectored
// flushes pay for the pipeline's goroutines.
const bulkWriteThreshold = 4 * record.DefaultChunkSize

// Write splits p into DATA chunk records of at most DefaultChunkSize
// and sends each sealed in place from a pooled buffer. Large writes
// take the pipelined path: chunks seal on worker goroutines in parallel
// and reach the wire as vectored batches, in exactly the byte order the
// serial path would have produced.
func (s *Stream) Write(p []byte) (int, error) {
	if s.sender.Terminated() {
		return 0, ErrWriteHalfClosed
	}
	if len(p) >= bulkWriteThreshold {
		return s.writeBulk(p)
	}
	written := 0
	for written < len(p) {
		piece := p[written:]
		if len(piece) > s.chunkSize {
			piece = piece[:s.chunkSize]
		}
		if err := s.sendChunk(func(frame []byte) ([]byte, error) {
			return s.sender.AppendData(frame, piece)
		}, len(piece)); err != nil {
			return written, err
		}
		written += len(piece)
	}
	return written, nil
}

// writeBulk drives p through a seal pipeline: chunk records are
// assembled (and their chunk sequence numbers stamped) here in order,
// workers seal them concurrently, and the pipeline's writer flushes
// consecutive ready frames through one vectored SendSealedBatch each.
func (s *Stream) writeBulk(p []byte) (int, error) {
	pl := record.NewPipeline(s.c.Context(), 0, 0, func(frames [][]byte) error {
		return s.c.SendSealedBatch(s.ctx, frames)
	})
	written := 0
	for written < len(p) {
		piece := p[written:]
		if len(piece) > s.chunkSize {
			piece = piece[:s.chunkSize]
		}
		buf := record.Get(Headroom + record.ChunkHeader + len(piece) + SendOverhead)
		frame, err := s.sender.AppendData(buf.B[:Headroom], piece)
		if err != nil {
			buf.Free()
			pl.Close()
			return written, err
		}
		if err := pl.Submit(buf, len(frame)-Headroom); err != nil {
			pl.Close()
			return written, err
		}
		written += len(piece)
	}
	if err := pl.Close(); err != nil {
		return written, err
	}
	return written, nil
}

// CloseWrite terminates the send half cleanly with the FIN record.
// Idempotent: a second close is a no-op.
func (s *Stream) CloseWrite() error {
	if s.sender.Terminated() {
		return nil
	}
	return s.sendChunk(s.sender.AppendFIN, 0)
}

// CloseWithError aborts the send half with an ERROR record carrying
// msg; the peer's reads fail with a *record.PeerError. No-op if the
// half is already terminated.
func (s *Stream) CloseWithError(msg string) error {
	if s.sender.Terminated() {
		return nil
	}
	return s.sendChunk(func(frame []byte) ([]byte, error) {
		return s.sender.AppendError(frame, msg)
	}, len(msg))
}

// sendChunk assembles one chunk record via appendFn directly into a
// pooled frame buffer and sends it in place.
func (s *Stream) sendChunk(appendFn func([]byte) ([]byte, error), payloadLen int) error {
	buf := record.Get(Headroom + record.ChunkHeader + payloadLen + SendOverhead)
	defer buf.Free()
	frame, err := appendFn(buf.B[:Headroom])
	if err != nil {
		return err
	}
	return s.c.SendAssembled(s.ctx, frame)
}

// Read returns stream bytes as the peer's DATA chunks arrive, io.EOF
// after its FIN, and a *record.PeerError if the peer aborted. A
// sequence violation breaks the connection.
func (s *Stream) Read(p []byte) (int, error) {
	for {
		if len(s.cur) > 0 {
			n := copy(p, s.cur)
			s.cur = s.cur[n:]
			if len(s.cur) == 0 {
				s.curBuf.Free()
				s.curBuf = nil
			}
			return n, nil
		}
		if s.rerr != nil {
			return 0, s.rerr
		}
		if len(p) == 0 {
			return 0, nil
		}
		view, buf, err := s.c.ReceiveView(s.ctx)
		if err != nil {
			s.rerr = err
			return 0, err
		}
		payload, fin, err := s.asm.Accept(view)
		switch {
		case err != nil:
			buf.Free()
			var peerErr *record.PeerError
			if !errors.As(err, &peerErr) {
				// Sequence violation or garbage: the record stream can no
				// longer be trusted.
				s.c.broken.Store(true)
			}
			s.rerr = err
			return 0, err
		case fin:
			buf.Free()
			s.rerr = io.EOF
			s.c.SetReceiveSizeHint(0)
			return 0, io.EOF
		case len(payload) == 0:
			buf.Free() // empty DATA chunk: keep reading
		default:
			s.cur = payload
			s.curBuf = buf
		}
	}
}

// ReadAll consumes the stream to FIN through the pipelined receive
// path and returns every payload byte, preallocating sizeHint. Frames
// are read off the wire by a dedicated goroutine and decrypted by open-
// pipeline workers in parallel; this goroutine reassembles the chunk
// protocol in arrival order, so the result is byte-identical to a
// serial Read loop.
//
// Prefetch safety: the wire reader may only run ahead on records it can
// prove are DATA without decrypting them — and it can, by size alone. A
// full-size DATA chunk's sealed token is longer than any terminal
// record can be (FIN is empty, ERROR is capped at MaxErrorPayload), so
// full-size records prefetch freely while anything smaller — a partial
// tail chunk, FIN, ERROR — makes the reader pause until this goroutine
// has decoded it and signalled whether the stream continues. Bulk
// transfers pay one pause at the tail; the reader never steals bytes
// belonging to the next protocol message after FIN.
func (s *Stream) ReadAll(sizeHint int) ([]byte, error) {
	if sizeHint < 0 {
		sizeHint = 0
	}
	data := make([]byte, 0, sizeHint)
	if len(s.cur) > 0 {
		data = append(data, s.cur...)
		s.cur = nil
		s.curBuf.Free()
		s.curBuf = nil
	}
	if s.rerr != nil {
		if s.rerr == io.EOF {
			return data, nil
		}
		return data, s.rerr
	}

	op := record.NewOpenPipeline(s.c.Context(), 0, 0)
	fullToken := gss.WrapOverhead + record.ChunkHeader + s.chunkSize
	proceed := make(chan bool, 1)
	readerDone := make(chan struct{})
	var readErr error // written before CloseSubmit, read after Next reports closed
	go func() {
		defer close(readerDone)
		for {
			token, buf, err := s.c.ReceiveSealed(s.ctx)
			if err != nil {
				readErr = err
				break
			}
			possiblyTerminal := len(token) != fullToken
			if err := op.Submit(token, buf); err != nil {
				break // pipeline poisoned; consumer already has the error
			}
			if possiblyTerminal && !<-proceed {
				break
			}
		}
		op.CloseSubmit()
	}()

	// teardown reaps the reader after a failure: wake it wherever it is
	// blocked (record read, window-full Submit, or the proceed gate) and
	// drain whatever was still in flight.
	teardown := func() {
		s.c.abortReads()
		select {
		case proceed <- false:
		default:
		}
		for {
			_, buf, ok, _ := op.Next()
			if !ok {
				break
			}
			buf.Free()
		}
		<-readerDone
	}

	for {
		pt, buf, ok, err := op.Next()
		if err != nil {
			teardown()
			s.rerr = err
			return data, err
		}
		if !ok {
			<-readerDone
			err := readErr
			if err == nil {
				err = io.ErrUnexpectedEOF
			}
			s.rerr = err
			return data, err
		}
		small := len(pt) != record.ChunkHeader+s.chunkSize
		payload, fin, aerr := s.asm.Accept(pt)
		switch {
		case aerr != nil:
			buf.Free()
			var peerErr *record.PeerError
			if errors.As(aerr, &peerErr) && small {
				// Graceful peer abort: the reader is parked at the proceed
				// gate and the connection stays synchronized.
				proceed <- false
				<-readerDone
				op.Drain()
			} else {
				s.c.broken.Store(true)
				teardown()
			}
			s.rerr = aerr
			return data, aerr
		case fin:
			buf.Free()
			proceed <- false // FIN is never full-size: the reader is parked
			<-readerDone
			op.Drain()
			s.rerr = io.EOF
			s.c.SetReceiveSizeHint(0)
			return data, nil
		default:
			data = append(data, payload...)
			buf.Free()
			if small {
				proceed <- true
			}
		}
	}
}

// Drain consumes and discards the peer's remaining chunks until FIN,
// leaving the connection synchronized. Returns nil when the stream
// ended cleanly (including a stream already fully read).
func (s *Stream) Drain() error {
	var scratch [4096]byte
	for {
		_, err := s.Read(scratch[:])
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
	}
}

// Release returns the stream's buffered state to the pool and restores
// the connection's default receive sizing. Called by stream owners that
// end a stream without reading it to FIN; the stream must not be used
// afterwards.
func (s *Stream) Release() {
	if s.curBuf != nil {
		s.curBuf.Free()
		s.curBuf = nil
		s.cur = nil
	}
	s.c.SetReceiveSizeHint(0)
}
