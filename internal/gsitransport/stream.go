package gsitransport

import (
	"context"
	"errors"
	"io"

	"repro/internal/record"
)

// chunkRecvHint pre-sizes record reads for streams: a full DATA chunk
// record (header + payload) plus the wrap expansion, so chunk reads hit
// one pool class and never grow.
const chunkRecvHint = record.ChunkHeader + record.DefaultChunkSize + SendOverhead

// ErrWriteHalfClosed reports a Write after CloseWrite.
var ErrWriteHalfClosed = errors.New("gsitransport: stream write half closed")

// Stream is a secured byte stream carried as chunk records on a Conn's
// record stream (record package, chunked mode). While a stream is in
// flight it owns the connection's record stream: the application
// protocol above it decides when a stream starts and both ends must
// agree, after which DATA records flow until the explicit FIN (or
// ERROR) terminal record. Each half is independently usable — a
// transfer may stream in one direction only — and each half must be
// driven by a single goroutine at a time.
//
// A stream that terminates cleanly (FIN sent and/or FIN read, per the
// protocol's direction) leaves the connection synchronized and reusable
// for further exchanges or streams; any I/O or sequence error breaks
// the connection.
type Stream struct {
	c   *Conn
	ctx context.Context

	// Send half.
	sender    record.ChunkSender
	chunkSize int

	// Receive half.
	asm    record.Assembler
	cur    []byte // unread remainder of the current DATA chunk
	curBuf *record.Buf
	rerr   error // terminal receive state: io.EOF after FIN, else the failure
}

// NewStream starts a stream on c, with ctx governing every record it
// sends or receives. The caller's protocol must have put both ends in
// agreement that chunk records follow.
func NewStream(ctx context.Context, c *Conn) *Stream {
	if ctx == nil {
		ctx = context.Background()
	}
	c.SetReceiveSizeHint(chunkRecvHint)
	return &Stream{c: c, ctx: ctx, chunkSize: record.DefaultChunkSize}
}

// Conn returns the connection the stream rides on.
func (s *Stream) Conn() *Conn { return s.c }

// Write splits p into DATA chunk records of at most DefaultChunkSize
// and sends each sealed in place from a pooled buffer.
func (s *Stream) Write(p []byte) (int, error) {
	if s.sender.Terminated() {
		return 0, ErrWriteHalfClosed
	}
	written := 0
	for written < len(p) {
		piece := p[written:]
		if len(piece) > s.chunkSize {
			piece = piece[:s.chunkSize]
		}
		if err := s.sendChunk(func(frame []byte) ([]byte, error) {
			return s.sender.AppendData(frame, piece)
		}, len(piece)); err != nil {
			return written, err
		}
		written += len(piece)
	}
	return written, nil
}

// CloseWrite terminates the send half cleanly with the FIN record.
// Idempotent: a second close is a no-op.
func (s *Stream) CloseWrite() error {
	if s.sender.Terminated() {
		return nil
	}
	return s.sendChunk(s.sender.AppendFIN, 0)
}

// CloseWithError aborts the send half with an ERROR record carrying
// msg; the peer's reads fail with a *record.PeerError. No-op if the
// half is already terminated.
func (s *Stream) CloseWithError(msg string) error {
	if s.sender.Terminated() {
		return nil
	}
	return s.sendChunk(func(frame []byte) ([]byte, error) {
		return s.sender.AppendError(frame, msg)
	}, len(msg))
}

// sendChunk assembles one chunk record via appendFn directly into a
// pooled frame buffer and sends it in place.
func (s *Stream) sendChunk(appendFn func([]byte) ([]byte, error), payloadLen int) error {
	buf := record.Get(Headroom + record.ChunkHeader + payloadLen + SendOverhead)
	defer buf.Free()
	frame, err := appendFn(buf.B[:Headroom])
	if err != nil {
		return err
	}
	return s.c.SendAssembled(s.ctx, frame)
}

// Read returns stream bytes as the peer's DATA chunks arrive, io.EOF
// after its FIN, and a *record.PeerError if the peer aborted. A
// sequence violation breaks the connection.
func (s *Stream) Read(p []byte) (int, error) {
	for {
		if len(s.cur) > 0 {
			n := copy(p, s.cur)
			s.cur = s.cur[n:]
			if len(s.cur) == 0 {
				s.curBuf.Free()
				s.curBuf = nil
			}
			return n, nil
		}
		if s.rerr != nil {
			return 0, s.rerr
		}
		if len(p) == 0 {
			return 0, nil
		}
		view, buf, err := s.c.ReceiveView(s.ctx)
		if err != nil {
			s.rerr = err
			return 0, err
		}
		payload, fin, err := s.asm.Accept(view)
		switch {
		case err != nil:
			buf.Free()
			var peerErr *record.PeerError
			if !errors.As(err, &peerErr) {
				// Sequence violation or garbage: the record stream can no
				// longer be trusted.
				s.c.broken.Store(true)
			}
			s.rerr = err
			return 0, err
		case fin:
			buf.Free()
			s.rerr = io.EOF
			s.c.SetReceiveSizeHint(0)
			return 0, io.EOF
		case len(payload) == 0:
			buf.Free() // empty DATA chunk: keep reading
		default:
			s.cur = payload
			s.curBuf = buf
		}
	}
}

// Drain consumes and discards the peer's remaining chunks until FIN,
// leaving the connection synchronized. Returns nil when the stream
// ended cleanly (including a stream already fully read).
func (s *Stream) Drain() error {
	var scratch [4096]byte
	for {
		_, err := s.Read(scratch[:])
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
	}
}

// Release returns the stream's buffered state to the pool and restores
// the connection's default receive sizing. Called by stream owners that
// end a stream without reading it to FIN; the stream must not be used
// afterwards.
func (s *Stream) Release() {
	if s.curBuf != nil {
		s.curBuf.Free()
		s.curBuf = nil
		s.cur = nil
	}
	s.c.SetReceiveSizeHint(0)
}
