package gsitransport

import (
	"bytes"
	"net"
	"testing"
	"time"

	"repro/internal/ca"
	"repro/internal/gridcert"
	"repro/internal/gss"
)

type bedCreds struct {
	ts    *gridcert.TrustStore
	alice *gridcert.Credential
	host  *gridcert.Credential
}

func newCreds(t testing.TB) bedCreds {
	t.Helper()
	auth, err := ca.New(gridcert.MustParseName("/O=Grid/CN=CA"), 24*time.Hour, ca.DefaultPolicy())
	if err != nil {
		t.Fatal(err)
	}
	ts := gridcert.NewTrustStore()
	if err := ts.AddRoot(auth.Certificate()); err != nil {
		t.Fatal(err)
	}
	alice, err := auth.NewEntity(gridcert.MustParseName("/O=Grid/CN=Alice"), 12*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	host, err := auth.NewHostEntity(gridcert.MustParseName("/O=Grid/CN=host example.org"), 12*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	return bedCreds{ts: ts, alice: alice, host: host}
}

// pipePair establishes a secured connection over net.Pipe.
func pipePair(t testing.TB, creds bedCreds) (*Conn, *Conn) {
	t.Helper()
	cRaw, sRaw := net.Pipe()
	type result struct {
		conn *Conn
		err  error
	}
	serverDone := make(chan result, 1)
	go func() {
		conn, err := Server(sRaw, gss.Config{Credential: creds.host, TrustStore: creds.ts})
		serverDone <- result{conn, err}
	}()
	client, err := Client(cRaw, gss.Config{Credential: creds.alice, TrustStore: creds.ts})
	if err != nil {
		t.Fatalf("client handshake: %v", err)
	}
	sr := <-serverDone
	if sr.err != nil {
		t.Fatalf("server handshake: %v", sr.err)
	}
	return client, sr.conn
}

func TestHandshakeAndExchangeOverPipe(t *testing.T) {
	creds := newCreds(t)
	client, server := pipePair(t, creds)
	defer client.Close()

	if got := client.Peer().Identity.String(); got != "/O=Grid/CN=host example.org" {
		t.Fatalf("client peer = %q", got)
	}
	if got := server.Peer().Identity.String(); got != "/O=Grid/CN=Alice" {
		t.Fatalf("server peer = %q", got)
	}

	done := make(chan error, 1)
	go func() {
		msg, err := server.Receive()
		if err != nil {
			done <- err
			return
		}
		done <- server.Send(append([]byte("echo:"), msg...))
	}()
	if err := client.Send([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	reply, err := client.Receive()
	if err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if string(reply) != "echo:hello" {
		t.Fatalf("reply = %q", reply)
	}
}

func TestHandshakeStats(t *testing.T) {
	creds := newCreds(t)
	client, server := pipePair(t, creds)
	defer client.Close()
	cs, ss := client.Handshake(), server.Handshake()
	// Three tokens total, both sides see all three.
	if cs.Messages != 3 || ss.Messages != 3 {
		t.Fatalf("handshake messages: client=%d server=%d, want 3", cs.Messages, ss.Messages)
	}
	if cs.Bytes == 0 || cs.Bytes != ss.Bytes {
		t.Fatalf("handshake bytes: client=%d server=%d", cs.Bytes, ss.Bytes)
	}
}

func TestOverTCPListener(t *testing.T) {
	creds := newCreds(t)
	inner, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	l := NewListener(inner, gss.Config{Credential: creds.host, TrustStore: creds.ts})
	defer l.Close()

	serverErr := make(chan error, 1)
	go func() {
		conn, err := l.Accept()
		if err != nil {
			serverErr <- err
			return
		}
		defer conn.Close()
		msg, err := conn.Receive()
		if err != nil {
			serverErr <- err
			return
		}
		if !bytes.Equal(msg, []byte("job request")) {
			serverErr <- err
			return
		}
		serverErr <- conn.Send([]byte("ok"))
	}()

	client, err := Dial(l.Addr().String(), gss.Config{
		Credential:   creds.alice,
		TrustStore:   creds.ts,
		ExpectedPeer: gridcert.MustParseName("/O=Grid/CN=host example.org"),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if err := client.Send([]byte("job request")); err != nil {
		t.Fatal(err)
	}
	reply, err := client.Receive()
	if err != nil {
		t.Fatal(err)
	}
	if string(reply) != "ok" {
		t.Fatalf("reply = %q", reply)
	}
	if err := <-serverErr; err != nil {
		t.Fatal(err)
	}
}

func TestClientRejectsWrongHost(t *testing.T) {
	creds := newCreds(t)
	cRaw, sRaw := net.Pipe()
	go func() {
		// Server authenticates as the host, but client expects another name.
		Server(sRaw, gss.Config{Credential: creds.host, TrustStore: creds.ts})
		sRaw.Close()
	}()
	_, err := Client(cRaw, gss.Config{
		Credential:   creds.alice,
		TrustStore:   creds.ts,
		ExpectedPeer: gridcert.MustParseName("/O=Grid/CN=some other host"),
	})
	if err == nil {
		t.Fatal("client accepted wrong host identity")
	}
	cRaw.Close()
}

func TestUntrustedClientRejectedByServer(t *testing.T) {
	creds := newCreds(t)
	rogueAuth, err := ca.New(gridcert.MustParseName("/O=Rogue/CN=CA"), time.Hour, ca.DefaultPolicy())
	if err != nil {
		t.Fatal(err)
	}
	rogue, err := rogueAuth.NewEntity(gridcert.MustParseName("/O=Rogue/CN=Eve"), time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	cRaw, sRaw := net.Pipe()
	serverErr := make(chan error, 1)
	go func() {
		_, err := Server(sRaw, gss.Config{Credential: creds.host, TrustStore: creds.ts})
		serverErr <- err
		sRaw.Close()
	}()
	rogueTS := gridcert.NewTrustStore()
	rogueTS.AddRoot(rogueAuth.Certificate())
	rogueTS.AddRoot(func() *gridcert.Certificate {
		// Rogue trusts the real CA so the handshake reaches token3.
		for _, r := range creds.ts.Roots() {
			return r
		}
		return nil
	}())
	_, _ = Client(cRaw, gss.Config{Credential: rogue, TrustStore: rogueTS})
	if err := <-serverErr; err == nil {
		t.Fatal("server accepted client from untrusted CA")
	}
	cRaw.Close()
}

func BenchmarkGT2HandshakeOverPipe(b *testing.B) {
	creds := newCreds(b)
	for i := 0; i < b.N; i++ {
		cRaw, sRaw := net.Pipe()
		done := make(chan error, 1)
		go func() {
			conn, err := Server(sRaw, gss.Config{Credential: creds.host, TrustStore: creds.ts})
			if err == nil {
				_ = conn
			}
			done <- err
		}()
		client, err := Client(cRaw, gss.Config{Credential: creds.alice, TrustStore: creds.ts})
		if err != nil {
			b.Fatal(err)
		}
		if err := <-done; err != nil {
			b.Fatal(err)
		}
		client.Close()
	}
}

func BenchmarkGT2Send4K(b *testing.B) {
	creds := newCreds(b)
	client, server := pipePair(b, creds)
	defer client.Close()
	msg := bytes.Repeat([]byte{7}, 4096)
	go func() {
		for {
			if _, err := server.Receive(); err != nil {
				return
			}
		}
	}()
	b.SetBytes(4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := client.Send(msg); err != nil {
			b.Fatal(err)
		}
	}
}
