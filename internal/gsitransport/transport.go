// Package gsitransport implements the GT2-style secured transport: the
// GSS security-context handshake framed directly over a TCP (or any
// net.Conn) stream, followed by record-level message protection — the
// moral equivalent of the TLS-based protocol GT2 uses for authentication
// and message protection (paper §3).
//
// The GT3 counterpart carries the *same* handshake tokens inside SOAP
// envelopes (internal/wssec); benchmarking the two side by side
// reproduces the stateful-communication comparison of §5.1 (experiment E6).
package gsitransport

import (
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/gss"
	"repro/internal/wire"
)

// Conn is a secured connection. It exposes message-oriented Send/Receive
// (GSI protects discrete records, not a byte stream) plus the underlying
// security context.
type Conn struct {
	raw net.Conn
	ctx *gss.Context

	sendMu sync.Mutex
	recvMu sync.Mutex

	// Accounting for experiment E6.
	handshakeMsgs  int
	handshakeBytes int
}

// HandshakeStats reports the message and byte cost of establishment.
type HandshakeStats struct {
	Messages int
	Bytes    int
}

// Client performs the initiator handshake over raw.
func Client(raw net.Conn, cfg gss.Config) (*Conn, error) {
	init, err := gss.NewInitiator(cfg)
	if err != nil {
		return nil, err
	}
	c := &Conn{raw: raw}
	t1, err := init.Start()
	if err != nil {
		return nil, err
	}
	if err := c.writeToken(t1); err != nil {
		return nil, fmt.Errorf("gsitransport: sending token1: %w", err)
	}
	t2, err := c.readToken()
	if err != nil {
		return nil, fmt.Errorf("gsitransport: reading token2: %w", err)
	}
	t3, ctx, err := init.Finish(t2)
	if err != nil {
		return nil, err
	}
	if err := c.writeToken(t3); err != nil {
		return nil, fmt.Errorf("gsitransport: sending token3: %w", err)
	}
	c.ctx = ctx
	return c, nil
}

// Server performs the acceptor handshake over raw.
func Server(raw net.Conn, cfg gss.Config) (*Conn, error) {
	acc, err := gss.NewAcceptor(cfg)
	if err != nil {
		return nil, err
	}
	c := &Conn{raw: raw}
	t1, err := c.readToken()
	if err != nil {
		return nil, fmt.Errorf("gsitransport: reading token1: %w", err)
	}
	t2, err := acc.Accept(t1)
	if err != nil {
		return nil, err
	}
	if err := c.writeToken(t2); err != nil {
		return nil, fmt.Errorf("gsitransport: sending token2: %w", err)
	}
	t3, err := c.readToken()
	if err != nil {
		return nil, fmt.Errorf("gsitransport: reading token3: %w", err)
	}
	ctx, err := acc.Complete(t3)
	if err != nil {
		return nil, err
	}
	c.ctx = ctx
	return c, nil
}

func (c *Conn) writeToken(tok []byte) error {
	c.handshakeMsgs++
	c.handshakeBytes += len(tok) + 4
	return wire.WriteFrame(c.raw, tok)
}

func (c *Conn) readToken() ([]byte, error) {
	tok, err := wire.ReadFrame(c.raw)
	if err != nil {
		return nil, err
	}
	c.handshakeMsgs++
	c.handshakeBytes += len(tok) + 4
	return tok, nil
}

// Context returns the established security context.
func (c *Conn) Context() *gss.Context { return c.ctx }

// Peer returns the authenticated remote party.
func (c *Conn) Peer() gss.Peer { return c.ctx.Peer() }

// Handshake returns the establishment cost accounting.
func (c *Conn) Handshake() HandshakeStats {
	return HandshakeStats{Messages: c.handshakeMsgs, Bytes: c.handshakeBytes}
}

// Send protects and transmits one message.
func (c *Conn) Send(msg []byte) error {
	c.sendMu.Lock()
	defer c.sendMu.Unlock()
	w, err := c.ctx.Wrap(msg)
	if err != nil {
		return err
	}
	return wire.WriteFrame(c.raw, w)
}

// Receive reads and unprotects one message.
func (c *Conn) Receive() ([]byte, error) {
	c.recvMu.Lock()
	defer c.recvMu.Unlock()
	w, err := wire.ReadFrame(c.raw)
	if err != nil {
		return nil, err
	}
	return c.ctx.Unwrap(w)
}

// Close closes the underlying connection.
func (c *Conn) Close() error { return c.raw.Close() }

// SetDeadline forwards to the underlying connection.
func (c *Conn) SetDeadline(t time.Time) error { return c.raw.SetDeadline(t) }

// Listener wraps a net.Listener so every accepted connection completes
// the acceptor handshake with the given config before being returned.
type Listener struct {
	inner net.Listener
	cfg   gss.Config
}

// NewListener builds a secured listener.
func NewListener(inner net.Listener, cfg gss.Config) *Listener {
	return &Listener{inner: inner, cfg: cfg}
}

// Accept waits for a connection and completes the security handshake.
func (l *Listener) Accept() (*Conn, error) {
	raw, err := l.inner.Accept()
	if err != nil {
		return nil, err
	}
	conn, err := Server(raw, l.cfg)
	if err != nil {
		raw.Close()
		return nil, err
	}
	return conn, nil
}

// Close closes the inner listener.
func (l *Listener) Close() error { return l.inner.Close() }

// Addr returns the inner listener's address.
func (l *Listener) Addr() net.Addr { return l.inner.Addr() }

// Dial connects to addr over TCP and completes the initiator handshake.
func Dial(addr string, cfg gss.Config) (*Conn, error) {
	raw, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	conn, err := Client(raw, cfg)
	if err != nil {
		raw.Close()
		return nil, err
	}
	return conn, nil
}
