// Package gsitransport implements the GT2-style secured transport: the
// GSS security-context handshake framed directly over a TCP (or any
// net.Conn) stream, followed by record-level message protection — the
// moral equivalent of the TLS-based protocol GT2 uses for authentication
// and message protection (paper §3).
//
// The GT3 counterpart carries the *same* handshake tokens inside SOAP
// envelopes (internal/wssec); benchmarking the two side by side
// reproduces the stateful-communication comparison of §5.1 (experiment E6).
package gsitransport

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/gss"
	"repro/internal/record"
	"repro/internal/wire"
)

// Headroom is the assembly headroom of this transport's record layer:
// callers of SendAssembled build their plaintext at this offset of the
// frame buffer so protection and framing happen in place (see
// internal/record).
const Headroom = record.FramePrefix + gss.WrapPrefix

// SendOverhead is the total per-record expansion a sender must budget
// spare buffer capacity for (headroom plus the AEAD trailer).
const SendOverhead = record.FramePrefix + gss.WrapOverhead

// aLongTimeAgo is a non-zero time far in the past, used to force pending
// reads and writes on a net.Conn to fail immediately when a context is
// canceled (the same trick the standard library's net/http uses).
var aLongTimeAgo = time.Unix(1, 0)

// deadlineScope selects which half of a connection a context governs,
// so a deadline armed for a send cannot interrupt (or be cleared by) a
// concurrent receive on the same full-duplex Conn.
type deadlineScope int

const (
	scopeBoth  deadlineScope = iota // serial use (handshake)
	scopeRead                       // Receive path
	scopeWrite                      // Send path
)

func (s deadlineScope) set(raw net.Conn, t time.Time) {
	switch s {
	case scopeRead:
		raw.SetReadDeadline(t)
	case scopeWrite:
		raw.SetWriteDeadline(t)
	default:
		raw.SetDeadline(t)
	}
}

// runWithContext executes op — a blocking read/write sequence on raw —
// under ctx: the context deadline is installed as the connection deadline
// for the given scope, and cancellation forces the in-flight operation to
// fail promptly. When the context ended, its error is returned in place
// of the induced I/O error.
func runWithContext(ctx context.Context, raw net.Conn, scope deadlineScope, op func() error) error {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	if deadline, ok := ctx.Deadline(); ok {
		scope.set(raw, deadline)
		defer scope.set(raw, time.Time{})
	}
	if ctx.Done() == nil {
		return op()
	}
	watchDone := make(chan struct{})
	interrupted := make(chan struct{})
	go func() {
		defer close(interrupted)
		select {
		case <-ctx.Done():
			scope.set(raw, aLongTimeAgo)
		case <-watchDone:
		}
	}()
	err := op()
	close(watchDone)
	<-interrupted
	if ctxErr := ctx.Err(); ctxErr != nil {
		return ctxErr
	}
	// The socket deadline mirrors the context deadline and may fire a
	// hair earlier than the context's own timer; attribute the timeout
	// to the context rather than leaking a raw I/O error.
	if _, hasDeadline := ctx.Deadline(); hasDeadline {
		var ne net.Error
		if errors.As(err, &ne) && ne.Timeout() {
			return context.DeadlineExceeded
		}
	}
	if _, ok := ctx.Deadline(); !ok {
		scope.set(raw, time.Time{})
	}
	return err
}

// Throughput accounting, process-wide: every secured record leaving or
// entering through a Conn bumps these (plaintext byte counts — the
// protection overhead is a constant per record). Plain atomics keep the
// data path cost at one uncontended add per counter; telemetry exports
// snapshots at scrape time.
var (
	recordsSent     atomic.Uint64
	recordsReceived atomic.Uint64
	bytesSent       atomic.Uint64
	bytesReceived   atomic.Uint64
)

// Stats is a snapshot of the process-wide secured-record throughput.
type Stats struct {
	RecordsSent     uint64
	RecordsReceived uint64
	BytesSent       uint64 // plaintext bytes
	BytesReceived   uint64 // plaintext bytes
}

// Throughput snapshots the process-wide record/byte counters.
func Throughput() Stats {
	return Stats{
		RecordsSent:     recordsSent.Load(),
		RecordsReceived: recordsReceived.Load(),
		BytesSent:       bytesSent.Load(),
		BytesReceived:   bytesReceived.Load(),
	}
}

// Conn is a secured connection. It exposes message-oriented Send/Receive
// (GSI protects discrete records, not a byte stream) plus the underlying
// security context.
type Conn struct {
	raw net.Conn
	ctx *gss.Context

	sendMu sync.Mutex
	recvMu sync.Mutex

	// recvHint pre-sizes the pooled buffer records are read into
	// (guarded by recvMu; 0 means the record layer's default).
	recvHint int

	// broken marks the record stream desynchronized: an interrupted
	// Send/Receive may have left a partial frame on the wire, after
	// which no further record can be trusted.
	broken atomic.Bool

	// Accounting for experiment E6.
	handshakeMsgs  int
	handshakeBytes int

	// Handshake timing, stashed for the tracing layer: a connection's
	// establishment happens before any exchange names a trace, so the
	// facade emits the handshake span retroactively — under the first
	// traced operation on the connection — from these.
	hsStart time.Time
	hsDur   time.Duration
}

// HandshakeStats reports the message and byte cost of establishment.
type HandshakeStats struct {
	Messages int
	Bytes    int
}

// Client performs the initiator handshake over raw.
func Client(raw net.Conn, cfg gss.Config) (*Conn, error) {
	return ClientContext(context.Background(), raw, cfg)
}

// ClientContext performs the initiator handshake over raw, honoring ctx:
// cancellation or deadline expiry aborts the handshake mid-flight, even
// while blocked reading a token from the peer.
func ClientContext(ctx context.Context, raw net.Conn, cfg gss.Config) (*Conn, error) {
	init, err := gss.NewInitiator(cfg)
	if err != nil {
		return nil, err
	}
	c := &Conn{raw: raw}
	start := time.Now()
	err = runWithContext(ctx, raw, scopeBoth, func() error {
		t1, err := init.Start()
		if err != nil {
			return err
		}
		if err := c.writeToken(t1); err != nil {
			return fmt.Errorf("gsitransport: sending token1: %w", err)
		}
		t2, err := c.readToken()
		if err != nil {
			return fmt.Errorf("gsitransport: reading token2: %w", err)
		}
		t3, gctx, err := init.Finish(t2)
		if err != nil {
			return err
		}
		if err := c.writeToken(t3); err != nil {
			return fmt.Errorf("gsitransport: sending token3: %w", err)
		}
		c.ctx = gctx
		return nil
	})
	if err != nil {
		return nil, err
	}
	c.hsStart, c.hsDur = start, time.Since(start)
	gss.ObserveHandshake(c.hsDur)
	return c, nil
}

// Server performs the acceptor handshake over raw.
func Server(raw net.Conn, cfg gss.Config) (*Conn, error) {
	return ServerContext(context.Background(), raw, cfg)
}

// ServerContext performs the acceptor handshake over raw, honoring ctx.
func ServerContext(ctx context.Context, raw net.Conn, cfg gss.Config) (*Conn, error) {
	acc, err := gss.NewAcceptor(cfg)
	if err != nil {
		return nil, err
	}
	c := &Conn{raw: raw}
	start := time.Now()
	err = runWithContext(ctx, raw, scopeBoth, func() error {
		t1, err := c.readToken()
		if err != nil {
			return fmt.Errorf("gsitransport: reading token1: %w", err)
		}
		t2, err := acc.Accept(t1)
		if err != nil {
			return err
		}
		if err := c.writeToken(t2); err != nil {
			return fmt.Errorf("gsitransport: sending token2: %w", err)
		}
		t3, err := c.readToken()
		if err != nil {
			return fmt.Errorf("gsitransport: reading token3: %w", err)
		}
		gctx, err := acc.Complete(t3)
		if err != nil {
			return err
		}
		c.ctx = gctx
		return nil
	})
	if err != nil {
		return nil, err
	}
	c.hsStart, c.hsDur = start, time.Since(start)
	gss.ObserveHandshake(c.hsDur)
	return c, nil
}

// HandshakeTiming returns when establishment began and how long it
// took — the tracing layer's source for retroactive handshake spans.
func (c *Conn) HandshakeTiming() (start time.Time, d time.Duration) {
	return c.hsStart, c.hsDur
}

func (c *Conn) writeToken(tok []byte) error {
	c.handshakeMsgs++
	c.handshakeBytes += len(tok) + 4
	return wire.WriteFrame(c.raw, tok)
}

func (c *Conn) readToken() ([]byte, error) {
	tok, err := wire.ReadFrame(c.raw)
	if err != nil {
		return nil, err
	}
	c.handshakeMsgs++
	c.handshakeBytes += len(tok) + 4
	return tok, nil
}

// Context returns the established security context.
func (c *Conn) Context() *gss.Context { return c.ctx }

// Broken reports whether an interrupted Send or Receive desynchronized
// the record stream (after which every operation returns ErrBroken).
func (c *Conn) Broken() bool { return c.broken.Load() }

// Healthy is the cheap, I/O-free liveness check a connection pool runs
// before reusing an idle connection: the record stream is intact and
// the security context has not lapsed. It cannot observe a peer that
// vanished silently — that is what an application-level probe (or the
// first failed exchange, which poisons the conn) is for.
func (c *Conn) Healthy() bool {
	return !c.broken.Load() && c.ctx != nil && !c.ctx.Expired()
}

// Peer returns the authenticated remote party.
func (c *Conn) Peer() gss.Peer { return c.ctx.Peer() }

// Handshake returns the establishment cost accounting.
func (c *Conn) Handshake() HandshakeStats {
	return HandshakeStats{Messages: c.handshakeMsgs, Bytes: c.handshakeBytes}
}

// Send protects and transmits one message.
func (c *Conn) Send(msg []byte) error {
	return c.SendContext(context.Background(), msg)
}

// ErrBroken marks a connection whose record stream was desynchronized
// by an interrupted Send or Receive; only Close is useful afterwards.
var ErrBroken = errors.New("gsitransport: connection broken by interrupted operation")

// SendContext is Send honoring ctx cancellation and deadlines. An
// interruption mid-frame poisons the connection (ErrBroken thereafter):
// a partial frame on the wire makes every later record unparseable.
// The message is sealed straight into a pooled record buffer (one
// cryptographic pass, no intermediate copy) and leaves in one write.
func (c *Conn) SendContext(ctx context.Context, msg []byte) error {
	c.sendMu.Lock()
	defer c.sendMu.Unlock()
	if c.broken.Load() {
		return ErrBroken
	}
	if err := ctx.Err(); err != nil {
		return err // nothing written yet; the stream is still intact
	}
	if err := runWithContext(ctx, c.raw, scopeWrite, func() error {
		return record.SealAndWrite(c.raw, c.ctx, msg)
	}); err != nil {
		c.broken.Store(true)
		return err
	}
	recordsSent.Add(1)
	bytesSent.Add(uint64(len(msg)))
	return nil
}

// SendAssembled protects and transmits a message assembled directly in
// a record buffer: the caller built its plaintext at offset Headroom of
// frame (reserving SendOverhead total spare capacity), so the record
// layer seals in place and writes the complete frame with a single
// Write — the zero-copy send path.
//
//	buf := record.Get(gsitransport.Headroom + n + gss.WrapOverhead - gss.WrapPrefix)
//	frame := append(buf.B[:gsitransport.Headroom], plaintext...)
//	err := conn.SendAssembled(ctx, frame)
//	buf.Free()
func (c *Conn) SendAssembled(ctx context.Context, frame []byte) error {
	c.sendMu.Lock()
	defer c.sendMu.Unlock()
	if c.broken.Load() {
		return ErrBroken
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	if err := runWithContext(ctx, c.raw, scopeWrite, func() error {
		return record.WriteAssembled(c.raw, c.ctx, frame)
	}); err != nil {
		c.broken.Store(true)
		return err
	}
	recordsSent.Add(1)
	bytesSent.Add(uint64(len(frame) - Headroom))
	return nil
}

// SendSealedBatch transmits already-sealed record frames — a seal
// pipeline's output — as one vectored write (net.Buffers → writev), so
// a batch of records costs one syscall and one TCP push instead of one
// per record. Frames must be complete wire frames (length prefix +
// wrap token), in sequence order; the batch either fully enters the
// stream or the connection is poisoned.
func (c *Conn) SendSealedBatch(ctx context.Context, frames [][]byte) error {
	if len(frames) == 0 {
		return nil
	}
	c.sendMu.Lock()
	defer c.sendMu.Unlock()
	if c.broken.Load() {
		return ErrBroken
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	total := 0
	for _, f := range frames {
		total += len(f)
	}
	// net.Buffers.WriteTo consumes its slice; keep the caller's intact.
	vecs := make(net.Buffers, len(frames))
	copy(vecs, frames)
	if err := runWithContext(ctx, c.raw, scopeWrite, func() error {
		_, err := vecs.WriteTo(c.raw)
		return err
	}); err != nil {
		c.broken.Store(true)
		return err
	}
	recordsSent.Add(uint64(len(frames)))
	bytesSent.Add(uint64(total - len(frames)*SendOverhead))
	return nil
}

// ReceiveSealed reads one record's wrap token off the wire without
// opening it — the frame half of ReceiveView, for the pipelined
// receive path where worker goroutines do the cryptographic open. The
// caller owns the returned Buf.
func (c *Conn) ReceiveSealed(ctx context.Context) ([]byte, *record.Buf, error) {
	c.recvMu.Lock()
	defer c.recvMu.Unlock()
	if c.broken.Load() {
		return nil, nil, ErrBroken
	}
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	var token []byte
	var buf *record.Buf
	err := runWithContext(ctx, c.raw, scopeRead, func() error {
		var err error
		token, buf, err = record.ReadSealed(c.raw, 0, c.recvHint)
		return err
	})
	if err != nil {
		c.broken.Store(true)
		return nil, nil, err
	}
	recordsReceived.Add(1)
	if n := len(token) - gss.WrapOverhead; n > 0 {
		bytesReceived.Add(uint64(n))
	}
	return token, buf, nil
}

// abortReads poisons the connection and forces a reader blocked in a
// record read to fail promptly (the pipelined receive path uses it to
// reap its reader goroutine after a consumer-side failure).
func (c *Conn) abortReads() {
	c.broken.Store(true)
	c.raw.SetReadDeadline(aLongTimeAgo)
}

// Receive reads and unprotects one message.
func (c *Conn) Receive() ([]byte, error) {
	return c.ReceiveContext(context.Background())
}

// ReceiveContext is Receive honoring ctx cancellation and deadlines. As
// with SendContext, an interruption mid-frame poisons the connection.
// The plaintext is copied out of the pooled record buffer; hot paths
// that can consume a view use ReceiveView instead.
func (c *Conn) ReceiveContext(ctx context.Context) ([]byte, error) {
	view, buf, err := c.ReceiveView(ctx)
	if err != nil {
		return nil, err
	}
	out := make([]byte, len(view))
	copy(out, view)
	buf.Free()
	return out, nil
}

// ReceiveView reads one record into a pooled buffer and unprotects it
// in place, returning the plaintext view together with the pooled
// buffer backing it. The caller owns the buffer and must Free it
// exactly once, after which the view is dead; bytes retained longer
// must be copied first.
func (c *Conn) ReceiveView(ctx context.Context) ([]byte, *record.Buf, error) {
	c.recvMu.Lock()
	defer c.recvMu.Unlock()
	if c.broken.Load() {
		return nil, nil, ErrBroken
	}
	if err := ctx.Err(); err != nil {
		return nil, nil, err // nothing read yet; the stream is still intact
	}
	var view []byte
	var buf *record.Buf
	err := runWithContext(ctx, c.raw, scopeRead, func() error {
		var err error
		view, buf, err = record.Read(c.raw, c.ctx, 0, c.recvHint)
		return err
	})
	if err != nil {
		c.broken.Store(true)
		return nil, nil, err
	}
	recordsReceived.Add(1)
	bytesReceived.Add(uint64(len(view)))
	return view, buf, nil
}

// SetReceiveSizeHint tunes the pooled buffer the next records are read
// into (0 restores the default). Streams set it to the chunk-record
// size so chunk reads never grow through the size classes.
func (c *Conn) SetReceiveSizeHint(n int) {
	c.recvMu.Lock()
	c.recvHint = n
	c.recvMu.Unlock()
}

// CloseOnDone arms a connection-lifetime cancellation watcher: when ctx
// ends, pending and future I/O on the connection fails promptly and the
// connection is marked broken. It replaces per-operation context
// watchers on serve loops — one goroutine per connection instead of a
// goroutine, two channels, and a timer dance per record. The returned
// stop function releases the watcher (idempotent).
func (c *Conn) CloseOnDone(ctx context.Context) (stop func()) {
	if ctx == nil || ctx.Done() == nil {
		return func() {}
	}
	done := make(chan struct{})
	var once sync.Once
	go func() {
		select {
		case <-ctx.Done():
			c.broken.Store(true)
			c.raw.SetDeadline(aLongTimeAgo)
		case <-done:
		}
	}()
	return func() { once.Do(func() { close(done) }) }
}

// Close closes the underlying connection.
func (c *Conn) Close() error { return c.raw.Close() }

// SetDeadline forwards to the underlying connection.
func (c *Conn) SetDeadline(t time.Time) error { return c.raw.SetDeadline(t) }

// Listener wraps a net.Listener so every accepted connection completes
// the acceptor handshake with the given config before being returned.
type Listener struct {
	inner net.Listener
	cfg   gss.Config

	// pending parks the in-flight inner Accept of a canceled
	// AcceptContext call, so the next caller takes it over instead of
	// racing it for (and losing) the next incoming connection.
	mu      sync.Mutex
	pending chan acceptResult
}

type acceptResult struct {
	raw net.Conn
	err error
}

// NewListener builds a secured listener.
func NewListener(inner net.Listener, cfg gss.Config) *Listener {
	return &Listener{inner: inner, cfg: cfg}
}

// Accept waits for a connection and completes the security handshake.
func (l *Listener) Accept() (*Conn, error) {
	return l.AcceptContext(context.Background())
}

// AcceptContext is Accept honoring ctx: cancellation aborts both the wait
// for a connection and an in-flight acceptor handshake. A canceled call
// parks its in-flight inner Accept for the next caller, so no incoming
// connection is stolen and closed by an abandoned wait.
func (l *Listener) AcceptContext(ctx context.Context) (*Conn, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	// Take over a parked accept from a previously canceled call, or
	// start a fresh one.
	l.mu.Lock()
	ch := l.pending
	l.pending = nil
	l.mu.Unlock()
	if ch == nil {
		ch = make(chan acceptResult, 1)
		go func() {
			raw, err := l.inner.Accept()
			ch <- acceptResult{raw, err}
		}()
	}
	var raw net.Conn
	select {
	case <-ctx.Done():
		l.mu.Lock()
		if l.pending == nil {
			l.pending = ch
			l.mu.Unlock()
		} else {
			// Another canceled call already parked its accept; drain
			// this one in the background so the connection isn't leaked.
			l.mu.Unlock()
			go func() {
				if a := <-ch; a.raw != nil {
					a.raw.Close()
				}
			}()
		}
		return nil, ctx.Err()
	case a := <-ch:
		if a.err != nil {
			return nil, a.err
		}
		raw = a.raw
	}
	conn, err := ServerContext(ctx, raw, l.cfg)
	if err != nil {
		raw.Close()
		return nil, err
	}
	return conn, nil
}

// Close closes the inner listener and reaps any parked accept.
func (l *Listener) Close() error {
	err := l.inner.Close()
	l.mu.Lock()
	ch := l.pending
	l.pending = nil
	l.mu.Unlock()
	if ch != nil {
		go func() {
			if a := <-ch; a.raw != nil {
				a.raw.Close()
			}
		}()
	}
	return err
}

// Addr returns the inner listener's address.
func (l *Listener) Addr() net.Addr { return l.inner.Addr() }

// Dial connects to addr over TCP and completes the initiator handshake.
func Dial(addr string, cfg gss.Config) (*Conn, error) {
	return DialContext(context.Background(), addr, cfg)
}

// DialContext is Dial honoring ctx for both the TCP connect and the
// security handshake. TCP keepalive is enabled so pooled connections
// parked idle detect dead peers at the transport layer.
func DialContext(ctx context.Context, addr string, cfg gss.Config) (*Conn, error) {
	d := net.Dialer{KeepAlive: 15 * time.Second}
	raw, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, err
	}
	conn, err := ClientContext(ctx, raw, cfg)
	if err != nil {
		raw.Close()
		return nil, err
	}
	return conn, nil
}
