package gsitransport

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"testing"

	"repro/internal/record"
)

// stripedPairs establishes k secured connections, client and server
// side aligned by index.
func stripedPairs(t *testing.T, creds bedCreds, k int) (clients, servers []*Conn) {
	t.Helper()
	for i := 0; i < k; i++ {
		c, s := pipePair(t, creds)
		clients = append(clients, c)
		servers = append(servers, s)
	}
	return clients, servers
}

// The bulk pipelined Write and pipelined ReadAll must reproduce the
// serial path's byte stream exactly and leave the connection
// synchronized for further traffic.
func TestStreamBulkPipelinedRoundTrip(t *testing.T) {
	creds := newCreds(t)
	client, server := pipePair(t, creds)
	defer client.Close()
	defer server.Close()

	payload := make([]byte, bulkWriteThreshold+12345)
	rand.New(rand.NewSource(11)).Read(payload)

	type result struct {
		data []byte
		err  error
	}
	got := make(chan result, 1)
	go func() {
		st := NewStream(nil, server)
		data, err := st.ReadAll(len(payload))
		got <- result{data, err}
	}()

	st := NewStream(nil, client)
	n, err := st.Write(payload)
	if err != nil || n != len(payload) {
		t.Fatalf("bulk write: n=%d err=%v", n, err)
	}
	if err := st.CloseWrite(); err != nil {
		t.Fatal(err)
	}
	r := <-got
	if r.err != nil {
		t.Fatalf("ReadAll: %v", r.err)
	}
	if !bytes.Equal(r.data, payload) {
		t.Fatalf("bulk round trip corrupted: %d vs %d bytes", len(r.data), len(payload))
	}

	// The connection must still be usable for plain exchanges: the
	// pipelined reader may not have stolen the next record.
	done := make(chan error, 1)
	go func() {
		msg, err := server.Receive()
		if err != nil {
			done <- err
			return
		}
		done <- server.Send(msg)
	}()
	if err := client.Send([]byte("after-stream")); err != nil {
		t.Fatal(err)
	}
	reply, err := client.Receive()
	if err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if string(reply) != "after-stream" {
		t.Fatalf("post-stream exchange corrupted: %q", reply)
	}
}

// A peer abort surfaces through ReadAll as a *record.PeerError without
// breaking the connection (graceful terminal record).
func TestStreamReadAllPeerAbort(t *testing.T) {
	creds := newCreds(t)
	client, server := pipePair(t, creds)
	defer client.Close()
	defer server.Close()

	got := make(chan error, 1)
	go func() {
		st := NewStream(nil, server)
		_, err := st.ReadAll(0)
		got <- err
	}()

	st := NewStream(nil, client)
	if _, err := st.Write(bytes.Repeat([]byte{7}, 1000)); err != nil {
		t.Fatal(err)
	}
	if err := st.CloseWithError("quota exceeded"); err != nil {
		t.Fatal(err)
	}
	err := <-got
	var pe *record.PeerError
	if !errors.As(err, &pe) || pe.Msg != "quota exceeded" {
		t.Fatalf("ReadAll after abort: %v", err)
	}
	if server.Broken() {
		t.Fatal("graceful abort broke the connection")
	}
}

func TestStripedRoundTrip(t *testing.T) {
	creds := newCreds(t)
	clients, servers := stripedPairs(t, creds, 3)
	defer func() {
		for _, c := range clients {
			c.Close()
		}
	}()

	payload := make([]byte, 2*1024*1024+777)
	rand.New(rand.NewSource(23)).Read(payload)

	type result struct {
		data []byte
		err  error
	}
	got := make(chan result, 1)
	var reader *StripedReader
	go func() {
		reader = NewStripedReader(nil, servers, 0)
		data, err := reader.ReadAll(len(payload))
		got <- result{data, err}
	}()

	w := NewStripedWriter(nil, clients)
	if _, err := w.Write(payload); err != nil {
		t.Fatalf("striped write: %v", err)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("striped close: %v", err)
	}
	r := <-got
	if r.err != nil {
		t.Fatalf("striped read: %v", r.err)
	}
	if !bytes.Equal(r.data, payload) {
		t.Fatalf("striped round trip corrupted: %d vs %d bytes", len(r.data), len(payload))
	}
	reader.Join()
}

// A stripe that dies mid-transfer must fail the read — the surviving
// FIN trailers pin the chunk population, so truncation is impossible.
func TestStripedDeadStripeDetected(t *testing.T) {
	creds := newCreds(t)
	clients, servers := stripedPairs(t, creds, 3)
	defer func() {
		for _, c := range clients {
			c.Close()
		}
		for _, s := range servers {
			s.Close()
		}
	}()

	payload := make([]byte, 2*1024*1024)
	rand.New(rand.NewSource(31)).Read(payload)

	got := make(chan error, 1)
	var reader *StripedReader
	go func() {
		reader = NewStripedReader(nil, servers, 0)
		_, err := reader.ReadAll(len(payload))
		got <- err
	}()

	w := NewStripedWriter(nil, clients)
	half := payload[:len(payload)/2]
	if _, err := w.Write(half); err != nil {
		t.Fatalf("first half: %v", err)
	}
	clients[1].Close() // stripe 1 dies mid-flight
	if err := <-got; err == nil {
		t.Fatal("reader completed despite a dead stripe: silent truncation")
	} else if err == io.EOF {
		t.Fatal("reader reported clean EOF on a truncated stream")
	}
	reader.Abort()
	// With the reader gone nothing drains the surviving pipes; close the
	// server ends so the writer's lanes fail instead of blocking.
	for _, s := range servers {
		s.Close()
	}
	w.Write(payload[len(payload)/2:])
	if w.Close() == nil {
		t.Fatal("writer did not notice the dead stripe")
	}
}
