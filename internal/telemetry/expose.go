package telemetry

import (
	"io"
	"net/http"
	"strconv"
	"strings"
)

// ContentType is the Prometheus text exposition content type.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// WritePrometheus renders every registered metric in the Prometheus
// text exposition format: families sorted by name, one HELP/TYPE header
// per family, series sorted within.
func (r *Registry) WritePrometheus(w io.Writer) error {
	var b strings.Builder
	for _, fam := range r.snapshot() {
		head := fam.metrics[0]
		if h := head.help(); h != "" {
			b.WriteString("# HELP ")
			b.WriteString(fam.name)
			b.WriteByte(' ')
			b.WriteString(escapeHelp(h))
			b.WriteByte('\n')
		}
		b.WriteString("# TYPE ")
		b.WriteString(fam.name)
		b.WriteByte(' ')
		b.WriteString(head.typ())
		b.WriteByte('\n')
		for _, m := range fam.metrics {
			m.write(&b)
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// ServeHTTP makes a Registry an http.Handler serving its scrape — mount
// it on /metrics of a plaintext operations listener.
func (r *Registry) ServeHTTP(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", ContentType)
	_ = r.WritePrometheus(w)
}

// writeSample renders one exposition line: the series name with
// extraLabel (an already-escaped `k="v"` pair, or "") merged into its
// label block, a space, and the value.
func writeSample(b *strings.Builder, name, extraLabel, value string) {
	if extraLabel == "" {
		b.WriteString(name)
	} else if family, labels := splitName(name); labels == "" {
		b.WriteString(family)
		b.WriteByte('{')
		b.WriteString(extraLabel)
		b.WriteByte('}')
	} else {
		b.WriteString(family)
		b.WriteString(labels[:len(labels)-1]) // drop the closing brace
		b.WriteByte(',')
		b.WriteString(extraLabel)
		b.WriteByte('}')
	}
	b.WriteByte(' ')
	b.WriteString(value)
	b.WriteByte('\n')
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func formatUint(v uint64) string { return strconv.FormatUint(v, 10) }
func formatInt(v int64) string   { return strconv.FormatInt(v, 10) }

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
