package telemetry

import (
	"strings"
	"testing"
	"time"
)

// TestExpositionGolden pins the exact exposition output: family
// grouping, HELP/TYPE headers, sorted series, histogram buckets with
// cumulative counts and merged labels.
func TestExpositionGolden(t *testing.T) {
	r := NewRegistry()

	c := NewCounter("gsi_test_ops_total", "Operations performed.")
	c.Add(41)
	c.Inc()

	g := NewGauge(`gsi_test_idle{id="a"}`, "Idle things.")
	g.Set(7)
	g.Dec()

	g2 := NewGauge(`gsi_test_idle{id="b"}`, "Idle things.")
	g2.Set(3)

	h := NewHistogram(`gsi_test_seconds{kind="x"}`, "Latency.", []float64{0.01, 0.1})
	h.Observe(0.005)
	h.Observe(0.005)
	h.Observe(0.05)
	h.Observe(5)

	f := NewGaugeFunc("gsi_test_ratio", "A sampled ratio.", func() float64 { return 0.5 })
	cf := NewCounterFunc("gsi_test_sampled_total", "A sampled counter.", func() uint64 { return 9 })

	r.MustRegister(c, g, g2, h, f, cf)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP gsi_test_idle Idle things.
# TYPE gsi_test_idle gauge
gsi_test_idle{id="a"} 6
gsi_test_idle{id="b"} 3
# HELP gsi_test_ops_total Operations performed.
# TYPE gsi_test_ops_total counter
gsi_test_ops_total 42
# HELP gsi_test_ratio A sampled ratio.
# TYPE gsi_test_ratio gauge
gsi_test_ratio 0.5
# HELP gsi_test_sampled_total A sampled counter.
# TYPE gsi_test_sampled_total counter
gsi_test_sampled_total 9
# HELP gsi_test_seconds Latency.
# TYPE gsi_test_seconds histogram
gsi_test_seconds_bucket{kind="x",le="0.01"} 2
gsi_test_seconds_bucket{kind="x",le="0.1"} 3
gsi_test_seconds_bucket{kind="x",le="+Inf"} 4
gsi_test_seconds_sum{kind="x"} 5.06
gsi_test_seconds_count{kind="x"} 4
`
	if got := b.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestMetricsZeroAlloc gates the hot-path instruments at zero
// allocations per operation — the invariant that lets the record layer
// and exchange path carry them without moving the 2-allocs/op gate.
func TestMetricsZeroAlloc(t *testing.T) {
	c := NewCounter("gsi_test_zero_total", "")
	g := NewGauge("gsi_test_zero", "")
	h := NewHistogram("gsi_test_zero_seconds", "", nil)
	if n := testing.AllocsPerRun(1000, func() { c.Inc() }); n != 0 {
		t.Errorf("Counter.Inc allocates %v/op, want 0", n)
	}
	if n := testing.AllocsPerRun(1000, func() { c.Add(3) }); n != 0 {
		t.Errorf("Counter.Add allocates %v/op, want 0", n)
	}
	if n := testing.AllocsPerRun(1000, func() { g.Add(-2) }); n != 0 {
		t.Errorf("Gauge.Add allocates %v/op, want 0", n)
	}
	if n := testing.AllocsPerRun(1000, func() { h.Observe(0.003) }); n != 0 {
		t.Errorf("Histogram.Observe allocates %v/op, want 0", n)
	}
	if n := testing.AllocsPerRun(1000, func() { h.ObserveDuration(3 * time.Millisecond) }); n != 0 {
		t.Errorf("Histogram.ObserveDuration allocates %v/op, want 0", n)
	}
}

func TestHistogramCountSum(t *testing.T) {
	h := NewHistogram("gsi_test_hist_seconds", "", nil)
	for i := 0; i < 100; i++ {
		h.Observe(0.001)
	}
	if got := h.Count(); got != 100 {
		t.Errorf("Count = %d, want 100", got)
	}
	if got := h.Sum(); got < 0.099 || got > 0.101 {
		t.Errorf("Sum = %v, want ~0.1", got)
	}
}

func TestRegisterConflicts(t *testing.T) {
	r := NewRegistry()
	c := NewCounter("gsi_test_dup_total", "")
	if err := r.Register(c); err != nil {
		t.Fatal(err)
	}
	// Same object again: idempotent.
	if err := r.Register(c); err != nil {
		t.Errorf("re-registering the same object: %v", err)
	}
	// Different object, same series: conflict.
	if err := r.Register(NewCounter("gsi_test_dup_total", "")); err == nil {
		t.Error("registering a second metric under one series name should fail")
	}
	// The same object may live in several registries (shared process-wide
	// internals).
	r2 := NewRegistry()
	if err := r2.Register(c); err != nil {
		t.Errorf("registering in a second registry: %v", err)
	}
}

func TestNameValidation(t *testing.T) {
	for _, bad := range []string{
		"", "9leading", "has space", "bad-dash",
		`x{}`, `x{k}`, `x{k=v}`, `x{k="v`, `x{k="a"b"}`,
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("name %q: expected panic", bad)
				}
			}()
			NewCounter(bad, "")
		}()
	}
	for _, good := range []string{
		"x", "x_total", "ns:sub_total", `x{k="v"}`, `x{a="1",b="two words"}`,
	} {
		NewCounter(good, "") // must not panic
	}
}

func TestEscapeLabelValue(t *testing.T) {
	got := EscapeLabelValue("a\\b\"c\nd")
	want := `a\\b\"c\nd`
	if got != want {
		t.Errorf("EscapeLabelValue = %q, want %q", got, want)
	}
}

// TestHostileDNLabels pins the escape-aware label grammar on
// DN-derived values: commas are ordinary characters inside a quoted
// value (every DN has them), and escaped backslashes, quotes, and
// newlines from EscapeLabelValue must be accepted — while their raw
// forms stay refused. The PR 4 gridmap work can surface all three.
func TestHostileDNLabels(t *testing.T) {
	hostile := []string{
		`/O=Grid,/OU=a"b,/CN=quote`,     // raw quote in the DN
		`/O=Grid,/OU=back\slash,/CN=bs`, // raw backslash
		"/O=Grid,/CN=new\nline",         // raw newline
		`/O=Grid,/CN=plain comma DN`,    // commas only
	}
	for _, dn := range hostile {
		name := `gsi_test_dn_total{id="` + EscapeLabelValue(dn) + `"}`
		c := NewCounter(name, "Per-identity ops.") // must not panic
		c.Inc()
		r := NewRegistry()
		r.MustRegister(c)
		var b strings.Builder
		if err := r.WritePrometheus(&b); err != nil {
			t.Fatalf("DN %q: %v", dn, err)
		}
		got := b.String()
		wantSeries := name + " 1\n"
		if !strings.Contains(got, wantSeries) {
			t.Errorf("DN %q: exposition missing %q:\n%s", dn, wantSeries, got)
		}
		// One sample line per series: the raw newline must have been
		// escaped away, not split the line.
		if lines := strings.Count(got, "\n"); lines != 3 {
			t.Errorf("DN %q: exposition has %d lines, want 3 (HELP, TYPE, sample):\n%s", dn, lines, got)
		}
	}
	// Raw (unescaped) hostile bytes in the label block stay refused.
	for _, bad := range []string{
		`x{id="raw"quote"}`,
		"x{id=\"raw\nnewline\"}",
		`x{id="trailing\"}`,
		`x{id="bad\escape"}`,
		`x{id="v",}`,
		`x{id="v"extra}`,
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("label block %q: expected panic", bad)
				}
			}()
			NewCounter(bad, "")
		}()
	}
	// A full DN from the gridmap path renders as one parseable series
	// even when several identities share the family.
	a := NewCounter(`gsi_peer_ops_total{id="`+EscapeLabelValue(`/O=Grid/CN=A\lice "The" 1st`)+`"}`, "h")
	b2 := NewCounter(`gsi_peer_ops_total{id="`+EscapeLabelValue("/O=Grid/CN=Bob,OU=x")+`"}`, "h")
	r := NewRegistry()
	r.MustRegister(a, b2)
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if c := strings.Count(sb.String(), "gsi_peer_ops_total{"); c != 2 {
		t.Fatalf("want 2 series under the family, got %d:\n%s", c, sb.String())
	}
}

// The benchmark pair below rides the same cmd/bench2json -gate-allocs
// mechanism as the record-layer gates: make gate-allocs pins both at 0
// allocs/op.

func BenchmarkCounterInc(b *testing.B) {
	c := NewCounter("gsi_bench_total", "")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewHistogram("gsi_bench_seconds", "", nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(0.0042)
	}
}
