// Package telemetry is the repo's dependency-free metrics layer: atomic
// counters, gauges, and fixed-bucket histograms whose hot paths allocate
// nothing, collected by a Registry that renders the Prometheus text
// exposition format. The security plane's counters (pool occupancy,
// decision-cache hits, handshake latency, record-pool pressure) hang off
// it so a long-running container is observable without restarting — the
// operational story the paper's deployment section assumes.
//
// Metrics are standalone objects; a Registry only enumerates them for
// exposition. One metric may be registered in several registries (the
// process-wide internals are shared by every facade registry), and
// instruments stay live whether or not anything scrapes them.
//
// Series naming follows the exposition format directly: a metric's name
// may carry a literal label block, e.g.
//
//	telemetry.NewCounter(`gsi_pool_hits_total{id="ab12cd34"}`, "...")
//
// and metrics sharing the family (the part before '{') share one
// HELP/TYPE header in the scrape output.
package telemetry

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Metric is anything a Registry can expose. The three instrument kinds
// plus their func-sampled variants implement it.
type Metric interface {
	// Name returns the full series name, label block included.
	Name() string
	// help and typ describe the family; write renders the series.
	help() string
	typ() string
	write(b *strings.Builder)
}

// --- instruments ---------------------------------------------------------

// Counter is a monotonically increasing value. Inc and Add are
// lock-free and allocation-free.
type Counter struct {
	desc
	v atomic.Uint64
}

// NewCounter creates a standalone counter. The name (family plus
// optional literal label block) must be a valid exposition series name;
// invalid names panic — metric registration is programmer-controlled.
func NewCounter(name, help string) *Counter {
	return &Counter{desc: mustDesc(name, help)}
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

func (c *Counter) typ() string { return "counter" }

func (c *Counter) write(b *strings.Builder) {
	writeSample(b, c.name, "", formatUint(c.v.Load()))
}

// Gauge is a value that can go up and down.
type Gauge struct {
	desc
	v atomic.Int64
}

// NewGauge creates a standalone gauge.
func NewGauge(name, help string) *Gauge {
	return &Gauge{desc: mustDesc(name, help)}
}

// Set replaces the value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adjusts the value by delta (negative deltas decrease it).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Inc adds one.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

func (g *Gauge) typ() string { return "gauge" }

func (g *Gauge) write(b *strings.Builder) {
	writeSample(b, g.name, "", formatInt(g.v.Load()))
}

// CounterFunc samples a uint64 at scrape time — the bridge for
// subsystems that already keep their own atomic counters (pool stats,
// decision-cache stats): the hot path stays theirs, exposition costs one
// closure call per scrape.
type CounterFunc struct {
	desc
	fn func() uint64
}

// NewCounterFunc creates a scrape-time-sampled counter.
func NewCounterFunc(name, help string, fn func() uint64) *CounterFunc {
	if fn == nil {
		panic("telemetry: nil CounterFunc sampler")
	}
	return &CounterFunc{desc: mustDesc(name, help), fn: fn}
}

func (c *CounterFunc) typ() string { return "counter" }

func (c *CounterFunc) write(b *strings.Builder) {
	writeSample(b, c.name, "", formatUint(c.fn()))
}

// GaugeFunc samples a float64 at scrape time.
type GaugeFunc struct {
	desc
	fn func() float64
}

// NewGaugeFunc creates a scrape-time-sampled gauge.
func NewGaugeFunc(name, help string, fn func() float64) *GaugeFunc {
	if fn == nil {
		panic("telemetry: nil GaugeFunc sampler")
	}
	return &GaugeFunc{desc: mustDesc(name, help), fn: fn}
}

func (g *GaugeFunc) typ() string { return "gauge" }

func (g *GaugeFunc) write(b *strings.Builder) {
	writeSample(b, g.name, "", formatFloat(g.fn()))
}

// --- histogram -----------------------------------------------------------

// LatencyBuckets are the fixed upper bounds (seconds) the security
// plane's latency histograms use: 100µs at the bottom (a cached resume
// on loopback) through 2.5s (a cold public-key handshake over a slow
// WAN link).
var LatencyBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
	0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5,
}

// Histogram counts observations into fixed buckets. Observe is
// lock-free and allocation-free: one atomic add on the bucket, one CAS
// loop on the float-bits sum.
type Histogram struct {
	desc
	bounds []float64
	counts []atomic.Uint64 // len(bounds)+1; last is the +Inf bucket
	sum    atomic.Uint64   // math.Float64bits of the running sum
}

// NewHistogram creates a histogram over the given bucket upper bounds,
// which must be sorted ascending. Nil buckets select LatencyBuckets.
func NewHistogram(name, help string, buckets []float64) *Histogram {
	if buckets == nil {
		buckets = LatencyBuckets
	}
	if len(buckets) == 0 {
		panic("telemetry: histogram needs at least one bucket")
	}
	bounds := append([]float64(nil), buckets...)
	if !sort.Float64sAreSorted(bounds) {
		panic("telemetry: histogram buckets not sorted")
	}
	return &Histogram{
		desc:   mustDesc(name, help),
		bounds: bounds,
		counts: make([]atomic.Uint64, len(bounds)+1),
	}
}

// Observe records one value. The bucket scan is linear: the fixed
// bucket sets here are small (≤16) and a branchy binary search saves
// nothing at that size.
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveDuration records a duration in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 {
	var n uint64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

func (h *Histogram) typ() string { return "histogram" }

func (h *Histogram) write(b *strings.Builder) {
	family, labels := splitName(h.name)
	bucketName := family + "_bucket" + labels
	var cum uint64
	for i, bound := range h.bounds {
		cum += h.counts[i].Load()
		writeSample(b, bucketName, `le="`+formatFloat(bound)+`"`, formatUint(cum))
	}
	cum += h.counts[len(h.bounds)].Load()
	writeSample(b, bucketName, `le="+Inf"`, formatUint(cum))
	writeSample(b, family+"_sum"+labels, "", formatFloat(h.Sum()))
	writeSample(b, family+"_count"+labels, "", formatUint(cum))
}

// --- series descriptors --------------------------------------------------

// desc is the shared name/help pair embedded by every instrument.
type desc struct {
	name     string
	helpText string
}

func (d desc) Name() string { return d.name }
func (d desc) help() string { return d.helpText }

// mustDesc validates a series name: family part matching the exposition
// grammar, optionally followed by a literal {label="value",...} block.
func mustDesc(name, help string) desc {
	family, labels := splitName(name)
	if !validFamily(family) {
		panic(fmt.Sprintf("telemetry: invalid metric name %q", name))
	}
	if labels != "" && !validLabels(labels) {
		panic(fmt.Sprintf("telemetry: invalid label block in %q", name))
	}
	return desc{name: name, helpText: help}
}

// splitName separates "family{labels}" into family and the literal
// "{labels}" remainder ("" when unlabeled).
func splitName(name string) (family, labels string) {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i], name[i:]
	}
	return name, ""
}

func validFamily(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == ':':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// validLabels accepts a literal {key="value",...} block. Values follow
// the exposition escaping rules — \\, \", and \n are the only escapes,
// raw quotes and newlines are refused — and a DN value may legitimately
// contain commas, so pairs cannot be split on raw commas: this is a
// quote-aware scan, not a strings.Split.
func validLabels(s string) bool {
	if len(s) < 2 || s[0] != '{' || s[len(s)-1] != '}' {
		return false
	}
	body := s[1 : len(s)-1]
	if body == "" {
		return false
	}
	i := 0
	for {
		// Key up to '='.
		eq := strings.IndexByte(body[i:], '=')
		if eq < 0 || !validFamily(body[i:i+eq]) {
			return false
		}
		i += eq + 1
		// Quoted value with escape-aware traversal.
		if i >= len(body) || body[i] != '"' {
			return false
		}
		i++
		closed := false
		for i < len(body) {
			switch body[i] {
			case '\\':
				if i+1 >= len(body) {
					return false
				}
				switch body[i+1] {
				case '\\', '"', 'n':
					i += 2
				default:
					return false
				}
			case '"':
				closed = true
				i++
			case '\n':
				return false
			default:
				i++
			}
			if closed {
				break
			}
		}
		if !closed {
			return false
		}
		if i == len(body) {
			return true
		}
		if body[i] != ',' {
			return false
		}
		i++
		if i == len(body) {
			return false // trailing comma
		}
	}
}

// EscapeLabelValue escapes a string for use inside a label value
// (backslash, double quote, newline — the exposition-format rules).
func EscapeLabelValue(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// --- registry ------------------------------------------------------------

// Registry is a set of metrics rendered together. Registration is
// explicit; scraping never mutates instruments.
type Registry struct {
	mu      sync.Mutex
	metrics map[string]Metric // by full series name
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{metrics: make(map[string]Metric)}
}

// Default is the process-wide registry the facade wires shared
// internals into when the caller does not supply one.
var Default = NewRegistry()

// Register adds metrics to the registry. Re-registering the same object
// is a no-op (wiring code may run per-endpoint); a different metric
// under an existing series name is an error — two writers under one
// name would render an unparseable scrape.
func (r *Registry) Register(ms ...Metric) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, m := range ms {
		if m == nil {
			return fmt.Errorf("telemetry: nil metric")
		}
		if prev, ok := r.metrics[m.Name()]; ok {
			if prev == m {
				continue
			}
			return fmt.Errorf("telemetry: series %q already registered", m.Name())
		}
		r.metrics[m.Name()] = m
	}
	return nil
}

// MustRegister is Register, panicking on conflict.
func (r *Registry) MustRegister(ms ...Metric) {
	if err := r.Register(ms...); err != nil {
		panic(err)
	}
}

// Get returns the metric registered under the full series name, if any.
func (r *Registry) Get(name string) (Metric, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	m, ok := r.metrics[name]
	return m, ok
}

// snapshot returns the registered metrics grouped into families sorted
// by name, series sorted within each family.
func (r *Registry) snapshot() []familySnapshot {
	r.mu.Lock()
	byFamily := make(map[string][]Metric)
	for _, m := range r.metrics {
		f, _ := splitName(m.Name())
		byFamily[f] = append(byFamily[f], m)
	}
	r.mu.Unlock()
	out := make([]familySnapshot, 0, len(byFamily))
	for f, ms := range byFamily {
		sort.Slice(ms, func(i, j int) bool { return ms[i].Name() < ms[j].Name() })
		out = append(out, familySnapshot{name: f, metrics: ms})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

type familySnapshot struct {
	name    string
	metrics []Metric
}
