// Package vo models virtual organizations as policy and trust overlays
// over classical organizations (paper §2, Figure 1): multiple domains
// outsource a slice of policy control to a VO, which coordinates it so
// resources can be shared across domains that have no direct trust
// relationship. The package also quantifies the paper's trust-formation
// argument (§3): unilateral CA trust lets an N-domain VO form with O(N)
// single-party acts, where Kerberos-style bilateral agreements need
// O(N²) two-party acts.
package vo

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/authz"
	"repro/internal/ca"
	"repro/internal/gridcert"
	"repro/internal/kerberos"
)

// Domain is one classical organization: its own CA, its own trust store,
// its own local policy, and optionally a Kerberos realm.
type Domain struct {
	Name  string
	CA    *ca.Authority
	Trust *gridcert.TrustStore
	Local *authz.Policy
	Realm *kerberos.KDC

	mu sync.Mutex
	// unilateralActs counts single-party administrative acts (installing
	// a trust root). No remote party participates.
	unilateralActs int
}

// NewDomain creates a domain with a fresh CA that trusts itself.
func NewDomain(name string) (*Domain, error) {
	subject, err := gridcert.ParseName("/O=" + name + "/CN=CA")
	if err != nil {
		return nil, err
	}
	authority, err := ca.New(subject, 365*24*time.Hour, ca.DefaultPolicy())
	if err != nil {
		return nil, err
	}
	trust := gridcert.NewTrustStore()
	if err := trust.AddRoot(authority.Certificate()); err != nil {
		return nil, err
	}
	return &Domain{
		Name:  name,
		CA:    authority,
		Trust: trust,
		Local: authz.NewPolicy(authz.DenyOverrides),
	}, nil
}

// TrustRoot unilaterally installs a foreign CA certificate. This is the
// single-entity decision the paper highlights: no agreement with the
// foreign organization is required.
func (d *Domain) TrustRoot(root *gridcert.Certificate) error {
	if err := d.Trust.AddRoot(root); err != nil {
		return err
	}
	d.mu.Lock()
	d.unilateralActs++
	d.mu.Unlock()
	return nil
}

// UnilateralActs reports how many single-party trust acts this domain has
// performed.
func (d *Domain) UnilateralActs() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.unilateralActs
}

// NewUser issues a user credential from the domain's CA.
func (d *Domain) NewUser(cn string) (*gridcert.Credential, error) {
	subject, err := gridcert.ParseName("/O=" + d.Name + "/CN=" + cn)
	if err != nil {
		return nil, err
	}
	return d.CA.NewEntity(subject, 12*time.Hour)
}

// VO is a virtual organization: a named community spanning domains.
type VO struct {
	Name string
	// Policy is the community policy outsourced to the VO by its
	// participating resource providers.
	Policy *authz.Policy

	mu      sync.Mutex
	domains []*Domain
}

// New creates an empty VO.
func New(name string) *VO {
	return &VO{Name: name, Policy: authz.NewPolicy(authz.DenyOverrides)}
}

// Domains returns the participating domains.
func (v *VO) Domains() []*Domain {
	v.mu.Lock()
	defer v.mu.Unlock()
	return append([]*Domain(nil), v.domains...)
}

// FormationCost summarises what it took to connect every domain pair.
type FormationCost struct {
	Domains int
	// UnilateralActs: total single-party trust-root installations (GSI).
	UnilateralActs int
	// BilateralAgreements: total two-party organizational agreements
	// (Kerberos inter-realm keys).
	BilateralAgreements int
	Elapsed             time.Duration
}

// JoinGSI adds domains to the VO the GSI way: every domain unilaterally
// installs every other participating domain's CA. No agreements.
// The act count is O(N²) root installs in the per-domain-CA worst case
// but each act is unilateral — and with a shared community CA (see
// JoinGSIWithCommunityCA) it drops to O(N). Crucially the number of
// *agreements* is zero either way.
func (v *VO) JoinGSI(domains ...*Domain) (FormationCost, error) {
	start := time.Now()
	v.mu.Lock()
	v.domains = append(v.domains, domains...)
	all := append([]*Domain(nil), v.domains...)
	v.mu.Unlock()
	cost := FormationCost{Domains: len(all)}
	for _, d := range all {
		for _, other := range all {
			if d == other {
				continue
			}
			if _, ok := d.Trust.Root(other.CA.Name()); ok {
				continue
			}
			if err := d.TrustRoot(other.CA.Certificate()); err != nil {
				return cost, err
			}
			cost.UnilateralActs++
		}
	}
	cost.Elapsed = time.Since(start)
	return cost, nil
}

// JoinGSIWithCommunityCA adds domains the streamlined way: one community
// CA (e.g. the DOE Grids CA of the paper's national-scale infrastructure)
// is unilaterally trusted by each domain — O(N) acts total.
func (v *VO) JoinGSIWithCommunityCA(community *ca.Authority, domains ...*Domain) (FormationCost, error) {
	start := time.Now()
	v.mu.Lock()
	v.domains = append(v.domains, domains...)
	v.mu.Unlock()
	cost := FormationCost{Domains: len(domains)}
	for _, d := range domains {
		if err := d.TrustRoot(community.Certificate()); err != nil {
			return cost, err
		}
		cost.UnilateralActs++
	}
	cost.Elapsed = time.Since(start)
	return cost, nil
}

// FormKerberos connects every pair of domains with a bilateral
// inter-realm agreement — the O(N²), administrator-mediated baseline.
// Every domain must have a Realm.
func FormKerberos(domains []*Domain) (FormationCost, error) {
	start := time.Now()
	cost := FormationCost{Domains: len(domains)}
	for i, a := range domains {
		if a.Realm == nil {
			return cost, fmt.Errorf("vo: domain %q has no Kerberos realm", a.Name)
		}
		for _, b := range domains[i+1:] {
			if b.Realm == nil {
				return cost, fmt.Errorf("vo: domain %q has no Kerberos realm", b.Name)
			}
			if err := kerberos.EstablishInterRealmTrust(a.Realm, b.Realm); err != nil {
				return cost, err
			}
			cost.BilateralAgreements++
		}
	}
	cost.Elapsed = time.Since(start)
	return cost, nil
}

// SameTrustDomain implements the GT2 implicit proxy-trust policy (paper
// §3): "any two entities bearing proxy certificates issued by the same
// user will inherently trust each other." Both chains must validate in
// the given store and share the same end-entity identity.
func SameTrustDomain(store *gridcert.TrustStore, a, b []*gridcert.Certificate) (bool, error) {
	ia, err := store.Verify(a, gridcert.VerifyOptions{})
	if err != nil {
		return false, fmt.Errorf("vo: first chain: %w", err)
	}
	ib, err := store.Verify(b, gridcert.VerifyOptions{})
	if err != nil {
		return false, fmt.Errorf("vo: second chain: %w", err)
	}
	return ia.Identity.Equal(ib.Identity), nil
}

// Overlay evaluates the Figure-1 policy overlay for a resource inside a
// domain: the effective decision is local ∩ VO.
type Overlay struct {
	Domain *Domain
	VO     *VO
}

// Decide returns the effective decision plus components.
func (o Overlay) Decide(req authz.Request) (effective, local, community authz.Decision) {
	local = o.Domain.Local.Evaluate(req)
	community = o.VO.Policy.Evaluate(req)
	effective = authz.Combine(local, community)
	if effective != authz.Permit {
		effective = authz.Deny
	}
	return effective, local, community
}
