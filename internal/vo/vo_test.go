package vo

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/authz"
	"repro/internal/ca"
	"repro/internal/gridcert"
	"repro/internal/gss"
	"repro/internal/kerberos"
	"repro/internal/proxy"
)

func makeDomains(t testing.TB, n int, withRealms bool) []*Domain {
	t.Helper()
	out := make([]*Domain, n)
	for i := range out {
		d, err := NewDomain(fmt.Sprintf("Org%02d", i))
		if err != nil {
			t.Fatal(err)
		}
		if withRealms {
			d.Realm = kerberos.NewKDC(fmt.Sprintf("ORG%02d.EXAMPLE", i))
		}
		out[i] = d
	}
	return out
}

func TestJoinGSIActCounts(t *testing.T) {
	domains := makeDomains(t, 4, false)
	v := New("climate")
	cost, err := v.JoinGSI(domains...)
	if err != nil {
		t.Fatal(err)
	}
	// 4 domains, each installs 3 foreign roots = 12 unilateral acts,
	// zero agreements.
	if cost.UnilateralActs != 12 {
		t.Fatalf("UnilateralActs = %d", cost.UnilateralActs)
	}
	if cost.BilateralAgreements != 0 {
		t.Fatalf("BilateralAgreements = %d", cost.BilateralAgreements)
	}
	// Joining again is idempotent (no new acts).
	cost2, err := v.JoinGSI()
	if err != nil {
		t.Fatal(err)
	}
	if cost2.UnilateralActs != 0 {
		t.Fatalf("re-join acts = %d", cost2.UnilateralActs)
	}
}

func TestJoinCommunityCALinear(t *testing.T) {
	domains := makeDomains(t, 8, false)
	community, err := ca.New(gridcert.MustParseName("/O=DOEGrids/CN=CA"), 365*24*time.Hour, ca.DefaultPolicy())
	if err != nil {
		t.Fatal(err)
	}
	v := New("national")
	cost, err := v.JoinGSIWithCommunityCA(community, domains...)
	if err != nil {
		t.Fatal(err)
	}
	if cost.UnilateralActs != 8 {
		t.Fatalf("UnilateralActs = %d, want N", cost.UnilateralActs)
	}
}

func TestFormKerberosQuadratic(t *testing.T) {
	domains := makeDomains(t, 5, true)
	cost, err := FormKerberos(domains)
	if err != nil {
		t.Fatal(err)
	}
	if cost.BilateralAgreements != 10 { // 5*4/2
		t.Fatalf("BilateralAgreements = %d", cost.BilateralAgreements)
	}
	// Realmless domain fails.
	bad := makeDomains(t, 2, false)
	if _, err := FormKerberos(bad); err == nil {
		t.Fatal("FormKerberos accepted realmless domains")
	}
}

func TestCrossDomainAuthAfterGSIJoin(t *testing.T) {
	domains := makeDomains(t, 2, false)
	v := New("pair")
	if _, err := v.JoinGSI(domains...); err != nil {
		t.Fatal(err)
	}
	alice, err := domains[0].NewUser("Alice")
	if err != nil {
		t.Fatal(err)
	}
	bobSvc, err := domains[1].NewUser("Service B")
	if err != nil {
		t.Fatal(err)
	}
	// Alice (domain 0) authenticates to a service in domain 1; each side
	// validates with its own domain's trust store.
	_, actx, err := gss.Establish(
		gss.Config{Credential: alice, TrustStore: domains[0].Trust},
		gss.Config{Credential: bobSvc, TrustStore: domains[1].Trust},
	)
	if err != nil {
		t.Fatalf("cross-domain auth after VO join: %v", err)
	}
	if actx.Peer().Identity.String() != "/O=Org00/CN=Alice" {
		t.Fatalf("peer = %q", actx.Peer().Identity)
	}
}

func TestCrossDomainAuthFailsWithoutJoin(t *testing.T) {
	domains := makeDomains(t, 2, false)
	alice, _ := domains[0].NewUser("Alice")
	bobSvc, _ := domains[1].NewUser("Service B")
	_, _, err := gss.Establish(
		gss.Config{Credential: alice, TrustStore: domains[0].Trust},
		gss.Config{Credential: bobSvc, TrustStore: domains[1].Trust},
	)
	if err == nil {
		t.Fatal("cross-domain auth succeeded without any trust establishment")
	}
}

func TestSameTrustDomain(t *testing.T) {
	domains := makeDomains(t, 1, false)
	d := domains[0]
	alice, err := d.NewUser("Alice")
	if err != nil {
		t.Fatal(err)
	}
	bob, err := d.NewUser("Bob")
	if err != nil {
		t.Fatal(err)
	}
	// Alice creates two proxies (e.g. two dynamically created services).
	p1, err := proxy.New(alice, proxy.Options{})
	if err != nil {
		t.Fatal(err)
	}
	p2, err := proxy.New(alice, proxy.Options{})
	if err != nil {
		t.Fatal(err)
	}
	same, err := SameTrustDomain(d.Trust, p1.Chain, p2.Chain)
	if err != nil {
		t.Fatal(err)
	}
	if !same {
		t.Fatal("two proxies of the same user not in same trust domain")
	}
	// Bob's proxy is not in Alice's trust domain.
	pb, _ := proxy.New(bob, proxy.Options{})
	same, err = SameTrustDomain(d.Trust, p1.Chain, pb.Chain)
	if err != nil {
		t.Fatal(err)
	}
	if same {
		t.Fatal("different users' proxies share a trust domain")
	}
	// Invalid chain errors.
	if _, err := SameTrustDomain(gridcert.NewTrustStore(), p1.Chain, p2.Chain); err == nil {
		t.Fatal("untrusted chains accepted")
	}
}

func TestOverlayDecide(t *testing.T) {
	domains := makeDomains(t, 1, false)
	d := domains[0]
	v := New("overlay")
	alice := gridcert.MustParseName("/O=Org00/CN=Alice")

	d.Local.Add(authz.Rule{
		Effect:    authz.EffectPermit,
		Resources: []string{"cluster:/*"},
		Actions:   []string{"read", "job-submit"},
	})
	v.Policy.Add(authz.Rule{
		Effect:    authz.EffectPermit,
		Subjects:  []string{alice.String()},
		Resources: []string{"cluster:/partition-vo/*"},
		Actions:   []string{"job-submit"},
	})

	o := Overlay{Domain: d, VO: v}
	// Both permit.
	eff, local, comm := o.Decide(authz.Request{Subject: alice, Resource: "cluster:/partition-vo/n1", Action: "job-submit"})
	if eff != authz.Permit || local != authz.Permit || comm != authz.Permit {
		t.Fatalf("eff=%v local=%v vo=%v", eff, local, comm)
	}
	// VO does not cover: deny even though local permits.
	eff, _, _ = o.Decide(authz.Request{Subject: alice, Resource: "cluster:/other/n1", Action: "job-submit"})
	if eff != authz.Deny {
		t.Fatalf("eff=%v for VO-uncovered resource", eff)
	}
	// Local does not cover: deny even though VO permits.
	v.Policy.Add(authz.Rule{
		Effect:    authz.EffectPermit,
		Subjects:  []string{alice.String()},
		Resources: []string{"tape:/archive"},
		Actions:   []string{"read"},
	})
	eff, _, _ = o.Decide(authz.Request{Subject: alice, Resource: "tape:/archive", Action: "read"})
	if eff != authz.Deny {
		t.Fatalf("eff=%v for locally-uncovered resource", eff)
	}
}

func TestFormationScaling(t *testing.T) {
	// The E1 shape: GSI acts grow linearly with a community CA while
	// Kerberos agreements grow quadratically.
	for _, n := range []int{2, 4, 8} {
		gsiDomains := makeDomains(t, n, false)
		community, _ := ca.New(gridcert.MustParseName("/O=Community/CN=CA"), 24*time.Hour, ca.DefaultPolicy())
		v := New("scale")
		gsiCost, err := v.JoinGSIWithCommunityCA(community, gsiDomains...)
		if err != nil {
			t.Fatal(err)
		}
		krbDomains := makeDomains(t, n, true)
		krbCost, err := FormKerberos(krbDomains)
		if err != nil {
			t.Fatal(err)
		}
		if gsiCost.UnilateralActs != n {
			t.Fatalf("n=%d: GSI acts = %d", n, gsiCost.UnilateralActs)
		}
		if krbCost.BilateralAgreements != n*(n-1)/2 {
			t.Fatalf("n=%d: Kerberos agreements = %d", n, krbCost.BilateralAgreements)
		}
		if n >= 4 && krbCost.BilateralAgreements <= gsiCost.UnilateralActs {
			t.Fatalf("n=%d: expected Kerberos cost to dominate", n)
		}
	}
}

func BenchmarkVOFormationGSI8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		domains := makeDomains(b, 8, false)
		community, _ := ca.New(gridcert.MustParseName("/O=Community/CN=CA"), 24*time.Hour, ca.DefaultPolicy())
		v := New("bench")
		b.StartTimer()
		if _, err := v.JoinGSIWithCommunityCA(community, domains...); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkVOFormationKerberos8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		domains := makeDomains(b, 8, true)
		b.StartTimer()
		if _, err := FormKerberos(domains); err != nil {
			b.Fatal(err)
		}
	}
}
