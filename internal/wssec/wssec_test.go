package wssec

import (
	"bytes"
	"encoding/hex"
	"strings"
	"testing"
	"time"

	"repro/internal/ca"
	"repro/internal/gridcert"
	"repro/internal/gss"
	"repro/internal/soap"
)

type bed struct {
	auth  *ca.Authority
	ts    *gridcert.TrustStore
	alice *gridcert.Credential
	host  *gridcert.Credential
}

func newBed(t testing.TB) bed {
	t.Helper()
	auth, err := ca.New(gridcert.MustParseName("/O=Grid/CN=CA"), 24*time.Hour, ca.DefaultPolicy())
	if err != nil {
		t.Fatal(err)
	}
	ts := gridcert.NewTrustStore()
	if err := ts.AddRoot(auth.Certificate()); err != nil {
		t.Fatal(err)
	}
	alice, err := auth.NewEntity(gridcert.MustParseName("/O=Grid/CN=Alice"), 12*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	host, err := auth.NewHostEntity(gridcert.MustParseName("/O=Grid/CN=host svc"), 12*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	return bed{auth: auth, ts: ts, alice: alice, host: host}
}

func TestSecureConversationEstablish(t *testing.T) {
	b := newBed(t)
	d := soap.NewDispatcher()
	mgr := NewConversationManager(gss.Config{Credential: b.host, TrustStore: b.ts})
	mgr.Register(d)
	transport := soap.Pipe(d)

	conv, err := EstablishConversation(gss.Config{Credential: b.alice, TrustStore: b.ts}, transport)
	if err != nil {
		t.Fatal(err)
	}
	if conv.Peer().Identity.String() != "/O=Grid/CN=host svc" {
		t.Fatalf("peer = %q", conv.Peer().Identity)
	}
	if mgr.Sessions() != 1 {
		t.Fatalf("sessions = %d", mgr.Sessions())
	}
	// SOAP carriage costs 4 messages (two request/response pairs) versus
	// GT2's 3 raw frames — same tokens, different envelope count.
	if got := conv.Stats().Messages; got != 4 {
		t.Fatalf("establishment messages = %d, want 4", got)
	}
	if conv.Stats().Bytes == 0 {
		t.Fatal("no byte accounting")
	}
}

func TestSecuredApplicationCall(t *testing.T) {
	b := newBed(t)
	d := soap.NewDispatcher()
	mgr := NewConversationManager(gss.Config{Credential: b.host, TrustStore: b.ts})
	mgr.Register(d)

	var sawPeer gss.Peer
	d.Handle("app/echo", mgr.Secure(func(peer gss.Peer, env *soap.Envelope) (*soap.Envelope, error) {
		sawPeer = peer
		return env.Reply(append([]byte("echo:"), env.Body...)), nil
	}))
	transport := soap.Pipe(d)

	conv, err := EstablishConversation(gss.Config{Credential: b.alice, TrustStore: b.ts}, transport)
	if err != nil {
		t.Fatal(err)
	}
	reply, err := conv.Call(soap.NewEnvelope("app/echo", []byte("hello")))
	if err != nil {
		t.Fatal(err)
	}
	if string(reply.Body) != "echo:hello" {
		t.Fatalf("reply = %q", reply.Body)
	}
	if sawPeer.Identity.String() != "/O=Grid/CN=Alice" {
		t.Fatalf("service saw peer %q", sawPeer.Identity)
	}
}

func TestSecuredCallWithoutContextRejected(t *testing.T) {
	b := newBed(t)
	d := soap.NewDispatcher()
	mgr := NewConversationManager(gss.Config{Credential: b.host, TrustStore: b.ts})
	mgr.Register(d)
	d.Handle("app/op", mgr.Secure(func(peer gss.Peer, env *soap.Envelope) (*soap.Envelope, error) {
		return env.Reply(nil), nil
	}))
	// No SCT header.
	if _, err := d.Dispatch(soap.NewEnvelope("app/op", []byte("x"))); err == nil {
		t.Fatal("unsecured message accepted")
	}
	// Bogus SCT.
	env := soap.NewEnvelope("app/op", []byte("x"))
	env.SetHeader(SCTHeader, []byte("sct-bogus"))
	if _, err := d.Dispatch(env); err == nil {
		t.Fatal("unknown context accepted")
	}
}

func TestConversationOverHTTP(t *testing.T) {
	b := newBed(t)
	d := soap.NewDispatcher()
	mgr := NewConversationManager(gss.Config{Credential: b.host, TrustStore: b.ts})
	mgr.Register(d)
	d.Handle("app/op", mgr.Secure(func(peer gss.Peer, env *soap.Envelope) (*soap.Envelope, error) {
		return env.Reply([]byte("over http")), nil
	}))
	srv, err := soap.NewServer("127.0.0.1:0", d)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	client := &soap.Client{Endpoint: srv.URL()}
	conv, err := EstablishConversation(gss.Config{Credential: b.alice, TrustStore: b.ts}, client.Call)
	if err != nil {
		t.Fatal(err)
	}
	reply, err := conv.Call(soap.NewEnvelope("app/op", []byte("x")))
	if err != nil {
		t.Fatal(err)
	}
	if string(reply.Body) != "over http" {
		t.Fatalf("reply = %q", reply.Body)
	}
}

func TestConversationExpire(t *testing.T) {
	b := newBed(t)
	d := soap.NewDispatcher()
	now := time.Now()
	clock := func() time.Time { return now }
	mgr := NewConversationManager(gss.Config{Credential: b.host, TrustStore: b.ts, Lifetime: time.Minute, Now: clock})
	mgr.Register(d)
	transport := soap.Pipe(d)
	if _, err := EstablishConversation(gss.Config{Credential: b.alice, TrustStore: b.ts, Now: clock}, transport); err != nil {
		t.Fatal(err)
	}
	if mgr.Sessions() != 1 {
		t.Fatal("no session")
	}
	now = now.Add(2 * time.Minute)
	mgr.Expire()
	if mgr.Sessions() != 0 {
		t.Fatal("expired session not evicted")
	}
}

func TestSTSIssuance(t *testing.T) {
	b := newBed(t)
	d := soap.NewDispatcher()
	sts := NewSTS(b.ts)
	sts.RegisterIssuer("test:upper", func(req *gridcert.ChainInfo, claims []byte) ([]byte, error) {
		return append([]byte(req.Identity.String()+":"), bytes.ToUpper(claims)...), nil
	})
	sts.Register(d)
	transport := soap.Pipe(d)

	token, err := RequestToken(transport, b.alice, "test:upper", []byte("claims"))
	if err != nil {
		t.Fatal(err)
	}
	if string(token) != "/O=Grid/CN=Alice:CLAIMS" {
		t.Fatalf("token = %q", token)
	}
	// Unknown token type.
	if _, err := RequestToken(transport, b.alice, "test:unknown", nil); err == nil {
		t.Fatal("unknown token type issued")
	}
}

func TestSTSRejectsUnsignedAndUntrusted(t *testing.T) {
	b := newBed(t)
	d := soap.NewDispatcher()
	sts := NewSTS(b.ts)
	sts.RegisterIssuer("t", func(req *gridcert.ChainInfo, claims []byte) ([]byte, error) { return []byte("x"), nil })
	sts.Register(d)

	// Unsigned request straight to the dispatcher.
	env := soap.NewEnvelope(ActionIssue, TokenRequest{TokenType: "t"}.Encode())
	if _, err := d.Dispatch(env); err == nil {
		t.Fatal("unsigned STS request accepted")
	}

	// Signed by an untrusted CA.
	rogueAuth, _ := ca.New(gridcert.MustParseName("/O=Rogue/CN=CA"), time.Hour, ca.DefaultPolicy())
	rogue, _ := rogueAuth.NewEntity(gridcert.MustParseName("/O=Rogue/CN=Eve"), time.Hour)
	if _, err := RequestToken(soap.Pipe(d), rogue, "t", nil); err == nil {
		t.Fatal("untrusted requester got a token")
	}
}

func TestPolicyPublishFetchIntersect(t *testing.T) {
	b := newBed(t)
	d := soap.NewDispatcher()
	rootFP := hex.EncodeToString(fpOf(b.auth))
	pol := &PolicyDocument{
		Service:            "gram/mmjfs",
		Mechanisms:         []Mechanism{MechSecureConversation, MechMessageSignature},
		AcceptedTokenTypes: []string{"gsi:proxy", "cas:assertion"},
		TrustRoots:         []string{rootFP},
	}
	if err := PublishPolicy(d, pol); err != nil {
		t.Fatal(err)
	}
	got, err := FetchPolicy(soap.Pipe(d))
	if err != nil {
		t.Fatal(err)
	}
	if got.Service != "gram/mmjfs" || len(got.Mechanisms) != 2 {
		t.Fatalf("fetched policy: %+v", got)
	}

	ag, err := Intersect(ClientCapabilities{
		Mechanisms:            []Mechanism{MechMessageSignature, MechSecureConversation},
		TokenTypes:            []string{"gsi:proxy"},
		TrustRootFingerprints: []string{rootFP},
	}, got)
	if err != nil {
		t.Fatal(err)
	}
	// Service preference order wins: wssc first.
	if ag.Mechanism != MechSecureConversation || ag.TokenType != "gsi:proxy" {
		t.Fatalf("agreement = %+v", ag)
	}
}

func fpOf(auth *ca.Authority) []byte {
	fp := auth.Certificate().Fingerprint()
	return fp[:]
}

func TestIntersectFailures(t *testing.T) {
	pol := &PolicyDocument{
		Mechanisms:         []Mechanism{MechSecureConversation},
		AcceptedTokenTypes: []string{"gsi:proxy"},
		TrustRoots:         []string{"aa"},
		RequireEncryption:  true,
	}
	// No mechanism overlap.
	if _, err := Intersect(ClientCapabilities{Mechanisms: []Mechanism{MechMessageSignature}}, pol); err == nil {
		t.Fatal("agreed without mechanism overlap")
	}
	// No token overlap.
	if _, err := Intersect(ClientCapabilities{
		Mechanisms: []Mechanism{MechSecureConversation},
		TokenTypes: []string{"krb5:ticket"},
	}, pol); err == nil {
		t.Fatal("agreed without token overlap")
	}
	// No shared trust root.
	if _, err := Intersect(ClientCapabilities{
		Mechanisms:            []Mechanism{MechSecureConversation},
		TokenTypes:            []string{"gsi:proxy"},
		TrustRootFingerprints: []string{"bb"},
	}, pol); err == nil {
		t.Fatal("agreed without shared root")
	}
	// Encryption required but unsupported.
	if _, err := Intersect(ClientCapabilities{
		Mechanisms:            []Mechanism{MechSecureConversation},
		TokenTypes:            []string{"gsi:proxy"},
		TrustRootFingerprints: []string{"aa"},
	}, pol); err == nil {
		t.Fatal("agreed without encryption capability")
	}
	// All satisfied.
	ag, err := Intersect(ClientCapabilities{
		Mechanisms:            []Mechanism{MechSecureConversation},
		TokenTypes:            []string{"gsi:proxy"},
		TrustRootFingerprints: []string{"aa"},
		CanEncrypt:            true,
	}, pol)
	if err != nil {
		t.Fatal(err)
	}
	if !ag.Encrypt {
		t.Fatal("agreement does not record encryption")
	}
}

func TestPolicyXMLRoundTrip(t *testing.T) {
	pol := &PolicyDocument{
		Service:            "svc",
		Mechanisms:         []Mechanism{MechMessageSignature},
		AcceptedTokenTypes: []string{"gsi:proxy"},
		TrustRoots:         []string{"deadbeef"},
		RequireEncryption:  true,
	}
	pol.SetEncryptionKey([]byte{1, 2, 3})
	data, err := pol.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "<Policy>") {
		t.Fatal("not XML")
	}
	got, err := UnmarshalPolicy(data)
	if err != nil {
		t.Fatal(err)
	}
	key, err := got.EncryptionKeyBytes()
	if err != nil {
		t.Fatal(err)
	}
	if got.Service != "svc" || !got.RequireEncryption || len(key) != 3 {
		t.Fatalf("round trip: %+v", got)
	}
}

func BenchmarkGT3ConversationEstablish(b *testing.B) {
	bd := newBed(b)
	d := soap.NewDispatcher()
	mgr := NewConversationManager(gss.Config{Credential: bd.host, TrustStore: bd.ts})
	mgr.Register(d)
	transport := soap.Pipe(d)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := EstablishConversation(gss.Config{Credential: bd.alice, TrustStore: bd.ts}, transport); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGT3SecuredCall4K(b *testing.B) {
	bd := newBed(b)
	d := soap.NewDispatcher()
	mgr := NewConversationManager(gss.Config{Credential: bd.host, TrustStore: bd.ts})
	mgr.Register(d)
	d.Handle("app/op", mgr.Secure(func(peer gss.Peer, env *soap.Envelope) (*soap.Envelope, error) {
		return env.Reply(env.Body), nil
	}))
	conv, err := EstablishConversation(gss.Config{Credential: bd.alice, TrustStore: bd.ts}, soap.Pipe(d))
	if err != nil {
		b.Fatal(err)
	}
	payload := bytes.Repeat([]byte{1}, 4096)
	b.SetBytes(4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := conv.Call(soap.NewEnvelope("app/op", payload)); err != nil {
			b.Fatal(err)
		}
	}
}
