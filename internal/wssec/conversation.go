// Package wssec implements the GT3 Web-services security protocols of the
// paper (§4.4, §5.1): WS-SecureConversation (security-context
// establishment whose tokens are the same GSS tokens GT2 frames over TCP,
// here carried in SOAP envelopes), WS-Trust (a token-issuance service),
// and WS-Policy (publication and intersection of service security
// policy).
package wssec

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/gridcrypto"
	"repro/internal/gss"
	"repro/internal/soap"
)

// SOAP actions of the WS-SecureConversation binding.
const (
	ActionRST  = "wssc/RequestSecurityToken"         // carries GSS token1
	ActionRSTR = "wssc/RequestSecurityTokenResponse" // carries GSS token3
)

// SCTHeader carries the security-context-token identifier on secured
// messages.
const SCTHeader = "wssc:SecurityContextToken"

// Transport is how envelopes reach the peer: an HTTP client call or an
// in-memory pipe.
type Transport func(*soap.Envelope) (*soap.Envelope, error)

// ContextTransport is a Transport whose round-trips honor a
// context.Context (cancellation aborts the in-flight exchange).
type ContextTransport func(context.Context, *soap.Envelope) (*soap.Envelope, error)

// Stats counts the messages and bytes of a context establishment, for
// experiment E6.
type Stats struct {
	Messages int
	Bytes    int
}

func (s *Stats) count(env *soap.Envelope) error {
	data, err := env.Marshal()
	if err != nil {
		return err
	}
	s.Messages++
	s.Bytes += len(data)
	return nil
}

// Conversation is an established client-side secure conversation.
type Conversation struct {
	ContextID string
	// Resumed reports whether this conversation was derived from an
	// earlier one via ActionResume instead of the full bootstrap.
	Resumed      bool
	ctx          *gss.Context
	transport    Transport
	ctxTransport ContextTransport // set when established via EstablishConversationContext
	stats        Stats
}

// EstablishConversation runs the WS-SecureConversation handshake against
// a service endpoint. The GSS tokens are exactly those of the GT2
// transport; only the carriage differs (SOAP request/response instead of
// raw frames), which is the paper's §5.1 point.
func EstablishConversation(cfg gss.Config, transport Transport) (*Conversation, error) {
	start := time.Now()
	init, err := gss.NewInitiator(cfg)
	if err != nil {
		return nil, err
	}
	t1, err := init.Start()
	if err != nil {
		return nil, err
	}
	conv := &Conversation{transport: transport}

	req1 := soap.NewEnvelope(ActionRST, t1)
	if err := conv.stats.count(req1); err != nil {
		return nil, err
	}
	resp1, err := transport(req1)
	if err != nil {
		return nil, fmt.Errorf("wssec: RST exchange: %w", err)
	}
	if err := conv.stats.count(resp1); err != nil {
		return nil, err
	}
	sct, ok := resp1.Header(SCTHeader)
	if !ok {
		return nil, errors.New("wssec: RSTR missing security context token")
	}
	t3, ctx, err := init.Finish(resp1.Body)
	if err != nil {
		return nil, err
	}
	req2 := soap.NewEnvelope(ActionRSTR, t3)
	req2.SetHeader(SCTHeader, sct.Content)
	if err := conv.stats.count(req2); err != nil {
		return nil, err
	}
	resp2, err := transport(req2)
	if err != nil {
		return nil, fmt.Errorf("wssec: RSTR exchange: %w", err)
	}
	if err := conv.stats.count(resp2); err != nil {
		return nil, err
	}
	if resp2.Fault != nil {
		return nil, resp2.Fault
	}
	conv.ContextID = string(sct.Content)
	conv.ctx = ctx
	gss.ObserveHandshake(time.Since(start))
	return conv, nil
}

// EstablishConversationContext is EstablishConversation over a
// context-aware transport: ctx governs both token exchanges, and the
// returned conversation's CallContext threads per-call contexts through
// the same transport.
func EstablishConversationContext(ctx context.Context, cfg gss.Config, transport ContextTransport) (*Conversation, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	conv, err := EstablishConversation(cfg, func(env *soap.Envelope) (*soap.Envelope, error) {
		return transport(ctx, env)
	})
	if err != nil {
		return nil, err
	}
	conv.ctxTransport = transport
	return conv, nil
}

// Stats returns establishment cost accounting.
func (c *Conversation) Stats() Stats { return c.stats }

// Context exposes the underlying GSS context.
func (c *Conversation) Context() *gss.Context { return c.ctx }

// Peer returns the authenticated service identity.
func (c *Conversation) Peer() gss.Peer { return c.ctx.Peer() }

// Call sends an application envelope through the secure conversation:
// the body is wrapped (encrypted + integrity + ordering) under the
// context, and the reply body unwrapped.
func (c *Conversation) Call(env *soap.Envelope) (*soap.Envelope, error) {
	return c.CallContext(context.Background(), env)
}

// CallContext is Call honoring ctx when the conversation was established
// over a context-aware transport; otherwise ctx only gates entry. The
// request body is sealed with one exact-size allocation (WrapInto) and
// the reply body decrypted in place — the old path round-tripped both
// through intermediate buffers.
func (c *Conversation) CallContext(ctx context.Context, env *soap.Envelope) (*soap.Envelope, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	wrapped, err := c.ctx.WrapInto(make([]byte, 0, len(env.Body)+gss.WrapOverhead), env.Body)
	if err != nil {
		return nil, err
	}
	secured := *env
	secured.Body = wrapped
	secured.Headers = append([]soap.HeaderBlock(nil), env.Headers...) // the copy must not mutate env's backing array
	secured.SetHeader(SCTHeader, []byte(c.ContextID))
	var reply *soap.Envelope
	if c.ctxTransport != nil {
		reply, err = c.ctxTransport(ctx, &secured)
	} else {
		reply, err = c.transport(&secured)
	}
	if err != nil {
		return nil, err
	}
	if reply.Fault != nil {
		return reply, reply.Fault
	}
	// The reply envelope was freshly unmarshaled; its body buffer is
	// ours to decrypt in place.
	plain, err := c.ctx.UnwrapInPlace(reply.Body)
	if err != nil {
		return nil, fmt.Errorf("wssec: unwrapping reply: %w", err)
	}
	out := *reply
	out.Body = plain
	return &out, nil
}

// DefaultMaxSessions bounds a manager's live-session table when no
// explicit cap is set. The minute-throttled expiry sweep alone is not a
// bound: long-lived contexts accumulating faster than they lapse would
// grow the table without limit.
const DefaultMaxSessions = 4096

// ConversationManager is the service side: it answers the RST/RSTR
// actions and unwraps secured application messages.
type ConversationManager struct {
	cfg gss.Config

	mu          sync.Mutex
	pending     map[string]*pendingAccept
	sessions    map[string]*serverSession
	lastExpire  time.Time
	maxSessions int
	evicted     uint64
}

// pendingAccept is a half-established acceptor between RST and RSTR;
// started stamps the RST arrival so the server-side handshake histogram
// covers the full two-round-trip establishment, matching what the
// client observes.
type pendingAccept struct {
	acc     *gss.Acceptor
	started time.Time
}

type serverSession struct {
	ctx  *gss.Context
	peer gss.Peer

	// usedNonces records client nonces already spent on ActionResume,
	// so a captured resume request cannot be replayed to mint further
	// sessions. Bounded by maxResumesPerSession.
	usedNonces map[string]struct{}
}

// NewConversationManager creates a manager for a service credential.
func NewConversationManager(cfg gss.Config) *ConversationManager {
	return &ConversationManager{
		cfg:         cfg,
		pending:     make(map[string]*pendingAccept),
		sessions:    make(map[string]*serverSession),
		maxSessions: DefaultMaxSessions,
	}
}

// SetMaxSessions changes the live-session cap (n <= 0 restores the
// default). Shrinking does not evict immediately; the next store does.
func (m *ConversationManager) SetMaxSessions(n int) {
	if n <= 0 {
		n = DefaultMaxSessions
	}
	m.mu.Lock()
	m.maxSessions = n
	m.mu.Unlock()
}

// Evicted reports how many live sessions were dropped to honor the cap
// (expiry-sweep removals are not counted).
func (m *ConversationManager) Evicted() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.evicted
}

// storeSession inserts a session, evicting to stay under the cap. The
// victim is the session closest to its expiry — the one the sweep would
// reclaim first anyway — found by an O(n) scan, acceptable because
// eviction only runs with the table full. Lapsed sessions are swept
// first so a full-but-stale table never costs a live conversation.
func (m *ConversationManager) storeSession(id string, s *serverSession) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.sessions) >= m.maxSessions {
		m.expireLocked()
	}
	for len(m.sessions) >= m.maxSessions {
		victim := ""
		var soonest time.Time
		for vid, vs := range m.sessions {
			if exp := vs.ctx.Expiry(); victim == "" || exp.Before(soonest) {
				victim, soonest = vid, exp
			}
		}
		delete(m.sessions, victim)
		m.evicted++
	}
	m.sessions[id] = s
}

// Register installs the WS-SecureConversation actions on a dispatcher,
// including the one-round-trip ActionResume.
func (m *ConversationManager) Register(d *soap.Dispatcher) {
	d.Handle(ActionRST, m.handleRST)
	d.Handle(ActionRSTR, m.handleRSTR)
	d.Handle(ActionResume, m.handleResume)
}

func (m *ConversationManager) handleRST(env *soap.Envelope) (*soap.Envelope, error) {
	m.maybeExpire()
	acc, err := gss.NewAcceptor(m.cfg)
	if err != nil {
		return nil, err
	}
	t2, err := acc.Accept(env.Body)
	if err != nil {
		return nil, fmt.Errorf("wssec: accepting token1: %w", err)
	}
	idBytes, err := gridcrypto.RandomBytes(16)
	if err != nil {
		return nil, err
	}
	id := fmt.Sprintf("sct-%x", idBytes)
	m.mu.Lock()
	m.pending[id] = &pendingAccept{acc: acc, started: time.Now()}
	m.mu.Unlock()
	reply := env.Reply(t2)
	reply.SetHeader(SCTHeader, []byte(id))
	return reply, nil
}

func (m *ConversationManager) handleRSTR(env *soap.Envelope) (*soap.Envelope, error) {
	sct, ok := env.Header(SCTHeader)
	if !ok {
		return nil, errors.New("wssec: RSTR missing context token")
	}
	id := string(sct.Content)
	m.mu.Lock()
	p, ok := m.pending[id]
	delete(m.pending, id)
	m.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("wssec: unknown pending context %q", id)
	}
	ctx, err := p.acc.Complete(env.Body)
	if err != nil {
		return nil, fmt.Errorf("wssec: completing context: %w", err)
	}
	gss.ObserveHandshake(time.Since(p.started))
	m.storeSession(id, &serverSession{ctx: ctx, peer: ctx.Peer()})
	return env.Reply([]byte("established")), nil
}

// Sessions reports the number of live contexts.
func (m *ConversationManager) Sessions() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.sessions)
}

// Expire drops sessions whose contexts have lapsed.
func (m *ConversationManager) Expire() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.expireLocked()
}

// maybeExpire runs the lapsed-session sweep at most once per minute, so
// the establishment and resumption handlers keep the session table
// pruned without paying an O(sessions) scan on every call.
func (m *ConversationManager) maybeExpire() {
	m.mu.Lock()
	defer m.mu.Unlock()
	if time.Since(m.lastExpire) >= time.Minute {
		m.expireLocked()
	}
}

// expireLocked is the sweep body; callers hold the mutex.
func (m *ConversationManager) expireLocked() {
	m.lastExpire = time.Now()
	for id, s := range m.sessions {
		if s.ctx.Expired() {
			delete(m.sessions, id)
		}
	}
}

// Secure wraps an application handler: incoming secured envelopes are
// unwrapped and the authenticated peer passed to the handler; the reply
// body is wrapped before returning. Envelopes without a context token are
// rejected.
func (m *ConversationManager) Secure(handler func(peer gss.Peer, env *soap.Envelope) (*soap.Envelope, error)) soap.Handler {
	return func(env *soap.Envelope) (*soap.Envelope, error) {
		sct, ok := env.Header(SCTHeader)
		if !ok {
			return nil, errors.New("wssec: message lacks security context token")
		}
		m.mu.Lock()
		sess, ok := m.sessions[string(sct.Content)]
		m.mu.Unlock()
		if !ok {
			return nil, fmt.Errorf("wssec: unknown security context %q", sct.Content)
		}
		// The inbound envelope was freshly unmarshaled: decrypt its body
		// in place instead of into a second buffer.
		plain, err := sess.ctx.UnwrapInPlace(env.Body)
		if err != nil {
			return nil, fmt.Errorf("wssec: unwrap: %w", err)
		}
		inner := *env
		inner.Body = plain
		reply, err := handler(sess.peer, &inner)
		if err != nil {
			return nil, err
		}
		wrapped, err := sess.ctx.WrapInto(make([]byte, 0, len(reply.Body)+gss.WrapOverhead), reply.Body)
		if err != nil {
			return nil, err
		}
		reply.Body = wrapped
		return reply, nil
	}
}
