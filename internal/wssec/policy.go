package wssec

import (
	"encoding/hex"
	"encoding/xml"
	"errors"
	"fmt"

	"repro/internal/soap"
)

// ActionGetPolicy is the policy-retrieval action: services publish their
// security policy "along with its interface specification" (§4.3), and
// clients fetch it to learn what mechanisms and credentials are required
// before making a secured request.
const ActionGetPolicy = "wspolicy/Get"

// Mechanism names a supported security mechanism.
type Mechanism string

const (
	// MechSecureConversation is stateful WS-SecureConversation.
	MechSecureConversation Mechanism = "wssc"
	// MechMessageSignature is stateless per-message XML-Signature.
	MechMessageSignature Mechanism = "xmldsig"
)

// PolicyDocument is a service's published security policy (a WS-Policy
// analog). It expresses required mechanisms, acceptable trust roots,
// token formats, and other parameters.
type PolicyDocument struct {
	XMLName xml.Name `xml:"Policy"`
	// Service names the endpoint this policy governs.
	Service string `xml:"Service"`
	// Mechanisms the service supports, in preference order.
	Mechanisms []Mechanism `xml:"Mechanisms>Mechanism"`
	// RequireEncryption demands body confidentiality.
	RequireEncryption bool `xml:"RequireEncryption"`
	// AcceptedTokenTypes lists token formats usable with the service
	// (e.g. "gsi:proxy", "cas:assertion", "krb5:ticket").
	AcceptedTokenTypes []string `xml:"AcceptedTokenTypes>Type"`
	// TrustRoots is the hex-encoded fingerprints of CA certificates the
	// service trusts; a client must hold a credential chaining to one.
	TrustRoots []string `xml:"TrustRoots>Fingerprint"`
	// EncryptionKey is the service's hex-encoded X25519 public key for
	// stateless body encryption (empty if unsupported).
	EncryptionKey string `xml:"EncryptionKey,omitempty"`
}

// SetEncryptionKey stores a raw X25519 public key.
func (p *PolicyDocument) SetEncryptionKey(raw []byte) {
	p.EncryptionKey = hex.EncodeToString(raw)
}

// EncryptionKeyBytes decodes the stored key.
func (p *PolicyDocument) EncryptionKeyBytes() ([]byte, error) {
	if p.EncryptionKey == "" {
		return nil, errors.New("wssec: policy has no encryption key")
	}
	return hex.DecodeString(p.EncryptionKey)
}

// Marshal renders the policy as XML.
func (p *PolicyDocument) Marshal() ([]byte, error) {
	return xml.MarshalIndent(p, "", " ")
}

// UnmarshalPolicy parses a policy document.
func UnmarshalPolicy(data []byte) (*PolicyDocument, error) {
	var p PolicyDocument
	if err := xml.Unmarshal(data, &p); err != nil {
		return nil, fmt.Errorf("wssec: policy: %w", err)
	}
	return &p, nil
}

// PublishPolicy installs a policy-retrieval handler on a dispatcher.
func PublishPolicy(d *soap.Dispatcher, p *PolicyDocument) error {
	data, err := p.Marshal()
	if err != nil {
		return err
	}
	d.Handle(ActionGetPolicy, func(env *soap.Envelope) (*soap.Envelope, error) {
		return env.Reply(data), nil
	})
	return nil
}

// FetchPolicy retrieves a service's policy document.
func FetchPolicy(transport Transport) (*PolicyDocument, error) {
	reply, err := transport(soap.NewEnvelope(ActionGetPolicy, nil))
	if err != nil {
		return nil, err
	}
	return UnmarshalPolicy(reply.Body)
}

// ClientCapabilities describes what a client can do, for intersection
// with a service policy.
type ClientCapabilities struct {
	Mechanisms []Mechanism
	TokenTypes []string
	// TrustRootFingerprints of the CAs that issued the client's
	// credentials (hex).
	TrustRootFingerprints []string
	CanEncrypt            bool
}

// Agreement is the outcome of policy intersection: the mechanism and
// token type both sides support.
type Agreement struct {
	Mechanism Mechanism
	TokenType string
	Encrypt   bool
}

// ErrNoAgreement means the intersection of client capabilities and
// service policy is empty.
var ErrNoAgreement = errors.New("wssec: no common security mechanism or token")

// Intersect computes the agreement between a client and a service policy,
// honouring the service's preference order.
func Intersect(client ClientCapabilities, service *PolicyDocument) (Agreement, error) {
	var ag Agreement
	for _, m := range service.Mechanisms {
		for _, cm := range client.Mechanisms {
			if m == cm {
				ag.Mechanism = m
				break
			}
		}
		if ag.Mechanism != "" {
			break
		}
	}
	if ag.Mechanism == "" {
		return Agreement{}, fmt.Errorf("%w: mechanisms %v vs %v", ErrNoAgreement, client.Mechanisms, service.Mechanisms)
	}
	for _, t := range service.AcceptedTokenTypes {
		for _, ct := range client.TokenTypes {
			if t == ct {
				ag.TokenType = t
				break
			}
		}
		if ag.TokenType != "" {
			break
		}
	}
	if ag.TokenType == "" {
		return Agreement{}, fmt.Errorf("%w: token types %v vs %v", ErrNoAgreement, client.TokenTypes, service.AcceptedTokenTypes)
	}
	// Trust-root compatibility: the client's credential must chain to a
	// root the service accepts (empty service list = accepts any).
	if len(service.TrustRoots) > 0 {
		ok := false
		for _, sr := range service.TrustRoots {
			for _, cr := range client.TrustRootFingerprints {
				if sr == cr {
					ok = true
					break
				}
			}
		}
		if !ok {
			return Agreement{}, fmt.Errorf("%w: no shared trust root", ErrNoAgreement)
		}
	}
	if service.RequireEncryption {
		if !client.CanEncrypt {
			return Agreement{}, fmt.Errorf("%w: service requires encryption", ErrNoAgreement)
		}
		ag.Encrypt = true
	}
	return ag, nil
}
