package wssec

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/gss"
	"repro/internal/soap"
	"repro/internal/wire"
)

// pipeCtx adapts a soap.Pipe to the context-aware transport shape.
func pipeCtx(d *soap.Dispatcher) ContextTransport {
	p := soap.Pipe(d)
	return func(ctx context.Context, env *soap.Envelope) (*soap.Envelope, error) {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		return p(env)
	}
}

func TestResumeDerivesWorkingConversation(t *testing.T) {
	b := newBed(t)
	d := soap.NewDispatcher()
	mgr := NewConversationManager(gss.Config{Credential: b.host, TrustStore: b.ts})
	mgr.Register(d)
	d.Handle("app/echo", mgr.Secure(func(peer gss.Peer, env *soap.Envelope) (*soap.Envelope, error) {
		return env.Reply(append([]byte("echo:"), env.Body...)), nil
	}))
	transport := pipeCtx(d)
	ctx := context.Background()

	parent, err := EstablishConversationContext(ctx, gss.Config{Credential: b.alice, TrustStore: b.ts}, transport)
	if err != nil {
		t.Fatal(err)
	}
	child, err := parent.ResumeContext(ctx, transport)
	if err != nil {
		t.Fatal(err)
	}
	if !child.Resumed {
		t.Fatal("child not marked resumed")
	}
	if child.ContextID == parent.ContextID {
		t.Fatal("resumed conversation reused the parent token")
	}
	// Resumption costs one round trip (2 messages) vs the bootstrap's 4.
	if got := child.Stats().Messages; got != 2 {
		t.Fatalf("resume messages = %d, want 2", got)
	}
	// The authenticated peer carries over without re-validation.
	if !child.Peer().Identity.Equal(parent.Peer().Identity) {
		t.Fatalf("peer = %q", child.Peer().Identity)
	}
	// Both parent and child carry application traffic, under distinct keys.
	for _, conv := range []*Conversation{child, parent} {
		reply, err := conv.CallContext(ctx, soap.NewEnvelope("app/echo", []byte("hi")))
		if err != nil {
			t.Fatal(err)
		}
		if string(reply.Body) != "echo:hi" {
			t.Fatalf("reply = %q", reply.Body)
		}
	}
	if mgr.Sessions() != 2 {
		t.Fatalf("server sessions = %d, want 2", mgr.Sessions())
	}
}

func TestResumeRejectsExpiredParent(t *testing.T) {
	b := newBed(t)
	d := soap.NewDispatcher()
	mgr := NewConversationManager(gss.Config{Credential: b.host, TrustStore: b.ts})
	mgr.Register(d)
	transport := pipeCtx(d)

	clock := time.Now()
	now := func() time.Time { return clock }
	parent, err := EstablishConversationContext(context.Background(),
		gss.Config{Credential: b.alice, TrustStore: b.ts, Lifetime: time.Minute, Now: now}, transport)
	if err != nil {
		t.Fatal(err)
	}
	clock = clock.Add(2 * time.Minute)
	if _, err := parent.ResumeContext(context.Background(), transport); !errors.Is(err, gss.ErrContextExpired) {
		t.Fatalf("resume of expired parent: %v", err)
	}
}

func TestResumptionCacheAmortizesBootstrap(t *testing.T) {
	b := newBed(t)
	d := soap.NewDispatcher()
	mgr := NewConversationManager(gss.Config{Credential: b.host, TrustStore: b.ts})
	mgr.Register(d)
	transport := pipeCtx(d)
	ctx := context.Background()
	cfg := gss.Config{Credential: b.alice, TrustStore: b.ts}

	rc := NewResumptionCache(0)
	first, resumed, err := rc.EstablishOrResume(ctx, "ep1", cfg, transport)
	if err != nil || resumed {
		t.Fatalf("first: resumed=%v err=%v", resumed, err)
	}
	for i := 0; i < 3; i++ {
		conv, resumed, err := rc.EstablishOrResume(ctx, "ep1", cfg, transport)
		if err != nil || !resumed {
			t.Fatalf("call %d: resumed=%v err=%v", i, resumed, err)
		}
		if conv.ContextID == first.ContextID {
			t.Fatal("child shares the parent token")
		}
	}
	st := rc.Stats()
	if st.Misses != 1 || st.Hits != 3 {
		t.Fatalf("stats = %+v, want 1 miss / 3 hits", st)
	}
	// A different key bootstraps separately.
	if _, resumed, err := rc.EstablishOrResume(ctx, "ep2", cfg, transport); err != nil || resumed {
		t.Fatalf("ep2: resumed=%v err=%v", resumed, err)
	}
}

// TestResumeRequiresProofOfPossession: the context token travels in
// cleartext headers, so knowing it must not be enough — a forged
// resume request without the parent's MIC keys is rejected.
func TestResumeRequiresProofOfPossession(t *testing.T) {
	b := newBed(t)
	d := soap.NewDispatcher()
	mgr := NewConversationManager(gss.Config{Credential: b.host, TrustStore: b.ts})
	mgr.Register(d)
	transport := pipeCtx(d)

	parent, err := EstablishConversationContext(context.Background(), gss.Config{Credential: b.alice, TrustStore: b.ts}, transport)
	if err != nil {
		t.Fatal(err)
	}
	// An observer who captured the context ID crafts a resume request
	// with its own nonce and a bogus MIC.
	nonce := make([]byte, gss.ResumeNonceSize)
	forged := soap.NewEnvelope(ActionResume,
		wire.NewEncoder().Bytes(nonce).Bytes(make([]byte, 32)).Finish())
	forged.SetHeader(SCTHeader, []byte(parent.ContextID))
	if _, err := transport(context.Background(), forged); err == nil {
		t.Fatal("forged resume request accepted")
	}
	if got := mgr.Sessions(); got != 1 {
		t.Fatalf("server sessions = %d after forgery, want 1", got)
	}
}

// TestResumeReplayRejected: a captured legitimate resume request
// replayed verbatim must not mint a second server session.
func TestResumeReplayRejected(t *testing.T) {
	b := newBed(t)
	d := soap.NewDispatcher()
	mgr := NewConversationManager(gss.Config{Credential: b.host, TrustStore: b.ts})
	mgr.Register(d)
	inner := soap.Pipe(d)

	// A wiretap transport that records the resume request.
	var captured *soap.Envelope
	transport := func(ctx context.Context, env *soap.Envelope) (*soap.Envelope, error) {
		if env.Action == ActionResume {
			cp := *env
			captured = &cp
		}
		return inner(env)
	}
	parent, err := EstablishConversationContext(context.Background(), gss.Config{Credential: b.alice, TrustStore: b.ts}, transport)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := parent.ResumeContext(context.Background(), transport); err != nil {
		t.Fatal(err)
	}
	if captured == nil {
		t.Fatal("no resume request captured")
	}
	sessions := mgr.Sessions()
	if _, err := inner(captured); err == nil {
		t.Fatal("replayed resume request accepted")
	}
	if got := mgr.Sessions(); got != sessions {
		t.Fatalf("sessions grew %d -> %d on replay", sessions, got)
	}
	// A fresh, honest resumption still works.
	if _, err := parent.ResumeContext(context.Background(), transport); err != nil {
		t.Fatalf("legitimate resume after replay attempt: %v", err)
	}
}

func TestResumeUnknownContextRejected(t *testing.T) {
	b := newBed(t)
	d := soap.NewDispatcher()
	mgr := NewConversationManager(gss.Config{Credential: b.host, TrustStore: b.ts})
	mgr.Register(d)
	transport := pipeCtx(d)

	parent, err := EstablishConversationContext(context.Background(), gss.Config{Credential: b.alice, TrustStore: b.ts}, transport)
	if err != nil {
		t.Fatal(err)
	}
	forged := *parent
	forged.ContextID = "sct-deadbeef"
	if _, err := forged.ResumeContext(context.Background(), transport); err == nil {
		t.Fatal("resume with unknown token accepted")
	}
}

// InvalidateMatching drops exactly the matching parents: subsequent
// EstablishOrResume calls under the dropped key must bootstrap fresh
// (a miss), never resume off the invalidated conversation — the
// credential-rotation guarantee.
func TestResumptionCacheInvalidateMatching(t *testing.T) {
	b := newBed(t)
	d := soap.NewDispatcher()
	mgr := NewConversationManager(gss.Config{Credential: b.host, TrustStore: b.ts})
	mgr.Register(d)
	transport := pipeCtx(d)
	ctx := context.Background()
	cfg := gss.Config{Credential: b.alice, TrustStore: b.ts}

	rc := NewResumptionCache(8)
	for _, key := range []string{"ep|cred-old", "ep2|cred-old", "ep|cred-new"} {
		if _, resumed, err := rc.EstablishOrResume(ctx, key, cfg, transport); err != nil || resumed {
			t.Fatalf("bootstrap of %q: resumed=%v err=%v", key, resumed, err)
		}
	}
	if st := rc.Stats(); st.Len != 3 || st.Misses != 3 {
		t.Fatalf("stats = %+v, want 3 cached bootstraps", st)
	}

	// Warm path sanity: the cached parent resumes.
	if _, resumed, err := rc.EstablishOrResume(ctx, "ep|cred-old", cfg, transport); err != nil || !resumed {
		t.Fatalf("warm resume: resumed=%v err=%v", resumed, err)
	}

	dropped := rc.InvalidateMatching(func(key string) bool {
		return len(key) >= 8 && key[len(key)-8:] == "cred-old"
	})
	if dropped != 2 {
		t.Fatalf("dropped = %d, want the 2 old-credential parents", dropped)
	}
	if st := rc.Stats(); st.Len != 1 {
		t.Fatalf("len = %d, want only the new-credential parent", st.Len)
	}

	// The invalidated keys bootstrap fresh; the surviving key resumes.
	misses := rc.Stats().Misses
	if _, resumed, err := rc.EstablishOrResume(ctx, "ep|cred-old", cfg, transport); err != nil || resumed {
		t.Fatalf("post-invalidation establish: resumed=%v err=%v", resumed, err)
	}
	if got := rc.Stats().Misses; got != misses+1 {
		t.Fatalf("misses = %d, want %d", got, misses+1)
	}
	if _, resumed, err := rc.EstablishOrResume(ctx, "ep|cred-new", cfg, transport); err != nil || !resumed {
		t.Fatalf("surviving parent must resume: resumed=%v err=%v", resumed, err)
	}
}
