package wssec

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/gridcrypto"
	"repro/internal/gss"
	"repro/internal/soap"
	"repro/internal/wire"
)

// ActionResume is the one-round-trip session resumption of the binding:
// the client presents the token of an established conversation plus a
// fresh nonce, and both sides re-derive session keys from the existing
// context instead of re-running the WS-Trust bootstrap (no certificate
// chains, no signatures, no ECDH — just HKDF over shared secrets). This
// is how the expensive public-key handshake is amortized across many
// short-lived sessions, per the paper's §5.1 argument.
const ActionResume = "wssc/ResumeSecurityContext"

// maxResumesPerSession bounds how many children one established
// context may seed — a backstop keeping the server's session table
// finite even under pathological clients.
const maxResumesPerSession = 1024

// ResumeContext derives a fresh conversation from an established one in
// a single secured round trip: request carries the parent's context
// token and a client nonce, reply carries the server nonce and the new
// context token. The derived conversation has fresh wrap keys but the
// parent's authenticated peer and expiry (which is clamped to the
// credential lifetime at establishment, so resumption can never extend
// a credential's reach). The parent remains usable: many children can
// be derived from one bootstrap.
func (c *Conversation) ResumeContext(ctx context.Context, transport ContextTransport) (*Conversation, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if c.ctx.Expired() {
		return nil, gss.ErrContextExpired
	}
	start := time.Now()
	clientNonce, err := gridcrypto.RandomBytes(gss.ResumeNonceSize)
	if err != nil {
		return nil, err
	}
	child := &Conversation{
		Resumed:      true,
		ctxTransport: transport,
		transport: func(env *soap.Envelope) (*soap.Envelope, error) {
			return transport(context.Background(), env)
		},
	}
	// The request proves possession of the parent context: context IDs
	// travel in cleartext headers, so without this MIC any observer
	// could mint server sessions attributed to the original peer.
	body := wire.NewEncoder().
		Bytes(clientNonce).
		Bytes(c.ctx.GetMIC(clientNonce)).
		Finish()
	req := soap.NewEnvelope(ActionResume, body)
	req.SetHeader(SCTHeader, []byte(c.ContextID))
	if err := child.stats.count(req); err != nil {
		return nil, err
	}
	resp, err := transport(ctx, req)
	if err != nil {
		return nil, fmt.Errorf("wssec: resume exchange: %w", err)
	}
	if err := child.stats.count(resp); err != nil {
		return nil, err
	}
	if resp.Fault != nil {
		return nil, resp.Fault
	}
	sct, ok := resp.Header(SCTHeader)
	if !ok {
		return nil, errors.New("wssec: resume reply missing security context token")
	}
	derived, err := c.ctx.Resume(clientNonce, resp.Body)
	if err != nil {
		return nil, fmt.Errorf("wssec: deriving resumed context: %w", err)
	}
	child.ContextID = string(sct.Content)
	child.ctx = derived
	gss.ObserveResume(time.Since(start))
	return child, nil
}

// handleResume answers ActionResume on the service side: verify the
// requester holds the parent context (MIC over its nonce), then derive
// a child context under a fresh server nonce and hand back the new
// token. Unknown, lapsed, or unproven contexts are rejected, forcing
// the client through the full bootstrap.
func (m *ConversationManager) handleResume(env *soap.Envelope) (*soap.Envelope, error) {
	sct, ok := env.Header(SCTHeader)
	if !ok {
		return nil, errors.New("wssec: resume request missing context token")
	}
	m.mu.Lock()
	sess, ok := m.sessions[string(sct.Content)]
	m.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("wssec: unknown security context %q", sct.Content)
	}
	d := wire.NewDecoder(env.Body)
	clientNonce := d.Bytes()
	mic := d.Bytes()
	if err := d.Done(); err != nil {
		return nil, fmt.Errorf("wssec: malformed resume request: %w", err)
	}
	if err := sess.ctx.VerifyMIC(clientNonce, mic); err != nil {
		return nil, fmt.Errorf("wssec: resume request not proven under context %q: %w", sct.Content, err)
	}
	// Each client nonce is good for exactly one resumption: a replayed
	// capture must not grow the session table. The nonce set is shared
	// by every descendant of one bootstrap (children inherit it below),
	// so the whole resumption tree of a context — not each hop — is
	// bounded by maxResumesPerSession: chaining parent→child→grandchild
	// cannot mint unbounded server state.
	m.mu.Lock()
	if sess.usedNonces == nil {
		sess.usedNonces = make(map[string]struct{})
	}
	_, replayed := sess.usedNonces[string(clientNonce)]
	exhausted := len(sess.usedNonces) >= maxResumesPerSession
	if !replayed && !exhausted {
		sess.usedNonces[string(clientNonce)] = struct{}{}
	}
	m.mu.Unlock()
	if replayed {
		return nil, fmt.Errorf("wssec: resume nonce replayed for context %q", sct.Content)
	}
	if exhausted {
		return nil, fmt.Errorf("wssec: context %q exhausted its resumption budget", sct.Content)
	}
	serverNonce, err := gridcrypto.RandomBytes(gss.ResumeNonceSize)
	if err != nil {
		return nil, err
	}
	derived, err := sess.ctx.Resume(clientNonce, serverNonce)
	if err != nil {
		return nil, fmt.Errorf("wssec: resuming context: %w", err)
	}
	idBytes, err := gridcrypto.RandomBytes(16)
	if err != nil {
		return nil, err
	}
	id := fmt.Sprintf("sct-%x", idBytes)
	m.storeSession(id, &serverSession{ctx: derived, peer: sess.peer, usedNonces: sess.usedNonces})
	m.maybeExpire()
	reply := env.Reply(serverNonce)
	reply.SetHeader(SCTHeader, []byte(id))
	return reply, nil
}

// ResumptionCache is the client-side secure-conversation cache: it
// remembers one established ("parent") conversation per key and mints
// cheap resumed children from it instead of re-running the bootstrap.
// Keys should identify everything that makes conversations
// interchangeable — endpoint, credential, and handshake flags. Safe for
// concurrent use.
type ResumptionCache struct {
	mu      sync.Mutex
	max     int
	parents map[string]*Conversation
	hits    uint64
	misses  uint64
}

// DefaultResumptionCacheSize bounds a cache created with max <= 0.
const DefaultResumptionCacheSize = 64

// NewResumptionCache creates a cache holding at most max parent
// conversations (max <= 0 selects DefaultResumptionCacheSize).
func NewResumptionCache(max int) *ResumptionCache {
	if max <= 0 {
		max = DefaultResumptionCacheSize
	}
	return &ResumptionCache{max: max, parents: make(map[string]*Conversation)}
}

// ResumptionStats reports cache effectiveness: a hit is a conversation
// obtained by resumption (1 round trip, symmetric crypto), a miss is a
// full bootstrap (2 round trips, public-key crypto).
type ResumptionStats struct {
	Hits   uint64
	Misses uint64
	Len    int
}

// Stats returns a snapshot of the cache counters.
func (rc *ResumptionCache) Stats() ResumptionStats {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	return ResumptionStats{Hits: rc.hits, Misses: rc.misses, Len: len(rc.parents)}
}

// EstablishOrResume returns a live conversation for key: resumed from
// the cached parent when one exists and its context has not lapsed
// (expiry is tied to the credential lifetime), otherwise freshly
// bootstrapped via the full WS-Trust exchange and cached as the new
// parent. A failed resumption evicts the parent and falls back to the
// bootstrap — unless the failure was the caller's own context ending,
// which is returned as-is.
func (rc *ResumptionCache) EstablishOrResume(ctx context.Context, key string, cfg gss.Config, transport ContextTransport) (conv *Conversation, resumed bool, err error) {
	rc.mu.Lock()
	parent := rc.parents[key]
	rc.mu.Unlock()
	if parent != nil {
		if parent.Context().Expired() {
			rc.evict(key, parent)
		} else if child, err := parent.ResumeContext(ctx, transport); err == nil {
			rc.mu.Lock()
			rc.hits++
			rc.mu.Unlock()
			return child, true, nil
		} else if ctx.Err() != nil {
			return nil, false, err
		} else {
			rc.evict(key, parent)
		}
	}
	conv, err = EstablishConversationContext(ctx, cfg, transport)
	if err != nil {
		return nil, false, err
	}
	rc.mu.Lock()
	rc.misses++
	if len(rc.parents) >= rc.max {
		for k := range rc.parents {
			delete(rc.parents, k)
			break
		}
	}
	rc.parents[key] = conv
	rc.mu.Unlock()
	return conv, false, nil
}

// InvalidateMatching drops every cached parent whose key satisfies
// match, returning how many were dropped. Credential rotation uses it:
// cache keys embed the credential fingerprint, so dropping a retired
// credential's keys guarantees its resumption trees are never used to
// mint new conversations — even though the underlying contexts may
// remain cryptographically valid until the old credential's NotAfter.
func (rc *ResumptionCache) InvalidateMatching(match func(key string) bool) int {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	n := 0
	for k := range rc.parents {
		if match(k) {
			delete(rc.parents, k)
			n++
		}
	}
	return n
}

// evict removes key only if it still maps to parent (a concurrent
// bootstrap may have replaced it).
func (rc *ResumptionCache) evict(key string, parent *Conversation) {
	rc.mu.Lock()
	if rc.parents[key] == parent {
		delete(rc.parents, key)
	}
	rc.mu.Unlock()
}
