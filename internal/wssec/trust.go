package wssec

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/gridcert"
	"repro/internal/soap"
	"repro/internal/wire"
	"repro/internal/xmlsec"
)

// ActionIssue is the WS-Trust token-issuance action.
const ActionIssue = "wstrust/Issue"

// TokenRequest is a WS-Trust RequestSecurityToken: the requester asks an
// STS to issue a token of a given type. The request envelope must be
// signed (stateless XML-Signature authentication), so the STS knows who
// is asking without a prior context.
type TokenRequest struct {
	// TokenType selects the issuer, e.g. "cas:assertion" or
	// "kca:certificate".
	TokenType string
	// Claims is the issuer-specific request payload.
	Claims []byte
}

// Encode serialises the request for an envelope body.
func (r TokenRequest) Encode() []byte {
	return wire.NewEncoder().Str(r.TokenType).Bytes(r.Claims).Finish()
}

// DecodeTokenRequest parses a request body.
func DecodeTokenRequest(b []byte) (TokenRequest, error) {
	d := wire.NewDecoder(b)
	r := TokenRequest{TokenType: d.Str(), Claims: d.Bytes()}
	if err := d.Done(); err != nil {
		return TokenRequest{}, err
	}
	return r, nil
}

// Issuer produces tokens of one type for authenticated requesters.
type Issuer func(requester *gridcert.ChainInfo, claims []byte) ([]byte, error)

// STS is a WS-Trust security token service: the OGSA face of the
// credential-issuance and conversion services of §4.1.
type STS struct {
	trust *gridcert.TrustStore

	mu      sync.RWMutex
	issuers map[string]Issuer
}

// NewSTS creates a token service that authenticates requesters against
// the given trust store.
func NewSTS(trust *gridcert.TrustStore) *STS {
	return &STS{trust: trust, issuers: make(map[string]Issuer)}
}

// RegisterIssuer installs the issuer for a token type.
func (s *STS) RegisterIssuer(tokenType string, issuer Issuer) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.issuers[tokenType] = issuer
}

// Register installs the issue action on a dispatcher.
func (s *STS) Register(d *soap.Dispatcher) {
	d.Handle(ActionIssue, s.handleIssue)
}

func (s *STS) handleIssue(env *soap.Envelope) (*soap.Envelope, error) {
	info, err := xmlsec.VerifyEnvelope(env, xmlsec.VerifyOptions{TrustStore: s.trust})
	if err != nil {
		return nil, fmt.Errorf("wssec: STS authentication: %w", err)
	}
	req, err := DecodeTokenRequest(env.Body)
	if err != nil {
		return nil, fmt.Errorf("wssec: bad token request: %w", err)
	}
	s.mu.RLock()
	issuer, ok := s.issuers[req.TokenType]
	s.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("wssec: no issuer for token type %q", req.TokenType)
	}
	token, err := issuer(info, req.Claims)
	if err != nil {
		return nil, fmt.Errorf("wssec: issuing %q: %w", req.TokenType, err)
	}
	return env.Reply(token), nil
}

// RequestToken is the client side: sign a token request with cred and
// send it via transport, returning the issued token.
func RequestToken(transport Transport, cred *gridcert.Credential, tokenType string, claims []byte) ([]byte, error) {
	env := soap.NewEnvelope(ActionIssue, TokenRequest{TokenType: tokenType, Claims: claims}.Encode())
	if err := xmlsec.SignEnvelope(env, cred); err != nil {
		return nil, err
	}
	reply, err := transport(env)
	if err != nil {
		return nil, err
	}
	if reply.Fault != nil {
		return nil, reply.Fault
	}
	if len(reply.Body) == 0 {
		return nil, errors.New("wssec: empty token response")
	}
	return reply.Body, nil
}
