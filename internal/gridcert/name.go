package gridcert

import (
	"fmt"
	"strings"
)

// Name is an X.500-style distinguished name: an ordered sequence of
// attribute components, written most-significant first, e.g.
// "/O=Grid/OU=ANL/CN=Alice". Order matters: proxy-certificate validation
// depends on a proxy subject being exactly its issuer's subject plus one
// trailing CN component.
type Name struct {
	Components []NameComponent
}

// NameComponent is one attribute of a distinguished name.
type NameComponent struct {
	Type  string // e.g. "O", "OU", "CN"
	Value string
}

// ParseName parses the slash-separated textual form, e.g.
// "/O=Grid/OU=ANL/CN=Alice". An empty string yields the empty Name.
func ParseName(s string) (Name, error) {
	var n Name
	if s == "" {
		return n, nil
	}
	if !strings.HasPrefix(s, "/") {
		return n, fmt.Errorf("gridcert: name %q must start with '/'", s)
	}
	for _, part := range strings.Split(s[1:], "/") {
		eq := strings.IndexByte(part, '=')
		if eq <= 0 {
			return Name{}, fmt.Errorf("gridcert: malformed name component %q", part)
		}
		typ, val := part[:eq], part[eq+1:]
		if val == "" {
			return Name{}, fmt.Errorf("gridcert: empty value in name component %q", part)
		}
		n.Components = append(n.Components, NameComponent{Type: typ, Value: val})
	}
	return n, nil
}

// MustParseName is ParseName that panics on error; for tests and constants.
func MustParseName(s string) Name {
	n, err := ParseName(s)
	if err != nil {
		panic(err)
	}
	return n
}

// String renders the slash-separated textual form.
func (n Name) String() string {
	if len(n.Components) == 0 {
		return "/"
	}
	var sb strings.Builder
	for _, c := range n.Components {
		sb.WriteByte('/')
		sb.WriteString(c.Type)
		sb.WriteByte('=')
		sb.WriteString(c.Value)
	}
	return sb.String()
}

// Equal reports whether two names have identical component sequences.
func (n Name) Equal(m Name) bool {
	if len(n.Components) != len(m.Components) {
		return false
	}
	for i := range n.Components {
		if n.Components[i] != m.Components[i] {
			return false
		}
	}
	return true
}

// Empty reports whether the name has no components.
func (n Name) Empty() bool { return len(n.Components) == 0 }

// CommonName returns the value of the last CN component, or "".
func (n Name) CommonName() string {
	for i := len(n.Components) - 1; i >= 0; i-- {
		if n.Components[i].Type == "CN" {
			return n.Components[i].Value
		}
	}
	return ""
}

// WithCN returns a copy of n with one additional trailing CN component.
// This is how proxy subject names are derived from their issuer.
func (n Name) WithCN(value string) Name {
	out := Name{Components: make([]NameComponent, len(n.Components)+1)}
	copy(out.Components, n.Components)
	out.Components[len(n.Components)] = NameComponent{Type: "CN", Value: value}
	return out
}

// Parent returns the name with its final component removed, and whether a
// component was removed. For a proxy subject this recovers the issuer name.
func (n Name) Parent() (Name, bool) {
	if len(n.Components) == 0 {
		return Name{}, false
	}
	out := Name{Components: make([]NameComponent, len(n.Components)-1)}
	copy(out.Components, n.Components[:len(n.Components)-1])
	return out, true
}

// IsImmediateChildOf reports whether n equals parent plus exactly one
// trailing CN component — the RFC 3820 proxy subject-name rule.
func (n Name) IsImmediateChildOf(parent Name) bool {
	if len(n.Components) != len(parent.Components)+1 {
		return false
	}
	last := n.Components[len(n.Components)-1]
	if last.Type != "CN" {
		return false
	}
	trimmed, _ := n.Parent()
	return trimmed.Equal(parent)
}

// encodeTo appends the wire encoding of the name.
func (n Name) encodeTo(e *encoder) {
	e.u32(uint32(len(n.Components)))
	for _, c := range n.Components {
		e.str(c.Type)
		e.str(c.Value)
	}
}

const maxNameComponents = 256

// decodeName reads a Name from d.
func decodeName(d *decoder) Name {
	cnt := d.count("name component", d.u32(), maxNameComponents)
	var n Name
	for i := 0; i < cnt && d.err == nil; i++ {
		typ := d.str()
		val := d.str()
		if d.err == nil && (typ == "" || val == "") {
			d.fail(fmt.Errorf("gridcert: empty name component at index %d", i))
			return Name{}
		}
		n.Components = append(n.Components, NameComponent{Type: typ, Value: val})
	}
	return n
}
