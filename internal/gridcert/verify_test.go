package gridcert

import (
	"strings"
	"testing"
	"time"

	"repro/internal/gridcrypto"
)

func newStore(t testing.TB, roots ...*Certificate) *TrustStore {
	t.Helper()
	ts := NewTrustStore()
	for _, r := range roots {
		if err := ts.AddRoot(r); err != nil {
			t.Fatalf("AddRoot: %v", err)
		}
	}
	return ts
}

func TestVerifyEndEntity(t *testing.T) {
	caCert, _, userCert, _ := testPKI(t)
	ts := newStore(t, caCert)
	for _, chain := range [][]*Certificate{
		{userCert},         // root omitted
		{userCert, caCert}, // root included
	} {
		info, err := ts.Verify(chain, VerifyOptions{})
		if err != nil {
			t.Fatalf("Verify(len=%d): %v", len(chain), err)
		}
		if !info.Identity.Equal(userCert.Subject) {
			t.Fatalf("Identity = %q", info.Identity)
		}
		if info.ProxyDepth != 0 || info.Limited {
			t.Fatalf("unexpected proxy info: %+v", info)
		}
		if info.Root != caCert {
			t.Fatal("wrong root selected")
		}
	}
}

func TestVerifyProxyChain(t *testing.T) {
	caCert, _, userCert, userKey := testPKI(t)
	ts := newStore(t, caCert)
	p1, k1 := issueProxy(t, userCert, userKey, ProxyImpersonation, -1)
	p2, k2 := issueProxy(t, p1, k1, ProxyImpersonation, -1)
	p3, _ := issueProxy(t, p2, k2, ProxyImpersonation, -1)
	info, err := ts.Verify([]*Certificate{p3, p2, p1, userCert}, VerifyOptions{})
	if err != nil {
		t.Fatalf("Verify 3-deep proxy chain: %v", err)
	}
	if info.ProxyDepth != 3 {
		t.Fatalf("ProxyDepth = %d", info.ProxyDepth)
	}
	if !info.Identity.Equal(userCert.Subject) {
		t.Fatalf("Identity = %q, want end-entity subject", info.Identity)
	}
	if !info.Subject.Equal(p3.Subject) {
		t.Fatalf("Subject = %q, want leaf subject", info.Subject)
	}
}

func TestVerifyUntrustedRoot(t *testing.T) {
	_, _, userCert, _ := testPKI(t)
	ts := NewTrustStore() // empty
	if _, err := ts.Verify([]*Certificate{userCert}, VerifyOptions{}); err == nil {
		t.Fatal("verified chain with no trusted root")
	}
}

func TestVerifyWrongCA(t *testing.T) {
	_, _, userCert, _ := testPKI(t)
	otherCA, _, err := NewSelfSignedCA(MustParseName("/O=Other/CN=CA"), time.Hour, gridcrypto.AlgEd25519)
	if err != nil {
		t.Fatal(err)
	}
	ts := newStore(t, otherCA)
	if _, err := ts.Verify([]*Certificate{userCert}, VerifyOptions{}); err == nil {
		t.Fatal("verified cert against unrelated CA")
	}
}

func TestVerifyExpired(t *testing.T) {
	// A CA whose validity covers the historical check below.
	caKey, _ := gridcrypto.GenerateKeyPair(gridcrypto.AlgEd25519)
	caName := MustParseName("/O=Grid/CN=Backdated CA")
	caCert, err := Sign(Template{
		Type:       TypeCA,
		Subject:    caName,
		NotBefore:  time.Now().Add(-24 * time.Hour),
		NotAfter:   time.Now().Add(24 * time.Hour),
		KeyUsage:   UsageCertSign | UsageCRLSign,
		MaxPathLen: -1,
	}, caKey.Public(), caName, caKey)
	if err != nil {
		t.Fatal(err)
	}
	key, _ := gridcrypto.GenerateKeyPair(gridcrypto.AlgEd25519)
	short, err := Sign(Template{
		Type:      TypeEndEntity,
		Subject:   MustParseName("/CN=shortlived"),
		NotBefore: time.Now().Add(-2 * time.Hour),
		NotAfter:  time.Now().Add(-1 * time.Hour),
	}, key.Public(), caCert.Subject, caKey)
	if err != nil {
		t.Fatal(err)
	}
	ts := newStore(t, caCert)
	if _, err := ts.Verify([]*Certificate{short}, VerifyOptions{}); err == nil {
		t.Fatal("verified expired certificate")
	}
	// But it verifies at a time inside the window.
	if _, err := ts.Verify([]*Certificate{short}, VerifyOptions{Now: time.Now().Add(-90 * time.Minute)}); err != nil {
		t.Fatalf("verification at historical time: %v", err)
	}
}

func TestVerifyProxySubjectNameRule(t *testing.T) {
	caCert, _, userCert, userKey := testPKI(t)
	ts := newStore(t, caCert)
	// Hand-craft a proxy whose subject is NOT issuer+CN.
	key, _ := gridcrypto.GenerateKeyPair(gridcrypto.AlgEd25519)
	bad, err := Sign(Template{
		Type:    TypeProxy,
		Subject: MustParseName("/O=Evil/CN=Mallory/CN=proxy"),
		Proxy:   &ProxyInfo{Variant: ProxyImpersonation, PathLenConstraint: -1},
	}, key.Public(), userCert.Subject, userKey)
	if err != nil {
		t.Fatal(err)
	}
	_, err = ts.Verify([]*Certificate{bad, userCert}, VerifyOptions{})
	if err == nil || !strings.Contains(err.Error(), "plus one CN") {
		t.Fatalf("subject-name rule not enforced: %v", err)
	}
}

func TestVerifyProxySignedByCARejected(t *testing.T) {
	caCert, caKey, _, _ := testPKI(t)
	ts := newStore(t, caCert)
	key, _ := gridcrypto.GenerateKeyPair(gridcrypto.AlgEd25519)
	p, err := Sign(Template{
		Type:    TypeProxy,
		Subject: caCert.Subject.WithCN("proxy-1"),
		Proxy:   &ProxyInfo{Variant: ProxyImpersonation, PathLenConstraint: -1},
	}, key.Public(), caCert.Subject, caKey)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ts.Verify([]*Certificate{p, caCert}, VerifyOptions{}); err == nil {
		t.Fatal("proxy signed directly by CA accepted")
	}
}

func TestVerifyEndEntityBelowProxyRejected(t *testing.T) {
	caCert, caKey, userCert, userKey := testPKI(t)
	ts := newStore(t, caCert)
	p1, k1 := issueProxy(t, userCert, userKey, ProxyImpersonation, -1)
	// An end-entity certificate signed by a proxy key must be rejected.
	key, _ := gridcrypto.GenerateKeyPair(gridcrypto.AlgEd25519)
	rogue, err := Sign(Template{
		Type:    TypeEndEntity,
		Subject: MustParseName("/O=Grid/CN=Rogue"),
	}, key.Public(), p1.Subject, k1)
	if err != nil {
		t.Fatal(err)
	}
	_ = caKey
	if _, err := ts.Verify([]*Certificate{rogue, p1, userCert}, VerifyOptions{}); err == nil {
		t.Fatal("end entity below proxy accepted")
	}
}

func TestVerifyPathLenConstraint(t *testing.T) {
	caCert, _, userCert, userKey := testPKI(t)
	ts := newStore(t, caCert)
	// p1 allows at most 1 further proxy.
	p1, k1 := issueProxy(t, userCert, userKey, ProxyImpersonation, 1)
	p2, k2 := issueProxy(t, p1, k1, ProxyImpersonation, -1)
	p3, _ := issueProxy(t, p2, k2, ProxyImpersonation, -1)
	if _, err := ts.Verify([]*Certificate{p2, p1, userCert}, VerifyOptions{}); err != nil {
		t.Fatalf("depth-1 below constraint should pass: %v", err)
	}
	if _, err := ts.Verify([]*Certificate{p3, p2, p1, userCert}, VerifyOptions{}); err == nil {
		t.Fatal("path-length constraint not enforced")
	}
}

func TestVerifyPathLenZero(t *testing.T) {
	caCert, _, userCert, userKey := testPKI(t)
	ts := newStore(t, caCert)
	p1, k1 := issueProxy(t, userCert, userKey, ProxyImpersonation, 0)
	p2, _ := issueProxy(t, p1, k1, ProxyImpersonation, -1)
	if _, err := ts.Verify([]*Certificate{p2, p1, userCert}, VerifyOptions{}); err == nil {
		t.Fatal("pathlen=0 proxy allowed a child proxy")
	}
}

func TestVerifyLimitedProxy(t *testing.T) {
	caCert, _, userCert, userKey := testPKI(t)
	ts := newStore(t, caCert)
	p1, k1 := issueProxy(t, userCert, userKey, ProxyLimited, -1)
	chain := []*Certificate{p1, userCert}
	info, err := ts.Verify(chain, VerifyOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !info.Limited {
		t.Fatal("limited proxy not flagged")
	}
	if _, err := ts.Verify(chain, VerifyOptions{RejectLimited: true}); err == nil {
		t.Fatal("RejectLimited did not reject limited proxy")
	}
	// Limitation is sticky: a full proxy under a limited one still yields
	// a limited chain.
	p2, _ := issueProxy(t, p1, k1, ProxyImpersonation, -1)
	info2, err := ts.Verify([]*Certificate{p2, p1, userCert}, VerifyOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !info2.Limited {
		t.Fatal("limited flag lost below limited proxy")
	}
}

func TestVerifyRestrictedProxyCollectsPolicy(t *testing.T) {
	caCert, _, userCert, userKey := testPKI(t)
	ts := newStore(t, caCert)
	p1, _ := issueProxy(t, userCert, userKey, ProxyRestricted, -1)
	info, err := ts.Verify([]*Certificate{p1, userCert}, VerifyOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(info.Restricted) != 1 || info.Restricted[0].PolicyLanguage != "grid.cas.v1" {
		t.Fatalf("Restricted = %+v", info.Restricted)
	}
}

func TestVerifyMaxProxyDepthOption(t *testing.T) {
	caCert, _, userCert, userKey := testPKI(t)
	ts := newStore(t, caCert)
	p1, k1 := issueProxy(t, userCert, userKey, ProxyImpersonation, -1)
	p2, _ := issueProxy(t, p1, k1, ProxyImpersonation, -1)
	if _, err := ts.Verify([]*Certificate{p2, p1, userCert}, VerifyOptions{MaxProxyDepth: 1}); err == nil {
		t.Fatal("MaxProxyDepth not enforced")
	}
}

func TestVerifyBrokenSignatureInMiddle(t *testing.T) {
	caCert, _, userCert, userKey := testPKI(t)
	ts := newStore(t, caCert)
	p1, k1 := issueProxy(t, userCert, userKey, ProxyImpersonation, -1)
	p2, _ := issueProxy(t, p1, k1, ProxyImpersonation, -1)
	// Corrupt p1's signature.
	p1.Signature = append([]byte(nil), p1.Signature...)
	p1.Signature[0] ^= 1
	if _, err := ts.Verify([]*Certificate{p2, p1, userCert}, VerifyOptions{}); err == nil {
		t.Fatal("broken middle signature accepted")
	}
}

func TestVerifyIntermediateCA(t *testing.T) {
	rootCert, rootKey, err := NewSelfSignedCA(MustParseName("/O=Grid/CN=Root"), 24*time.Hour, gridcrypto.AlgEd25519)
	if err != nil {
		t.Fatal(err)
	}
	interKey, _ := gridcrypto.GenerateKeyPair(gridcrypto.AlgEd25519)
	interCert, err := Sign(Template{
		Type:       TypeCA,
		Subject:    MustParseName("/O=Grid/CN=Intermediate"),
		KeyUsage:   UsageCertSign | UsageCRLSign,
		MaxPathLen: 0,
	}, interKey.Public(), rootCert.Subject, rootKey)
	if err != nil {
		t.Fatal(err)
	}
	userKey, _ := gridcrypto.GenerateKeyPair(gridcrypto.AlgEd25519)
	userCert, err := Sign(Template{
		Type:    TypeEndEntity,
		Subject: MustParseName("/O=Grid/CN=Bob"),
	}, userKey.Public(), interCert.Subject, interKey)
	if err != nil {
		t.Fatal(err)
	}
	ts := newStore(t, rootCert)
	info, err := ts.Verify([]*Certificate{userCert, interCert, rootCert}, VerifyOptions{})
	if err != nil {
		t.Fatalf("intermediate chain: %v", err)
	}
	if !info.Identity.Equal(userCert.Subject) {
		t.Fatalf("Identity = %q", info.Identity)
	}
}

func TestAddRootValidation(t *testing.T) {
	caCert, _, userCert, _ := testPKI(t)
	ts := NewTrustStore()
	if err := ts.AddRoot(userCert); err == nil {
		t.Fatal("AddRoot accepted non-CA")
	}
	interKey, _ := gridcrypto.GenerateKeyPair(gridcrypto.AlgEd25519)
	_, caKey2, _ := NewSelfSignedCA(MustParseName("/CN=Other"), time.Hour, gridcrypto.AlgEd25519)
	inter, err := Sign(Template{
		Type: TypeCA, Subject: MustParseName("/CN=NotSelfSigned"),
		KeyUsage: UsageCertSign,
	}, interKey.Public(), MustParseName("/CN=Other"), caKey2)
	if err != nil {
		t.Fatal(err)
	}
	if err := ts.AddRoot(inter); err == nil {
		t.Fatal("AddRoot accepted non-self-signed cert")
	}
	if err := ts.AddRoot(caCert); err != nil {
		t.Fatal(err)
	}
	if ts.Len() != 1 {
		t.Fatalf("Len = %d", ts.Len())
	}
	ts.RemoveRoot(caCert.Subject)
	if ts.Len() != 0 {
		t.Fatal("RemoveRoot did not remove")
	}
}

func TestCRLRevocation(t *testing.T) {
	caCert, caKey, userCert, _ := testPKI(t)
	ts := newStore(t, caCert)
	if _, err := ts.Verify([]*Certificate{userCert}, VerifyOptions{}); err != nil {
		t.Fatalf("pre-revocation verify: %v", err)
	}
	crl, err := NewCRL(caCert.Subject, 1, []uint64{userCert.SerialNumber}, caKey)
	if err != nil {
		t.Fatal(err)
	}
	if err := ts.AddCRL(crl); err != nil {
		t.Fatal(err)
	}
	if _, err := ts.Verify([]*Certificate{userCert}, VerifyOptions{}); err == nil {
		t.Fatal("revoked certificate accepted")
	}
}

func TestCRLEncodeDecodeAndMonotonicity(t *testing.T) {
	caCert, caKey, _, _ := testPKI(t)
	ts := newStore(t, caCert)
	crl2, _ := NewCRL(caCert.Subject, 2, []uint64{5, 3, 9}, caKey)
	enc := crl2.Encode()
	dec, err := DecodeCRL(enc)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Number != 2 || len(dec.Serials) != 3 {
		t.Fatalf("decoded CRL: %+v", dec)
	}
	// Serials must be sorted for Contains to work.
	if !dec.Contains(3) || !dec.Contains(5) || !dec.Contains(9) || dec.Contains(4) {
		t.Fatal("Contains broken after round trip")
	}
	if err := ts.AddCRL(dec); err != nil {
		t.Fatal(err)
	}
	older, _ := NewCRL(caCert.Subject, 1, nil, caKey)
	if err := ts.AddCRL(older); err == nil {
		t.Fatal("older CRL replaced newer one")
	}
}

func TestCRLWrongSigner(t *testing.T) {
	caCert, _, _, userKey := testPKI(t)
	ts := newStore(t, caCert)
	forged, err := NewCRL(caCert.Subject, 3, []uint64{1}, userKey)
	if err != nil {
		t.Fatal(err)
	}
	if err := ts.AddCRL(forged); err == nil {
		t.Fatal("CRL signed by non-CA key accepted")
	}
}

func TestVerifyEmptyAndOversizedChain(t *testing.T) {
	caCert, _, userCert, _ := testPKI(t)
	ts := newStore(t, caCert)
	if _, err := ts.Verify(nil, VerifyOptions{}); err == nil {
		t.Fatal("empty chain accepted")
	}
	big := make([]*Certificate, maxChainLen+1)
	for i := range big {
		big[i] = userCert
	}
	if _, err := ts.Verify(big, VerifyOptions{}); err == nil {
		t.Fatal("oversized chain accepted")
	}
}

func BenchmarkVerifyProxyChainDepth4(b *testing.B) {
	caCert, _, userCert, userKey := testPKI(b)
	ts := newStore(b, caCert)
	chain := []*Certificate{userCert}
	cert, key := userCert, userKey
	for i := 0; i < 4; i++ {
		cert, key = issueProxy(b, cert, key, ProxyImpersonation, -1)
		chain = append([]*Certificate{cert}, chain...)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ts.Verify(chain, VerifyOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}
