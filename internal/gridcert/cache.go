package gridcert

import (
	"crypto/sha256"
	"sync"
	"time"
)

// VerifyCache memoizes successful chain validations so repeated peers
// skip full path validation (signature checks, proxy-profile walk, CRL
// lookups). An entry is reused only while three conditions hold:
//
//   - the trust store is at the same generation the entry was computed
//     under (any root or CRL change invalidates every entry);
//   - the validation time falls inside the chain's joint validity
//     window, so expiry is still enforced exactly;
//   - the verify options (RejectLimited, MaxProxyDepth) match, because
//     they are part of the key.
//
// Only successful validations are cached: failures are cheap to
// recompute and caching them would risk pinning transient state.
// VerifyCache is safe for concurrent use.
type VerifyCache struct {
	mu      sync.Mutex
	max     int
	entries map[verifyCacheKey]*verifyCacheEntry
	hits    uint64
	misses  uint64
}

type verifyCacheKey [sha256.Size]byte

type verifyCacheEntry struct {
	info      *ChainInfo
	gen       uint64
	notBefore time.Time // latest NotBefore over chain + root
	notAfter  time.Time // earliest NotAfter over chain + root
}

// DefaultVerifyCacheSize bounds an Environment's verified-chain cache.
const DefaultVerifyCacheSize = 256

// NewVerifyCache creates a cache holding at most max entries (max <= 0
// selects DefaultVerifyCacheSize).
func NewVerifyCache(max int) *VerifyCache {
	if max <= 0 {
		max = DefaultVerifyCacheSize
	}
	return &VerifyCache{max: max, entries: make(map[verifyCacheKey]*verifyCacheEntry)}
}

// VerifyCacheStats reports cache effectiveness.
type VerifyCacheStats struct {
	Hits   uint64
	Misses uint64
	Len    int
}

// Stats returns a snapshot of the cache counters.
func (vc *VerifyCache) Stats() VerifyCacheStats {
	vc.mu.Lock()
	defer vc.mu.Unlock()
	return VerifyCacheStats{Hits: vc.hits, Misses: vc.misses, Len: len(vc.entries)}
}

func cacheKeyOf(encoded []byte, opts VerifyOptions) verifyCacheKey {
	h := sha256.New()
	h.Write(encoded)
	var optBits [10]byte
	if opts.RejectLimited {
		optBits[0] = 1
	}
	depth := opts.MaxProxyDepth
	for i := 0; i < 8; i++ {
		optBits[1+i] = byte(depth >> (8 * i))
	}
	h.Write(optBits[:])
	var key verifyCacheKey
	h.Sum(key[:0])
	return key
}

func (vc *VerifyCache) lookup(key verifyCacheKey, gen uint64, now time.Time) (*ChainInfo, bool) {
	vc.mu.Lock()
	defer vc.mu.Unlock()
	e, ok := vc.entries[key]
	if !ok {
		vc.misses++
		return nil, false
	}
	if e.gen != gen || now.Before(e.notBefore) || now.After(e.notAfter) {
		delete(vc.entries, key)
		vc.misses++
		return nil, false
	}
	vc.hits++
	return e.info, true
}

func (vc *VerifyCache) store(key verifyCacheKey, gen uint64, info *ChainInfo, notBefore, notAfter time.Time) {
	vc.mu.Lock()
	defer vc.mu.Unlock()
	if len(vc.entries) >= vc.max {
		// Evict an arbitrary entry; the cache is a performance aid, not a
		// registry, so any victim is acceptable.
		for k := range vc.entries {
			delete(vc.entries, k)
			break
		}
	}
	vc.entries[key] = &verifyCacheEntry{info: info, gen: gen, notBefore: notBefore, notAfter: notAfter}
}

// chainWindow computes the joint validity window of a chain plus its
// trust anchor: the interval in which every certificate is valid.
func chainWindow(chain []*Certificate, root *Certificate) (notBefore, notAfter time.Time) {
	certs := chain
	if root != nil {
		certs = append(append([]*Certificate{}, chain...), root)
	}
	for i, c := range certs {
		if i == 0 || c.NotBefore.After(notBefore) {
			notBefore = c.NotBefore
		}
		if i == 0 || c.NotAfter.Before(notAfter) {
			notAfter = c.NotAfter
		}
	}
	return notBefore, notAfter
}

// VerifyCached is Verify through a verified-chain cache: encoded is the
// wire encoding of chain (the bytes a handshake already has at hand),
// which keys the cache together with the option set. A nil cache
// degrades to plain Verify. On a hit the full path validation —
// signature checks included — is skipped; soundness rests on the key
// covering the exact chain bytes, the trust-store generation, and the
// validation instant falling inside the chain's joint validity window.
func (ts *TrustStore) VerifyCached(cache *VerifyCache, encoded []byte, chain []*Certificate, opts VerifyOptions) (*ChainInfo, error) {
	if cache == nil || len(encoded) == 0 {
		return ts.Verify(chain, opts)
	}
	now := opts.Now
	if now.IsZero() {
		now = time.Now()
	}
	gen := ts.Generation()
	key := cacheKeyOf(encoded, opts)
	if info, ok := cache.lookup(key, gen, now); ok {
		return info, nil
	}
	info, err := ts.Verify(chain, opts)
	if err != nil {
		return nil, err
	}
	notBefore, notAfter := chainWindow(chain, info.Root)
	cache.store(key, gen, info, notBefore, notAfter)
	return info, nil
}
