package gridcert

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// Sentinel errors exposed so relying parties can branch on the class of
// validation failure with errors.Is. Verify wraps them with chain-specific
// detail.
var (
	// ErrUntrustedIssuer marks chains that do not terminate at a trusted
	// root.
	ErrUntrustedIssuer = errors.New("gridcert: untrusted issuer")
	// ErrExpired marks certificates (or roots) outside their validity
	// window.
	ErrExpired = errors.New("gridcert: certificate expired or not yet valid")
	// ErrRevoked marks certificates listed on an installed CRL.
	ErrRevoked = errors.New("gridcert: certificate revoked")
	// ErrLimitedProxy marks limited-proxy chains rejected by
	// VerifyOptions.RejectLimited.
	ErrLimitedProxy = errors.New("gridcert: limited proxy not acceptable for this operation")
)

// TrustStore is the set of trusted CA root certificates. Trust in a CA is
// established unilaterally — any entity can add a root without involving
// its organization — which is the property the paper identifies as key to
// lightweight VO formation (§3).
type TrustStore struct {
	mu    sync.RWMutex
	roots map[string]*Certificate // keyed by subject string
	crls  map[string]*CRL         // latest CRL per CA subject

	// gen counts trust-state mutations (root or CRL changes). Verified-
	// chain caches record the generation a result was computed under and
	// discard it when the store has moved on, so withdrawing a root or
	// installing a CRL invalidates every cached validation at once.
	gen uint64
}

// NewTrustStore creates an empty trust store.
func NewTrustStore() *TrustStore {
	return &TrustStore{
		roots: make(map[string]*Certificate),
		crls:  make(map[string]*CRL),
	}
}

// AddRoot registers a trusted root CA certificate. The certificate must be
// a self-signed CA with a valid self-signature.
func (ts *TrustStore) AddRoot(root *Certificate) error {
	if root.Type != TypeCA {
		return fmt.Errorf("gridcert: trust root %q is not a CA certificate", root.Subject)
	}
	if !root.SelfSigned() {
		return fmt.Errorf("gridcert: trust root %q is not self-signed", root.Subject)
	}
	if err := root.CheckSignatureFrom(root); err != nil {
		return fmt.Errorf("gridcert: trust root self-signature invalid: %w", err)
	}
	ts.mu.Lock()
	defer ts.mu.Unlock()
	ts.roots[root.Subject.String()] = root
	ts.gen++
	return nil
}

// RemoveRoot withdraws trust from a root by subject name.
func (ts *TrustStore) RemoveRoot(subject Name) {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	delete(ts.roots, subject.String())
	ts.gen++
}

// Root returns the trusted root with the given subject, if present.
func (ts *TrustStore) Root(subject Name) (*Certificate, bool) {
	ts.mu.RLock()
	defer ts.mu.RUnlock()
	r, ok := ts.roots[subject.String()]
	return r, ok
}

// Roots returns all trusted roots.
func (ts *TrustStore) Roots() []*Certificate {
	ts.mu.RLock()
	defer ts.mu.RUnlock()
	out := make([]*Certificate, 0, len(ts.roots))
	for _, r := range ts.roots {
		out = append(out, r)
	}
	return out
}

// Len reports the number of trusted roots.
func (ts *TrustStore) Len() int {
	ts.mu.RLock()
	defer ts.mu.RUnlock()
	return len(ts.roots)
}

// ReplaceRoots swaps the entire trusted-root set in one transaction:
// every candidate is validated first (same rules as AddRoot), and only
// if all pass is the set swapped and the generation bumped — once, so
// chain caches invalidate a single time per reload rather than per
// root. An empty roots slice is rejected: a reload must never drop a
// live store to "trust nobody", which would fail every verification
// and is indistinguishable from a truncated trust file. CRLs whose
// issuer vanished from the new set are pruned (their anchor is gone;
// keeping them would resurrect stale revocations if the root returns
// with a new key).
func (ts *TrustStore) ReplaceRoots(roots []*Certificate) error {
	if len(roots) == 0 {
		return errors.New("gridcert: refusing to replace trust roots with an empty set")
	}
	next := make(map[string]*Certificate, len(roots))
	for _, root := range roots {
		if root.Type != TypeCA {
			return fmt.Errorf("gridcert: trust root %q is not a CA certificate", root.Subject)
		}
		if !root.SelfSigned() {
			return fmt.Errorf("gridcert: trust root %q is not self-signed", root.Subject)
		}
		if err := root.CheckSignatureFrom(root); err != nil {
			return fmt.Errorf("gridcert: trust root self-signature invalid: %w", err)
		}
		next[root.Subject.String()] = root
	}
	ts.mu.Lock()
	defer ts.mu.Unlock()
	ts.roots = next
	for issuer := range ts.crls {
		if _, ok := next[issuer]; !ok {
			delete(ts.crls, issuer)
		}
	}
	ts.gen++
	return nil
}

// ErrCRLStale marks an AddCRL whose candidate is not newer than the
// installed list. Reload paths treat it as "already current" rather
// than a failure: re-reading an unchanged CRL file is routine.
var ErrCRLStale = errors.New("gridcert: CRL not newer than installed")

// AddCRL installs a certificate revocation list after verifying its
// signature against the trusted root for its issuer.
func (ts *TrustStore) AddCRL(crl *CRL) error {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	root, ok := ts.roots[crl.Issuer.String()]
	if !ok {
		return fmt.Errorf("gridcert: CRL issuer %q is not a trusted root", crl.Issuer)
	}
	if err := crl.CheckSignatureFrom(root); err != nil {
		return err
	}
	prev, ok := ts.crls[crl.Issuer.String()]
	if ok && prev.Number >= crl.Number {
		return fmt.Errorf("%w: number %d, installed %d", ErrCRLStale, crl.Number, prev.Number)
	}
	ts.crls[crl.Issuer.String()] = crl
	ts.gen++
	return nil
}

// CheckCRL validates a CRL against the installed trust state without
// applying it: the issuer must be a trusted root and the signature must
// verify; a candidate not newer than the installed list returns
// ErrCRLStale. Reload paths vet a whole CRL set with this before
// installing any of it, so one bad CRL rejects the file outright
// instead of half-applying.
func (ts *TrustStore) CheckCRL(crl *CRL) error {
	ts.mu.RLock()
	defer ts.mu.RUnlock()
	root, ok := ts.roots[crl.Issuer.String()]
	if !ok {
		return fmt.Errorf("gridcert: CRL issuer %q is not a trusted root", crl.Issuer)
	}
	if err := crl.CheckSignatureFrom(root); err != nil {
		return err
	}
	if prev, ok := ts.crls[crl.Issuer.String()]; ok && prev.Number >= crl.Number {
		return fmt.Errorf("%w: number %d, installed %d", ErrCRLStale, crl.Number, prev.Number)
	}
	return nil
}

// Generation reports the trust-state revision: it increments whenever a
// root or CRL is added or removed. Cached validation results are only
// valid for the generation they were computed under.
func (ts *TrustStore) Generation() uint64 {
	ts.mu.RLock()
	defer ts.mu.RUnlock()
	return ts.gen
}

// revoked reports whether serial was revoked by the CA with the given name.
func (ts *TrustStore) revoked(issuer Name, serial uint64) bool {
	ts.mu.RLock()
	defer ts.mu.RUnlock()
	crl, ok := ts.crls[issuer.String()]
	return ok && crl.Contains(serial)
}

// VerifyOptions tunes chain validation.
type VerifyOptions struct {
	// Now is the validation time; zero means time.Now().
	Now time.Time
	// RejectLimited fails validation if any proxy in the chain is limited.
	// GRAM job initiation sets this, per the GSI limited-proxy rule.
	RejectLimited bool
	// MaxProxyDepth caps the number of proxy certificates; 0 means no cap
	// beyond embedded path-length constraints.
	MaxProxyDepth int
}

// ChainInfo is the result of a successful validation.
type ChainInfo struct {
	// Identity is the end-entity subject: the grid identity every proxy in
	// the chain acts for.
	Identity Name
	// Subject is the leaf subject (the proxy's own unique identity).
	Subject Name
	// EndEntity is the end-entity certificate.
	EndEntity *Certificate
	// Leaf is the first chain certificate (the proxy actually presented,
	// or the end entity itself when no proxy is in play). Its fingerprint
	// keys per-credential caches: it covers the public key, the validity
	// window, and any embedded restricted-proxy policy.
	Leaf *Certificate
	// Root is the trust anchor that validated the chain.
	Root *Certificate
	// ProxyDepth counts proxy certificates in the chain.
	ProxyDepth int
	// Limited reports whether any proxy was a limited proxy.
	Limited bool
	// Restricted collects the policy documents of restricted proxies,
	// outermost first; effective rights are the intersection.
	Restricted []ProxyInfo
}

// Verify validates a certificate chain (leaf first, root optional at the
// end) against the trust store, applying the proxy-certificate profile:
//
//   - signatures chain correctly from a trusted, unrevoked root;
//   - every certificate is within its validity window;
//   - CA certificates appear only above the end entity and honour
//     MaxPathLen;
//   - below the end entity only proxies appear, each subject being its
//     issuer's subject plus one CN component, each signed by the
//     certificate above, honouring proxy path-length constraints;
//   - proxy certificates never sign CAs or end entities.
func (ts *TrustStore) Verify(chain []*Certificate, opts VerifyOptions) (*ChainInfo, error) {
	if len(chain) == 0 {
		return nil, errors.New("gridcert: empty chain")
	}
	if len(chain) > maxChainLen {
		return nil, fmt.Errorf("gridcert: chain length %d exceeds cap %d", len(chain), maxChainLen)
	}
	now := opts.Now
	if now.IsZero() {
		now = time.Now()
	}

	// Locate the trust anchor: the issuer of the last chain certificate,
	// or the last certificate itself if it is a trusted root.
	top := chain[len(chain)-1]
	var root *Certificate
	if r, ok := ts.Root(top.Subject); ok && r.PublicKey.Equal(top.PublicKey) {
		root = r
	} else if r, ok := ts.Root(top.Issuer); ok {
		root = r
		if err := top.CheckSignatureFrom(root); err != nil {
			return nil, err
		}
	} else {
		return nil, fmt.Errorf("%w: no trusted root for chain ending at %q (issuer %q)", ErrUntrustedIssuer, top.Subject, top.Issuer)
	}
	if !root.ValidAt(now) {
		return nil, fmt.Errorf("%w: trust root %q", ErrExpired, root.Subject)
	}

	info := &ChainInfo{Root: root}

	// Walk from the top of the chain down to the leaf.
	// Phase 1: CA certificates (possibly none, if chain starts below root).
	// Phase 2: exactly one end entity.
	// Phase 3: zero or more proxies.
	const (
		phaseCA = iota
		phaseProxy
	)
	phase := phaseCA
	caDepth := 0
	proxyBudget := -1 // remaining proxies allowed; -1 = unlimited

	for i := len(chain) - 1; i >= 0; i-- {
		cert := chain[i]
		parent := root
		if i < len(chain)-1 {
			parent = chain[i+1]
		}
		if !cert.ValidAt(now) {
			return nil, fmt.Errorf("%w: certificate %q outside validity window at %s", ErrExpired, cert.Subject, now.UTC().Format(time.RFC3339))
		}
		// Signature check. The top cert may BE the root (already trusted).
		if !(i == len(chain)-1 && cert == root) {
			if err := cert.CheckSignatureFrom(parent); err != nil {
				return nil, err
			}
		}
		// Revocation applies to CA-issued certificates.
		if parent.Type == TypeCA && ts.revoked(parent.Subject, cert.SerialNumber) {
			return nil, fmt.Errorf("%w: certificate %q (serial %d)", ErrRevoked, cert.Subject, cert.SerialNumber)
		}
		// Issuer name must match parent subject.
		if !cert.Issuer.Equal(parent.Subject) {
			return nil, fmt.Errorf("gridcert: certificate %q issuer %q does not match signer subject %q",
				cert.Subject, cert.Issuer, parent.Subject)
		}

		switch cert.Type {
		case TypeCA:
			if phase != phaseCA {
				return nil, fmt.Errorf("gridcert: CA certificate %q below end entity", cert.Subject)
			}
			if parent.Type != TypeCA {
				return nil, fmt.Errorf("gridcert: CA %q signed by non-CA %q", cert.Subject, parent.Subject)
			}
			if parent != cert { // not the self-signed root itself
				if parent.MaxPathLen >= 0 && caDepth > parent.MaxPathLen {
					return nil, fmt.Errorf("gridcert: CA path length exceeded at %q", cert.Subject)
				}
				caDepth++
			}
			if cert.KeyUsage&UsageCertSign == 0 {
				return nil, fmt.Errorf("gridcert: CA %q lacks cert-sign usage", cert.Subject)
			}
		case TypeEndEntity:
			if phase != phaseCA {
				return nil, fmt.Errorf("gridcert: second end entity %q in chain", cert.Subject)
			}
			if parent.Type != TypeCA {
				return nil, fmt.Errorf("gridcert: end entity %q signed by non-CA %q", cert.Subject, parent.Subject)
			}
			phase = phaseProxy
			info.EndEntity = cert
			info.Identity = cert.Subject
		case TypeProxy:
			if phase != phaseProxy {
				return nil, fmt.Errorf("gridcert: proxy %q not below an end entity", cert.Subject)
			}
			if parent.Type == TypeCA {
				return nil, fmt.Errorf("gridcert: proxy %q signed directly by CA", cert.Subject)
			}
			// RFC 3820 subject-name rule.
			if !cert.Subject.IsImmediateChildOf(parent.Subject) {
				return nil, fmt.Errorf("gridcert: proxy subject %q is not issuer %q plus one CN",
					cert.Subject, parent.Subject)
			}
			// Path-length budget from certificates above.
			if proxyBudget == 0 {
				return nil, fmt.Errorf("gridcert: proxy path-length constraint violated at %q", cert.Subject)
			}
			if proxyBudget > 0 {
				proxyBudget--
			}
			// This proxy's own constraint tightens the budget for those below.
			if cert.Proxy.PathLenConstraint >= 0 {
				if proxyBudget < 0 || cert.Proxy.PathLenConstraint < proxyBudget {
					proxyBudget = cert.Proxy.PathLenConstraint
				}
			}
			info.ProxyDepth++
			if cert.Proxy.Variant == ProxyLimited {
				info.Limited = true
			}
			if cert.Proxy.Variant == ProxyRestricted {
				info.Restricted = append(info.Restricted, *cert.Proxy)
			}
		default:
			return nil, fmt.Errorf("gridcert: unknown certificate type %d", cert.Type)
		}
	}

	if info.EndEntity == nil {
		return nil, errors.New("gridcert: chain contains no end-entity certificate")
	}
	if opts.MaxProxyDepth > 0 && info.ProxyDepth > opts.MaxProxyDepth {
		return nil, fmt.Errorf("gridcert: proxy depth %d exceeds limit %d", info.ProxyDepth, opts.MaxProxyDepth)
	}
	if opts.RejectLimited && info.Limited {
		return nil, ErrLimitedProxy
	}
	info.Subject = chain[0].Subject
	info.Leaf = chain[0]
	return info, nil
}
