package gridcert

import (
	"errors"
	"testing"
	"time"
)

func TestVerifyCachedHitsOnRepeatedChain(t *testing.T) {
	caCert, _, userCert, _ := testPKI(t)
	ts := newStore(t, caCert)
	cache := NewVerifyCache(0)
	chain := []*Certificate{userCert}
	encoded := EncodeChain(chain)

	for i := 0; i < 5; i++ {
		info, err := ts.VerifyCached(cache, encoded, chain, VerifyOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if !info.Identity.Equal(userCert.Subject) {
			t.Fatalf("identity = %q", info.Identity)
		}
	}
	st := cache.Stats()
	if st.Misses != 1 || st.Hits != 4 {
		t.Fatalf("stats = %+v, want 1 miss / 4 hits", st)
	}
}

func TestVerifyCachedKeyedByOptions(t *testing.T) {
	caCert, _, userCert, userKey := testPKI(t)
	ts := newStore(t, caCert)
	cache := NewVerifyCache(0)
	p, _ := issueProxy(t, userCert, userKey, ProxyLimited, -1)
	chain := []*Certificate{p, userCert}
	encoded := EncodeChain(chain)

	if _, err := ts.VerifyCached(cache, encoded, chain, VerifyOptions{}); err != nil {
		t.Fatal(err)
	}
	// The same bytes with RejectLimited must NOT reuse the permissive
	// result: options are part of the key.
	if _, err := ts.VerifyCached(cache, encoded, chain, VerifyOptions{RejectLimited: true}); !errors.Is(err, ErrLimitedProxy) {
		t.Fatalf("RejectLimited through cache: %v", err)
	}
}

func TestVerifyCachedInvalidatedByTrustChange(t *testing.T) {
	caCert, caKey, userCert, _ := testPKI(t)
	ts := newStore(t, caCert)
	cache := NewVerifyCache(0)
	chain := []*Certificate{userCert}
	encoded := EncodeChain(chain)

	if _, err := ts.VerifyCached(cache, encoded, chain, VerifyOptions{}); err != nil {
		t.Fatal(err)
	}
	// Revoking the user via a CRL bumps the generation: the cached
	// result may not outlive the trust change.
	crl, err := NewCRL(caCert.Subject, 1, []uint64{userCert.SerialNumber}, caKey)
	if err != nil {
		t.Fatal(err)
	}
	if err := ts.AddCRL(crl); err != nil {
		t.Fatal(err)
	}
	if _, err := ts.VerifyCached(cache, encoded, chain, VerifyOptions{}); !errors.Is(err, ErrRevoked) {
		t.Fatalf("revoked cert through cache: %v", err)
	}
}

func TestVerifyCachedHonorsValidityWindow(t *testing.T) {
	caCert, _, userCert, _ := testPKI(t)
	ts := newStore(t, caCert)
	cache := NewVerifyCache(0)
	chain := []*Certificate{userCert}
	encoded := EncodeChain(chain)

	now := time.Now()
	if _, err := ts.VerifyCached(cache, encoded, chain, VerifyOptions{Now: now}); err != nil {
		t.Fatal(err)
	}
	// A validation instant past the chain's expiry must not be served
	// from cache.
	late := now.Add(48 * time.Hour)
	if _, err := ts.VerifyCached(cache, encoded, chain, VerifyOptions{Now: late}); !errors.Is(err, ErrExpired) {
		t.Fatalf("expired instant through cache: %v", err)
	}
}
