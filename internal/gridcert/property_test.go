package gridcert

import (
	"testing"
	"testing/quick"
	"time"

	"repro/internal/gridcrypto"
)

// TestPropertyMutatedChainNeverChangesIdentity: flipping any byte of an
// encoded chain either fails to decode, fails to verify, or (if the flip
// is redundant) verifies to the SAME identity. A mutation must never
// verify as a different identity.
func TestPropertyMutatedChainNeverChangesIdentity(t *testing.T) {
	caCert, _, userCert, userKey := testPKI(t)
	ts := newStore(t, caCert)
	p1, _ := issueProxy(t, userCert, userKey, ProxyImpersonation, -1)
	chain := []*Certificate{p1, userCert}
	enc := EncodeChain(chain)
	want := userCert.Subject

	f := func(pos uint16, mask byte) bool {
		if mask == 0 {
			return true
		}
		mut := append([]byte(nil), enc...)
		mut[int(pos)%len(mut)] ^= mask
		decoded, err := DecodeChain(mut)
		if err != nil {
			return true
		}
		info, err := ts.Verify(decoded, VerifyOptions{})
		if err != nil {
			return true
		}
		return info.Identity.Equal(want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyEncodeDecodeIdentity: certificates survive arbitrary
// extension payloads.
func TestPropertyEncodeDecodeWithExtensions(t *testing.T) {
	caCert, caKey, _, _ := testPKI(t)
	f := func(payload []byte, critical bool) bool {
		key, err := gridcrypto.GenerateKeyPair(gridcrypto.AlgEd25519)
		if err != nil {
			return false
		}
		c, err := Sign(Template{
			Type:    TypeEndEntity,
			Subject: MustParseName("/O=Grid/CN=prop"),
			Extensions: []Extension{
				{ID: "test.ext", Critical: critical, Value: payload},
			},
		}, key.Public(), caCert.Subject, caKey)
		if err != nil {
			return false
		}
		dec, err := Decode(c.Encode())
		if err != nil {
			return false
		}
		ext, ok := dec.FindExtension("test.ext")
		if !ok || ext.Critical != critical || len(ext.Value) != len(payload) {
			return false
		}
		for i := range payload {
			if ext.Value[i] != payload[i] {
				return false
			}
		}
		return dec.CheckSignatureFrom(caCert) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyProxyLifetimeNeverExceedsSigner: for arbitrary requested
// durations, an issued proxy's NotAfter never exceeds its signer's.
func TestPropertyProxyLifetimeClipped(t *testing.T) {
	_, _, userCert, userKey := testPKI(t)
	f := func(hours uint16) bool {
		key, err := gridcrypto.GenerateKeyPair(gridcrypto.AlgEd25519)
		if err != nil {
			return false
		}
		na := time.Now().Add(time.Duration(hours%2000) * time.Hour)
		if !na.After(time.Now()) {
			na = time.Now().Add(time.Hour)
		}
		serial, _ := gridcrypto.RandomSerial()
		c, err := Sign(Template{
			SerialNumber: serial,
			Type:         TypeProxy,
			Subject:      userCert.Subject.WithCN("proxy-x"),
			NotAfter:     na,
			Proxy:        &ProxyInfo{Variant: ProxyImpersonation, PathLenConstraint: -1},
		}, key.Public(), userCert.Subject, userKey)
		if err != nil {
			return true // rejected is fine
		}
		// gridcert.Sign does not clip (that is proxy.Issue's job), but the
		// encoding round trip must preserve whatever was signed.
		dec, err := Decode(c.Encode())
		return err == nil && dec.NotAfter.Equal(c.NotAfter)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
