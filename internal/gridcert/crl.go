package gridcert

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/gridcrypto"
)

// CRL is a certificate revocation list: the serial numbers a CA has
// withdrawn, signed by that CA. Relying parties install CRLs into their
// TrustStore; validation then refuses revoked certificates.
type CRL struct {
	Issuer     Name
	Number     uint64 // monotonically increasing per issuer
	ThisUpdate time.Time
	Serials    []uint64 // sorted ascending

	SignatureAlg gridcrypto.Algorithm
	Signature    []byte
}

const maxCRLSerials = 1 << 20

// NewCRL builds and signs a revocation list.
func NewCRL(issuer Name, number uint64, serials []uint64, key *gridcrypto.KeyPair) (*CRL, error) {
	sorted := append([]uint64(nil), serials...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	crl := &CRL{
		Issuer:     issuer,
		Number:     number,
		ThisUpdate: time.Now().Truncate(time.Second).UTC(),
		Serials:    sorted,
	}
	sig, err := key.Sign(crl.encodeTBS())
	if err != nil {
		return nil, fmt.Errorf("gridcert: signing CRL: %w", err)
	}
	crl.SignatureAlg = key.Algorithm()
	crl.Signature = sig
	return crl, nil
}

func (crl *CRL) encodeTBS() []byte {
	e := &encoder{}
	e.str("crl-v1")
	crl.Issuer.encodeTo(e)
	e.u64(crl.Number)
	e.i64(crl.ThisUpdate.Unix())
	e.u32(uint32(len(crl.Serials)))
	for _, s := range crl.Serials {
		e.u64(s)
	}
	return e.buf
}

// Encode serialises the CRL with its signature.
func (crl *CRL) Encode() []byte {
	e := &encoder{}
	e.bytes(crl.encodeTBS())
	e.u8(uint8(crl.SignatureAlg))
	e.bytes(crl.Signature)
	return e.buf
}

// DecodeCRL parses an encoded CRL (signature not yet verified).
func DecodeCRL(b []byte) (*CRL, error) {
	d := &decoder{b: b}
	tbs := d.bytes()
	alg := gridcrypto.Algorithm(d.u8())
	sig := d.bytes()
	if err := d.done(); err != nil {
		return nil, err
	}
	td := &decoder{b: tbs}
	if magic := td.str(); td.err == nil && magic != "crl-v1" {
		return nil, fmt.Errorf("gridcert: bad CRL magic %q", magic)
	}
	crl := &CRL{}
	crl.Issuer = decodeName(td)
	crl.Number = td.u64()
	crl.ThisUpdate = time.Unix(td.i64(), 0).UTC()
	cnt := td.count("CRL serial", td.u32(), maxCRLSerials)
	for i := 0; i < cnt && td.err == nil; i++ {
		crl.Serials = append(crl.Serials, td.u64())
	}
	if err := td.done(); err != nil {
		return nil, err
	}
	if !alg.Valid() {
		return nil, gridcrypto.ErrUnknownAlgorithm
	}
	crl.SignatureAlg = alg
	crl.Signature = sig
	return crl, nil
}

// CheckSignatureFrom verifies the CRL signature against the issuing CA.
func (crl *CRL) CheckSignatureFrom(ca *Certificate) error {
	if ca.KeyUsage&UsageCRLSign == 0 {
		return fmt.Errorf("gridcert: CA %q lacks CRL-sign usage", ca.Subject)
	}
	if err := ca.PublicKey.Verify(crl.encodeTBS(), crl.Signature); err != nil {
		return fmt.Errorf("gridcert: CRL signature from %q invalid: %w", crl.Issuer, err)
	}
	return nil
}

// Contains reports whether serial is revoked (binary search).
func (crl *CRL) Contains(serial uint64) bool {
	i := sort.Search(len(crl.Serials), func(i int) bool { return crl.Serials[i] >= serial })
	return i < len(crl.Serials) && crl.Serials[i] == serial
}

// maxCRLSet bounds how many CRLs one set file may carry.
const maxCRLSet = 1 << 12

// EncodeCRLSet serialises a list of CRLs into one blob — the on-disk
// form of a watched CRL file (one entry per issuing CA).
func EncodeCRLSet(crls []*CRL) []byte {
	e := &encoder{}
	e.u32(uint32(len(crls)))
	for _, crl := range crls {
		e.bytes(crl.Encode())
	}
	return e.buf
}

// DecodeCRLSet reverses EncodeCRLSet. Signatures are not yet verified;
// installation through TrustStore.AddCRL does that. An empty set is
// legal — "no revocations" is a meaningful state for a CRL file.
func DecodeCRLSet(b []byte) ([]*CRL, error) {
	d := &decoder{b: b}
	cnt := d.count("CRL set", d.u32(), maxCRLSet)
	crls := make([]*CRL, 0, cnt)
	for i := 0; i < cnt; i++ {
		raw := d.bytes()
		if d.err != nil {
			return nil, d.err
		}
		crl, err := DecodeCRL(raw)
		if err != nil {
			return nil, fmt.Errorf("gridcert: CRL set entry %d: %w", i, err)
		}
		crls = append(crls, crl)
	}
	if err := d.done(); err != nil {
		return nil, err
	}
	return crls, nil
}
