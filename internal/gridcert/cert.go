// Package gridcert implements the certificate format of the Grid Security
// Infrastructure reproduction: identity certificates, certificate-authority
// certificates, and X.509-proxy-certificate-profile (RFC 3820 style) proxy
// certificates, together with chain building and validation.
//
// Go's crypto/x509 cannot issue or validate proxy-certificate chains, so
// this package re-implements the certificate layer from scratch on a
// deterministic binary encoding (see wire.go) and the signature primitives
// of internal/gridcrypto.
package gridcert

import (
	"crypto/sha256"
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/gridcrypto"
)

// CertType classifies a certificate.
type CertType uint8

const (
	// TypeCA marks a certificate-authority certificate (self-signed root
	// or intermediate).
	TypeCA CertType = 1
	// TypeEndEntity marks a user or host identity certificate issued by a CA.
	TypeEndEntity CertType = 2
	// TypeProxy marks a proxy certificate issued by an end entity or by
	// another proxy.
	TypeProxy CertType = 3
)

// String returns the certificate type name.
func (t CertType) String() string {
	switch t {
	case TypeCA:
		return "ca"
	case TypeEndEntity:
		return "end-entity"
	case TypeProxy:
		return "proxy"
	default:
		return fmt.Sprintf("unknown(%d)", uint8(t))
	}
}

// KeyUsage is a bitmask of permitted key operations.
type KeyUsage uint16

const (
	UsageCertSign KeyUsage = 1 << iota
	UsageCRLSign
	UsageDigitalSignature
	UsageKeyAgreement
	UsageDelegation // may sign proxy certificates
)

// ProxyVariant distinguishes the delegation semantics of a proxy
// certificate, mirroring the RFC 3820 policy languages used by GSI.
type ProxyVariant uint8

const (
	// ProxyImpersonation delegates all rights of the issuer ("full proxy").
	ProxyImpersonation ProxyVariant = 1
	// ProxyLimited delegates all rights except starting new jobs; GRAM
	// rejects job requests authenticated with a limited proxy.
	ProxyLimited ProxyVariant = 2
	// ProxyRestricted delegates only the rights enumerated by an attached
	// policy document, evaluated by the authorization engine.
	ProxyRestricted ProxyVariant = 3
	// ProxyIndependent delegates no rights; the new identity accrues its
	// own rights via explicit policy.
	ProxyIndependent ProxyVariant = 4
)

// String names the proxy variant.
func (v ProxyVariant) String() string {
	switch v {
	case ProxyImpersonation:
		return "impersonation"
	case ProxyLimited:
		return "limited"
	case ProxyRestricted:
		return "restricted"
	case ProxyIndependent:
		return "independent"
	default:
		return fmt.Sprintf("unknown(%d)", uint8(v))
	}
}

// Valid reports whether v is a defined variant.
func (v ProxyVariant) Valid() bool {
	return v >= ProxyImpersonation && v <= ProxyIndependent
}

// ProxyInfo is the proxy-certificate-information extension: it is present
// exactly on proxy certificates.
type ProxyInfo struct {
	// Variant selects the delegation semantics.
	Variant ProxyVariant
	// PathLenConstraint limits how many further proxies may be derived
	// below this one. -1 means unlimited.
	PathLenConstraint int
	// PolicyLanguage and Policy carry the restriction document for
	// ProxyRestricted proxies (opaque to this package; interpreted by
	// internal/authz and internal/cas).
	PolicyLanguage string
	Policy         []byte
}

// Extension is an opaque certificate extension.
type Extension struct {
	ID       string
	Critical bool
	Value    []byte
}

// Certificate is a parsed grid certificate. The zero value is not valid;
// certificates are created via Sign (see issue.go) or Decode.
type Certificate struct {
	Version      uint8
	SerialNumber uint64
	Type         CertType

	Issuer  Name
	Subject Name

	NotBefore time.Time
	NotAfter  time.Time

	PublicKey gridcrypto.PublicKey
	KeyUsage  KeyUsage

	// MaxPathLen constrains CA chain depth below a TypeCA certificate;
	// -1 means unlimited. Ignored for other types.
	MaxPathLen int

	// Proxy is non-nil exactly when Type == TypeProxy.
	Proxy *ProxyInfo

	Extensions []Extension

	// SignatureAlg and Signature cover the TBS (to-be-signed) encoding.
	SignatureAlg gridcrypto.Algorithm
	Signature    []byte

	// raw caches the full encoding; rawTBS caches the signed portion.
	// Atomic pointers: certificates are shared across goroutines (a host
	// credential serves many concurrent handshakes), and a duplicate
	// compute-and-store is benign — the encoding is deterministic.
	raw    atomic.Pointer[[]byte]
	rawTBS atomic.Pointer[[]byte]
	fp     atomic.Pointer[[32]byte]
}

const certVersion = 1

const maxExtensions = 64

// Extension IDs used across the repository.
const (
	// ExtGRIMIdentity marks a GRIM-issued credential and carries the
	// encoded GRIM policy (user grid identity, local account, host).
	ExtGRIMIdentity = "grid.grim.identity"
	// ExtCASAssertion carries a CAS policy assertion embedded in a
	// restricted proxy.
	ExtCASAssertion = "grid.cas.assertion"
	// ExtKCAOrigin marks a certificate issued by the Kerberos CA bridge
	// and carries the originating Kerberos principal.
	ExtKCAOrigin = "grid.kca.principal"
)

// FindExtension returns the first extension with the given ID.
func (c *Certificate) FindExtension(id string) (Extension, bool) {
	for _, e := range c.Extensions {
		if e.ID == id {
			return e, true
		}
	}
	return Extension{}, false
}

// IsCA reports whether the certificate may sign other certificates as an
// authority.
func (c *Certificate) IsCA() bool { return c.Type == TypeCA }

// IsProxy reports whether the certificate is a proxy certificate.
func (c *Certificate) IsProxy() bool { return c.Type == TypeProxy }

// ValidAt reports whether t falls within the certificate validity window.
func (c *Certificate) ValidAt(t time.Time) bool {
	return !t.Before(c.NotBefore) && !t.After(c.NotAfter)
}

// encodeTBS builds the to-be-signed portion of the certificate encoding.
func (c *Certificate) encodeTBS() []byte {
	if p := c.rawTBS.Load(); p != nil {
		return *p
	}
	e := &encoder{}
	e.u8(c.Version)
	e.u64(c.SerialNumber)
	e.u8(uint8(c.Type))
	c.Issuer.encodeTo(e)
	c.Subject.encodeTo(e)
	e.i64(c.NotBefore.Unix())
	e.i64(c.NotAfter.Unix())
	e.bytes(c.PublicKey.Encode())
	e.u16(uint16(c.KeyUsage))
	e.i64(int64(c.MaxPathLen))
	if c.Proxy != nil {
		e.bool(true)
		e.u8(uint8(c.Proxy.Variant))
		e.i64(int64(c.Proxy.PathLenConstraint))
		e.str(c.Proxy.PolicyLanguage)
		e.bytes(c.Proxy.Policy)
	} else {
		e.bool(false)
	}
	e.u32(uint32(len(c.Extensions)))
	for _, ext := range c.Extensions {
		e.str(ext.ID)
		e.bool(ext.Critical)
		e.bytes(ext.Value)
	}
	buf := e.buf
	c.rawTBS.Store(&buf)
	return buf
}

// Encode returns the full wire encoding: TBS bytes, algorithm, signature.
func (c *Certificate) Encode() []byte {
	if p := c.raw.Load(); p != nil {
		return *p
	}
	tbs := c.encodeTBS()
	e := &encoder{}
	e.bytes(tbs)
	e.u8(uint8(c.SignatureAlg))
	e.bytes(c.Signature)
	buf := e.buf
	c.raw.Store(&buf)
	return buf
}

// Decode parses a certificate produced by Encode. The signature is not
// verified here; use CheckSignatureFrom or chain validation.
func Decode(b []byte) (*Certificate, error) {
	d := &decoder{b: b}
	tbs := d.bytes()
	alg := gridcrypto.Algorithm(d.u8())
	sig := d.bytes()
	if err := d.done(); err != nil {
		return nil, err
	}
	c, err := decodeTBS(tbs)
	if err != nil {
		return nil, err
	}
	if !alg.Valid() {
		return nil, gridcrypto.ErrUnknownAlgorithm
	}
	c.SignatureAlg = alg
	c.Signature = sig
	rawCopy := append([]byte(nil), b...)
	c.raw.Store(&rawCopy)
	return c, nil
}

func decodeTBS(tbs []byte) (*Certificate, error) {
	d := &decoder{b: tbs}
	c := &Certificate{}
	c.Version = d.u8()
	c.SerialNumber = d.u64()
	c.Type = CertType(d.u8())
	c.Issuer = decodeName(d)
	c.Subject = decodeName(d)
	c.NotBefore = time.Unix(d.i64(), 0).UTC()
	c.NotAfter = time.Unix(d.i64(), 0).UTC()
	pkBytes := d.bytes()
	c.KeyUsage = KeyUsage(d.u16())
	c.MaxPathLen = int(d.i64())
	if d.bool() {
		pi := &ProxyInfo{}
		pi.Variant = ProxyVariant(d.u8())
		pi.PathLenConstraint = int(d.i64())
		pi.PolicyLanguage = d.str()
		pi.Policy = d.bytes()
		c.Proxy = pi
	}
	extCnt := d.count("extension", d.u32(), maxExtensions)
	for i := 0; i < extCnt && d.err == nil; i++ {
		var ext Extension
		ext.ID = d.str()
		ext.Critical = d.bool()
		ext.Value = d.bytes()
		c.Extensions = append(c.Extensions, ext)
	}
	if err := d.done(); err != nil {
		return nil, err
	}
	if c.Version != certVersion {
		return nil, fmt.Errorf("gridcert: unsupported certificate version %d", c.Version)
	}
	pk, err := gridcrypto.DecodePublicKey(pkBytes)
	if err != nil {
		return nil, fmt.Errorf("gridcert: bad subject public key: %w", err)
	}
	c.PublicKey = pk
	if err := c.checkStructure(); err != nil {
		return nil, err
	}
	tbsCopy := append([]byte(nil), tbs...)
	c.rawTBS.Store(&tbsCopy)
	return c, nil
}

// checkStructure enforces invariants that hold for every well-formed
// certificate regardless of trust.
func (c *Certificate) checkStructure() error {
	switch c.Type {
	case TypeCA, TypeEndEntity:
		if c.Proxy != nil {
			return fmt.Errorf("gridcert: %s certificate carries proxy info", c.Type)
		}
	case TypeProxy:
		if c.Proxy == nil {
			return errors.New("gridcert: proxy certificate missing proxy info")
		}
		if !c.Proxy.Variant.Valid() {
			return fmt.Errorf("gridcert: invalid proxy variant %d", c.Proxy.Variant)
		}
		if c.Proxy.Variant == ProxyRestricted && c.Proxy.PolicyLanguage == "" {
			return errors.New("gridcert: restricted proxy missing policy language")
		}
	default:
		return fmt.Errorf("gridcert: unknown certificate type %d", c.Type)
	}
	if c.Subject.Empty() {
		return errors.New("gridcert: empty subject name")
	}
	if c.Issuer.Empty() {
		return errors.New("gridcert: empty issuer name")
	}
	if !c.NotAfter.After(c.NotBefore) {
		return errors.New("gridcert: NotAfter not after NotBefore")
	}
	return nil
}

// CheckSignatureFrom verifies that parent's key signed c.
func (c *Certificate) CheckSignatureFrom(parent *Certificate) error {
	if err := parent.PublicKey.Verify(c.encodeTBS(), c.Signature); err != nil {
		return fmt.Errorf("gridcert: certificate %q not signed by %q: %w",
			c.Subject, parent.Subject, err)
	}
	return nil
}

// Fingerprint returns the SHA-256 of the full certificate encoding,
// memoized: certificates are immutable after issue/decode, and
// per-exchange consumers (the authorization decision cache, pool keys)
// call this on their hot paths.
func (c *Certificate) Fingerprint() [32]byte {
	if p := c.fp.Load(); p != nil {
		return *p
	}
	sum := sha256.Sum256(c.Encode())
	c.fp.Store(&sum)
	return sum
}

// SelfSigned reports whether issuer and subject match (root CA shape).
func (c *Certificate) SelfSigned() bool { return c.Issuer.Equal(c.Subject) }

// String renders a one-line summary for logs and the certinfo tool.
func (c *Certificate) String() string {
	extra := ""
	if c.Proxy != nil {
		extra = " proxy=" + c.Proxy.Variant.String()
	}
	return fmt.Sprintf("[%s subject=%s issuer=%s serial=%d%s]",
		c.Type, c.Subject, c.Issuer, c.SerialNumber, extra)
}
