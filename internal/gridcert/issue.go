package gridcert

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/gridcrypto"
)

// Template describes a certificate to be issued. Zero-value fields are
// filled with sensible defaults by Sign.
type Template struct {
	SerialNumber uint64
	Type         CertType
	Subject      Name
	NotBefore    time.Time
	NotAfter     time.Time
	KeyUsage     KeyUsage
	MaxPathLen   int
	Proxy        *ProxyInfo
	Extensions   []Extension
}

// Sign issues a certificate for subjectKey from the template, signed by
// issuerKey under issuerName. For self-signed roots pass the subject's own
// key and name as issuer.
func Sign(tpl Template, subjectKey gridcrypto.PublicKey, issuerName Name, issuerKey *gridcrypto.KeyPair) (*Certificate, error) {
	if tpl.Subject.Empty() {
		return nil, errors.New("gridcert: template missing subject")
	}
	if issuerName.Empty() {
		return nil, errors.New("gridcert: missing issuer name")
	}
	if issuerKey == nil {
		return nil, errors.New("gridcert: missing issuer key")
	}
	serial := tpl.SerialNumber
	if serial == 0 {
		var err error
		serial, err = gridcrypto.RandomSerial()
		if err != nil {
			return nil, err
		}
	}
	nb, na := tpl.NotBefore, tpl.NotAfter
	if nb.IsZero() {
		nb = time.Now().Add(-5 * time.Minute) // small backdate for clock skew
	}
	if na.IsZero() {
		na = nb.Add(12 * time.Hour)
	}
	c := &Certificate{
		Version:      certVersion,
		SerialNumber: serial,
		Type:         tpl.Type,
		Issuer:       issuerName,
		Subject:      tpl.Subject,
		NotBefore:    nb.Truncate(time.Second).UTC(),
		NotAfter:     na.Truncate(time.Second).UTC(),
		PublicKey:    subjectKey,
		KeyUsage:     tpl.KeyUsage,
		MaxPathLen:   tpl.MaxPathLen,
		Proxy:        cloneProxyInfo(tpl.Proxy),
		Extensions:   append([]Extension(nil), tpl.Extensions...),
	}
	if err := c.checkStructure(); err != nil {
		return nil, err
	}
	sig, err := issuerKey.Sign(c.encodeTBS())
	if err != nil {
		return nil, fmt.Errorf("gridcert: signing certificate: %w", err)
	}
	c.SignatureAlg = issuerKey.Algorithm()
	c.Signature = sig
	return c, nil
}

func cloneProxyInfo(p *ProxyInfo) *ProxyInfo {
	if p == nil {
		return nil
	}
	cp := *p
	cp.Policy = append([]byte(nil), p.Policy...)
	return &cp
}

// NewSelfSignedCA creates a root CA certificate and key pair in one step.
func NewSelfSignedCA(subject Name, lifetime time.Duration, alg gridcrypto.Algorithm) (*Certificate, *gridcrypto.KeyPair, error) {
	key, err := gridcrypto.GenerateKeyPair(alg)
	if err != nil {
		return nil, nil, err
	}
	now := time.Now()
	cert, err := Sign(Template{
		Type:       TypeCA,
		Subject:    subject,
		NotBefore:  now.Add(-5 * time.Minute),
		NotAfter:   now.Add(lifetime),
		KeyUsage:   UsageCertSign | UsageCRLSign,
		MaxPathLen: -1,
	}, key.Public(), subject, key)
	if err != nil {
		return nil, nil, err
	}
	return cert, key, nil
}

// Credential bundles a certificate chain with the private key of the leaf.
// Chain[0] is the leaf; subsequent entries lead toward (but normally do
// not include) a trust root. This is the "credential set" the paper's §3
// describes: a certificate plus its associated private key.
type Credential struct {
	Chain []*Certificate
	Key   *gridcrypto.KeyPair
}

// NewCredential validates the basic shape of a credential.
func NewCredential(chain []*Certificate, key *gridcrypto.KeyPair) (*Credential, error) {
	if len(chain) == 0 {
		return nil, errors.New("gridcert: credential requires at least one certificate")
	}
	if key == nil {
		return nil, errors.New("gridcert: credential requires a private key")
	}
	if !chain[0].PublicKey.Equal(key.Public()) {
		return nil, errors.New("gridcert: private key does not match leaf certificate")
	}
	return &Credential{Chain: chain, Key: key}, nil
}

// Leaf returns the first certificate of the chain.
func (c *Credential) Leaf() *Certificate { return c.Chain[0] }

// Identity returns the effective grid identity of the credential: the
// subject of the end-entity certificate underlying any proxies, which is
// how GSI maps every proxy back to its owning user.
func (c *Credential) Identity() Name {
	for _, cert := range c.Chain {
		if cert.Type != TypeProxy {
			return cert.Subject
		}
	}
	// Chain is all proxies (validation will reject this); fall back to
	// stripping the proxy CN components from the leaf.
	n := c.Chain[0].Subject
	for range c.Chain {
		if p, ok := n.Parent(); ok {
			n = p
		}
	}
	return n
}

// Limited reports whether any proxy in the chain is a limited proxy, in
// which case services such as GRAM must refuse job creation.
func (c *Credential) Limited() bool {
	for _, cert := range c.Chain {
		if cert.Proxy != nil && cert.Proxy.Variant == ProxyLimited {
			return true
		}
	}
	return false
}

// EncodeChain serialises the full chain, leaf first.
func EncodeChain(chain []*Certificate) []byte {
	e := &encoder{}
	e.u32(uint32(len(chain)))
	for _, c := range chain {
		e.bytes(c.Encode())
	}
	return e.buf
}

// EncodeCredential serialises a credential — chain plus private key —
// for handoff to another process (gsictl's credential files). The key
// material is in the clear: callers own file permissions (0600) and
// transport.
func EncodeCredential(c *Credential) ([]byte, error) {
	key, err := c.Key.Encode()
	if err != nil {
		return nil, err
	}
	e := &encoder{}
	e.bytes(EncodeChain(c.Chain))
	e.bytes(key)
	return e.buf, nil
}

// DecodeCredential reverses EncodeCredential, re-running the
// key-matches-leaf check so a file assembled from mismatched halves is
// rejected at load.
func DecodeCredential(b []byte) (*Credential, error) {
	d := &decoder{b: b}
	rawChain := d.bytes()
	rawKey := d.bytes()
	if d.err != nil {
		return nil, d.err
	}
	if err := d.done(); err != nil {
		return nil, err
	}
	chain, err := DecodeChain(rawChain)
	if err != nil {
		return nil, err
	}
	key, err := gridcrypto.DecodeKeyPair(rawKey)
	if err != nil {
		return nil, err
	}
	return NewCredential(chain, key)
}

const maxChainLen = 64

// DecodeChain reverses EncodeChain.
func DecodeChain(b []byte) ([]*Certificate, error) {
	d := &decoder{b: b}
	cnt := d.count("chain", d.u32(), maxChainLen)
	chain := make([]*Certificate, 0, cnt)
	for i := 0; i < cnt; i++ {
		raw := d.bytes()
		if d.err != nil {
			return nil, d.err
		}
		c, err := Decode(raw)
		if err != nil {
			return nil, fmt.Errorf("gridcert: chain entry %d: %w", i, err)
		}
		chain = append(chain, c)
	}
	if err := d.done(); err != nil {
		return nil, err
	}
	if len(chain) == 0 {
		return nil, errors.New("gridcert: empty chain")
	}
	return chain, nil
}
