package gridcert

import (
	"testing"
	"testing/quick"
)

func TestParseNameRoundTrip(t *testing.T) {
	cases := []string{
		"/O=Grid/OU=ANL/CN=Alice",
		"/CN=root",
		"/O=Grid/CN=Alice/CN=proxy-1/CN=proxy-2",
	}
	for _, s := range cases {
		n, err := ParseName(s)
		if err != nil {
			t.Fatalf("ParseName(%q): %v", s, err)
		}
		if got := n.String(); got != s {
			t.Errorf("round trip %q -> %q", s, got)
		}
	}
}

func TestParseNameErrors(t *testing.T) {
	bad := []string{
		"O=Grid",       // missing leading slash
		"/O=Grid/=bad", // empty type
		"/O=",          // empty value
		"/noequals",
		"/O=Grid//CN=x",
	}
	for _, s := range bad {
		if _, err := ParseName(s); err == nil {
			t.Errorf("ParseName(%q) accepted malformed name", s)
		}
	}
}

func TestParseEmptyName(t *testing.T) {
	n, err := ParseName("")
	if err != nil {
		t.Fatal(err)
	}
	if !n.Empty() {
		t.Fatal("empty string should parse to empty name")
	}
	if n.String() != "/" {
		t.Fatalf("empty name renders as %q", n.String())
	}
}

func TestNameEqual(t *testing.T) {
	a := MustParseName("/O=Grid/CN=Alice")
	b := MustParseName("/O=Grid/CN=Alice")
	c := MustParseName("/O=Grid/CN=Bob")
	d := MustParseName("/CN=Alice/O=Grid") // order matters
	if !a.Equal(b) {
		t.Error("identical names not equal")
	}
	if a.Equal(c) || a.Equal(d) {
		t.Error("distinct names reported equal")
	}
}

func TestNameCommonName(t *testing.T) {
	n := MustParseName("/O=Grid/CN=Alice/CN=proxy")
	if cn := n.CommonName(); cn != "proxy" {
		t.Fatalf("CommonName = %q, want proxy (last CN)", cn)
	}
	if cn := MustParseName("/O=Grid").CommonName(); cn != "" {
		t.Fatalf("CommonName of CN-less name = %q", cn)
	}
}

func TestWithCNParent(t *testing.T) {
	base := MustParseName("/O=Grid/CN=Alice")
	child := base.WithCN("proxy-42")
	if child.String() != "/O=Grid/CN=Alice/CN=proxy-42" {
		t.Fatalf("WithCN = %q", child)
	}
	// WithCN must not mutate the receiver.
	if base.String() != "/O=Grid/CN=Alice" {
		t.Fatalf("WithCN mutated base: %q", base)
	}
	parent, ok := child.Parent()
	if !ok || !parent.Equal(base) {
		t.Fatalf("Parent = %q ok=%v", parent, ok)
	}
	if _, ok := (Name{}).Parent(); ok {
		t.Fatal("Parent of empty name reported ok")
	}
}

func TestIsImmediateChildOf(t *testing.T) {
	base := MustParseName("/O=Grid/CN=Alice")
	if !base.WithCN("p").IsImmediateChildOf(base) {
		t.Error("direct child not recognised")
	}
	if base.WithCN("p").WithCN("q").IsImmediateChildOf(base) {
		t.Error("grandchild accepted as immediate child")
	}
	if base.IsImmediateChildOf(base) {
		t.Error("name accepted as child of itself")
	}
	// Extra component must be CN, not another type.
	other := Name{Components: append(append([]NameComponent(nil), base.Components...), NameComponent{Type: "OU", Value: "x"})}
	if other.IsImmediateChildOf(base) {
		t.Error("non-CN extension accepted")
	}
	// Same length but different parent.
	sibling := MustParseName("/O=Grid/CN=Bob").WithCN("p")
	if sibling.IsImmediateChildOf(base) {
		t.Error("child of different parent accepted")
	}
}

func TestNameWireRoundTrip(t *testing.T) {
	n := MustParseName("/O=Grid/OU=MCS/CN=Alice")
	e := &encoder{}
	n.encodeTo(e)
	d := &decoder{b: e.buf}
	got := decodeName(d)
	if err := d.done(); err != nil {
		t.Fatal(err)
	}
	if !got.Equal(n) {
		t.Fatalf("wire round trip: %q != %q", got, n)
	}
}

func TestDecodeNameRejectsHugeCount(t *testing.T) {
	e := &encoder{}
	e.u32(1 << 30)
	d := &decoder{b: e.buf}
	decodeName(d)
	if d.err == nil {
		t.Fatal("huge component count accepted")
	}
}

// Property: parse∘render is the identity on valid component sets.
func TestPropertyNameRenderParse(t *testing.T) {
	f := func(vals []string) bool {
		var n Name
		for i, v := range vals {
			if v == "" || containsAny(v, "/=") {
				return true // skip values our textual form cannot carry
			}
			typ := "CN"
			if i%2 == 0 {
				typ = "O"
			}
			n.Components = append(n.Components, NameComponent{Type: typ, Value: v})
		}
		if n.Empty() {
			return true
		}
		parsed, err := ParseName(n.String())
		return err == nil && parsed.Equal(n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func containsAny(s, chars string) bool {
	for _, c := range chars {
		for _, r := range s {
			if r == c {
				return true
			}
		}
	}
	return false
}
