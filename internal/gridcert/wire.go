package gridcert

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// The gridcert wire format is a deterministic, length-prefixed binary
// encoding (a simplified DER). Determinism matters: the to-be-signed bytes
// of a certificate must encode identically on every host, or signatures
// would not verify. All integers are big-endian; byte strings and strings
// are prefixed with a uint32 length.

// errTruncated is returned when a decoder runs out of input.
var errTruncated = errors.New("gridcert: truncated encoding")

const maxFieldLen = 1 << 24 // 16 MiB cap on any single field

type encoder struct {
	buf []byte
}

func (e *encoder) u8(v uint8) { e.buf = append(e.buf, v) }
func (e *encoder) u16(v uint16) {
	var b [2]byte
	binary.BigEndian.PutUint16(b[:], v)
	e.buf = append(e.buf, b[:]...)
}
func (e *encoder) u32(v uint32) {
	var b [4]byte
	binary.BigEndian.PutUint32(b[:], v)
	e.buf = append(e.buf, b[:]...)
}
func (e *encoder) u64(v uint64) {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], v)
	e.buf = append(e.buf, b[:]...)
}
func (e *encoder) i64(v int64) { e.u64(uint64(v)) }
func (e *encoder) bool(v bool) {
	if v {
		e.u8(1)
	} else {
		e.u8(0)
	}
}
func (e *encoder) bytes(b []byte) {
	e.u32(uint32(len(b)))
	e.buf = append(e.buf, b...)
}
func (e *encoder) str(s string) { e.bytes([]byte(s)) }

type decoder struct {
	b   []byte
	off int
	err error
}

func (d *decoder) fail(err error) {
	if d.err == nil {
		d.err = err
	}
}

func (d *decoder) need(n int) bool {
	if d.err != nil {
		return false
	}
	if d.off+n > len(d.b) {
		d.fail(errTruncated)
		return false
	}
	return true
}

func (d *decoder) u8() uint8 {
	if !d.need(1) {
		return 0
	}
	v := d.b[d.off]
	d.off++
	return v
}

func (d *decoder) u16() uint16 {
	if !d.need(2) {
		return 0
	}
	v := binary.BigEndian.Uint16(d.b[d.off:])
	d.off += 2
	return v
}

func (d *decoder) u32() uint32 {
	if !d.need(4) {
		return 0
	}
	v := binary.BigEndian.Uint32(d.b[d.off:])
	d.off += 4
	return v
}

func (d *decoder) u64() uint64 {
	if !d.need(8) {
		return 0
	}
	v := binary.BigEndian.Uint64(d.b[d.off:])
	d.off += 8
	return v
}

func (d *decoder) i64() int64 { return int64(d.u64()) }

func (d *decoder) bool() bool {
	switch d.u8() {
	case 0:
		return false
	case 1:
		return true
	default:
		d.fail(errors.New("gridcert: invalid boolean encoding"))
		return false
	}
}

func (d *decoder) bytes() []byte {
	n := d.u32()
	if d.err != nil {
		return nil
	}
	if n > maxFieldLen {
		d.fail(fmt.Errorf("gridcert: field length %d exceeds cap", n))
		return nil
	}
	if !d.need(int(n)) {
		return nil
	}
	out := make([]byte, n)
	copy(out, d.b[d.off:d.off+int(n)])
	d.off += int(n)
	return out
}

func (d *decoder) str() string { return string(d.bytes()) }

// done reports a decoding error if any input remains unconsumed.
func (d *decoder) done() error {
	if d.err != nil {
		return d.err
	}
	if d.off != len(d.b) {
		return fmt.Errorf("gridcert: %d trailing bytes after encoding", len(d.b)-d.off)
	}
	return nil
}

// checkCount guards list lengths read from untrusted input.
func (d *decoder) count(what string, n uint32, max int) int {
	if d.err != nil {
		return 0
	}
	if n > uint32(max) || n > math.MaxInt32 {
		d.fail(fmt.Errorf("gridcert: %s count %d exceeds cap %d", what, n, max))
		return 0
	}
	return int(n)
}
