package gridcert

import (
	"testing"
	"time"

	"repro/internal/gridcrypto"
)

// testPKI builds a CA, a user end-entity cert, and returns all pieces.
func testPKI(t testing.TB) (caCert *Certificate, caKey *gridcrypto.KeyPair, userCert *Certificate, userKey *gridcrypto.KeyPair) {
	t.Helper()
	var err error
	caCert, caKey, err = NewSelfSignedCA(MustParseName("/O=Grid/CN=Test CA"), 24*time.Hour, gridcrypto.AlgEd25519)
	if err != nil {
		t.Fatalf("NewSelfSignedCA: %v", err)
	}
	userKey, err = gridcrypto.GenerateKeyPair(gridcrypto.AlgEd25519)
	if err != nil {
		t.Fatal(err)
	}
	userCert, err = Sign(Template{
		Type:     TypeEndEntity,
		Subject:  MustParseName("/O=Grid/CN=Alice"),
		KeyUsage: UsageDigitalSignature | UsageDelegation | UsageKeyAgreement,
	}, userKey.Public(), caCert.Subject, caKey)
	if err != nil {
		t.Fatalf("Sign user cert: %v", err)
	}
	return
}

// issueProxy signs a proxy below the given parent credential.
func issueProxy(t testing.TB, parentCert *Certificate, parentKey *gridcrypto.KeyPair, variant ProxyVariant, pathLen int) (*Certificate, *gridcrypto.KeyPair) {
	t.Helper()
	key, err := gridcrypto.GenerateKeyPair(gridcrypto.AlgEd25519)
	if err != nil {
		t.Fatal(err)
	}
	serial, err := gridcrypto.RandomSerial()
	if err != nil {
		t.Fatal(err)
	}
	pi := &ProxyInfo{Variant: variant, PathLenConstraint: pathLen}
	if variant == ProxyRestricted {
		pi.PolicyLanguage = "grid.cas.v1"
		pi.Policy = []byte("read-only")
	}
	cert, err := Sign(Template{
		SerialNumber: serial,
		Type:         TypeProxy,
		Subject:      parentCert.Subject.WithCN(proxyCN(serial)),
		KeyUsage:     UsageDigitalSignature | UsageDelegation | UsageKeyAgreement,
		Proxy:        pi,
	}, key.Public(), parentCert.Subject, parentKey)
	if err != nil {
		t.Fatalf("Sign proxy: %v", err)
	}
	return cert, key
}

func proxyCN(serial uint64) string {
	const digits = "0123456789"
	if serial == 0 {
		return "proxy-0"
	}
	var buf [20]byte
	i := len(buf)
	for serial > 0 {
		i--
		buf[i] = digits[serial%10]
		serial /= 10
	}
	return "proxy-" + string(buf[i:])
}

func TestCertificateEncodeDecode(t *testing.T) {
	caCert, _, userCert, _ := testPKI(t)
	for _, c := range []*Certificate{caCert, userCert} {
		enc := c.Encode()
		dec, err := Decode(enc)
		if err != nil {
			t.Fatalf("Decode(%s): %v", c, err)
		}
		if !dec.Subject.Equal(c.Subject) || !dec.Issuer.Equal(c.Issuer) ||
			dec.SerialNumber != c.SerialNumber || dec.Type != c.Type ||
			!dec.PublicKey.Equal(c.PublicKey) || dec.KeyUsage != c.KeyUsage {
			t.Fatalf("decode mismatch: %s vs %s", dec, c)
		}
		if !dec.NotBefore.Equal(c.NotBefore) || !dec.NotAfter.Equal(c.NotAfter) {
			t.Fatalf("validity mismatch")
		}
		if err := dec.CheckSignatureFrom(caCert); err != nil {
			t.Fatalf("decoded cert signature: %v", err)
		}
	}
}

func TestDecodeRejectsTampering(t *testing.T) {
	_, _, userCert, _ := testPKI(t)
	enc := userCert.Encode()
	for _, idx := range []int{10, len(enc) / 2, len(enc) - 1} {
		mut := append([]byte(nil), enc...)
		mut[idx] ^= 0xff
		c, err := Decode(mut)
		if err != nil {
			continue // structural rejection is fine
		}
		// If it still parses, the signature must no longer verify against
		// the original TBS or the content changed.
		caCert, _, _, _ := testPKI(t)
		_ = caCert
		if string(c.encodeTBS()) == string(userCert.encodeTBS()) && string(c.Signature) == string(userCert.Signature) {
			t.Fatalf("mutation at %d produced identical certificate", idx)
		}
	}
}

func TestDecodeGarbage(t *testing.T) {
	for _, b := range [][]byte{nil, {}, {1, 2, 3}, make([]byte, 64)} {
		if _, err := Decode(b); err == nil {
			t.Errorf("Decode accepted garbage of len %d", len(b))
		}
	}
}

func TestSignValidation(t *testing.T) {
	_, caKey, _, userKey := testPKI(t)
	caName := MustParseName("/O=Grid/CN=Test CA")
	// Missing subject.
	if _, err := Sign(Template{Type: TypeEndEntity}, userKey.Public(), caName, caKey); err == nil {
		t.Error("Sign accepted empty subject")
	}
	// Proxy without proxy info.
	if _, err := Sign(Template{Type: TypeProxy, Subject: MustParseName("/CN=p")}, userKey.Public(), caName, caKey); err == nil {
		t.Error("Sign accepted proxy without ProxyInfo")
	}
	// CA/EE with proxy info.
	if _, err := Sign(Template{
		Type: TypeEndEntity, Subject: MustParseName("/CN=x"),
		Proxy: &ProxyInfo{Variant: ProxyImpersonation},
	}, userKey.Public(), caName, caKey); err == nil {
		t.Error("Sign accepted end entity with ProxyInfo")
	}
	// Restricted proxy missing policy language.
	if _, err := Sign(Template{
		Type: TypeProxy, Subject: MustParseName("/CN=x/CN=p"),
		Proxy: &ProxyInfo{Variant: ProxyRestricted},
	}, userKey.Public(), MustParseName("/CN=x"), userKey); err == nil {
		t.Error("Sign accepted restricted proxy without policy language")
	}
	// Nil issuer key.
	if _, err := Sign(Template{Type: TypeEndEntity, Subject: MustParseName("/CN=x")}, userKey.Public(), caName, nil); err == nil {
		t.Error("Sign accepted nil issuer key")
	}
}

func TestDefaultValidityWindow(t *testing.T) {
	caCert, caKey, _, _ := testPKI(t)
	key, _ := gridcrypto.GenerateKeyPair(gridcrypto.AlgEd25519)
	c, err := Sign(Template{Type: TypeEndEntity, Subject: MustParseName("/CN=d")},
		key.Public(), caCert.Subject, caKey)
	if err != nil {
		t.Fatal(err)
	}
	now := time.Now()
	if !c.ValidAt(now) {
		t.Fatal("default validity does not include now")
	}
	if c.ValidAt(now.Add(13 * time.Hour)) {
		t.Fatal("default validity too long")
	}
	if c.NotBefore.After(now) {
		t.Fatal("NotBefore not backdated")
	}
}

func TestCredential(t *testing.T) {
	caCert, caKey, userCert, userKey := testPKI(t)
	_ = caKey
	cred, err := NewCredential([]*Certificate{userCert, caCert}, userKey)
	if err != nil {
		t.Fatal(err)
	}
	if !cred.Identity().Equal(userCert.Subject) {
		t.Fatalf("Identity = %q", cred.Identity())
	}
	if cred.Limited() {
		t.Fatal("plain credential reported limited")
	}
	// Key mismatch.
	otherKey, _ := gridcrypto.GenerateKeyPair(gridcrypto.AlgEd25519)
	if _, err := NewCredential([]*Certificate{userCert}, otherKey); err == nil {
		t.Fatal("NewCredential accepted mismatched key")
	}
	if _, err := NewCredential(nil, userKey); err == nil {
		t.Fatal("NewCredential accepted empty chain")
	}
}

func TestCredentialProxyIdentity(t *testing.T) {
	_, _, userCert, userKey := testPKI(t)
	p1, k1 := issueProxy(t, userCert, userKey, ProxyImpersonation, -1)
	p2, k2 := issueProxy(t, p1, k1, ProxyLimited, -1)
	cred, err := NewCredential([]*Certificate{p2, p1, userCert}, k2)
	if err != nil {
		t.Fatal(err)
	}
	if !cred.Identity().Equal(userCert.Subject) {
		t.Fatalf("proxy credential identity = %q, want user subject", cred.Identity())
	}
	if !cred.Limited() {
		t.Fatal("limited proxy chain not reported limited")
	}
}

func TestChainEncodeDecode(t *testing.T) {
	caCert, _, userCert, userKey := testPKI(t)
	p1, _ := issueProxy(t, userCert, userKey, ProxyImpersonation, -1)
	chain := []*Certificate{p1, userCert, caCert}
	enc := EncodeChain(chain)
	dec, err := DecodeChain(enc)
	if err != nil {
		t.Fatal(err)
	}
	if len(dec) != 3 {
		t.Fatalf("decoded %d certs", len(dec))
	}
	for i := range chain {
		if !dec[i].Subject.Equal(chain[i].Subject) {
			t.Fatalf("chain entry %d mismatch", i)
		}
	}
	if _, err := DecodeChain([]byte{0, 0, 0, 0}); err == nil {
		t.Fatal("DecodeChain accepted empty chain")
	}
	if _, err := DecodeChain([]byte("garbage")); err == nil {
		t.Fatal("DecodeChain accepted garbage")
	}
}

func TestFindExtension(t *testing.T) {
	caCert, caKey, _, _ := testPKI(t)
	key, _ := gridcrypto.GenerateKeyPair(gridcrypto.AlgEd25519)
	c, err := Sign(Template{
		Type:    TypeEndEntity,
		Subject: MustParseName("/CN=svc"),
		Extensions: []Extension{
			{ID: ExtKCAOrigin, Critical: false, Value: []byte("alice@REALM")},
		},
	}, key.Public(), caCert.Subject, caKey)
	if err != nil {
		t.Fatal(err)
	}
	ext, ok := c.FindExtension(ExtKCAOrigin)
	if !ok || string(ext.Value) != "alice@REALM" {
		t.Fatalf("FindExtension: ok=%v value=%q", ok, ext.Value)
	}
	if _, ok := c.FindExtension("missing"); ok {
		t.Fatal("found nonexistent extension")
	}
	// Extensions must round-trip.
	dec, err := Decode(c.Encode())
	if err != nil {
		t.Fatal(err)
	}
	ext2, ok := dec.FindExtension(ExtKCAOrigin)
	if !ok || string(ext2.Value) != "alice@REALM" {
		t.Fatal("extension lost in round trip")
	}
}

func TestFingerprintStable(t *testing.T) {
	_, _, userCert, _ := testPKI(t)
	f1 := userCert.Fingerprint()
	dec, _ := Decode(userCert.Encode())
	if dec.Fingerprint() != f1 {
		t.Fatal("fingerprint changed across round trip")
	}
}
