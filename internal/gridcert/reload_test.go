package gridcert

import (
	"errors"
	"testing"
	"time"

	"repro/internal/gridcrypto"
)

func TestReplaceRoots(t *testing.T) {
	caA, keyA, err := NewSelfSignedCA(MustParseName("/O=Grid/CN=CA A"), time.Hour, gridcrypto.AlgEd25519)
	if err != nil {
		t.Fatal(err)
	}
	caB, _, err := NewSelfSignedCA(MustParseName("/O=Grid/CN=CA B"), time.Hour, gridcrypto.AlgEd25519)
	if err != nil {
		t.Fatal(err)
	}

	ts := NewTrustStore()
	if err := ts.AddRoot(caA); err != nil {
		t.Fatal(err)
	}
	crl, err := NewCRL(caA.Subject, 1, []uint64{42}, keyA)
	if err != nil {
		t.Fatal(err)
	}
	if err := ts.AddCRL(crl); err != nil {
		t.Fatal(err)
	}
	gen := ts.Generation()

	// Swap A out for B: one generation bump, A's CRL pruned.
	if err := ts.ReplaceRoots([]*Certificate{caB}); err != nil {
		t.Fatalf("ReplaceRoots: %v", err)
	}
	if got := ts.Generation(); got != gen+1 {
		t.Fatalf("generation moved %d times, want 1", got-gen)
	}
	if _, ok := ts.Root(caA.Subject); ok {
		t.Fatal("old root survived replacement")
	}
	if _, ok := ts.Root(caB.Subject); !ok {
		t.Fatal("new root missing after replacement")
	}
	if ts.revoked(caA.Subject, 42) {
		t.Fatal("pruned issuer's CRL still consulted")
	}

	// An empty set must be refused with state intact: a truncated trust
	// file must never yield a trust-nobody store.
	if err := ts.ReplaceRoots(nil); err == nil {
		t.Fatal("ReplaceRoots(nil) succeeded")
	}
	if ts.Len() != 1 {
		t.Fatalf("failed replacement mutated store: %d roots", ts.Len())
	}

	// One bad candidate rejects the whole batch.
	notCA, _, err := NewSelfSignedCA(MustParseName("/O=Grid/CN=NotCA"), time.Hour, gridcrypto.AlgEd25519)
	if err != nil {
		t.Fatal(err)
	}
	notCA.Type = TypeEndEntity
	if err := ts.ReplaceRoots([]*Certificate{caA, notCA}); err == nil {
		t.Fatal("ReplaceRoots with non-CA candidate succeeded")
	}
	if _, ok := ts.Root(caA.Subject); ok {
		t.Fatal("failed batch partially applied")
	}
}

func TestAddCRLStaleSentinel(t *testing.T) {
	ca, key, err := NewSelfSignedCA(MustParseName("/O=Grid/CN=CA"), time.Hour, gridcrypto.AlgEd25519)
	if err != nil {
		t.Fatal(err)
	}
	ts := NewTrustStore()
	if err := ts.AddRoot(ca); err != nil {
		t.Fatal(err)
	}
	crl2, err := NewCRL(ca.Subject, 2, []uint64{7}, key)
	if err != nil {
		t.Fatal(err)
	}
	if err := ts.AddCRL(crl2); err != nil {
		t.Fatal(err)
	}
	crl1, err := NewCRL(ca.Subject, 1, nil, key)
	if err != nil {
		t.Fatal(err)
	}
	if err := ts.AddCRL(crl1); !errors.Is(err, ErrCRLStale) {
		t.Fatalf("stale CRL error = %v, want ErrCRLStale", err)
	}
	if err := ts.AddCRL(crl2); !errors.Is(err, ErrCRLStale) {
		t.Fatalf("same-number CRL error = %v, want ErrCRLStale", err)
	}
}

func TestCRLSetRoundTrip(t *testing.T) {
	caA, keyA, err := NewSelfSignedCA(MustParseName("/O=Grid/CN=A"), time.Hour, gridcrypto.AlgEd25519)
	if err != nil {
		t.Fatal(err)
	}
	caB, keyB, err := NewSelfSignedCA(MustParseName("/O=Grid/CN=B"), time.Hour, gridcrypto.AlgEd25519)
	if err != nil {
		t.Fatal(err)
	}
	crlA, err := NewCRL(caA.Subject, 3, []uint64{1, 2}, keyA)
	if err != nil {
		t.Fatal(err)
	}
	crlB, err := NewCRL(caB.Subject, 1, nil, keyB)
	if err != nil {
		t.Fatal(err)
	}
	set, err := DecodeCRLSet(EncodeCRLSet([]*CRL{crlA, crlB}))
	if err != nil {
		t.Fatal(err)
	}
	if len(set) != 2 || !set[0].Issuer.Equal(crlA.Issuer) || set[0].Number != 3 || !set[1].Issuer.Equal(crlB.Issuer) {
		t.Fatalf("round trip mangled set: %+v", set)
	}
	if empty, err := DecodeCRLSet(EncodeCRLSet(nil)); err != nil || len(empty) != 0 {
		t.Fatalf("empty set round trip: %v, %v", empty, err)
	}
	if _, err := DecodeCRLSet([]byte("garbage")); err == nil {
		t.Fatal("garbage decoded as CRL set")
	}
}
