// Package core assembles the GSI3 security stack of the paper's §4–5:
// hosting environments (ogsa.Container) publishing security policy,
// OGSA security services (secsvc), and a client-side Requestor that
// automates the Figure-3 secured-request pipeline — policy discovery,
// credential conversion, token processing, and invocation — so that
// "security mechanisms should not have to be instantiated in an
// application but instead should be supplied by the surrounding Grid
// infrastructure."
package core

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/authz"
	"repro/internal/bridge"
	"repro/internal/ca"
	"repro/internal/gridcert"
	"repro/internal/ogsa"
	"repro/internal/secsvc"
	"repro/internal/wssec"
)

// Stack is one host's GSI3 deployment: a hosting environment with the
// standard security services published inside it.
type Stack struct {
	Container *ogsa.Container
	Audit     *secsvc.AuditLog
	Trust     *gridcert.TrustStore

	// The published security services (§4.1).
	CredentialProcessing *secsvc.CredentialProcessing
	Authorization        *secsvc.Authorization
	IdentityMapping      *secsvc.IdentityMapping
}

// StackConfig configures NewStack.
type StackConfig struct {
	// Name labels the stack's container.
	Name string
	// Credential is the host credential.
	Credential *gridcert.Credential
	// Trust is the host's trust store.
	Trust *gridcert.TrustStore
	// Authorizer governs inbound calls; nil = authenticate-only.
	Authorizer authz.Engine
	// Mapper backs the identity-mapping service; nil creates an empty one.
	Mapper *bridge.IdentityMapper
	// RejectLimited refuses limited-proxy callers.
	RejectLimited bool
}

// NewStack builds a hosting environment with the security services
// published under their well-known handles:
//
//	security/credential-processing
//	security/authorization
//	security/identity-mapping
//	security/audit
func NewStack(cfg StackConfig) (*Stack, error) {
	audit := secsvc.NewAuditLog()
	container, err := ogsa.NewContainer(ogsa.ContainerConfig{
		Name:          cfg.Name,
		Credential:    cfg.Credential,
		TrustStore:    cfg.Trust,
		Authorizer:    cfg.Authorizer,
		Audit:         audit,
		RejectLimited: cfg.RejectLimited,
	})
	if err != nil {
		return nil, err
	}
	mapper := cfg.Mapper
	if mapper == nil {
		mapper = bridge.NewIdentityMapper()
	}
	s := &Stack{
		Container:            container,
		Audit:                audit,
		Trust:                cfg.Trust,
		CredentialProcessing: secsvc.NewCredentialProcessing(cfg.Trust),
		IdentityMapping:      secsvc.NewIdentityMapping(mapper),
	}
	if cfg.Authorizer != nil {
		s.Authorization = secsvc.NewAuthorization(cfg.Authorizer)
		container.Publish("security/authorization", s.Authorization)
	}
	container.Publish("security/credential-processing", s.CredentialProcessing)
	container.Publish("security/identity-mapping", s.IdentityMapping)
	container.Publish("security/audit", audit)
	return s, nil
}

// Bootstrap builds a complete single-CA grid test/demo environment: a
// CA, a trust store holding it, a host credential, and a stack.
type Bootstrap struct {
	CA    *ca.Authority
	Trust *gridcert.TrustStore
	Host  *gridcert.Credential
	Stack *Stack
}

// NewBootstrap creates the environment. caName and hostName are DNs like
// "/O=Grid/CN=CA" and "/O=Grid/CN=host cluster".
func NewBootstrap(caName, hostName string, authorizer authz.Engine) (*Bootstrap, error) {
	authority, err := ca.New(gridcert.MustParseName(caName), 365*24*time.Hour, ca.DefaultPolicy())
	if err != nil {
		return nil, err
	}
	trust := gridcert.NewTrustStore()
	if err := trust.AddRoot(authority.Certificate()); err != nil {
		return nil, err
	}
	host, err := authority.NewHostEntity(gridcert.MustParseName(hostName), 30*24*time.Hour)
	if err != nil {
		return nil, err
	}
	stack, err := NewStack(StackConfig{
		Name:       hostName,
		Credential: host,
		Trust:      trust,
		Authorizer: authorizer,
	})
	if err != nil {
		return nil, err
	}
	return &Bootstrap{CA: authority, Trust: trust, Host: host, Stack: stack}, nil
}

// Trace records where time went in one secured request — the measurable
// form of Figure 3's numbered steps.
type Trace struct {
	PolicyFetch     time.Duration // step 1
	Conversion      time.Duration // step 2 (zero when no conversion ran)
	TokenProcessing time.Duration // steps 3–4 (context establishment or signing)
	Invocation      time.Duration // delivery + step 5 + service time
	Mechanism       wssec.Mechanism
	Converted       bool
}

// Total sums the phases.
func (t Trace) Total() time.Duration {
	return t.PolicyFetch + t.Conversion + t.TokenProcessing + t.Invocation
}

// Converter obtains an acceptable credential when the requestor's current
// one does not satisfy the target's policy (Figure 3 step 2) — e.g. a KCA
// exchange or a CAS assertion embedding.
type Converter func() (*gridcert.Credential, error)

// Requestor is the client-side hosting environment of Figure 3: it
// inspects the target's published policy, converts credentials if needed,
// selects and runs the token-processing mechanism, and delivers the
// request. The application supplies only (handle, op, body).
type Requestor struct {
	// Credential is the requestor's current credential (may be nil if a
	// Converter can produce one).
	Credential *gridcert.Credential
	// Trust validates targets.
	Trust *gridcert.TrustStore
	// Convert is consulted when the target's trust roots do not cover the
	// current credential; nil disables conversion.
	Convert Converter
	// PreferStateless picks per-message signing over secure conversation
	// when the target allows both.
	PreferStateless bool

	client *ogsa.Client
}

// capabilities derives the client capabilities from a credential.
func (r *Requestor) capabilities(cred *gridcert.Credential) wssec.ClientCapabilities {
	caps := wssec.ClientCapabilities{
		Mechanisms: []wssec.Mechanism{wssec.MechSecureConversation, wssec.MechMessageSignature},
		TokenTypes: []string{"gsi:proxy"},
		CanEncrypt: true,
	}
	if r.PreferStateless {
		caps.Mechanisms = []wssec.Mechanism{wssec.MechMessageSignature, wssec.MechSecureConversation}
	}
	// Fingerprints of roots that could have issued this credential: the
	// client claims the roots in its own store (it can chain to any of
	// them that actually signed its chain; the serving side re-verifies).
	top := cred.Chain[len(cred.Chain)-1]
	if root, ok := r.Trust.Root(top.Issuer); ok {
		fp := root.Fingerprint()
		caps.TrustRootFingerprints = append(caps.TrustRootFingerprints, fmt.Sprintf("%x", fp[:]))
	}
	if root, ok := r.Trust.Root(top.Subject); ok {
		fp := root.Fingerprint()
		caps.TrustRootFingerprints = append(caps.TrustRootFingerprints, fmt.Sprintf("%x", fp[:]))
	}
	return caps
}

// Invoke runs the full Figure-3 pipeline against a target transport.
func (r *Requestor) Invoke(transport wssec.Transport, handle, op string, body []byte) ([]byte, Trace, error) {
	return r.InvokeContext(context.Background(), transport, handle, op, body)
}

// InvokeContext is Invoke honoring ctx: the pipeline aborts between the
// policy-fetch, conversion, token-processing, and invocation phases when
// the context ends, returning ctx.Err().
func (r *Requestor) InvokeContext(ctx context.Context, transport wssec.Transport, handle, op string, body []byte) ([]byte, Trace, error) {
	var trace Trace

	if err := ctx.Err(); err != nil {
		return nil, trace, err
	}
	// Step 1: retrieve and inspect the target's security policy.
	t0 := time.Now()
	pol, err := wssec.FetchPolicy(transport)
	if err != nil {
		return nil, trace, fmt.Errorf("core: fetching policy: %w", err)
	}
	trace.PolicyFetch = time.Since(t0)
	if err := ctx.Err(); err != nil {
		return nil, trace, err
	}

	// Step 2: determine whether current credentials satisfy the policy;
	// convert if not.
	cred := r.Credential
	var agreement wssec.Agreement
	if cred != nil {
		agreement, err = wssec.Intersect(r.capabilities(cred), pol)
	} else {
		err = errors.New("core: no credential")
	}
	if err != nil {
		if r.Convert == nil {
			return nil, trace, fmt.Errorf("core: policy mismatch and no converter: %w", err)
		}
		t1 := time.Now()
		cred, err = r.Convert()
		if err != nil {
			return nil, trace, fmt.Errorf("core: credential conversion: %w", err)
		}
		trace.Conversion = time.Since(t1)
		trace.Converted = true
		agreement, err = wssec.Intersect(r.capabilities(cred), pol)
		if err != nil {
			return nil, trace, fmt.Errorf("core: converted credential still unacceptable: %w", err)
		}
	}
	trace.Mechanism = agreement.Mechanism
	if err := ctx.Err(); err != nil {
		return nil, trace, err
	}

	// Steps 3–4: token processing, then delivery; step 5 (authorization)
	// runs inside the target container.
	client := &ogsa.Client{Transport: transport, Credential: cred, TrustStore: r.Trust}
	switch agreement.Mechanism {
	case wssec.MechSecureConversation:
		t2 := time.Now()
		// Warm the conversation so token processing is visible separately
		// from the invocation.
		if _, err := client.InvokeSecure(handle, "FindServiceData", []byte("__warmup__")); err != nil {
			// FindServiceData may fail for services without that SDE; the
			// context is established regardless. Only transport-level
			// failures abort.
			var noCtx interface{ Error() string }
			_ = noCtx
		}
		trace.TokenProcessing = time.Since(t2)
		if err := ctx.Err(); err != nil {
			return nil, trace, err
		}
		t3 := time.Now()
		out, err := client.InvokeSecure(handle, op, body)
		trace.Invocation = time.Since(t3)
		return out, trace, err
	case wssec.MechMessageSignature:
		t3 := time.Now()
		out, err := client.InvokeSigned(handle, op, body)
		trace.Invocation = time.Since(t3)
		return out, trace, err
	default:
		return nil, trace, fmt.Errorf("core: unsupported mechanism %q", agreement.Mechanism)
	}
}
