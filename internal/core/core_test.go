package core

import (
	"strings"
	"testing"
	"time"

	"repro/internal/authz"
	"repro/internal/bridge"
	"repro/internal/ca"
	"repro/internal/gridcert"
	"repro/internal/kerberos"
	"repro/internal/ogsa"
	"repro/internal/soap"
	"repro/internal/wssec"
)

// demoService echoes with its caller's identity.
type demoService struct{ *ogsa.Base }

func newDemoService() *demoService {
	s := &demoService{Base: ogsa.NewBase()}
	s.Data.Set("__warmup__", []byte("ok"))
	return s
}

func (s *demoService) Invoke(call *ogsa.Call) ([]byte, error) {
	if reply, handled, err := s.HandleStandardOp(call); handled {
		return reply, err
	}
	if call.Op == "whoami" {
		return []byte(call.Caller.Name.String()), nil
	}
	return append([]byte("ok:"), call.Body...), nil
}

func TestBootstrapAndStackServices(t *testing.T) {
	boot, err := NewBootstrap("/O=Grid/CN=CA", "/O=Grid/CN=host s1", nil)
	if err != nil {
		t.Fatal(err)
	}
	alice, err := boot.CA.NewEntity(gridcert.MustParseName("/O=Grid/CN=Alice"), 12*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	client := &ogsa.Client{
		Transport:  soap.Pipe(boot.Stack.Container.Dispatcher()),
		Credential: alice,
		TrustStore: boot.Trust,
	}
	// The credential-processing service validates chains.
	reply, err := client.InvokeSigned("security/credential-processing", "ValidateChain",
		gridcert.EncodeChain(alice.Chain))
	if err != nil {
		t.Fatal(err)
	}
	if string(reply) != "/O=Grid/CN=Alice" {
		t.Fatalf("ValidateChain = %q", reply)
	}
	// The audit service saw the calls.
	cnt, err := client.InvokeSigned("security/audit", "Count", nil)
	if err != nil {
		t.Fatal(err)
	}
	if string(cnt) == "0" {
		t.Fatal("audit log empty")
	}
	verify, err := client.InvokeSigned("security/audit", "Verify", nil)
	if err != nil || string(verify) != "intact" {
		t.Fatalf("audit verify: %q %v", verify, err)
	}
}

func TestFigure3PipelineStateful(t *testing.T) {
	boot, err := NewBootstrap("/O=Grid/CN=CA", "/O=Grid/CN=host s1", nil)
	if err != nil {
		t.Fatal(err)
	}
	boot.Stack.Container.Publish("app", newDemoService())
	alice, _ := boot.CA.NewEntity(gridcert.MustParseName("/O=Grid/CN=Alice"), 12*time.Hour)

	req := &Requestor{Credential: alice, Trust: boot.Trust}
	out, trace, err := req.Invoke(soap.Pipe(boot.Stack.Container.Dispatcher()), "app", "whoami", nil)
	if err != nil {
		t.Fatal(err)
	}
	if string(out) != "/O=Grid/CN=Alice" {
		t.Fatalf("out = %q", out)
	}
	if trace.Mechanism != wssec.MechSecureConversation {
		t.Fatalf("mechanism = %q (service prefers wssc)", trace.Mechanism)
	}
	if trace.PolicyFetch <= 0 || trace.TokenProcessing <= 0 || trace.Invocation <= 0 {
		t.Fatalf("trace not populated: %+v", trace)
	}
	if trace.Converted || trace.Conversion != 0 {
		t.Fatalf("unexpected conversion: %+v", trace)
	}
	if trace.Total() < trace.Invocation {
		t.Fatal("Total inconsistent")
	}
}

func TestFigure3PipelineStateless(t *testing.T) {
	boot, err := NewBootstrap("/O=Grid/CN=CA", "/O=Grid/CN=host s1", nil)
	if err != nil {
		t.Fatal(err)
	}
	boot.Stack.Container.Publish("app", newDemoService())
	alice, _ := boot.CA.NewEntity(gridcert.MustParseName("/O=Grid/CN=Alice"), 12*time.Hour)
	req := &Requestor{Credential: alice, Trust: boot.Trust, PreferStateless: true}
	out, trace, err := req.Invoke(soap.Pipe(boot.Stack.Container.Dispatcher()), "app", "whoami", nil)
	if err != nil {
		t.Fatal(err)
	}
	if string(out) != "/O=Grid/CN=Alice" {
		t.Fatalf("out = %q", out)
	}
	// Client preference only reorders *its* list; the service's published
	// preference still picks the mechanism. Verify the field is set.
	if trace.Mechanism == "" {
		t.Fatal("no mechanism recorded")
	}
}

func TestFigure3WithConversion(t *testing.T) {
	// A site user with only Kerberos credentials converts via KCA inside
	// the pipeline (step 2), then the request proceeds.
	boot, err := NewBootstrap("/O=Grid/CN=CA", "/O=Grid/CN=host s1", nil)
	if err != nil {
		t.Fatal(err)
	}
	boot.Stack.Container.Publish("app", newDemoService())

	// Site Kerberos infrastructure + KCA whose CA the host trusts.
	kdc := kerberos.NewKDC("ANL.GOV")
	principal := kdc.RegisterPrincipal("alice", "pw")
	kcaP, kcaKey, _ := kdc.RegisterService("kca/grid")
	kcaAuthority, err := ca.New(gridcert.MustParseName("/O=ANL/CN=KCA"), 24*time.Hour, ca.DefaultPolicy())
	if err != nil {
		t.Fatal(err)
	}
	mapper := bridge.NewIdentityMapper()
	aliceDN := gridcert.MustParseName("/O=ANL/CN=Alice")
	mapper.MapKerberos(aliceDN, principal)
	kca := bridge.NewKCA(kcaAuthority, kerberos.NewService(kcaP, kcaKey), mapper)
	if err := boot.Trust.AddRoot(kcaAuthority.Certificate()); err != nil {
		t.Fatal(err)
	}

	convert := func() (*gridcert.Credential, error) {
		tgt, tgtSess, err := kdc.ASExchange("alice", "pw")
		if err != nil {
			return nil, err
		}
		a1, err := kerberos.NewAuthenticator(principal, tgtSess, time.Now())
		if err != nil {
			return nil, err
		}
		st, stSess, err := kdc.TGSExchange(tgt, a1, "kca/grid")
		if err != nil {
			return nil, err
		}
		ap, err := kerberos.NewAuthenticator(principal, stSess, time.Now())
		if err != nil {
			return nil, err
		}
		return kca.Convert(st, ap)
	}

	req := &Requestor{Credential: nil, Trust: boot.Trust, Convert: convert}
	out, trace, err := req.Invoke(soap.Pipe(boot.Stack.Container.Dispatcher()), "app", "whoami", nil)
	if err != nil {
		t.Fatal(err)
	}
	if string(out) != aliceDN.String() {
		t.Fatalf("out = %q", out)
	}
	if !trace.Converted || trace.Conversion <= 0 {
		t.Fatalf("conversion not traced: %+v", trace)
	}
}

func TestPipelineAuthorizationDeny(t *testing.T) {
	pol := authz.NewPolicy(authz.DenyOverrides).Add(authz.Rule{
		Effect:    authz.EffectPermit,
		Subjects:  []string{"/O=Grid/CN=Alice"},
		Resources: []string{"ogsa:app"},
		Actions:   []string{"whoami", "FindServiceData"},
	})
	boot, err := NewBootstrap("/O=Grid/CN=CA", "/O=Grid/CN=host s1",
		&authz.PolicyEngine{Policy: pol, DefaultDeny: true})
	if err != nil {
		t.Fatal(err)
	}
	boot.Stack.Container.Publish("app", newDemoService())
	alice, _ := boot.CA.NewEntity(gridcert.MustParseName("/O=Grid/CN=Alice"), 12*time.Hour)
	bob, _ := boot.CA.NewEntity(gridcert.MustParseName("/O=Grid/CN=Bob"), 12*time.Hour)

	reqA := &Requestor{Credential: alice, Trust: boot.Trust}
	if _, _, err := reqA.Invoke(soap.Pipe(boot.Stack.Container.Dispatcher()), "app", "whoami", nil); err != nil {
		t.Fatalf("alice: %v", err)
	}
	reqB := &Requestor{Credential: bob, Trust: boot.Trust}
	_, _, err = reqB.Invoke(soap.Pipe(boot.Stack.Container.Dispatcher()), "app", "whoami", nil)
	if err == nil || !strings.Contains(err.Error(), "denied") {
		t.Fatalf("bob: %v", err)
	}
}

func TestRequestorWithoutCredentialOrConverter(t *testing.T) {
	boot, err := NewBootstrap("/O=Grid/CN=CA", "/O=Grid/CN=host s1", nil)
	if err != nil {
		t.Fatal(err)
	}
	req := &Requestor{Trust: boot.Trust}
	_, _, err = req.Invoke(soap.Pipe(boot.Stack.Container.Dispatcher()), "app", "op", nil)
	if err == nil {
		t.Fatal("invocation without credential succeeded")
	}
}

func TestPipelineOverHTTP(t *testing.T) {
	boot, err := NewBootstrap("/O=Grid/CN=CA", "/O=Grid/CN=host s1", nil)
	if err != nil {
		t.Fatal(err)
	}
	boot.Stack.Container.Publish("app", newDemoService())
	srv, err := soap.NewServer("127.0.0.1:0", boot.Stack.Container.Dispatcher())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	alice, _ := boot.CA.NewEntity(gridcert.MustParseName("/O=Grid/CN=Alice"), 12*time.Hour)
	client := &soap.Client{Endpoint: srv.URL()}
	req := &Requestor{Credential: alice, Trust: boot.Trust}
	out, _, err := req.Invoke(client.Call, "app", "whoami", nil)
	if err != nil {
		t.Fatal(err)
	}
	if string(out) != "/O=Grid/CN=Alice" {
		t.Fatalf("out = %q", out)
	}
}

func BenchmarkFigure3PipelineFull(b *testing.B) {
	boot, err := NewBootstrap("/O=Grid/CN=CA", "/O=Grid/CN=host s1", nil)
	if err != nil {
		b.Fatal(err)
	}
	boot.Stack.Container.Publish("app", newDemoService())
	alice, _ := boot.CA.NewEntity(gridcert.MustParseName("/O=Grid/CN=Alice"), 12*time.Hour)
	transport := soap.Pipe(boot.Stack.Container.Dispatcher())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := &Requestor{Credential: alice, Trust: boot.Trust}
		if _, _, err := req.Invoke(transport, "app", "echo", []byte("x")); err != nil {
			b.Fatal(err)
		}
	}
}
