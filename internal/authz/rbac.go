package authz

import (
	"sync"

	"repro/internal/gridcert"
)

// RoleAuthority is a PERMIS-style role-based privilege-management layer
// (paper §4.5 names PERMIS and Akenti as example authorization services):
// subjects are assigned roles, and a role-permission policy maps roles to
// rules. The resulting Engine resolves a requester's roles before
// evaluating the rule set.
type RoleAuthority struct {
	mu          sync.RWMutex
	assignments map[string][]string // DN -> roles
	policy      *Policy
	defaultDeny bool
}

// NewRoleAuthority builds an empty role authority whose decisions default
// to deny.
func NewRoleAuthority() *RoleAuthority {
	return &RoleAuthority{
		assignments: make(map[string][]string),
		policy:      NewPolicy(DenyOverrides),
		defaultDeny: true,
	}
}

// AssignRole grants a role to a subject.
func (ra *RoleAuthority) AssignRole(subject gridcert.Name, role string) {
	ra.mu.Lock()
	defer ra.mu.Unlock()
	key := subject.String()
	for _, r := range ra.assignments[key] {
		if r == role {
			return
		}
	}
	ra.assignments[key] = append(ra.assignments[key], role)
}

// RevokeRole removes a role from a subject.
func (ra *RoleAuthority) RevokeRole(subject gridcert.Name, role string) {
	ra.mu.Lock()
	defer ra.mu.Unlock()
	key := subject.String()
	roles := ra.assignments[key]
	for i, r := range roles {
		if r == role {
			ra.assignments[key] = append(roles[:i], roles[i+1:]...)
			return
		}
	}
}

// RolesOf returns the roles assigned to a subject.
func (ra *RoleAuthority) RolesOf(subject gridcert.Name) []string {
	ra.mu.RLock()
	defer ra.mu.RUnlock()
	return append([]string(nil), ra.assignments[subject.String()]...)
}

// Grant adds a role-permission rule: holders of role may perform the
// actions on the resources.
func (ra *RoleAuthority) Grant(role string, actions, resources []string) {
	ra.policy.Add(Rule{
		ID:        "rbac:" + role,
		Effect:    EffectPermit,
		Roles:     []string{role},
		Actions:   actions,
		Resources: resources,
	})
}

// Forbid adds a role-scoped deny rule (deny-overrides).
func (ra *RoleAuthority) Forbid(role string, actions, resources []string) {
	ra.policy.Add(Rule{
		ID:        "rbac-deny:" + role,
		Effect:    EffectDeny,
		Roles:     []string{role},
		Actions:   actions,
		Resources: resources,
	})
}

// Authorize implements Engine: it resolves the subject's roles, merges
// them with any roles already on the request, and evaluates the policy.
func (ra *RoleAuthority) Authorize(req Request) (Decision, error) {
	req.Roles = append(append([]string(nil), req.Roles...), ra.RolesOf(req.Subject)...)
	d := ra.policy.Evaluate(req)
	if d == NotApplicable && ra.defaultDeny {
		return Deny, nil
	}
	return d, nil
}
