// Package authz implements the grid authorization engine: attribute- and
// identity-based policy rules with pluggable combination algorithms, a
// PERMIS-style role-based layer, and the grid-mapfile. It is consumed
// directly by resources (GT2 style) and wrapped as an OGSA authorization
// service (GT3 style, paper §4.1: "a service that evaluates policy rules
// regarding the decision to allow the attempted actions").
package authz

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"

	"repro/internal/gridcert"
)

// Decision is the outcome of a policy evaluation.
type Decision uint8

const (
	// NotApplicable means no rule matched the request.
	NotApplicable Decision = iota
	// Permit allows the request.
	Permit
	// Deny refuses the request.
	Deny
)

// String names the decision.
func (d Decision) String() string {
	switch d {
	case Permit:
		return "permit"
	case Deny:
		return "deny"
	default:
		return "not-applicable"
	}
}

// Request is an access-control question: may subject perform action on
// resource?
type Request struct {
	// Subject is the requester's grid identity (end-entity DN).
	Subject gridcert.Name
	// Groups and Roles are attributes established out of band (VO
	// membership, RBAC role assignment).
	Groups []string
	Roles  []string
	// Resource names the target, e.g. "gridftp:/data/climate/run1".
	Resource string
	// Action names the operation, e.g. "read", "write", "job-submit".
	Action string
	// Time of the request; zero means now.
	Time time.Time
}

func (r Request) time() time.Time {
	if r.Time.IsZero() {
		return time.Now()
	}
	return r.Time
}

// Effect is a rule's disposition.
type Effect uint8

const (
	// EffectPermit rules grant access.
	EffectPermit Effect = 1
	// EffectDeny rules refuse access.
	EffectDeny Effect = 2
)

// Valid reports whether e is a known effect. The zero value is
// deliberately invalid: a rule whose author forgot the effect must
// never silently permit.
func (e Effect) Valid() bool { return e == EffectPermit || e == EffectDeny }

// Rule is one policy statement. Empty matcher fields match anything.
type Rule struct {
	// ID labels the rule for auditing.
	ID string
	// Effect is Permit or Deny.
	Effect Effect
	// Subjects matches requester DNs ("*" = any; otherwise exact string).
	Subjects []string
	// Groups matches if the requester carries any listed group.
	Groups []string
	// Roles matches if the requester carries any listed role.
	Roles []string
	// Resources matches the target: exact, "*", or prefix pattern
	// "prefix*" (trailing star).
	Resources []string
	// Actions matches operations: exact or "*".
	Actions []string
	// NotBefore/NotAfter bound rule applicability in time (zero = open).
	NotBefore time.Time
	NotAfter  time.Time
}

// Matches reports whether the rule applies to the request.
func (r Rule) Matches(req Request) bool {
	t := req.time()
	if !r.NotBefore.IsZero() && t.Before(r.NotBefore) {
		return false
	}
	if !r.NotAfter.IsZero() && t.After(r.NotAfter) {
		return false
	}
	if !r.subjectMatches(req) {
		return false
	}
	if !matchAny(r.Resources, req.Resource, matchResource) {
		return false
	}
	if !matchAny(r.Actions, req.Action, matchExactOrStar) {
		return false
	}
	return true
}

func (r Rule) subjectMatches(req Request) bool {
	// A rule with no subject/group/role matchers applies to everyone.
	if len(r.Subjects) == 0 && len(r.Groups) == 0 && len(r.Roles) == 0 {
		return true
	}
	subj := req.Subject.String()
	for _, s := range r.Subjects {
		if s == "*" || s == subj {
			return true
		}
	}
	for _, g := range r.Groups {
		for _, have := range req.Groups {
			if g == have {
				return true
			}
		}
	}
	for _, role := range r.Roles {
		for _, have := range req.Roles {
			if role == have {
				return true
			}
		}
	}
	return false
}

func matchAny(patterns []string, value string, match func(pattern, value string) bool) bool {
	if len(patterns) == 0 {
		return true
	}
	for _, p := range patterns {
		if match(p, value) {
			return true
		}
	}
	return false
}

func matchExactOrStar(pattern, value string) bool {
	return pattern == "*" || pattern == value
}

func matchResource(pattern, value string) bool {
	if pattern == "*" || pattern == value {
		return true
	}
	if strings.HasSuffix(pattern, "*") {
		return strings.HasPrefix(value, pattern[:len(pattern)-1])
	}
	return false
}

// Combining selects how multiple matching rules resolve.
type Combining uint8

const (
	// DenyOverrides: any matching deny wins; else any permit permits.
	DenyOverrides Combining = iota
	// PermitOverrides: any matching permit wins; else any deny denies.
	PermitOverrides
	// FirstApplicable: the first matching rule (in order) decides.
	FirstApplicable
)

// Policy is an ordered rule set with a combining algorithm.
type Policy struct {
	mu        sync.RWMutex
	rules     []Rule
	combining Combining
	gen       uint64
	store     Store // nil = in-memory (the zero-dependency default)
}

// Bind routes every subsequent mutation through store: each
// Add/AddChecked/Replace/Remove is journaled before it is applied, and
// a journal error refuses the mutation. Bind once, before the policy
// goes live; replay restored state first, then bind.
func (p *Policy) Bind(store Store) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.store = store
}

// NewPolicy creates a policy with the given combining algorithm.
func NewPolicy(c Combining) *Policy { return &Policy{combining: c} }

// Add appends rules to the policy. Rules with an invalid Effect are a
// programmer error and panic; rules decoded from untrusted input go
// through AddChecked instead.
func (p *Policy) Add(rules ...Rule) *Policy {
	if err := p.AddChecked(rules...); err != nil {
		panic(err)
	}
	return p
}

// AddChecked appends rules, rejecting the whole batch if any rule
// carries an effect other than EffectPermit or EffectDeny. This is the
// entry point for rules that crossed a trust boundary (CAS assertions,
// serialized policy): an attacker-chosen effect byte must fail loudly,
// not decay into an implicit permit.
func (p *Policy) AddChecked(rules ...Rule) error {
	for _, r := range rules {
		if !r.Effect.Valid() {
			return fmt.Errorf("authz: rule %q has invalid effect %d (want EffectPermit or EffectDeny)", r.ID, r.Effect)
		}
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.store != nil {
		if err := p.store.Journal(Mutation{Kind: MutPolicyAdd, Gen: p.gen + 1, Rules: rules}); err != nil {
			return fmt.Errorf("authz: policy mutation not journaled: %w", err)
		}
	}
	p.rules = append(p.rules, rules...)
	p.gen++
	return nil
}

// Replace swaps the entire rule set in one transaction, bumping the
// generation once. The batch is validated first (same rule as
// AddChecked): one bad effect rejects the whole replacement and the
// live rules stay untouched — a reload must never half-apply. An empty
// batch is legal here, unlike for trust roots: "no rules" is a
// meaningful closed-world policy (default-deny engines deny all),
// not a fail-open state.
func (p *Policy) Replace(rules []Rule) error {
	for _, r := range rules {
		if !r.Effect.Valid() {
			return fmt.Errorf("authz: rule %q has invalid effect %d (want EffectPermit or EffectDeny)", r.ID, r.Effect)
		}
	}
	next := append([]Rule(nil), rules...)
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.store != nil {
		if err := p.store.Journal(Mutation{Kind: MutPolicyReplace, Gen: p.gen + 1, Rules: next}); err != nil {
			return fmt.Errorf("authz: policy replacement not journaled: %w", err)
		}
	}
	p.rules = next
	p.gen++
	return nil
}

// Combining reports the policy's combining algorithm. It is fixed at
// construction: Replace swaps rules, never the algorithm, so a reloaded
// policy file declaring a different mode is rejected by the reloader
// rather than silently reinterpreting every rule.
func (p *Policy) Combining() Combining {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.combining
}

// Remove deletes every rule with the given ID, reporting whether any
// was removed. Removal bumps the policy generation, so decision caches
// keyed on it re-evaluate on their very next lookup. On a bound policy
// a journal failure panics; durable callers use RemoveChecked.
func (p *Policy) Remove(id string) bool {
	removed, err := p.RemoveChecked(id)
	if err != nil {
		panic(err)
	}
	return removed
}

// RemoveChecked is Remove surfacing the journal outcome: on a bound
// policy a journal error refuses the removal (the rule stays live —
// fail closed means the log never lags the memory image).
func (p *Policy) RemoveChecked(id string) (bool, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	removed := false
	for _, r := range p.rules {
		if r.ID == id {
			removed = true
			break
		}
	}
	if !removed {
		return false, nil
	}
	if p.store != nil {
		if err := p.store.Journal(Mutation{Kind: MutPolicyRemove, Gen: p.gen + 1, RuleID: id}); err != nil {
			return false, fmt.Errorf("authz: policy removal not journaled: %w", err)
		}
	}
	kept := p.rules[:0]
	for _, r := range p.rules {
		if r.ID != id {
			kept = append(kept, r)
		}
	}
	p.rules = kept
	p.gen++
	return true, nil
}

// applyReplayed applies a journaled policy mutation without journaling,
// restoring the recorded generation (replay path).
func (p *Policy) applyReplayed(m Mutation) error {
	for _, r := range m.Rules {
		if !r.Effect.Valid() {
			return fmt.Errorf("authz: journaled rule %q has invalid effect %d", r.ID, r.Effect)
		}
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	switch m.Kind {
	case MutPolicyAdd:
		p.rules = append(p.rules, m.Rules...)
	case MutPolicyReplace:
		p.rules = append([]Rule(nil), m.Rules...)
	case MutPolicyRemove:
		kept := p.rules[:0]
		for _, r := range p.rules {
			if r.ID != m.RuleID {
				kept = append(kept, r)
			}
		}
		p.rules = kept
	default:
		return fmt.Errorf("authz: mutation kind %d is not a policy mutation", m.Kind)
	}
	p.gen = m.Gen
	return nil
}

// Generation reports the policy revision: it increments on every
// mutation. Cached decisions are only valid for the generation they
// were computed under.
func (p *Policy) Generation() uint64 {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.gen
}

// Len returns the number of rules.
func (p *Policy) Len() int {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return len(p.rules)
}

// Rules returns a copy of the rule list.
func (p *Policy) Rules() []Rule {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return append([]Rule(nil), p.rules...)
}

// Evaluate runs the policy over the request.
func (p *Policy) Evaluate(req Request) Decision {
	p.mu.RLock()
	defer p.mu.RUnlock()
	var sawPermit, sawDeny bool
	for _, r := range p.rules {
		if !r.Matches(req) {
			continue
		}
		// Fail closed: only EffectPermit ever permits. Any other effect —
		// EffectDeny or an unknown value that slipped past Add validation
		// (e.g. a rule built directly or decoded before checking) — denies.
		switch p.combining {
		case FirstApplicable:
			if r.Effect == EffectPermit {
				return Permit
			}
			return Deny
		case DenyOverrides:
			if r.Effect != EffectPermit {
				return Deny
			}
			sawPermit = true
		case PermitOverrides:
			if r.Effect == EffectPermit {
				return Permit
			}
			sawDeny = true
		}
	}
	switch {
	case sawPermit:
		return Permit
	case sawDeny:
		return Deny
	default:
		return NotApplicable
	}
}

// Engine is the authorization-service interface (OGSA roadmap §4.1).
type Engine interface {
	Authorize(req Request) (Decision, error)
}

// PolicyEngine adapts a Policy to the Engine interface with a default
// decision for NotApplicable.
type PolicyEngine struct {
	Policy *Policy
	// DefaultDeny treats NotApplicable as Deny (closed world). Resources
	// are closed-world by default in GSI.
	DefaultDeny bool
}

// Authorize implements Engine.
func (e *PolicyEngine) Authorize(req Request) (Decision, error) {
	if e.Policy == nil {
		return Deny, errors.New("authz: engine has no policy")
	}
	d := e.Policy.Evaluate(req)
	if d == NotApplicable && e.DefaultDeny {
		return Deny, nil
	}
	return d, nil
}

// Combine computes the resource-side conjunction of several decisions:
// the request is permitted only if every constituent policy permits it.
// This is the CAS enforcement rule of Figure 2 — "the resource checks
// both local policy and the VO policy" — generalised to N layers.
func Combine(decisions ...Decision) Decision {
	if len(decisions) == 0 {
		return NotApplicable
	}
	sawNA := false
	for _, d := range decisions {
		switch d {
		case Permit:
			// Contributes a permit; the conjunction stays open.
		case NotApplicable:
			sawNA = true
		default:
			// Deny, or a decision value outside the enum: fail closed.
			return Deny
		}
	}
	if sawNA {
		return NotApplicable
	}
	return Permit
}
