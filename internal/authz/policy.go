// Package authz implements the grid authorization engine: attribute- and
// identity-based policy rules with pluggable combination algorithms, a
// PERMIS-style role-based layer, and the grid-mapfile. It is consumed
// directly by resources (GT2 style) and wrapped as an OGSA authorization
// service (GT3 style, paper §4.1: "a service that evaluates policy rules
// regarding the decision to allow the attempted actions").
package authz

import (
	"errors"
	"strings"
	"sync"
	"time"

	"repro/internal/gridcert"
)

// Decision is the outcome of a policy evaluation.
type Decision uint8

const (
	// NotApplicable means no rule matched the request.
	NotApplicable Decision = iota
	// Permit allows the request.
	Permit
	// Deny refuses the request.
	Deny
)

// String names the decision.
func (d Decision) String() string {
	switch d {
	case Permit:
		return "permit"
	case Deny:
		return "deny"
	default:
		return "not-applicable"
	}
}

// Request is an access-control question: may subject perform action on
// resource?
type Request struct {
	// Subject is the requester's grid identity (end-entity DN).
	Subject gridcert.Name
	// Groups and Roles are attributes established out of band (VO
	// membership, RBAC role assignment).
	Groups []string
	Roles  []string
	// Resource names the target, e.g. "gridftp:/data/climate/run1".
	Resource string
	// Action names the operation, e.g. "read", "write", "job-submit".
	Action string
	// Time of the request; zero means now.
	Time time.Time
}

func (r Request) time() time.Time {
	if r.Time.IsZero() {
		return time.Now()
	}
	return r.Time
}

// Effect is a rule's disposition.
type Effect uint8

const (
	// EffectPermit rules grant access.
	EffectPermit Effect = 1
	// EffectDeny rules refuse access.
	EffectDeny Effect = 2
)

// Rule is one policy statement. Empty matcher fields match anything.
type Rule struct {
	// ID labels the rule for auditing.
	ID string
	// Effect is Permit or Deny.
	Effect Effect
	// Subjects matches requester DNs ("*" = any; otherwise exact string).
	Subjects []string
	// Groups matches if the requester carries any listed group.
	Groups []string
	// Roles matches if the requester carries any listed role.
	Roles []string
	// Resources matches the target: exact, "*", or prefix pattern
	// "prefix*" (trailing star).
	Resources []string
	// Actions matches operations: exact or "*".
	Actions []string
	// NotBefore/NotAfter bound rule applicability in time (zero = open).
	NotBefore time.Time
	NotAfter  time.Time
}

// Matches reports whether the rule applies to the request.
func (r Rule) Matches(req Request) bool {
	t := req.time()
	if !r.NotBefore.IsZero() && t.Before(r.NotBefore) {
		return false
	}
	if !r.NotAfter.IsZero() && t.After(r.NotAfter) {
		return false
	}
	if !r.subjectMatches(req) {
		return false
	}
	if !matchAny(r.Resources, req.Resource, matchResource) {
		return false
	}
	if !matchAny(r.Actions, req.Action, matchExactOrStar) {
		return false
	}
	return true
}

func (r Rule) subjectMatches(req Request) bool {
	// A rule with no subject/group/role matchers applies to everyone.
	if len(r.Subjects) == 0 && len(r.Groups) == 0 && len(r.Roles) == 0 {
		return true
	}
	subj := req.Subject.String()
	for _, s := range r.Subjects {
		if s == "*" || s == subj {
			return true
		}
	}
	for _, g := range r.Groups {
		for _, have := range req.Groups {
			if g == have {
				return true
			}
		}
	}
	for _, role := range r.Roles {
		for _, have := range req.Roles {
			if role == have {
				return true
			}
		}
	}
	return false
}

func matchAny(patterns []string, value string, match func(pattern, value string) bool) bool {
	if len(patterns) == 0 {
		return true
	}
	for _, p := range patterns {
		if match(p, value) {
			return true
		}
	}
	return false
}

func matchExactOrStar(pattern, value string) bool {
	return pattern == "*" || pattern == value
}

func matchResource(pattern, value string) bool {
	if pattern == "*" || pattern == value {
		return true
	}
	if strings.HasSuffix(pattern, "*") {
		return strings.HasPrefix(value, pattern[:len(pattern)-1])
	}
	return false
}

// Combining selects how multiple matching rules resolve.
type Combining uint8

const (
	// DenyOverrides: any matching deny wins; else any permit permits.
	DenyOverrides Combining = iota
	// PermitOverrides: any matching permit wins; else any deny denies.
	PermitOverrides
	// FirstApplicable: the first matching rule (in order) decides.
	FirstApplicable
)

// Policy is an ordered rule set with a combining algorithm.
type Policy struct {
	mu        sync.RWMutex
	rules     []Rule
	combining Combining
}

// NewPolicy creates a policy with the given combining algorithm.
func NewPolicy(c Combining) *Policy { return &Policy{combining: c} }

// Add appends rules to the policy.
func (p *Policy) Add(rules ...Rule) *Policy {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.rules = append(p.rules, rules...)
	return p
}

// Len returns the number of rules.
func (p *Policy) Len() int {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return len(p.rules)
}

// Rules returns a copy of the rule list.
func (p *Policy) Rules() []Rule {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return append([]Rule(nil), p.rules...)
}

// Evaluate runs the policy over the request.
func (p *Policy) Evaluate(req Request) Decision {
	p.mu.RLock()
	defer p.mu.RUnlock()
	var sawPermit, sawDeny bool
	for _, r := range p.rules {
		if !r.Matches(req) {
			continue
		}
		switch p.combining {
		case FirstApplicable:
			if r.Effect == EffectDeny {
				return Deny
			}
			return Permit
		case DenyOverrides:
			if r.Effect == EffectDeny {
				return Deny
			}
			sawPermit = true
		case PermitOverrides:
			if r.Effect == EffectPermit {
				return Permit
			}
			sawDeny = true
		}
	}
	switch {
	case sawPermit:
		return Permit
	case sawDeny:
		return Deny
	default:
		return NotApplicable
	}
}

// Engine is the authorization-service interface (OGSA roadmap §4.1).
type Engine interface {
	Authorize(req Request) (Decision, error)
}

// PolicyEngine adapts a Policy to the Engine interface with a default
// decision for NotApplicable.
type PolicyEngine struct {
	Policy *Policy
	// DefaultDeny treats NotApplicable as Deny (closed world). Resources
	// are closed-world by default in GSI.
	DefaultDeny bool
}

// Authorize implements Engine.
func (e *PolicyEngine) Authorize(req Request) (Decision, error) {
	if e.Policy == nil {
		return Deny, errors.New("authz: engine has no policy")
	}
	d := e.Policy.Evaluate(req)
	if d == NotApplicable && e.DefaultDeny {
		return Deny, nil
	}
	return d, nil
}

// Combine computes the resource-side conjunction of several decisions:
// the request is permitted only if every constituent policy permits it.
// This is the CAS enforcement rule of Figure 2 — "the resource checks
// both local policy and the VO policy" — generalised to N layers.
func Combine(decisions ...Decision) Decision {
	if len(decisions) == 0 {
		return NotApplicable
	}
	sawNA := false
	for _, d := range decisions {
		switch d {
		case Deny:
			return Deny
		case NotApplicable:
			sawNA = true
		}
	}
	if sawNA {
		return NotApplicable
	}
	return Permit
}
