package authz

import (
	"testing"
	"testing/quick"
	"time"

	"repro/internal/gridcert"
)

var (
	alice = gridcert.MustParseName("/O=Grid/CN=Alice")
	bob   = gridcert.MustParseName("/O=Grid/CN=Bob")
)

func TestRuleMatching(t *testing.T) {
	r := Rule{
		Effect:    EffectPermit,
		Subjects:  []string{"/O=Grid/CN=Alice"},
		Resources: []string{"data:/climate/*"},
		Actions:   []string{"read"},
	}
	cases := []struct {
		req  Request
		want bool
	}{
		{Request{Subject: alice, Resource: "data:/climate/run1", Action: "read"}, true},
		{Request{Subject: alice, Resource: "data:/climate/", Action: "read"}, true},
		{Request{Subject: alice, Resource: "data:/physics/run1", Action: "read"}, false},
		{Request{Subject: alice, Resource: "data:/climate/run1", Action: "write"}, false},
		{Request{Subject: bob, Resource: "data:/climate/run1", Action: "read"}, false},
	}
	for i, c := range cases {
		if got := r.Matches(c.req); got != c.want {
			t.Errorf("case %d: Matches = %v, want %v", i, got, c.want)
		}
	}
}

func TestRuleWildcards(t *testing.T) {
	r := Rule{Effect: EffectPermit, Subjects: []string{"*"}, Resources: []string{"*"}, Actions: []string{"*"}}
	if !r.Matches(Request{Subject: bob, Resource: "anything", Action: "nuke"}) {
		t.Fatal("universal rule did not match")
	}
	// Empty matchers also match everything.
	empty := Rule{Effect: EffectPermit}
	if !empty.Matches(Request{Subject: alice, Resource: "x", Action: "y"}) {
		t.Fatal("empty rule did not match")
	}
}

func TestRuleGroupsAndRoles(t *testing.T) {
	r := Rule{Effect: EffectPermit, Groups: []string{"climate-vo"}, Actions: []string{"read"}}
	if !r.Matches(Request{Subject: bob, Groups: []string{"climate-vo"}, Resource: "x", Action: "read"}) {
		t.Fatal("group match failed")
	}
	if r.Matches(Request{Subject: bob, Groups: []string{"other"}, Resource: "x", Action: "read"}) {
		t.Fatal("wrong group matched")
	}
	rr := Rule{Effect: EffectPermit, Roles: []string{"admin"}}
	if !rr.Matches(Request{Subject: bob, Roles: []string{"admin"}, Resource: "x", Action: "y"}) {
		t.Fatal("role match failed")
	}
}

func TestRuleTimeWindow(t *testing.T) {
	now := time.Now()
	r := Rule{
		Effect:    EffectPermit,
		NotBefore: now.Add(-time.Hour),
		NotAfter:  now.Add(time.Hour),
	}
	if !r.Matches(Request{Subject: alice, Resource: "x", Action: "y", Time: now}) {
		t.Fatal("in-window request rejected")
	}
	if r.Matches(Request{Subject: alice, Resource: "x", Action: "y", Time: now.Add(2 * time.Hour)}) {
		t.Fatal("out-of-window request matched")
	}
}

func TestCombiningAlgorithms(t *testing.T) {
	permit := Rule{ID: "p", Effect: EffectPermit, Actions: []string{"read"}}
	deny := Rule{ID: "d", Effect: EffectDeny, Actions: []string{"read"}}
	req := Request{Subject: alice, Resource: "x", Action: "read"}

	dOver := NewPolicy(DenyOverrides).Add(permit, deny)
	if got := dOver.Evaluate(req); got != Deny {
		t.Fatalf("DenyOverrides = %v", got)
	}
	pOver := NewPolicy(PermitOverrides).Add(deny, permit)
	if got := pOver.Evaluate(req); got != Permit {
		t.Fatalf("PermitOverrides = %v", got)
	}
	first := NewPolicy(FirstApplicable).Add(permit, deny)
	if got := first.Evaluate(req); got != Permit {
		t.Fatalf("FirstApplicable = %v", got)
	}
	firstDeny := NewPolicy(FirstApplicable).Add(deny, permit)
	if got := firstDeny.Evaluate(req); got != Deny {
		t.Fatalf("FirstApplicable(deny first) = %v", got)
	}
	// No matching rule.
	empty := NewPolicy(DenyOverrides)
	if got := empty.Evaluate(req); got != NotApplicable {
		t.Fatalf("empty policy = %v", got)
	}
}

func TestPolicyEngineDefaultDeny(t *testing.T) {
	e := &PolicyEngine{Policy: NewPolicy(DenyOverrides), DefaultDeny: true}
	d, err := e.Authorize(Request{Subject: alice, Resource: "x", Action: "y"})
	if err != nil || d != Deny {
		t.Fatalf("default deny: %v %v", d, err)
	}
	open := &PolicyEngine{Policy: NewPolicy(DenyOverrides)}
	d, err = open.Authorize(Request{Subject: alice, Resource: "x", Action: "y"})
	if err != nil || d != NotApplicable {
		t.Fatalf("open world: %v %v", d, err)
	}
	nilEngine := &PolicyEngine{}
	if _, err := nilEngine.Authorize(Request{}); err == nil {
		t.Fatal("engine without policy did not error")
	}
}

func TestCombineConjunction(t *testing.T) {
	cases := []struct {
		in   []Decision
		want Decision
	}{
		{[]Decision{Permit, Permit}, Permit},
		{[]Decision{Permit, Deny}, Deny},
		{[]Decision{Deny, Permit}, Deny},
		{[]Decision{Permit, NotApplicable}, NotApplicable},
		{[]Decision{NotApplicable, Deny}, Deny},
		{nil, NotApplicable},
	}
	for i, c := range cases {
		if got := Combine(c.in...); got != c.want {
			t.Errorf("case %d: Combine(%v) = %v, want %v", i, c.in, got, c.want)
		}
	}
}

func TestRoleAuthority(t *testing.T) {
	ra := NewRoleAuthority()
	ra.Grant("operator", []string{"job-submit"}, []string{"gram:/cluster/*"})
	ra.AssignRole(alice, "operator")

	d, err := ra.Authorize(Request{Subject: alice, Resource: "gram:/cluster/node1", Action: "job-submit"})
	if err != nil || d != Permit {
		t.Fatalf("operator submit: %v %v", d, err)
	}
	// Bob has no role.
	d, _ = ra.Authorize(Request{Subject: bob, Resource: "gram:/cluster/node1", Action: "job-submit"})
	if d != Deny {
		t.Fatalf("roleless subject = %v", d)
	}
	// Revoke and retry.
	ra.RevokeRole(alice, "operator")
	d, _ = ra.Authorize(Request{Subject: alice, Resource: "gram:/cluster/node1", Action: "job-submit"})
	if d != Deny {
		t.Fatalf("after revoke = %v", d)
	}
}

func TestRoleAuthorityForbidOverrides(t *testing.T) {
	ra := NewRoleAuthority()
	ra.Grant("member", []string{"*"}, []string{"data:/*"})
	ra.Forbid("suspended", []string{"*"}, []string{"*"})
	ra.AssignRole(alice, "member")
	ra.AssignRole(alice, "suspended")
	d, _ := ra.Authorize(Request{Subject: alice, Resource: "data:/set", Action: "read"})
	if d != Deny {
		t.Fatalf("suspended member = %v, want deny-overrides", d)
	}
}

func TestRoleAssignmentIdempotent(t *testing.T) {
	ra := NewRoleAuthority()
	ra.AssignRole(alice, "x")
	ra.AssignRole(alice, "x")
	if got := ra.RolesOf(alice); len(got) != 1 {
		t.Fatalf("roles = %v", got)
	}
}

func TestGridMapRoundTrip(t *testing.T) {
	g := NewGridMap()
	g.Add(alice, "alice")
	g.Add(bob, "bsmith")
	text := g.Serialize()
	parsed, err := ParseGridMap(text)
	if err != nil {
		t.Fatal(err)
	}
	if parsed.Len() != 2 {
		t.Fatalf("parsed %d entries", parsed.Len())
	}
	if acct, ok := parsed.Lookup(bob); !ok || acct != "bsmith" {
		t.Fatalf("Lookup(bob) = %q %v", acct, ok)
	}
}

func TestGridMapParseEdgeCases(t *testing.T) {
	g, err := ParseGridMap("# comment\n\n\"/O=Grid/CN=X\" xacct trailing ignored\n")
	if err != nil {
		t.Fatal(err)
	}
	if acct, ok := g.Lookup(gridcert.MustParseName("/O=Grid/CN=X")); !ok || acct != "xacct" {
		t.Fatalf("got %q %v", acct, ok)
	}
	for _, bad := range []string{
		"/O=Grid/CN=X xacct", // unquoted
		`"/O=Grid/CN=X`,      // unterminated
		`"/O=Grid/CN=X"`,     // missing account
		`"garbage" acct`,     // unparseable DN
	} {
		if _, err := ParseGridMap(bad); err == nil {
			t.Errorf("accepted %q", bad)
		}
	}
}

func TestGridMapRemove(t *testing.T) {
	g := NewGridMap()
	g.Add(alice, "alice")
	g.Remove(alice)
	if _, ok := g.Lookup(alice); ok {
		t.Fatal("entry survived Remove")
	}
}

// Property: Combine is order-insensitive for Permit/Deny inputs.
func TestPropertyCombineCommutative(t *testing.T) {
	f := func(perm []bool) bool {
		ds := make([]Decision, len(perm))
		for i, p := range perm {
			if p {
				ds[i] = Permit
			} else {
				ds[i] = Deny
			}
		}
		fwd := Combine(ds...)
		rev := make([]Decision, len(ds))
		for i := range ds {
			rev[i] = ds[len(ds)-1-i]
		}
		return fwd == Combine(rev...)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: a DenyOverrides policy never permits a request that any
// matching rule denies.
func TestPropertyDenyOverridesSafety(t *testing.T) {
	f := func(includeDeny bool, nPermit uint8) bool {
		p := NewPolicy(DenyOverrides)
		for i := 0; i < int(nPermit%8); i++ {
			p.Add(Rule{Effect: EffectPermit})
		}
		if includeDeny {
			p.Add(Rule{Effect: EffectDeny})
		}
		d := p.Evaluate(Request{Subject: alice, Resource: "x", Action: "y"})
		if includeDeny {
			return d == Deny
		}
		return d != Deny
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkPolicyEvaluate1000Rules(b *testing.B) {
	p := NewPolicy(DenyOverrides)
	for i := 0; i < 1000; i++ {
		p.Add(Rule{
			Effect:    EffectPermit,
			Subjects:  []string{"/O=Grid/CN=User" + string(rune('A'+i%26))},
			Resources: []string{"data:/set/*"},
			Actions:   []string{"read"},
		})
	}
	req := Request{Subject: alice, Resource: "data:/set/1", Action: "read"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Evaluate(req)
	}
}
