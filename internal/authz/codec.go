package authz

import (
	"encoding/json"
	"fmt"
	"time"
)

// JSON policy-file codec: the hand-editable on-disk form of a Policy,
// consumed by the hot-reload path. Effects and the combining algorithm
// travel as strings so a typo fails decoding loudly instead of decaying
// into a numeric effect the fail-closed evaluator would silently deny
// (or worse, permit). The wire form deliberately mirrors Rule field for
// field; times use RFC 3339.

type policyFile struct {
	Combining string     `json:"combining"`
	Rules     []ruleFile `json:"rules"`
}

type ruleFile struct {
	ID        string    `json:"id,omitempty"`
	Effect    string    `json:"effect"`
	Subjects  []string  `json:"subjects,omitempty"`
	Groups    []string  `json:"groups,omitempty"`
	Roles     []string  `json:"roles,omitempty"`
	Resources []string  `json:"resources,omitempty"`
	Actions   []string  `json:"actions,omitempty"`
	NotBefore time.Time `json:"not_before"`
	NotAfter  time.Time `json:"not_after"`
}

var combiningNames = map[Combining]string{
	DenyOverrides:   "deny-overrides",
	PermitOverrides: "permit-overrides",
	FirstApplicable: "first-applicable",
}

// EncodePolicyJSON renders the policy's rules and combining algorithm
// as indented JSON suitable for a watched policy file.
func (p *Policy) EncodePolicyJSON() ([]byte, error) {
	p.mu.RLock()
	rules := append([]Rule(nil), p.rules...)
	combining := p.combining
	p.mu.RUnlock()
	name, ok := combiningNames[combining]
	if !ok {
		return nil, fmt.Errorf("authz: unknown combining algorithm %d", combining)
	}
	pf := policyFile{Combining: name, Rules: make([]ruleFile, 0, len(rules))}
	for _, r := range rules {
		effect := "permit"
		if r.Effect == EffectDeny {
			effect = "deny"
		} else if r.Effect != EffectPermit {
			return nil, fmt.Errorf("authz: rule %q has invalid effect %d", r.ID, r.Effect)
		}
		pf.Rules = append(pf.Rules, ruleFile{
			ID:        r.ID,
			Effect:    effect,
			Subjects:  r.Subjects,
			Groups:    r.Groups,
			Roles:     r.Roles,
			Resources: r.Resources,
			Actions:   r.Actions,
			NotBefore: r.NotBefore,
			NotAfter:  r.NotAfter,
		})
	}
	return json.MarshalIndent(pf, "", "  ")
}

// DecodePolicyJSON parses a policy file, returning the rules and the
// combining algorithm. Unknown fields, effects, and combining names are
// errors: a policy file that crossed a trust boundary must fail loudly.
func DecodePolicyJSON(data []byte) ([]Rule, Combining, error) {
	var pf policyFile
	if err := json.Unmarshal(data, &pf); err != nil {
		return nil, 0, fmt.Errorf("authz: policy file: %w", err)
	}
	var combining Combining
	switch pf.Combining {
	case "deny-overrides", "": // closed-world default
		combining = DenyOverrides
	case "permit-overrides":
		combining = PermitOverrides
	case "first-applicable":
		combining = FirstApplicable
	default:
		return nil, 0, fmt.Errorf("authz: policy file: unknown combining algorithm %q", pf.Combining)
	}
	rules := make([]Rule, 0, len(pf.Rules))
	for i, rf := range pf.Rules {
		var effect Effect
		switch rf.Effect {
		case "permit":
			effect = EffectPermit
		case "deny":
			effect = EffectDeny
		default:
			return nil, 0, fmt.Errorf("authz: policy file: rule %d (%q) has effect %q (want permit or deny)", i, rf.ID, rf.Effect)
		}
		rules = append(rules, Rule{
			ID:        rf.ID,
			Effect:    effect,
			Subjects:  rf.Subjects,
			Groups:    rf.Groups,
			Roles:     rf.Roles,
			Resources: rf.Resources,
			Actions:   rf.Actions,
			NotBefore: rf.NotBefore,
			NotAfter:  rf.NotAfter,
		})
	}
	return rules, combining, nil
}
