package authz

import (
	"errors"
	"testing"
	"time"

	"repro/internal/gridcert"
)

// recordingStore journals into memory; failAfter (when >0) makes the
// n+1'th Journal call fail, for refusal-path tests.
type recordingStore struct {
	journal   []Mutation
	failAfter int
	err       error
}

func (s *recordingStore) Journal(m Mutation) error {
	if s.err != nil && len(s.journal) >= s.failAfter {
		return s.err
	}
	s.journal = append(s.journal, m)
	return nil
}

func mustName(t *testing.T, s string) gridcert.Name {
	t.Helper()
	n, err := gridcert.ParseName(s)
	if err != nil {
		t.Fatalf("ParseName(%q): %v", s, err)
	}
	return n
}

func TestPolicyJournalThenApply(t *testing.T) {
	st := &recordingStore{}
	p := NewPolicy(DenyOverrides)
	p.Bind(st)

	p.Add(Rule{ID: "r1", Effect: EffectPermit, Resources: []string{"*"}, Actions: []string{"*"}})
	if err := p.Replace([]Rule{
		{ID: "r2", Effect: EffectDeny, Resources: []string{"*"}, Actions: []string{"*"}},
		{ID: "r3", Effect: EffectPermit, Resources: []string{"jobs"}, Actions: []string{"submit"}},
	}); err != nil {
		t.Fatalf("Replace: %v", err)
	}
	if removed, err := p.RemoveChecked("r2"); err != nil || !removed {
		t.Fatalf("RemoveChecked: removed=%v err=%v", removed, err)
	}
	// Removing an absent rule must not journal or bump the generation.
	if removed, err := p.RemoveChecked("ghost"); err != nil || removed {
		t.Fatalf("RemoveChecked(ghost): removed=%v err=%v", removed, err)
	}

	if len(st.journal) != 3 {
		t.Fatalf("journal has %d mutations, want 3", len(st.journal))
	}
	wantKinds := []MutationKind{MutPolicyAdd, MutPolicyReplace, MutPolicyRemove}
	for i, m := range st.journal {
		if m.Kind != wantKinds[i] {
			t.Fatalf("journal[%d].Kind = %d, want %d", i, m.Kind, wantKinds[i])
		}
		if m.Gen != uint64(i+1) {
			t.Fatalf("journal[%d].Gen = %d, want %d", i, m.Gen, i+1)
		}
	}
	if p.Generation() != 3 {
		t.Fatalf("Generation = %d, want 3", p.Generation())
	}
}

func TestPolicyJournalErrorRefusesMutation(t *testing.T) {
	boom := errors.New("disk full")
	st := &recordingStore{failAfter: 1, err: boom}
	p := NewPolicy(DenyOverrides)
	p.Add(Rule{ID: "keep", Effect: EffectPermit, Resources: []string{"*"}, Actions: []string{"*"}})
	p.Bind(st)

	p.Add(Rule{ID: "ok", Effect: EffectPermit}) // journal slot 1: succeeds
	if err := p.AddChecked(Rule{ID: "lost", Effect: EffectPermit}); !errors.Is(err, boom) {
		t.Fatalf("AddChecked after journal failure: err=%v, want %v", err, boom)
	}
	if err := p.Replace(nil); !errors.Is(err, boom) {
		t.Fatalf("Replace after journal failure: err=%v, want %v", err, boom)
	}
	if _, err := p.RemoveChecked("keep"); !errors.Is(err, boom) {
		t.Fatalf("RemoveChecked after journal failure: err=%v, want %v", err, boom)
	}
	// State untouched by the refused mutations.
	if p.Len() != 2 {
		t.Fatalf("Len = %d, want 2 (refused mutations must not apply)", p.Len())
	}
	if p.Generation() != 2 {
		t.Fatalf("Generation = %d, want 2", p.Generation())
	}
}

func TestGridMapJournalThenApply(t *testing.T) {
	st := &recordingStore{}
	g := NewGridMap()
	g.Bind(st)

	alice := mustName(t, "/O=Grid/CN=Alice")
	bob := mustName(t, "/O=Grid/CN=Bob")
	g.Add(alice, "alice")
	g.Add(bob, "bob")
	fresh := NewGridMap()
	fresh.Add(alice, "alice2")
	if err := g.Replace(fresh); err != nil {
		t.Fatalf("Replace: %v", err)
	}
	if err := g.RemoveChecked(alice); err != nil {
		t.Fatalf("RemoveChecked: %v", err)
	}
	// Absent DN: no journal entry, no generation bump.
	if err := g.RemoveChecked(bob); err != nil {
		t.Fatalf("RemoveChecked(absent): %v", err)
	}

	wantKinds := []MutationKind{MutGridMapAdd, MutGridMapAdd, MutGridMapReplace, MutGridMapRemove}
	if len(st.journal) != len(wantKinds) {
		t.Fatalf("journal has %d mutations, want %d", len(st.journal), len(wantKinds))
	}
	for i, m := range st.journal {
		if m.Kind != wantKinds[i] || m.Gen != uint64(i+1) {
			t.Fatalf("journal[%d] = kind %d gen %d, want kind %d gen %d", i, m.Kind, m.Gen, wantKinds[i], i+1)
		}
	}
	if g.Generation() != 4 || g.Len() != 0 {
		t.Fatalf("Generation=%d Len=%d, want 4 and 0", g.Generation(), g.Len())
	}
}

func TestGridMapJournalErrorRefusesMutation(t *testing.T) {
	boom := errors.New("disk full")
	st := &recordingStore{failAfter: 0, err: boom}
	g := NewGridMap()
	alice := mustName(t, "/O=Grid/CN=Alice")
	g.Add(alice, "alice")
	g.Bind(st)

	if err := g.AddChecked(mustName(t, "/O=Grid/CN=Bob"), "bob"); !errors.Is(err, boom) {
		t.Fatalf("AddChecked: err=%v, want %v", err, boom)
	}
	if err := g.Replace(NewGridMap()); !errors.Is(err, boom) {
		t.Fatalf("Replace: err=%v, want %v", err, boom)
	}
	if err := g.RemoveChecked(alice); !errors.Is(err, boom) {
		t.Fatalf("RemoveChecked: err=%v, want %v", err, boom)
	}
	if g.Len() != 1 || g.Generation() != 1 {
		t.Fatalf("Len=%d Gen=%d, want 1 and 1 (refused mutations must not apply)", g.Len(), g.Generation())
	}
	if acct, ok := g.Lookup(alice); !ok || acct != "alice" {
		t.Fatalf("Lookup(alice) = %q,%v after refused remove", acct, ok)
	}
}

func TestMutationCodecRoundTrip(t *testing.T) {
	when := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	cases := []Mutation{
		{Kind: MutPolicyAdd, Gen: 7, Rules: []Rule{{
			ID: "r1", Effect: EffectPermit,
			Subjects: []string{"/O=Grid/CN=Alice"}, Groups: []string{"vo"},
			Roles: []string{"admin"}, Resources: []string{"jobs"}, Actions: []string{"submit"},
			NotBefore: when, NotAfter: when.Add(time.Hour),
		}}},
		{Kind: MutPolicyReplace, Gen: 8, Rules: nil},
		{Kind: MutPolicyRemove, Gen: 9, RuleID: "r1"},
		{Kind: MutGridMapAdd, Gen: 10, DN: "/O=Grid/CN=Alice", Account: "alice"},
		{Kind: MutGridMapReplace, Gen: 11, Entries: map[string]string{"/O=Grid/CN=A": "a", "/O=Grid/CN=B": "b"}},
		{Kind: MutGridMapRemove, Gen: 12, DN: "/O=Grid/CN=Alice"},
	}
	for _, want := range cases {
		got, err := DecodeMutation(want.Encode())
		if err != nil {
			t.Fatalf("kind %d: DecodeMutation: %v", want.Kind, err)
		}
		if got.Kind != want.Kind || got.Gen != want.Gen || got.RuleID != want.RuleID ||
			got.DN != want.DN || got.Account != want.Account {
			t.Fatalf("kind %d: round trip mismatch: %+v != %+v", want.Kind, got, want)
		}
		if len(got.Rules) != len(want.Rules) || len(got.Entries) != len(want.Entries) {
			t.Fatalf("kind %d: payload length mismatch", want.Kind)
		}
		for i := range want.Rules {
			if got.Rules[i].ID != want.Rules[i].ID ||
				!got.Rules[i].NotBefore.Equal(want.Rules[i].NotBefore) {
				t.Fatalf("kind %d: rule %d mismatch", want.Kind, i)
			}
		}
		for k, v := range want.Entries {
			if got.Entries[k] != v {
				t.Fatalf("kind %d: entry %q mismatch", want.Kind, k)
			}
		}
	}
}

func TestDecodeMutationRejectsGarbage(t *testing.T) {
	if _, err := DecodeMutation(nil); err == nil {
		t.Fatal("empty payload accepted")
	}
	if _, err := DecodeMutation([]byte{mutationCodecVersion, 99, 0, 0, 0, 0, 0, 0, 0, 1}); err == nil {
		t.Fatal("unknown mutation kind accepted")
	}
	m := Mutation{Kind: MutPolicyRemove, Gen: 1, RuleID: "x"}
	b := m.Encode()
	if _, err := DecodeMutation(append(b, 0xFF)); err == nil {
		t.Fatal("trailing bytes accepted")
	}
	if _, err := DecodeMutation(b[:len(b)-1]); err == nil {
		t.Fatal("truncated payload accepted")
	}
}

func TestApplyMutationReplaysStateAndGeneration(t *testing.T) {
	// Drive a live, journaled pair; then replay the journal into a fresh
	// pair and demand identical state AND identical generations — the
	// property the decision cache's re-warm depends on.
	st := &recordingStore{}
	p := NewPolicy(DenyOverrides)
	g := NewGridMap()
	p.Bind(st)
	g.Bind(st)

	p.Add(Rule{ID: "r1", Effect: EffectPermit, Resources: []string{"*"}, Actions: []string{"*"}})
	p.Add(Rule{ID: "r2", Effect: EffectDeny, Resources: []string{"secrets"}, Actions: []string{"*"}})
	p.Remove("r1")
	alice := mustName(t, "/O=Grid/CN=Alice")
	g.Add(alice, "alice")
	g.Add(mustName(t, "/O=Grid/CN=Bob"), "bob")
	g.Remove(alice)

	p2 := NewPolicy(DenyOverrides)
	g2 := NewGridMap()
	for _, m := range st.journal {
		decoded, err := DecodeMutation(m.Encode())
		if err != nil {
			t.Fatalf("DecodeMutation: %v", err)
		}
		if err := ApplyMutation(decoded, p2, g2); err != nil {
			t.Fatalf("ApplyMutation(kind %d): %v", decoded.Kind, err)
		}
	}
	if p2.Generation() != p.Generation() {
		t.Fatalf("replayed policy generation %d != live %d", p2.Generation(), p.Generation())
	}
	if g2.Generation() != g.Generation() {
		t.Fatalf("replayed gridmap generation %d != live %d", g2.Generation(), g.Generation())
	}
	if p2.Len() != 1 || p2.Rules()[0].ID != "r2" {
		t.Fatalf("replayed policy rules wrong: %+v", p2.Rules())
	}
	if g2.Serialize() != g.Serialize() {
		t.Fatalf("replayed gridmap differs:\n%s\nvs\n%s", g2.Serialize(), g.Serialize())
	}
}

func TestApplyMutationNilTargetIsError(t *testing.T) {
	if err := ApplyMutation(Mutation{Kind: MutPolicyAdd, Gen: 1}, nil, NewGridMap()); err == nil {
		t.Fatal("policy mutation with nil policy accepted")
	}
	if err := ApplyMutation(Mutation{Kind: MutGridMapAdd, Gen: 1, DN: "/CN=x", Account: "x"}, NewPolicy(DenyOverrides), nil); err == nil {
		t.Fatal("gridmap mutation with nil gridmap accepted")
	}
}

func TestApplyMutationValidatesLikeLiveAPI(t *testing.T) {
	p := NewPolicy(DenyOverrides)
	g := NewGridMap()
	if err := ApplyMutation(Mutation{Kind: MutPolicyAdd, Gen: 1, Rules: []Rule{{ID: "bad", Effect: Effect(99)}}}, p, g); err == nil {
		t.Fatal("replayed rule with invalid effect accepted")
	}
	if err := ApplyMutation(Mutation{Kind: MutGridMapAdd, Gen: 1, DN: "", Account: "x"}, p, g); err == nil {
		t.Fatal("replayed empty DN accepted")
	}
	if err := ApplyMutation(Mutation{Kind: MutGridMapAdd, Gen: 1, DN: "/CN=x", Account: "two words"}, p, g); err == nil {
		t.Fatal("replayed invalid account accepted")
	}
	if err := ApplyMutation(Mutation{Kind: MutGridMapReplace, Gen: 1, Entries: map[string]string{"/CN=x": "bad acct"}}, p, g); err == nil {
		t.Fatal("replayed invalid replace entry accepted")
	}
	if p.Generation() != 0 || g.Generation() != 0 {
		t.Fatal("rejected replays must not advance generations")
	}
}

func TestStateSnapshotRoundTrip(t *testing.T) {
	p := NewPolicy(PermitOverrides)
	p.Add(Rule{ID: "r1", Effect: EffectPermit, Resources: []string{"*"}, Actions: []string{"*"}})
	p.Add(Rule{ID: "r2", Effect: EffectDeny, Resources: []string{"secrets"}, Actions: []string{"read"}})
	g := NewGridMap()
	g.Add(mustName(t, "/O=Grid/CN=Alice"), "alice")
	g.Add(mustName(t, "/O=Grid/CN=Bob"), "bob")

	p2 := NewPolicy(DenyOverrides)
	if err := p2.RestoreState(p.EncodeState()); err != nil {
		t.Fatalf("policy RestoreState: %v", err)
	}
	if p2.Generation() != p.Generation() || p2.Combining() != PermitOverrides || p2.Len() != 2 {
		t.Fatalf("policy snapshot round trip: gen=%d combining=%d len=%d", p2.Generation(), p2.Combining(), p2.Len())
	}
	g2 := NewGridMap()
	if err := g2.RestoreState(g.EncodeState()); err != nil {
		t.Fatalf("gridmap RestoreState: %v", err)
	}
	if g2.Generation() != g.Generation() || g2.Serialize() != g.Serialize() {
		t.Fatalf("gridmap snapshot round trip: gen=%d", g2.Generation())
	}
}

func TestRestoreStateFailsClosed(t *testing.T) {
	p := NewPolicy(DenyOverrides)
	p.Add(Rule{ID: "keep", Effect: EffectPermit, Resources: []string{"*"}, Actions: []string{"*"}})
	wantGen := p.Generation()

	bad := NewPolicy(DenyOverrides)
	bad.Add(Rule{ID: "evil", Effect: EffectPermit, Resources: []string{"*"}, Actions: []string{"*"}})
	snap := bad.EncodeState()
	// Corrupt the combining byte (offset 1, after the version byte).
	snap[1] = 99
	if err := p.RestoreState(snap); err == nil {
		t.Fatal("snapshot with unknown combining mode accepted")
	}
	if err := p.RestoreState(snap[:len(snap)-2]); err == nil {
		t.Fatal("truncated snapshot accepted")
	}
	if p.Len() != 1 || p.Rules()[0].ID != "keep" || p.Generation() != wantGen {
		t.Fatal("failed restore mutated the live policy")
	}

	g := NewGridMap()
	g.Add(mustName(t, "/O=Grid/CN=Alice"), "alice")
	gb := NewGridMap()
	gb.Add(mustName(t, "/O=Grid/CN=Bob"), "bob")
	gsnap := gb.EncodeState()
	if err := g.RestoreState(gsnap[:len(gsnap)-1]); err == nil {
		t.Fatal("truncated gridmap snapshot accepted")
	}
	if g.Len() != 1 {
		t.Fatal("failed restore mutated the live gridmap")
	}
}
