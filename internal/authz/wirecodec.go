package authz

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/wire"
)

func sortedKeys(m map[string]string) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// The binary rule codec, shared by every subsystem that moves rules
// across a durability or trust boundary — CAS assertions and policy
// bundles, WAL-journaled mutations, durable snapshots. One codec means
// the enforcement path and the persistence path cannot drift.

// WireEncodeRule appends one rule to e.
func WireEncodeRule(e *wire.Encoder, r Rule) {
	e.Str(r.ID)
	e.U8(uint8(r.Effect))
	WireEncodeStrings(e, r.Subjects)
	WireEncodeStrings(e, r.Groups)
	WireEncodeStrings(e, r.Roles)
	WireEncodeStrings(e, r.Resources)
	WireEncodeStrings(e, r.Actions)
	e.I64(unixOrZero(r.NotBefore))
	e.I64(unixOrZero(r.NotAfter))
}

// WireDecodeRule reads one rule from d (check d.Err / d.Done after; the
// decoded Effect is NOT validated here — callers feed rules through
// AddChecked or equivalent).
func WireDecodeRule(d *wire.Decoder) Rule {
	var r Rule
	r.ID = d.Str()
	r.Effect = Effect(d.U8())
	r.Subjects = WireDecodeStrings(d)
	r.Groups = WireDecodeStrings(d)
	r.Roles = WireDecodeStrings(d)
	r.Resources = WireDecodeStrings(d)
	r.Actions = WireDecodeStrings(d)
	r.NotBefore = timeOrZero(d.I64())
	r.NotAfter = timeOrZero(d.I64())
	return r
}

// WireEncodeStrings appends a counted string list to e.
func WireEncodeStrings(e *wire.Encoder, ss []string) {
	e.U32(uint32(len(ss)))
	for _, s := range ss {
		e.Str(s)
	}
}

// WireDecodeStrings reads a counted string list from d (≤ 4096
// entries; longer lists poison the decoder).
func WireDecodeStrings(d *wire.Decoder) []string {
	n := d.Count("string list", 4096)
	if n == 0 {
		return nil
	}
	out := make([]string, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, d.Str())
	}
	return out
}

func unixOrZero(t time.Time) int64 {
	if t.IsZero() {
		return 0
	}
	return t.Unix()
}

func timeOrZero(v int64) time.Time {
	if v == 0 {
		return time.Time{}
	}
	return time.Unix(v, 0).UTC()
}

// --- durable state snapshots -------------------------------------------

const policyStateVersion = 1
const gridmapStateVersion = 1

// EncodeState snapshots the policy — combining mode, generation, and
// every rule — for a durable-store snapshot. RestoreState reverses it.
func (p *Policy) EncodeState() []byte {
	p.mu.RLock()
	defer p.mu.RUnlock()
	e := wire.NewEncoder()
	e.U8(policyStateVersion)
	e.U8(uint8(p.combining))
	e.U64(p.gen)
	e.U32(uint32(len(p.rules)))
	for _, r := range p.rules {
		WireEncodeRule(e, r)
	}
	return e.Finish()
}

// RestoreState replaces the policy's rules, combining mode, and
// generation with a snapshot's, without journaling. Fail closed: a
// snapshot carrying an invalid effect or truncated encoding leaves the
// policy untouched.
func (p *Policy) RestoreState(b []byte) error {
	d := wire.NewDecoder(b)
	if v := d.U8(); d.Err() == nil && v != policyStateVersion {
		return fmt.Errorf("authz: unknown policy state version %d", v)
	}
	combining := Combining(d.U8())
	gen := d.U64()
	n := d.Count("snapshot rule", maxJournaledRules)
	rules := make([]Rule, 0, n)
	for i := 0; i < n && d.Err() == nil; i++ {
		rules = append(rules, WireDecodeRule(d))
	}
	if err := d.Done(); err != nil {
		return err
	}
	if combining != DenyOverrides && combining != PermitOverrides && combining != FirstApplicable {
		return fmt.Errorf("authz: snapshot declares unknown combining mode %d", combining)
	}
	for _, r := range rules {
		if !r.Effect.Valid() {
			return fmt.Errorf("authz: snapshot rule %q has invalid effect %d", r.ID, r.Effect)
		}
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.rules = rules
	p.combining = combining
	p.gen = gen
	return nil
}

// EncodeState snapshots the gridmap — generation and every entry — for
// a durable-store snapshot. RestoreState reverses it.
func (g *GridMap) EncodeState() []byte {
	g.mu.RLock()
	defer g.mu.RUnlock()
	e := wire.NewEncoder()
	e.U8(gridmapStateVersion)
	e.U64(g.gen)
	dns := sortedKeys(g.entries)
	e.U32(uint32(len(dns)))
	for _, dn := range dns {
		e.Str(dn)
		e.Str(g.entries[dn])
	}
	return e.Finish()
}

// RestoreState replaces the gridmap's entries and generation with a
// snapshot's, without journaling.
func (g *GridMap) RestoreState(b []byte) error {
	d := wire.NewDecoder(b)
	if v := d.U8(); d.Err() == nil && v != gridmapStateVersion {
		return fmt.Errorf("authz: unknown gridmap state version %d", v)
	}
	gen := d.U64()
	n := d.Count("snapshot gridmap entry", maxJournaledEntries)
	entries := make(map[string]string, n)
	for i := 0; i < n && d.Err() == nil; i++ {
		dn := d.Str()
		acct := d.Str()
		if d.Err() == nil {
			if dn == "" || !validAccount(acct) {
				return fmt.Errorf("authz: snapshot gridmap entry %q -> %q invalid", dn, acct)
			}
			entries[dn] = acct
		}
	}
	if err := d.Done(); err != nil {
		return err
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	g.entries = entries
	g.gen = gen
	return nil
}
