package authz

import (
	"fmt"
	"sort"

	"repro/internal/wire"
)

// Store is the persistence hook behind Policy and GridMap: every
// mutation is journaled through it BEFORE it is applied, so durable
// deployments recover the exact rule set, entry set, and — critically —
// generation counters after a restart, and the sharded decision caches
// keyed on those generations re-warm instead of stampeding. The nil
// store is the zero-dependency in-memory default (mutations apply
// directly). A journal error refuses the mutation: fail closed, the
// in-memory state never runs ahead of the log.
type Store interface {
	// Journal persists one mutation. It is called with the mutated
	// object's lock held, so journal order equals application order.
	Journal(m Mutation) error
}

// MutationKind discriminates journaled mutations.
type MutationKind uint8

const (
	// MutPolicyAdd appends Rules to the policy.
	MutPolicyAdd MutationKind = 1
	// MutPolicyReplace swaps the entire rule set for Rules.
	MutPolicyReplace MutationKind = 2
	// MutPolicyRemove deletes every rule with RuleID.
	MutPolicyRemove MutationKind = 3
	// MutGridMapAdd maps DN to Account.
	MutGridMapAdd MutationKind = 4
	// MutGridMapReplace swaps the entire entry set for Entries.
	MutGridMapReplace MutationKind = 5
	// MutGridMapRemove deletes DN's mapping.
	MutGridMapRemove MutationKind = 6
)

// Mutation is one journaled Policy or GridMap change, carrying the
// post-mutation generation so replay restores identical counters.
type Mutation struct {
	Kind MutationKind
	// Gen is the generation the object reports once the mutation is
	// applied.
	Gen uint64

	// Rules rides on MutPolicyAdd / MutPolicyReplace.
	Rules []Rule
	// RuleID rides on MutPolicyRemove.
	RuleID string
	// DN and Account ride on the gridmap point mutations.
	DN      string
	Account string
	// Entries rides on MutGridMapReplace.
	Entries map[string]string
}

const mutationCodecVersion = 1

// maxJournaledRules bounds rules per journaled batch (same cap as CAS
// assertions: the journal crosses a durability boundary, not a trust
// boundary, but a corrupt length field must not size an allocation).
const maxJournaledRules = 65536

// maxJournaledEntries bounds gridmap entries per journaled replace.
const maxJournaledEntries = 1 << 22

// Encode serialises the mutation for a WAL payload.
func (m Mutation) Encode() []byte {
	e := wire.NewEncoder()
	e.U8(mutationCodecVersion)
	e.U8(uint8(m.Kind))
	e.U64(m.Gen)
	switch m.Kind {
	case MutPolicyAdd, MutPolicyReplace:
		e.U32(uint32(len(m.Rules)))
		for _, r := range m.Rules {
			WireEncodeRule(e, r)
		}
	case MutPolicyRemove:
		e.Str(m.RuleID)
	case MutGridMapAdd:
		e.Str(m.DN)
		e.Str(m.Account)
	case MutGridMapRemove:
		e.Str(m.DN)
	case MutGridMapReplace:
		dns := make([]string, 0, len(m.Entries))
		for dn := range m.Entries {
			dns = append(dns, dn)
		}
		sort.Strings(dns)
		e.U32(uint32(len(dns)))
		for _, dn := range dns {
			e.Str(dn)
			e.Str(m.Entries[dn])
		}
	}
	return e.Finish()
}

// DecodeMutation parses a journaled mutation payload.
func DecodeMutation(b []byte) (Mutation, error) {
	d := wire.NewDecoder(b)
	var m Mutation
	if v := d.U8(); d.Err() == nil && v != mutationCodecVersion {
		return m, fmt.Errorf("authz: unknown mutation codec version %d", v)
	}
	m.Kind = MutationKind(d.U8())
	m.Gen = d.U64()
	switch m.Kind {
	case MutPolicyAdd, MutPolicyReplace:
		n := d.Count("journaled rule", maxJournaledRules)
		for i := 0; i < n && d.Err() == nil; i++ {
			m.Rules = append(m.Rules, WireDecodeRule(d))
		}
	case MutPolicyRemove:
		m.RuleID = d.Str()
	case MutGridMapAdd:
		m.DN = d.Str()
		m.Account = d.Str()
	case MutGridMapRemove:
		m.DN = d.Str()
	case MutGridMapReplace:
		n := d.Count("journaled gridmap entry", maxJournaledEntries)
		if d.Err() == nil {
			m.Entries = make(map[string]string, n)
			for i := 0; i < n && d.Err() == nil; i++ {
				dn := d.Str()
				m.Entries[dn] = d.Str()
			}
		}
	default:
		if d.Err() == nil {
			return m, fmt.Errorf("authz: unknown mutation kind %d", m.Kind)
		}
	}
	if err := d.Done(); err != nil {
		return Mutation{}, err
	}
	return m, nil
}

// ApplyMutation applies one replayed mutation to the policy/gridmap
// pair without re-journaling, restoring the journaled generation.
// Either target may be nil when the journal is known to concern only
// the other; a mutation for a nil target is corruption, not a no-op.
// Validation is the same as the mutating APIs': a journal record that
// would not have been accepted live must not be accepted on replay.
func ApplyMutation(m Mutation, p *Policy, g *GridMap) error {
	switch m.Kind {
	case MutPolicyAdd, MutPolicyReplace, MutPolicyRemove:
		if p == nil {
			return fmt.Errorf("authz: journaled policy mutation with no policy to apply it to")
		}
		return p.applyReplayed(m)
	case MutGridMapAdd, MutGridMapReplace, MutGridMapRemove:
		if g == nil {
			return fmt.Errorf("authz: journaled gridmap mutation with no gridmap to apply it to")
		}
		return g.applyReplayed(m)
	default:
		return fmt.Errorf("authz: unknown mutation kind %d", m.Kind)
	}
}
