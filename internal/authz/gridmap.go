package authz

import (
	"bufio"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"unicode"

	"repro/internal/gridcert"
)

// GridMap is the grid-mapfile of the paper (§5.3 step 3): "a local
// configuration file containing mappings from GSI identities to local
// identities." The MMJFS consults it to pick the local account for a
// verified requester.
type GridMap struct {
	mu      sync.RWMutex
	entries map[string]string // DN string -> local account
	gen     uint64
	store   Store // nil = in-memory (the zero-dependency default)
}

// NewGridMap creates an empty map.
func NewGridMap() *GridMap {
	return &GridMap{entries: make(map[string]string)}
}

// Bind routes every subsequent mutation through store: each
// Add/Replace/Remove is journaled before it is applied, and a journal
// error refuses the mutation. Bind once, before the map goes live;
// replay restored state first, then bind.
func (g *GridMap) Bind(store Store) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.store = store
}

// Add maps a grid identity to a local account. The account must be a
// single token — non-empty, no whitespace or control characters —
// because Serialize writes it raw: an embedded newline would forge a
// whole extra mapfile line, and an embedded space would silently
// truncate on reparse. Violations panic (configuration error), as does
// a journal failure on a bound map; durable callers use AddChecked.
func (g *GridMap) Add(dn gridcert.Name, account string) {
	if err := g.AddChecked(dn, account); err != nil {
		panic(err)
	}
}

// AddChecked is Add returning validation and journal failures instead
// of panicking — the mutation entry point for durable deployments,
// where a full disk must refuse the mapping rather than crash the
// process.
func (g *GridMap) AddChecked(dn gridcert.Name, account string) error {
	// The empty DN is the identity an anonymous peer presents, and its
	// rendering ("/") does not survive a Serialize/Parse round trip —
	// reject it at the mutation API just as the parser does.
	if dn.Empty() {
		return errors.New("authz: gridmap entry for the empty DN")
	}
	if !validAccount(account) {
		return fmt.Errorf("authz: gridmap account %q must be one token without whitespace or control characters", account)
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.store != nil {
		if err := g.store.Journal(Mutation{Kind: MutGridMapAdd, Gen: g.gen + 1, DN: dn.String(), Account: account}); err != nil {
			return fmt.Errorf("authz: gridmap mutation not journaled: %w", err)
		}
	}
	g.entries[dn.String()] = account
	g.gen++
	return nil
}

func validAccount(account string) bool {
	if account == "" {
		return false
	}
	for _, r := range account {
		if unicode.IsSpace(r) || unicode.IsControl(r) {
			return false
		}
	}
	return true
}

// Replace swaps this map's entire entry set for other's in one
// transaction, bumping the generation once. Reload paths parse a fresh
// mapfile into a throwaway GridMap and Replace into the live one, so
// decision caches keyed on the generation invalidate a single time and
// no reader ever observes a half-applied mapfile. On a bound map the
// swap is journaled first; a journal error refuses it and the old
// entry set stays live.
func (g *GridMap) Replace(other *GridMap) error {
	other.mu.RLock()
	next := make(map[string]string, len(other.entries))
	for dn, acct := range other.entries {
		next[dn] = acct
	}
	other.mu.RUnlock()
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.store != nil {
		if err := g.store.Journal(Mutation{Kind: MutGridMapReplace, Gen: g.gen + 1, Entries: next}); err != nil {
			return fmt.Errorf("authz: gridmap mutation not journaled: %w", err)
		}
	}
	g.entries = next
	g.gen++
	return nil
}

// Remove deletes a mapping, panicking on a journal failure; durable
// callers use RemoveChecked.
func (g *GridMap) Remove(dn gridcert.Name) {
	if err := g.RemoveChecked(dn); err != nil {
		panic(err)
	}
}

// RemoveChecked deletes a mapping, journaling first on a bound map.
// Removing an absent DN is a no-op that does not bump the generation
// or touch the journal.
func (g *GridMap) RemoveChecked(dn gridcert.Name) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	key := dn.String()
	if _, ok := g.entries[key]; !ok {
		return nil
	}
	if g.store != nil {
		if err := g.store.Journal(Mutation{Kind: MutGridMapRemove, Gen: g.gen + 1, DN: key}); err != nil {
			return fmt.Errorf("authz: gridmap mutation not journaled: %w", err)
		}
	}
	delete(g.entries, key)
	g.gen++
	return nil
}

// applyReplayed applies one journaled mutation without re-journaling,
// restoring the journaled generation. Validation matches the mutating
// APIs': replay is not a trust bypass.
func (g *GridMap) applyReplayed(m Mutation) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	switch m.Kind {
	case MutGridMapAdd:
		if m.DN == "" {
			return errors.New("authz: replayed gridmap entry for the empty DN")
		}
		if !validAccount(m.Account) {
			return fmt.Errorf("authz: replayed gridmap account %q invalid", m.Account)
		}
		g.entries[m.DN] = m.Account
	case MutGridMapReplace:
		next := make(map[string]string, len(m.Entries))
		for dn, acct := range m.Entries {
			if dn == "" || !validAccount(acct) {
				return fmt.Errorf("authz: replayed gridmap entry %q -> %q invalid", dn, acct)
			}
			next[dn] = acct
		}
		g.entries = next
	case MutGridMapRemove:
		delete(g.entries, m.DN)
	default:
		return fmt.Errorf("authz: mutation kind %d is not a gridmap mutation", m.Kind)
	}
	g.gen = m.Gen
	return nil
}

// Generation reports the map revision: it increments on every mutation.
// Cached identity-to-account decisions are only valid for the
// generation they were computed under.
func (g *GridMap) Generation() uint64 {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.gen
}

// Lookup returns the local account for a grid identity.
func (g *GridMap) Lookup(dn gridcert.Name) (string, bool) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	acct, ok := g.entries[dn.String()]
	return acct, ok
}

// Len reports the number of mappings.
func (g *GridMap) Len() int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return len(g.entries)
}

// Serialize renders the classic grid-mapfile text format:
//
//	"/O=Grid/CN=Alice" alice
//
// sorted by DN for determinism.
func (g *GridMap) Serialize() string {
	g.mu.RLock()
	defer g.mu.RUnlock()
	dns := make([]string, 0, len(g.entries))
	for dn := range g.entries {
		dns = append(dns, dn)
	}
	sort.Strings(dns)
	var sb strings.Builder
	for _, dn := range dns {
		fmt.Fprintf(&sb, "%q %s\n", dn, g.entries[dn])
	}
	return sb.String()
}

// ParseGridMap parses the text format produced by Serialize. Lines that
// are empty or start with '#' are skipped.
func ParseGridMap(text string) (*GridMap, error) {
	g := NewGridMap()
	sc := bufio.NewScanner(strings.NewReader(text))
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if !strings.HasPrefix(line, `"`) {
			return nil, fmt.Errorf("authz: gridmap line %d: DN must be quoted", lineNo)
		}
		// Serialize renders DNs with %q, so quotes, backslashes, and
		// non-ASCII inside the DN arrive escaped; QuotedPrefix walks the
		// escapes to the true closing quote and Unquote reverses them.
		// Hand-written legacy mapfiles were never Go-quoted, though —
		// a raw `\` in a DN is not a valid escape — so lines that fail
		// strict unquoting fall back to the historical scan-to-the-
		// next-quote reading with no escape processing.
		var dnStr, rest string
		if quoted, err := strconv.QuotedPrefix(line); err == nil {
			unquoted, uerr := strconv.Unquote(quoted)
			if uerr != nil {
				return nil, fmt.Errorf("authz: gridmap line %d: bad DN quoting: %w", lineNo, uerr)
			}
			dnStr, rest = unquoted, line[len(quoted):]
		} else {
			end := strings.Index(line[1:], `"`)
			if end < 0 {
				return nil, fmt.Errorf("authz: gridmap line %d: unterminated DN", lineNo)
			}
			dnStr, rest = line[1:1+end], line[2+end:]
		}
		rest = strings.TrimSpace(rest)
		if rest == "" {
			return nil, fmt.Errorf("authz: gridmap line %d: missing account", lineNo)
		}
		account := strings.Fields(rest)[0]
		if !validAccount(account) {
			return nil, fmt.Errorf("authz: gridmap line %d: account %q contains control characters", lineNo, account)
		}
		dn, err := gridcert.ParseName(dnStr)
		if err != nil {
			return nil, fmt.Errorf("authz: gridmap line %d: %w", lineNo, err)
		}
		// The empty DN is the identity an anonymous peer would present;
		// mapping it to an account would be an open door.
		if dn.Empty() {
			return nil, fmt.Errorf("authz: gridmap line %d: empty DN", lineNo)
		}
		g.Add(dn, account)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return g, nil
}
