package authz

import (
	"bufio"
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/gridcert"
)

// GridMap is the grid-mapfile of the paper (§5.3 step 3): "a local
// configuration file containing mappings from GSI identities to local
// identities." The MMJFS consults it to pick the local account for a
// verified requester.
type GridMap struct {
	mu      sync.RWMutex
	entries map[string]string // DN string -> local account
}

// NewGridMap creates an empty map.
func NewGridMap() *GridMap {
	return &GridMap{entries: make(map[string]string)}
}

// Add maps a grid identity to a local account.
func (g *GridMap) Add(dn gridcert.Name, account string) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.entries[dn.String()] = account
}

// Remove deletes a mapping.
func (g *GridMap) Remove(dn gridcert.Name) {
	g.mu.Lock()
	defer g.mu.Unlock()
	delete(g.entries, dn.String())
}

// Lookup returns the local account for a grid identity.
func (g *GridMap) Lookup(dn gridcert.Name) (string, bool) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	acct, ok := g.entries[dn.String()]
	return acct, ok
}

// Len reports the number of mappings.
func (g *GridMap) Len() int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return len(g.entries)
}

// Serialize renders the classic grid-mapfile text format:
//
//	"/O=Grid/CN=Alice" alice
//
// sorted by DN for determinism.
func (g *GridMap) Serialize() string {
	g.mu.RLock()
	defer g.mu.RUnlock()
	dns := make([]string, 0, len(g.entries))
	for dn := range g.entries {
		dns = append(dns, dn)
	}
	sort.Strings(dns)
	var sb strings.Builder
	for _, dn := range dns {
		fmt.Fprintf(&sb, "%q %s\n", dn, g.entries[dn])
	}
	return sb.String()
}

// ParseGridMap parses the text format produced by Serialize. Lines that
// are empty or start with '#' are skipped.
func ParseGridMap(text string) (*GridMap, error) {
	g := NewGridMap()
	sc := bufio.NewScanner(strings.NewReader(text))
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if !strings.HasPrefix(line, `"`) {
			return nil, fmt.Errorf("authz: gridmap line %d: DN must be quoted", lineNo)
		}
		end := strings.Index(line[1:], `"`)
		if end < 0 {
			return nil, fmt.Errorf("authz: gridmap line %d: unterminated DN", lineNo)
		}
		dnStr := line[1 : 1+end]
		rest := strings.TrimSpace(line[2+end:])
		if rest == "" {
			return nil, fmt.Errorf("authz: gridmap line %d: missing account", lineNo)
		}
		account := strings.Fields(rest)[0]
		dn, err := gridcert.ParseName(dnStr)
		if err != nil {
			return nil, fmt.Errorf("authz: gridmap line %d: %w", lineNo, err)
		}
		g.Add(dn, account)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return g, nil
}
