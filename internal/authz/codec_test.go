package authz

import (
	"strings"
	"testing"
	"time"

	"repro/internal/gridcert"
)

func TestPolicyJSONRoundTrip(t *testing.T) {
	p := NewPolicy(PermitOverrides).Add(
		Rule{
			ID:        "allow-alice",
			Effect:    EffectPermit,
			Subjects:  []string{"/O=Grid/CN=Alice"},
			Resources: []string{"gram:*"},
			Actions:   []string{"job-submit"},
			NotAfter:  time.Date(2030, 1, 1, 0, 0, 0, 0, time.UTC),
		},
		Rule{ID: "deny-all", Effect: EffectDeny, Resources: []string{"*"}},
	)
	data, err := p.EncodePolicyJSON()
	if err != nil {
		t.Fatal(err)
	}
	rules, combining, err := DecodePolicyJSON(data)
	if err != nil {
		t.Fatal(err)
	}
	if combining != PermitOverrides {
		t.Fatalf("combining = %v", combining)
	}
	if len(rules) != 2 || rules[0].ID != "allow-alice" || rules[0].Effect != EffectPermit ||
		rules[1].Effect != EffectDeny || !rules[0].NotAfter.Equal(p.Rules()[0].NotAfter) {
		t.Fatalf("round trip mangled rules: %+v", rules)
	}
}

func TestDecodePolicyJSONRejects(t *testing.T) {
	cases := map[string]string{
		"bad effect":    `{"combining":"deny-overrides","rules":[{"id":"r","effect":"allow"}]}`,
		"bad combining": `{"combining":"coin-flip","rules":[]}`,
		"not json":      `{{{{`,
	}
	for name, in := range cases {
		if _, _, err := DecodePolicyJSON([]byte(in)); err == nil {
			t.Errorf("%s: decoded without error", name)
		}
	}
	// Empty combining defaults closed-world.
	if _, c, err := DecodePolicyJSON([]byte(`{"rules":[]}`)); err != nil || c != DenyOverrides {
		t.Fatalf("default combining = %v, %v", c, err)
	}
}

func TestPolicyReplace(t *testing.T) {
	p := NewPolicy(DenyOverrides).Add(Rule{ID: "old", Effect: EffectPermit})
	gen := p.Generation()
	if err := p.Replace([]Rule{
		{ID: "a", Effect: EffectPermit, Actions: []string{"read"}},
		{ID: "b", Effect: EffectDeny},
	}); err != nil {
		t.Fatal(err)
	}
	if p.Generation() != gen+1 {
		t.Fatalf("generation moved %d times, want 1", p.Generation()-gen)
	}
	if rules := p.Rules(); len(rules) != 2 || rules[0].ID != "a" {
		t.Fatalf("rules after replace: %+v", rules)
	}
	// An invalid batch leaves the live rules untouched.
	if err := p.Replace([]Rule{{ID: "zero-effect"}}); err == nil {
		t.Fatal("Replace with invalid effect succeeded")
	}
	if rules := p.Rules(); len(rules) != 2 || rules[0].ID != "a" {
		t.Fatalf("failed replace mutated rules: %+v", rules)
	}
	// Empty is legal (closed world).
	if err := p.Replace(nil); err != nil || p.Len() != 0 {
		t.Fatalf("empty replace: %v, len %d", err, p.Len())
	}
}

func TestGridMapReplace(t *testing.T) {
	live := NewGridMap()
	live.Add(gridcert.MustParseName("/O=Grid/CN=Old"), "old")
	gen := live.Generation()

	parsed, err := ParseGridMap("\"/O=Grid/CN=Alice\" alice\n\"/O=Grid/CN=Bob\" bob\n")
	if err != nil {
		t.Fatal(err)
	}
	live.Replace(parsed)
	if live.Generation() != gen+1 {
		t.Fatalf("generation moved %d times, want 1", live.Generation()-gen)
	}
	if _, ok := live.Lookup(gridcert.MustParseName("/O=Grid/CN=Old")); ok {
		t.Fatal("old entry survived replacement")
	}
	if acct, ok := live.Lookup(gridcert.MustParseName("/O=Grid/CN=Alice")); !ok || acct != "alice" {
		t.Fatalf("lookup alice = %q, %v", acct, ok)
	}
	// The replacement copied, not aliased: mutating the source does not
	// leak into the live map.
	parsed.Add(gridcert.MustParseName("/O=Grid/CN=Eve"), "eve")
	if _, ok := live.Lookup(gridcert.MustParseName("/O=Grid/CN=Eve")); ok {
		t.Fatal("replacement aliased the source map")
	}
	if !strings.Contains(live.Serialize(), "bob") {
		t.Fatal("serialize after replace lost entries")
	}
}
