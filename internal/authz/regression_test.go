package authz

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/gridcert"
)

// TestZeroEffectRuleDeniesEverywhere is the fail-open regression: a rule
// whose Effect was never set (the zero value) used to count as Permit
// under all three combining algorithms. It must deny under every one.
func TestZeroEffectRuleDeniesEverywhere(t *testing.T) {
	req := Request{Subject: alice, Resource: "data:/x", Action: "read"}
	for _, c := range []Combining{DenyOverrides, PermitOverrides, FirstApplicable} {
		p := NewPolicy(c)
		// Bypass Add validation the way a hand-built or pre-validation
		// decoded rule set would: write the rule slice directly.
		p.rules = []Rule{{ID: "forgot-effect"}}
		if d := p.Evaluate(req); d == Permit {
			t.Fatalf("combining %d: zero-effect rule permitted", c)
		}
	}
	// PermitOverrides with only an invalid-effect match must resolve Deny,
	// not NotApplicable: the rule matched, and unknown effects are Deny.
	p := NewPolicy(PermitOverrides)
	p.rules = []Rule{{ID: "forgot-effect"}}
	if d := p.Evaluate(req); d != Deny {
		t.Fatalf("permit-overrides zero-effect: got %s, want deny", d)
	}
}

// TestUnknownEffectValueDenies covers effect bytes outside the enum
// entirely (e.g. a corrupted serialized rule).
func TestUnknownEffectValueDenies(t *testing.T) {
	req := Request{Subject: alice, Resource: "r", Action: "a"}
	for _, eff := range []Effect{0, 3, 7, 255} {
		p := NewPolicy(DenyOverrides)
		p.rules = []Rule{{ID: "weird", Effect: eff}}
		if d := p.Evaluate(req); d == Permit {
			t.Fatalf("effect %d permitted", eff)
		}
	}
}

func TestAddRejectsInvalidEffect(t *testing.T) {
	p := NewPolicy(DenyOverrides)
	if err := p.AddChecked(Rule{ID: "bad"}); err == nil {
		t.Fatal("AddChecked accepted a zero-effect rule")
	}
	if err := p.AddChecked(Rule{ID: "weird", Effect: 9}); err == nil {
		t.Fatal("AddChecked accepted an out-of-enum effect")
	}
	// A rejected batch must not be partially applied.
	if err := p.AddChecked(
		Rule{ID: "ok", Effect: EffectPermit},
		Rule{ID: "bad"},
	); err == nil {
		t.Fatal("AddChecked accepted a batch with an invalid rule")
	}
	if p.Len() != 0 {
		t.Fatalf("rejected batch partially applied: %d rules", p.Len())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Add did not panic on invalid effect")
		}
	}()
	p.Add(Rule{ID: "bad"})
}

func TestCombineFailsClosedOnInvalidDecision(t *testing.T) {
	if d := Combine(Permit, Decision(7)); d != Deny {
		t.Fatalf("Combine with out-of-enum decision: got %s, want deny", d)
	}
}

func TestPolicyGenerationAndRemove(t *testing.T) {
	p := NewPolicy(DenyOverrides)
	g0 := p.Generation()
	p.Add(Rule{ID: "a", Effect: EffectPermit}, Rule{ID: "b", Effect: EffectDeny})
	if p.Generation() == g0 {
		t.Fatal("Add did not bump generation")
	}
	g1 := p.Generation()
	if !p.Remove("a") {
		t.Fatal("Remove did not find rule a")
	}
	if p.Generation() == g1 {
		t.Fatal("Remove did not bump generation")
	}
	g2 := p.Generation()
	if p.Remove("missing") {
		t.Fatal("Remove found a missing rule")
	}
	if p.Generation() != g2 {
		t.Fatal("no-op Remove bumped generation")
	}
	if p.Len() != 1 {
		t.Fatalf("want 1 rule after remove, got %d", p.Len())
	}
}

func TestGridMapGeneration(t *testing.T) {
	g := NewGridMap()
	g0 := g.Generation()
	g.Add(alice, "alice")
	if g.Generation() == g0 {
		t.Fatal("Add did not bump generation")
	}
	g1 := g.Generation()
	g.Remove(alice)
	if g.Generation() == g1 {
		t.Fatal("Remove did not bump generation")
	}
}

// TestGridMapRejectsUnserializableAccounts: Serialize writes accounts
// raw, so an account with embedded whitespace (silent truncation on
// reparse) or a newline (a forged extra mapfile line) must never get
// in.
func TestGridMapRejectsUnserializableAccounts(t *testing.T) {
	for _, bad := range []string{"", "svc account", "a\tb", "alice\n\"/O=Grid/CN=Mallory\" root"} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Add accepted account %q", bad)
				}
			}()
			NewGridMap().Add(alice, bad)
		}()
	}
	g := NewGridMap()
	g.Add(alice, "alice-01_x")
	if _, err := ParseGridMap(g.Serialize()); err != nil {
		t.Fatal(err)
	}
	// The empty DN renders as "/" which the parser (rightly) rejects,
	// so the mutation API must refuse it up front.
	defer func() {
		if recover() == nil {
			t.Error("Add accepted the empty DN")
		}
	}()
	g.Add(gridcert.Name{}, "ghost")
}

// TestGridMapRoundTripAwkwardDNs is the serializer/parser regression:
// Serialize escapes with %q, and the old parser scanned for a raw '"',
// truncating any DN containing quotes or backslashes and never
// unescaping. These DNs must round-trip exactly.
func TestGridMapRoundTripAwkwardDNs(t *testing.T) {
	awkward := []string{
		`/O=Grid/CN=Alice "the admin"`,
		`/O=Grid/CN=C:\Users\alice`,
		"/O=Grid/CN=Ålice Ünïcode",
		"/O=Grid/CN=名前",
		`/O=Grid/OU="quoted"/CN=back\slash`,
	}
	g := NewGridMap()
	for i, s := range awkward {
		dn, err := gridcert.ParseName(s)
		if err != nil {
			t.Fatalf("ParseName(%q): %v", s, err)
		}
		g.Add(dn, fmt.Sprintf("acct%d", i))
	}
	text := g.Serialize()
	parsed, err := ParseGridMap(text)
	if err != nil {
		t.Fatalf("ParseGridMap of own Serialize output: %v\n%s", err, text)
	}
	if parsed.Len() != g.Len() {
		t.Fatalf("round trip lost entries: %d -> %d\n%s", g.Len(), parsed.Len(), text)
	}
	for i, s := range awkward {
		dn := gridcert.MustParseName(s)
		acct, ok := parsed.Lookup(dn)
		if !ok {
			t.Fatalf("round trip lost %q", s)
		}
		if want := fmt.Sprintf("acct%d", i); acct != want {
			t.Fatalf("round trip mapped %q to %q, want %q", s, acct, want)
		}
	}
}

// TestGridMapLegacyRawBackslashDN: hand-written mapfiles predate the
// Go-quoted escaping Serialize uses; a raw backslash (not a valid Go
// escape) must still parse under the historical scan-to-next-quote
// reading.
func TestGridMapLegacyRawBackslashDN(t *testing.T) {
	g, err := ParseGridMap(`"/O=Grid/CN=DOMAIN\user" acct1` + "\n")
	if err != nil {
		t.Fatalf("legacy raw-backslash line rejected: %v", err)
	}
	dn := gridcert.MustParseName(`/O=Grid/CN=DOMAIN\user`)
	if acct, ok := g.Lookup(dn); !ok || acct != "acct1" {
		t.Fatalf("legacy DN mapped to %q, %v", acct, ok)
	}
	// And the canonical form it re-serializes to keeps round-tripping.
	g2, err := ParseGridMap(g.Serialize())
	if err != nil {
		t.Fatal(err)
	}
	if acct, ok := g2.Lookup(dn); !ok || acct != "acct1" {
		t.Fatal("canonicalized legacy DN lost in round trip")
	}
}

// TestGridMapRoundTripQuick property-checks Serialize∘ParseGridMap over
// random DN values drawn from a hostile alphabet.
func TestGridMapRoundTripQuick(t *testing.T) {
	alphabet := []rune(`abcXYZ"\'#%ü名 .-_,;`)
	gen := func(r *rand.Rand) string {
		n := 1 + r.Intn(12)
		var sb strings.Builder
		for i := 0; i < n; i++ {
			sb.WriteRune(alphabet[r.Intn(len(alphabet))])
		}
		return sb.String()
	}
	property := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := NewGridMap()
		want := make(map[string]string)
		for i := 0; i < 1+r.Intn(8); i++ {
			val := strings.TrimSpace(gen(r))
			if val == "" || strings.ContainsAny(val, "/=") {
				continue // not expressible as a DN component value
			}
			dn, err := gridcert.ParseName("/O=Grid/CN=" + val)
			if err != nil {
				continue
			}
			acct := fmt.Sprintf("u%d", i)
			g.Add(dn, acct)
			want[dn.String()] = acct
		}
		parsed, err := ParseGridMap(g.Serialize())
		if err != nil {
			t.Logf("seed %d: parse error: %v", seed, err)
			return false
		}
		if parsed.Len() != len(want) {
			return false
		}
		for dn, acct := range want {
			got, ok := parsed.Lookup(gridcert.MustParseName(dn))
			if !ok || got != acct {
				return false
			}
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// FuzzGridMapRoundTrip asserts parser totality plus parse/serialize
// idempotence: any accepted input must serialize to a canonical form
// that reparses to the same map.
func FuzzGridMapRoundTrip(f *testing.F) {
	f.Add("\"/O=Grid/CN=Alice\" alice\n")
	f.Add("# comment\n\n\"/O=Grid/CN=Al\\\"ice\" a1 extra\n")
	f.Add("\"/O=Grid/CN=C:\\\\x\" slash\n")
	f.Add("\"/O=G\" ")
	f.Add("not-quoted x\n")
	f.Fuzz(func(t *testing.T, text string) {
		g, err := ParseGridMap(text)
		if err != nil {
			return // rejection is fine; crashing or mis-parsing is not
		}
		canonical := g.Serialize()
		g2, err := ParseGridMap(canonical)
		if err != nil {
			t.Fatalf("Serialize output does not reparse: %v\n%q", err, canonical)
		}
		if g2.Len() != g.Len() {
			t.Fatalf("reparse changed entry count %d -> %d", g.Len(), g2.Len())
		}
		if g2.Serialize() != canonical {
			t.Fatalf("serialize not idempotent:\n%q\n%q", canonical, g2.Serialize())
		}
	})
}
