package xmlsec

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"repro/internal/ca"
	"repro/internal/gridcert"
	"repro/internal/gridcrypto"
	"repro/internal/proxy"
	"repro/internal/soap"
)

type bed struct {
	ts    *gridcert.TrustStore
	alice *gridcert.Credential
}

func newBed(t testing.TB) bed {
	t.Helper()
	auth, err := ca.New(gridcert.MustParseName("/O=Grid/CN=CA"), 24*time.Hour, ca.DefaultPolicy())
	if err != nil {
		t.Fatal(err)
	}
	ts := gridcert.NewTrustStore()
	if err := ts.AddRoot(auth.Certificate()); err != nil {
		t.Fatal(err)
	}
	alice, err := auth.NewEntity(gridcert.MustParseName("/O=Grid/CN=Alice"), 12*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	return bed{ts: ts, alice: alice}
}

func TestSignVerifyEnvelope(t *testing.T) {
	b := newBed(t)
	env := soap.NewEnvelope("gram/create", []byte("job"))
	if err := SignEnvelope(env, b.alice); err != nil {
		t.Fatal(err)
	}
	info, err := VerifyEnvelope(env, VerifyOptions{TrustStore: b.ts})
	if err != nil {
		t.Fatal(err)
	}
	if info.Identity.String() != "/O=Grid/CN=Alice" {
		t.Fatalf("signer = %q", info.Identity)
	}
}

func TestSignatureSurvivesWire(t *testing.T) {
	b := newBed(t)
	env := soap.NewEnvelope("gram/create", []byte("job"))
	env.To = "gsh://resource/mmjfs"
	if err := SignEnvelope(env, b.alice); err != nil {
		t.Fatal(err)
	}
	data, err := env.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := soap.Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := VerifyEnvelope(got, VerifyOptions{TrustStore: b.ts}); err != nil {
		t.Fatalf("signature broken by wire round trip: %v", err)
	}
}

func TestVerifyDetectsBodyTampering(t *testing.T) {
	b := newBed(t)
	env := soap.NewEnvelope("op", []byte("original"))
	if err := SignEnvelope(env, b.alice); err != nil {
		t.Fatal(err)
	}
	env.Body = []byte("tampered")
	if _, err := VerifyEnvelope(env, VerifyOptions{TrustStore: b.ts}); err == nil {
		t.Fatal("body tampering not detected")
	}
}

func TestVerifyDetectsActionTampering(t *testing.T) {
	b := newBed(t)
	env := soap.NewEnvelope("benign/read", nil)
	if err := SignEnvelope(env, b.alice); err != nil {
		t.Fatal(err)
	}
	env.Action = "destructive/delete"
	if _, err := VerifyEnvelope(env, VerifyOptions{TrustStore: b.ts}); err == nil {
		t.Fatal("action tampering not detected")
	}
}

func TestVerifyCoveredHeaderTampering(t *testing.T) {
	b := newBed(t)
	env := soap.NewEnvelope("op", nil)
	env.SetHeader("CAS", []byte("assertion-1"))
	if err := SignEnvelope(env, b.alice, "CAS"); err != nil {
		t.Fatal(err)
	}
	env.SetHeader("CAS", []byte("assertion-2"))
	if _, err := VerifyEnvelope(env, VerifyOptions{TrustStore: b.ts}); err == nil {
		t.Fatal("covered header tampering not detected")
	}
}

func TestUncoveredHeaderMayChange(t *testing.T) {
	b := newBed(t)
	env := soap.NewEnvelope("op", nil)
	env.SetHeader("routing-hint", []byte("hop1"))
	if err := SignEnvelope(env, b.alice); err != nil {
		t.Fatal(err)
	}
	env.SetHeader("routing-hint", []byte("hop2")) // intermediaries may rewrite
	if _, err := VerifyEnvelope(env, VerifyOptions{TrustStore: b.ts}); err != nil {
		t.Fatalf("uncovered header change broke signature: %v", err)
	}
}

func TestVerifyUnsignedEnvelope(t *testing.T) {
	b := newBed(t)
	env := soap.NewEnvelope("op", nil)
	if _, err := VerifyEnvelope(env, VerifyOptions{TrustStore: b.ts}); err == nil {
		t.Fatal("unsigned envelope verified")
	}
}

func TestVerifyStaleTimestamp(t *testing.T) {
	b := newBed(t)
	env := soap.NewEnvelope("op", nil)
	if err := SignEnvelope(env, b.alice); err != nil {
		t.Fatal(err)
	}
	// Check at a future time beyond MaxAge.
	_, err := VerifyEnvelope(env, VerifyOptions{
		TrustStore: b.ts,
		MaxAge:     time.Minute,
		Now:        time.Now().Add(10 * time.Minute),
	})
	if err == nil || !strings.Contains(err.Error(), "freshness") {
		t.Fatalf("stale envelope accepted: %v", err)
	}
}

func TestVerifyUntrustedSigner(t *testing.T) {
	b := newBed(t)
	env := soap.NewEnvelope("op", nil)
	if err := SignEnvelope(env, b.alice); err != nil {
		t.Fatal(err)
	}
	if _, err := VerifyEnvelope(env, VerifyOptions{TrustStore: gridcert.NewTrustStore()}); err == nil {
		t.Fatal("untrusted signer accepted")
	}
}

func TestSignWithProxyRejectLimited(t *testing.T) {
	b := newBed(t)
	lim, err := proxy.New(b.alice, proxy.Options{Variant: gridcert.ProxyLimited})
	if err != nil {
		t.Fatal(err)
	}
	env := soap.NewEnvelope("gram/create", []byte("job"))
	if err := SignEnvelope(env, lim); err != nil {
		t.Fatal(err)
	}
	// Verification succeeds generally…
	info, err := VerifyEnvelope(env, VerifyOptions{TrustStore: b.ts})
	if err != nil {
		t.Fatal(err)
	}
	if !info.Limited {
		t.Fatal("limited flag lost")
	}
	// …but job-creation verifiers reject limited proxies.
	if _, err := VerifyEnvelope(env, VerifyOptions{TrustStore: b.ts, RejectLimited: true}); err == nil {
		t.Fatal("limited proxy accepted with RejectLimited")
	}
}

func TestStatelessCreateBeforeRecipientExists(t *testing.T) {
	// The §5.1 stateless property: the message is created and signed with
	// no knowledge of the recipient; any verifier with the trust roots
	// can later check it.
	b := newBed(t)
	env := soap.NewEnvelope("gram/createService", []byte("job for a service that does not exist yet"))
	if err := SignEnvelope(env, b.alice); err != nil {
		t.Fatal(err)
	}
	wire, _ := env.Marshal()

	// "Later", a freshly created service verifies it.
	later, err := soap.Unmarshal(wire)
	if err != nil {
		t.Fatal(err)
	}
	info, err := VerifyEnvelope(later, VerifyOptions{TrustStore: b.ts})
	if err != nil {
		t.Fatal(err)
	}
	if info.Identity.String() != "/O=Grid/CN=Alice" {
		t.Fatalf("identity = %q", info.Identity)
	}
}

func TestEncryptDecryptBody(t *testing.T) {
	recipient, err := gridcrypto.GenerateECDH()
	if err != nil {
		t.Fatal(err)
	}
	env := soap.NewEnvelope("op", []byte("secret payload"))
	if err := EncryptBody(env, recipient.PublicBytes()); err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(env.Body, []byte("secret")) {
		t.Fatal("body not encrypted")
	}
	// Round trip the wire.
	data, _ := env.Marshal()
	got, _ := soap.Unmarshal(data)
	if err := DecryptBody(got, recipient); err != nil {
		t.Fatal(err)
	}
	if string(got.Body) != "secret payload" {
		t.Fatalf("decrypted = %q", got.Body)
	}
}

func TestDecryptWithWrongKeyFails(t *testing.T) {
	recipient, _ := gridcrypto.GenerateECDH()
	other, _ := gridcrypto.GenerateECDH()
	env := soap.NewEnvelope("op", []byte("secret"))
	if err := EncryptBody(env, recipient.PublicBytes()); err != nil {
		t.Fatal(err)
	}
	if err := DecryptBody(env, other); err == nil {
		t.Fatal("wrong key decrypted body")
	}
}

func TestEncryptionBoundToAction(t *testing.T) {
	recipient, _ := gridcrypto.GenerateECDH()
	env := soap.NewEnvelope("read", []byte("secret"))
	if err := EncryptBody(env, recipient.PublicBytes()); err != nil {
		t.Fatal(err)
	}
	env.Action = "delete" // splice ciphertext onto a different action
	if err := DecryptBody(env, recipient); err == nil {
		t.Fatal("ciphertext accepted under different action")
	}
}

func TestContextKeyEncryption(t *testing.T) {
	key := bytes.Repeat([]byte{9}, gridcrypto.AEADKeySize)
	env := soap.NewEnvelope("op", []byte("via context"))
	if err := EncryptBodyWithContextKey(env, key); err != nil {
		t.Fatal(err)
	}
	if err := DecryptBodyWithContextKey(env, key); err != nil {
		t.Fatal(err)
	}
	if string(env.Body) != "via context" {
		t.Fatalf("got %q", env.Body)
	}
}

func TestSignEncryptCombined(t *testing.T) {
	// Sign-then-encrypt: the signature covers the plaintext body, so it
	// must be verified after decryption.
	b := newBed(t)
	recipient, _ := gridcrypto.GenerateECDH()
	env := soap.NewEnvelope("op", []byte("payload"))
	if err := SignEnvelope(env, b.alice); err != nil {
		t.Fatal(err)
	}
	if err := EncryptBody(env, recipient.PublicBytes()); err != nil {
		t.Fatal(err)
	}
	// Undecrypted: verification fails (body is ciphertext).
	if _, err := VerifyEnvelope(env, VerifyOptions{TrustStore: b.ts}); err == nil {
		t.Fatal("signature verified over ciphertext")
	}
	if err := DecryptBody(env, recipient); err != nil {
		t.Fatal(err)
	}
	if _, err := VerifyEnvelope(env, VerifyOptions{TrustStore: b.ts}); err != nil {
		t.Fatalf("after decrypt: %v", err)
	}
}

func BenchmarkSignEnvelope(b *testing.B) {
	bed := newBed(b)
	body := bytes.Repeat([]byte{1}, 1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		env := soap.NewEnvelope("op", body)
		if err := SignEnvelope(env, bed.alice); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkVerifyEnvelope(b *testing.B) {
	bed := newBed(b)
	env := soap.NewEnvelope("op", bytes.Repeat([]byte{1}, 1024))
	if err := SignEnvelope(env, bed.alice); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := VerifyEnvelope(env, VerifyOptions{TrustStore: bed.ts}); err != nil {
			b.Fatal(err)
		}
	}
}
