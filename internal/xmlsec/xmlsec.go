// Package xmlsec implements XML-Signature and XML-Encryption over SOAP
// envelopes (paper §5.1): detached signatures binding a sender's
// certificate chain to the envelope's canonical form, and element-level
// encryption of envelope bodies.
//
// The stateless mode of GT3 is built directly on SignEnvelope: "a message
// can be created and signed, allowing the recipient to verify the
// message's origin and integrity, without establishing synchronous
// communication with the recipient" — the signature carries everything
// the verifier needs.
package xmlsec

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/gridcert"
	"repro/internal/gridcrypto"
	"repro/internal/soap"
	"repro/internal/wire"
)

// SignatureHeader is the envelope header block carrying the detached
// signature.
const SignatureHeader = "ds:Signature"

// TimestampHeader carries the signing time (covered by the signature).
const TimestampHeader = "wsu:Timestamp"

// EncryptedBodyHeader marks an encrypted body and carries key material.
const EncryptedBodyHeader = "xenc:EncryptedKey"

// signatureBlock is the wire form of the detached signature.
type signatureBlock struct {
	chain    []byte // sender certificate chain (BinarySecurityToken)
	covered  []string
	sigValue []byte
}

func (s signatureBlock) encode() []byte {
	e := wire.NewEncoder()
	e.Bytes(s.chain)
	e.U32(uint32(len(s.covered)))
	for _, c := range s.covered {
		e.Str(c)
	}
	e.Bytes(s.sigValue)
	return e.Finish()
}

func decodeSignatureBlock(b []byte) (signatureBlock, error) {
	d := wire.NewDecoder(b)
	var s signatureBlock
	s.chain = d.Bytes()
	n := d.Count("covered header", 64)
	for i := 0; i < n; i++ {
		s.covered = append(s.covered, d.Str())
	}
	s.sigValue = d.Bytes()
	if err := d.Done(); err != nil {
		return signatureBlock{}, err
	}
	return s, nil
}

// SignEnvelope adds a timestamp and a detached signature over the
// envelope's canonical form (addressing + the named headers + timestamp +
// body), signed with the credential's key and carrying its chain.
func SignEnvelope(env *soap.Envelope, cred *gridcert.Credential, extraHeaders ...string) error {
	if cred == nil {
		return errors.New("xmlsec: nil credential")
	}
	env.SetHeader(TimestampHeader, []byte(time.Now().UTC().Format(time.RFC3339Nano)))
	covered := append([]string{TimestampHeader}, extraHeaders...)
	canonical := env.Canonical(covered...)
	sig, err := cred.Key.Sign(canonical)
	if err != nil {
		return fmt.Errorf("xmlsec: signing envelope: %w", err)
	}
	block := signatureBlock{
		chain:    gridcert.EncodeChain(cred.Chain),
		covered:  covered,
		sigValue: sig,
	}
	env.SetHeader(SignatureHeader, block.encode())
	return nil
}

// VerifyOptions tunes envelope verification.
type VerifyOptions struct {
	// TrustStore validates the signer chain (required).
	TrustStore *gridcert.TrustStore
	// MaxAge rejects envelopes whose timestamp is older (0 = 5 minutes).
	MaxAge time.Duration
	// Now overrides the clock.
	Now time.Time
	// RejectLimited refuses signatures from limited-proxy chains.
	RejectLimited bool
}

// VerifyEnvelope checks the detached signature and returns the validated
// signer information.
func VerifyEnvelope(env *soap.Envelope, opts VerifyOptions) (*gridcert.ChainInfo, error) {
	if opts.TrustStore == nil {
		return nil, errors.New("xmlsec: verification requires a trust store")
	}
	h, ok := env.Header(SignatureHeader)
	if !ok {
		return nil, errors.New("xmlsec: envelope is not signed")
	}
	block, err := decodeSignatureBlock(h.Content)
	if err != nil {
		return nil, fmt.Errorf("xmlsec: malformed signature block: %w", err)
	}
	chain, err := gridcert.DecodeChain(block.chain)
	if err != nil {
		return nil, fmt.Errorf("xmlsec: signer chain: %w", err)
	}
	now := opts.Now
	if now.IsZero() {
		now = time.Now()
	}
	info, err := opts.TrustStore.Verify(chain, gridcert.VerifyOptions{
		Now:           now,
		RejectLimited: opts.RejectLimited,
	})
	if err != nil {
		return nil, fmt.Errorf("xmlsec: signer chain: %w", err)
	}
	// Timestamp must be covered and fresh.
	tsRaw, ok := env.Header(TimestampHeader)
	if !ok {
		return nil, errors.New("xmlsec: signed envelope missing timestamp")
	}
	ts, err := time.Parse(time.RFC3339Nano, string(tsRaw.Content))
	if err != nil {
		return nil, fmt.Errorf("xmlsec: bad timestamp: %w", err)
	}
	maxAge := opts.MaxAge
	if maxAge == 0 {
		maxAge = 5 * time.Minute
	}
	age := now.Sub(ts)
	if age > maxAge || age < -time.Minute {
		return nil, fmt.Errorf("xmlsec: timestamp outside freshness window (age %v)", age)
	}
	canonical := env.Canonical(block.covered...)
	if err := chain[0].PublicKey.Verify(canonical, block.sigValue); err != nil {
		return nil, fmt.Errorf("xmlsec: signature: %w", err)
	}
	return info, nil
}

// PeekSigner extracts the *claimed* signer identity from a signed
// envelope WITHOUT verifying anything. It exists for routing decisions
// only (the GT3 Proxy Router picks a destination by requester); every
// security decision must instead use VerifyEnvelope.
func PeekSigner(env *soap.Envelope) (gridcert.Name, error) {
	h, ok := env.Header(SignatureHeader)
	if !ok {
		return gridcert.Name{}, errors.New("xmlsec: envelope is not signed")
	}
	block, err := decodeSignatureBlock(h.Content)
	if err != nil {
		return gridcert.Name{}, err
	}
	chain, err := gridcert.DecodeChain(block.chain)
	if err != nil {
		return gridcert.Name{}, err
	}
	// The identity is the first non-proxy certificate's subject.
	for _, c := range chain {
		if !c.IsProxy() {
			return c.Subject, nil
		}
	}
	return chain[0].Subject, nil
}

// --- XML-Encryption ----------------------------------------------------

// EncryptBody encrypts the envelope body for a recipient identified by an
// X25519 public key (published in the service's WS-Policy document),
// using ephemeral-static ECDH key transport and AES-256-GCM, and replaces
// the body with the ciphertext.
func EncryptBody(env *soap.Envelope, recipientECDHPub []byte) error {
	eph, err := gridcrypto.GenerateECDH()
	if err != nil {
		return err
	}
	secret, err := eph.SharedSecret(recipientECDHPub)
	if err != nil {
		return fmt.Errorf("xmlsec: recipient key agreement: %w", err)
	}
	key, err := gridcrypto.DeriveKey(secret, eph.PublicBytes(), []byte("xmlenc body key"), gridcrypto.AEADKeySize)
	if err != nil {
		return err
	}
	sealed, err := gridcrypto.SealOnce(key, env.Body, []byte(env.Action))
	if err != nil {
		return err
	}
	env.SetHeader(EncryptedBodyHeader, eph.PublicBytes())
	env.Body = sealed
	return nil
}

// DecryptBody reverses EncryptBody with the recipient's private ECDH key.
func DecryptBody(env *soap.Envelope, recipient *gridcrypto.ECDHKeyPair) error {
	h, ok := env.Header(EncryptedBodyHeader)
	if !ok {
		return errors.New("xmlsec: body is not encrypted")
	}
	secret, err := recipient.SharedSecret(h.Content)
	if err != nil {
		return fmt.Errorf("xmlsec: key agreement: %w", err)
	}
	key, err := gridcrypto.DeriveKey(secret, h.Content, []byte("xmlenc body key"), gridcrypto.AEADKeySize)
	if err != nil {
		return err
	}
	plain, err := gridcrypto.OpenOnce(key, env.Body, []byte(env.Action))
	if err != nil {
		return fmt.Errorf("xmlsec: body decryption: %w", err)
	}
	env.Body = plain
	env.RemoveHeader(EncryptedBodyHeader)
	return nil
}

// EncryptBodyWithContextKey encrypts the body under a symmetric key
// shared via an established security context (the WS-SecureConversation
// path); aad binds the ciphertext to the message action.
func EncryptBodyWithContextKey(env *soap.Envelope, key []byte) error {
	sealed, err := gridcrypto.SealOnce(key, env.Body, []byte(env.Action))
	if err != nil {
		return err
	}
	env.Body = sealed
	return nil
}

// DecryptBodyWithContextKey reverses EncryptBodyWithContextKey.
func DecryptBodyWithContextKey(env *soap.Envelope, key []byte) error {
	plain, err := gridcrypto.OpenOnce(key, env.Body, []byte(env.Action))
	if err != nil {
		return fmt.Errorf("xmlsec: context-key decryption: %w", err)
	}
	env.Body = plain
	return nil
}
