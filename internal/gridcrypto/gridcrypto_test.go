package gridcrypto

import (
	"bytes"
	"crypto/sha256"
	"testing"
	"testing/quick"
)

func TestGenerateSignVerify(t *testing.T) {
	for _, alg := range []Algorithm{AlgEd25519, AlgECDSAP256} {
		t.Run(alg.String(), func(t *testing.T) {
			kp, err := GenerateKeyPair(alg)
			if err != nil {
				t.Fatalf("GenerateKeyPair: %v", err)
			}
			msg := []byte("grid security infrastructure")
			sig, err := kp.Sign(msg)
			if err != nil {
				t.Fatalf("Sign: %v", err)
			}
			if err := kp.Public().Verify(msg, sig); err != nil {
				t.Fatalf("Verify: %v", err)
			}
			if err := kp.Public().Verify([]byte("tampered"), sig); err == nil {
				t.Fatal("Verify accepted tampered message")
			}
			sig[0] ^= 0x80
			if err := kp.Public().Verify(msg, sig); err == nil {
				t.Fatal("Verify accepted corrupted signature")
			}
		})
	}
}

func TestGenerateUnknownAlgorithm(t *testing.T) {
	if _, err := GenerateKeyPair(Algorithm(99)); err != ErrUnknownAlgorithm {
		t.Fatalf("want ErrUnknownAlgorithm, got %v", err)
	}
}

func TestPublicKeyRoundTrip(t *testing.T) {
	for _, alg := range []Algorithm{AlgEd25519, AlgECDSAP256} {
		kp, err := GenerateKeyPair(alg)
		if err != nil {
			t.Fatal(err)
		}
		enc := kp.Public().Encode()
		dec, err := DecodePublicKey(enc)
		if err != nil {
			t.Fatalf("%s: DecodePublicKey: %v", alg, err)
		}
		if !dec.Equal(kp.Public()) {
			t.Fatalf("%s: round trip mismatch", alg)
		}
	}
}

func TestDecodePublicKeyRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		{},
		{byte(AlgEd25519)},
		{byte(AlgEd25519), 1, 2, 3},
		{byte(AlgECDSAP256), 4, 0, 0},
		{99, 1, 2, 3, 4},
		append([]byte{byte(AlgECDSAP256)}, bytes.Repeat([]byte{0xff}, 65)...), // not on curve
	}
	for i, c := range cases {
		if _, err := DecodePublicKey(c); err == nil {
			t.Errorf("case %d: DecodePublicKey accepted garbage %x", i, c)
		}
	}
}

func TestFingerprintDistinguishesKeys(t *testing.T) {
	a, _ := GenerateKeyPair(AlgEd25519)
	b, _ := GenerateKeyPair(AlgEd25519)
	if a.Public().Fingerprint() == b.Public().Fingerprint() {
		t.Fatal("two fresh keys share a fingerprint")
	}
	if a.Public().Fingerprint() != a.Public().Fingerprint() {
		t.Fatal("fingerprint not deterministic")
	}
}

func TestCrossAlgorithmVerifyFails(t *testing.T) {
	ed, _ := GenerateKeyPair(AlgEd25519)
	ec, _ := GenerateKeyPair(AlgECDSAP256)
	msg := []byte("msg")
	sig, _ := ed.Sign(msg)
	if err := ec.Public().Verify(msg, sig); err == nil {
		t.Fatal("ECDSA key verified an Ed25519 signature")
	}
}

func TestHKDFKnownProperties(t *testing.T) {
	secret := []byte("shared secret")
	salt := []byte("salt")
	k1, err := DeriveKey(secret, salt, []byte("client write"), 32)
	if err != nil {
		t.Fatal(err)
	}
	k2, err := DeriveKey(secret, salt, []byte("server write"), 32)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(k1, k2) {
		t.Fatal("different info produced identical keys")
	}
	k1b, _ := DeriveKey(secret, salt, []byte("client write"), 32)
	if !bytes.Equal(k1, k1b) {
		t.Fatal("HKDF not deterministic")
	}
	long, err := DeriveKey(secret, salt, []byte("x"), 100)
	if err != nil || len(long) != 100 {
		t.Fatalf("long derivation: len=%d err=%v", len(long), err)
	}
}

func TestHKDFExpandBounds(t *testing.T) {
	prk := HKDFExtract(nil, []byte("ikm"))
	if _, err := HKDFExpand(prk, nil, 0); err == nil {
		t.Fatal("accepted zero length")
	}
	if _, err := HKDFExpand(prk, nil, 255*sha256.Size+1); err == nil {
		t.Fatal("accepted over-long output")
	}
}

func TestECDHAgreement(t *testing.T) {
	a, err := GenerateECDH()
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateECDH()
	if err != nil {
		t.Fatal(err)
	}
	sa, err := a.SharedSecret(b.PublicBytes())
	if err != nil {
		t.Fatal(err)
	}
	sb, err := b.SharedSecret(a.PublicBytes())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(sa, sb) {
		t.Fatal("ECDH shared secrets differ")
	}
	if _, err := a.SharedSecret([]byte("short")); err == nil {
		t.Fatal("accepted malformed peer share")
	}
}

func TestSealerOpenerOrdering(t *testing.T) {
	key := bytes.Repeat([]byte{7}, AEADKeySize)
	s, err := NewSealer(key)
	if err != nil {
		t.Fatal(err)
	}
	o, err := NewOpener(key)
	if err != nil {
		t.Fatal(err)
	}
	var records []struct {
		seq uint64
		ct  []byte
	}
	for i := 0; i < 5; i++ {
		seq, ct, err := s.Seal([]byte{byte(i)}, []byte("aad"))
		if err != nil {
			t.Fatal(err)
		}
		if seq != uint64(i) {
			t.Fatalf("seq = %d, want %d", seq, i)
		}
		records = append(records, struct {
			seq uint64
			ct  []byte
		}{seq, ct})
	}
	for i, r := range records {
		pt, err := o.Open(r.seq, r.ct, []byte("aad"))
		if err != nil {
			t.Fatalf("Open record %d: %v", i, err)
		}
		if len(pt) != 1 || pt[0] != byte(i) {
			t.Fatalf("record %d decrypted to %x", i, pt)
		}
	}
	// Replay of the last record must fail.
	if _, err := o.Open(records[4].seq, records[4].ct, []byte("aad")); err == nil {
		t.Fatal("replay accepted")
	}
}

func TestOpenerRejectsWrongAAD(t *testing.T) {
	key := bytes.Repeat([]byte{9}, AEADKeySize)
	s, _ := NewSealer(key)
	o, _ := NewOpener(key)
	seq, ct, _ := s.Seal([]byte("payload"), []byte("context-A"))
	if _, err := o.Open(seq, ct, []byte("context-B")); err == nil {
		t.Fatal("wrong AAD accepted")
	}
}

func TestSealerRejectsBadKeySize(t *testing.T) {
	if _, err := NewSealer([]byte("short")); err == nil {
		t.Fatal("accepted short key")
	}
	if _, err := NewOpener(bytes.Repeat([]byte{1}, 16)); err == nil {
		t.Fatal("accepted 16-byte key (must be 32)")
	}
}

func TestSealOnceOpenOnce(t *testing.T) {
	key := bytes.Repeat([]byte{3}, AEADKeySize)
	sealed, err := SealOnce(key, []byte("hello grid"), []byte("hdr"))
	if err != nil {
		t.Fatal(err)
	}
	pt, err := OpenOnce(key, sealed, []byte("hdr"))
	if err != nil {
		t.Fatal(err)
	}
	if string(pt) != "hello grid" {
		t.Fatalf("got %q", pt)
	}
	sealed[len(sealed)-1] ^= 1
	if _, err := OpenOnce(key, sealed, []byte("hdr")); err == nil {
		t.Fatal("tampered ciphertext accepted")
	}
	if _, err := OpenOnce(key, []byte("tiny"), nil); err == nil {
		t.Fatal("short input accepted")
	}
}

func TestRandomSerialPositive(t *testing.T) {
	for i := 0; i < 100; i++ {
		s, err := RandomSerial()
		if err != nil {
			t.Fatal(err)
		}
		if s == 0 || s >= 1<<63 {
			t.Fatalf("serial out of range: %d", s)
		}
	}
}

func TestHMACHelpers(t *testing.T) {
	tag := HMACSHA256([]byte("k"), []byte("m"))
	if !HMACEqual(tag, HMACSHA256([]byte("k"), []byte("m"))) {
		t.Fatal("HMAC not deterministic")
	}
	if HMACEqual(tag, HMACSHA256([]byte("k2"), []byte("m"))) {
		t.Fatal("different keys produced equal MACs")
	}
}

// Property: every generated message round-trips through seal/open once.
func TestPropertySealOnceRoundTrip(t *testing.T) {
	key := bytes.Repeat([]byte{5}, AEADKeySize)
	f := func(msg, aad []byte) bool {
		sealed, err := SealOnce(key, msg, aad)
		if err != nil {
			return false
		}
		pt, err := OpenOnce(key, sealed, aad)
		if err != nil {
			return false
		}
		return bytes.Equal(pt, msg)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: HKDF output differs whenever info differs.
func TestPropertyHKDFInfoSeparation(t *testing.T) {
	secret := []byte("property secret")
	f := func(a, b []byte) bool {
		if bytes.Equal(a, b) {
			return true
		}
		ka, err1 := DeriveKey(secret, nil, a, 32)
		kb, err2 := DeriveKey(secret, nil, b, 32)
		return err1 == nil && err2 == nil && !bytes.Equal(ka, kb)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertySignVerifyEd25519(t *testing.T) {
	kp, err := GenerateKeyPair(AlgEd25519)
	if err != nil {
		t.Fatal(err)
	}
	f := func(msg []byte) bool {
		sig, err := kp.Sign(msg)
		if err != nil {
			return false
		}
		return kp.Public().Verify(msg, sig) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkKeyGenEd25519(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := GenerateKeyPair(AlgEd25519); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkKeyGenECDSAP256(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := GenerateKeyPair(AlgECDSAP256); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSignVerifyEd25519(b *testing.B) {
	kp, _ := GenerateKeyPair(AlgEd25519)
	msg := bytes.Repeat([]byte{1}, 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sig, _ := kp.Sign(msg)
		if err := kp.Public().Verify(msg, sig); err != nil {
			b.Fatal(err)
		}
	}
}
