// Package gridcrypto provides the cryptographic primitives used by the
// Grid Security Infrastructure reproduction: key pairs, signatures, key
// agreement, key derivation, and authenticated encryption.
//
// The package is a thin, deterministic facade over the Go standard library
// crypto packages. It exists so that the rest of the repository can treat
// "a grid key" as a single value with a stable wire encoding, independent
// of the underlying algorithm.
package gridcrypto

import (
	"bytes"
	"crypto"
	"crypto/ecdsa"
	"crypto/ed25519"
	"crypto/elliptic"
	"crypto/rand"
	"crypto/sha256"
	"errors"
	"fmt"
	"math/big"
)

// Algorithm identifies a signature algorithm supported by the grid.
type Algorithm uint8

const (
	// AlgEd25519 is the Ed25519 signature scheme. It is the default for
	// proxy certificates because key generation is extremely cheap, which
	// matters for dynamic entity creation.
	AlgEd25519 Algorithm = 1
	// AlgECDSAP256 is ECDSA over NIST P-256 with SHA-256.
	AlgECDSAP256 Algorithm = 2
)

// String returns the canonical name of the algorithm.
func (a Algorithm) String() string {
	switch a {
	case AlgEd25519:
		return "ed25519"
	case AlgECDSAP256:
		return "ecdsa-p256"
	default:
		return fmt.Sprintf("unknown(%d)", uint8(a))
	}
}

// Valid reports whether a is a known algorithm.
func (a Algorithm) Valid() bool {
	return a == AlgEd25519 || a == AlgECDSAP256
}

// ErrUnknownAlgorithm is returned when decoding a key or signature that
// names an algorithm this build does not implement.
var ErrUnknownAlgorithm = errors.New("gridcrypto: unknown algorithm")

// ErrBadSignature is returned when signature verification fails.
var ErrBadSignature = errors.New("gridcrypto: signature verification failed")

// PublicKey is an algorithm-tagged public key with a stable wire encoding.
type PublicKey struct {
	Alg Algorithm
	// Raw holds the algorithm-specific encoding: 32 bytes for Ed25519,
	// 65-byte uncompressed point for ECDSA P-256.
	Raw []byte
}

// Equal reports whether two public keys are identical.
func (p PublicKey) Equal(q PublicKey) bool {
	return p.Alg == q.Alg && bytes.Equal(p.Raw, q.Raw)
}

// Fingerprint returns the SHA-256 hash of the encoded key. It is the
// canonical short identifier for a key.
func (p PublicKey) Fingerprint() [32]byte {
	h := sha256.New()
	h.Write([]byte{byte(p.Alg)})
	h.Write(p.Raw)
	var out [32]byte
	copy(out[:], h.Sum(nil))
	return out
}

// Encode returns the wire encoding of the public key: one algorithm byte
// followed by the raw key material.
func (p PublicKey) Encode() []byte {
	out := make([]byte, 1+len(p.Raw))
	out[0] = byte(p.Alg)
	copy(out[1:], p.Raw)
	return out
}

// DecodePublicKey parses a wire-encoded public key produced by Encode.
func DecodePublicKey(b []byte) (PublicKey, error) {
	if len(b) < 2 {
		return PublicKey{}, errors.New("gridcrypto: public key too short")
	}
	alg := Algorithm(b[0])
	raw := append([]byte(nil), b[1:]...)
	switch alg {
	case AlgEd25519:
		if len(raw) != ed25519.PublicKeySize {
			return PublicKey{}, fmt.Errorf("gridcrypto: ed25519 public key must be %d bytes, got %d", ed25519.PublicKeySize, len(raw))
		}
	case AlgECDSAP256:
		if _, err := unmarshalP256(raw); err != nil {
			return PublicKey{}, err
		}
	default:
		return PublicKey{}, ErrUnknownAlgorithm
	}
	return PublicKey{Alg: alg, Raw: raw}, nil
}

// Verify checks sig over msg under this public key.
func (p PublicKey) Verify(msg, sig []byte) error {
	switch p.Alg {
	case AlgEd25519:
		if len(p.Raw) != ed25519.PublicKeySize {
			return errors.New("gridcrypto: malformed ed25519 public key")
		}
		if !ed25519.Verify(ed25519.PublicKey(p.Raw), msg, sig) {
			return ErrBadSignature
		}
		return nil
	case AlgECDSAP256:
		pub, err := unmarshalP256(p.Raw)
		if err != nil {
			return err
		}
		digest := sha256.Sum256(msg)
		if !ecdsa.VerifyASN1(pub, digest[:], sig) {
			return ErrBadSignature
		}
		return nil
	default:
		return ErrUnknownAlgorithm
	}
}

// KeyPair is a private key together with its public half.
type KeyPair struct {
	pub  PublicKey
	priv crypto.Signer
}

// GenerateKeyPair creates a fresh key pair for the given algorithm.
func GenerateKeyPair(alg Algorithm) (*KeyPair, error) {
	switch alg {
	case AlgEd25519:
		pub, priv, err := ed25519.GenerateKey(rand.Reader)
		if err != nil {
			return nil, fmt.Errorf("gridcrypto: generating ed25519 key: %w", err)
		}
		return &KeyPair{
			pub:  PublicKey{Alg: AlgEd25519, Raw: append([]byte(nil), pub...)},
			priv: priv,
		}, nil
	case AlgECDSAP256:
		priv, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
		if err != nil {
			return nil, fmt.Errorf("gridcrypto: generating ecdsa key: %w", err)
		}
		raw := marshalP256(&priv.PublicKey)
		return &KeyPair{
			pub:  PublicKey{Alg: AlgECDSAP256, Raw: raw},
			priv: priv,
		}, nil
	default:
		return nil, ErrUnknownAlgorithm
	}
}

// Public returns the public half of the key pair.
func (k *KeyPair) Public() PublicKey { return k.pub }

// Algorithm returns the signature algorithm of the pair.
func (k *KeyPair) Algorithm() Algorithm { return k.pub.Alg }

// Sign produces a signature over msg. For Ed25519 the message is signed
// directly; for ECDSA it is hashed with SHA-256 first.
func (k *KeyPair) Sign(msg []byte) ([]byte, error) {
	switch k.pub.Alg {
	case AlgEd25519:
		return k.priv.Sign(rand.Reader, msg, crypto.Hash(0))
	case AlgECDSAP256:
		digest := sha256.Sum256(msg)
		return k.priv.Sign(rand.Reader, digest[:], crypto.SHA256)
	default:
		return nil, ErrUnknownAlgorithm
	}
}

// Encode serializes the key pair, private half included: one algorithm
// byte followed by the private scalar (Ed25519 seed, or the P-256 D
// scalar left-padded to 32 bytes) — the public half is recomputed on
// decode, so a corrupted file cannot present key A's public half over
// key B's private one. This is credential material: callers own keeping
// the bytes out of logs and world-readable files (gsictl writes them
// 0600).
func (k *KeyPair) Encode() ([]byte, error) {
	switch k.pub.Alg {
	case AlgEd25519:
		priv := k.priv.(ed25519.PrivateKey)
		return append([]byte{byte(AlgEd25519)}, priv.Seed()...), nil
	case AlgECDSAP256:
		priv := k.priv.(*ecdsa.PrivateKey)
		out := make([]byte, 33)
		out[0] = byte(AlgECDSAP256)
		priv.D.FillBytes(out[1:])
		return out, nil
	default:
		return nil, ErrUnknownAlgorithm
	}
}

// DecodeKeyPair reverses KeyPair.Encode, rederiving the public half
// from the private scalar.
func DecodeKeyPair(b []byte) (*KeyPair, error) {
	if len(b) < 1 {
		return nil, errors.New("gridcrypto: empty key pair encoding")
	}
	switch Algorithm(b[0]) {
	case AlgEd25519:
		if len(b) != 1+ed25519.SeedSize {
			return nil, fmt.Errorf("gridcrypto: ed25519 key pair encoding is %d bytes, want %d", len(b), 1+ed25519.SeedSize)
		}
		priv := ed25519.NewKeyFromSeed(b[1:])
		pub := priv.Public().(ed25519.PublicKey)
		return &KeyPair{
			pub:  PublicKey{Alg: AlgEd25519, Raw: append([]byte(nil), pub...)},
			priv: priv,
		}, nil
	case AlgECDSAP256:
		if len(b) != 33 {
			return nil, fmt.Errorf("gridcrypto: P-256 key pair encoding is %d bytes, want 33", len(b))
		}
		d := new(big.Int).SetBytes(b[1:])
		curve := elliptic.P256()
		if d.Sign() <= 0 || d.Cmp(curve.Params().N) >= 0 {
			return nil, errors.New("gridcrypto: P-256 private scalar out of range")
		}
		priv := &ecdsa.PrivateKey{D: d}
		priv.Curve = curve
		priv.X, priv.Y = curve.ScalarBaseMult(b[1:])
		return &KeyPair{
			pub:  PublicKey{Alg: AlgECDSAP256, Raw: marshalP256(&priv.PublicKey)},
			priv: priv,
		}, nil
	default:
		return nil, ErrUnknownAlgorithm
	}
}

// marshalP256 encodes a P-256 public key as an uncompressed point.
func marshalP256(pub *ecdsa.PublicKey) []byte {
	// Uncompressed point encoding: 0x04 || X || Y, 32 bytes each.
	out := make([]byte, 65)
	out[0] = 4
	pub.X.FillBytes(out[1:33])
	pub.Y.FillBytes(out[33:65])
	return out
}

// unmarshalP256 decodes an uncompressed P-256 point.
func unmarshalP256(raw []byte) (*ecdsa.PublicKey, error) {
	if len(raw) != 65 || raw[0] != 4 {
		return nil, errors.New("gridcrypto: malformed P-256 point")
	}
	x := new(big.Int).SetBytes(raw[1:33])
	y := new(big.Int).SetBytes(raw[33:65])
	if !elliptic.P256().IsOnCurve(x, y) {
		return nil, errors.New("gridcrypto: point not on P-256 curve")
	}
	return &ecdsa.PublicKey{Curve: elliptic.P256(), X: x, Y: y}, nil
}
