package gridcrypto

import (
	"crypto/ecdh"
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"fmt"
)

// HKDFExtract implements the extract step of HKDF (RFC 5869) with SHA-256.
func HKDFExtract(salt, ikm []byte) []byte {
	if len(salt) == 0 {
		salt = make([]byte, sha256.Size)
	}
	mac := hmac.New(sha256.New, salt)
	mac.Write(ikm)
	return mac.Sum(nil)
}

// HKDFExpand implements the expand step of HKDF (RFC 5869) with SHA-256,
// producing length bytes of output keyed by prk and bound to info.
func HKDFExpand(prk, info []byte, length int) ([]byte, error) {
	if length <= 0 || length > 255*sha256.Size {
		return nil, fmt.Errorf("gridcrypto: invalid HKDF output length %d", length)
	}
	var (
		out  []byte
		prev []byte
	)
	for counter := byte(1); len(out) < length; counter++ {
		mac := hmac.New(sha256.New, prk)
		mac.Write(prev)
		mac.Write(info)
		mac.Write([]byte{counter})
		prev = mac.Sum(nil)
		out = append(out, prev...)
	}
	return out[:length], nil
}

// DeriveKey is the one-shot HKDF: extract with salt then expand with info.
func DeriveKey(secret, salt, info []byte, length int) ([]byte, error) {
	return HKDFExpand(HKDFExtract(salt, secret), info, length)
}

// HMACSHA256 computes an HMAC-SHA256 tag over msg with key.
func HMACSHA256(key, msg []byte) []byte {
	mac := hmac.New(sha256.New, key)
	mac.Write(msg)
	return mac.Sum(nil)
}

// HMACEqual compares two MAC values in constant time.
func HMACEqual(a, b []byte) bool { return hmac.Equal(a, b) }

// ECDHKeyPair is an ephemeral X25519 key-agreement pair used during
// security-context establishment.
type ECDHKeyPair struct {
	priv *ecdh.PrivateKey
}

// GenerateECDH creates a fresh X25519 key pair.
func GenerateECDH() (*ECDHKeyPair, error) {
	priv, err := ecdh.X25519().GenerateKey(rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("gridcrypto: generating x25519 key: %w", err)
	}
	return &ECDHKeyPair{priv: priv}, nil
}

// PublicBytes returns the 32-byte public share to send to the peer.
func (e *ECDHKeyPair) PublicBytes() []byte { return e.priv.PublicKey().Bytes() }

// SharedSecret computes the shared secret with the peer's public share.
func (e *ECDHKeyPair) SharedSecret(peer []byte) ([]byte, error) {
	pub, err := ecdh.X25519().NewPublicKey(peer)
	if err != nil {
		return nil, fmt.Errorf("gridcrypto: bad peer ECDH share: %w", err)
	}
	secret, err := e.priv.ECDH(pub)
	if err != nil {
		return nil, fmt.Errorf("gridcrypto: ECDH agreement: %w", err)
	}
	return secret, nil
}

// RandomBytes returns n cryptographically random bytes.
func RandomBytes(n int) ([]byte, error) {
	b := make([]byte, n)
	if _, err := rand.Read(b); err != nil {
		return nil, fmt.Errorf("gridcrypto: reading random bytes: %w", err)
	}
	return b, nil
}

// RandomSerial returns a positive random 63-bit serial number.
func RandomSerial() (uint64, error) {
	b, err := RandomBytes(8)
	if err != nil {
		return 0, err
	}
	v := uint64(b[0])<<56 | uint64(b[1])<<48 | uint64(b[2])<<40 | uint64(b[3])<<32 |
		uint64(b[4])<<24 | uint64(b[5])<<16 | uint64(b[6])<<8 | uint64(b[7])
	v &= 1<<63 - 1
	if v == 0 {
		v = 1
	}
	return v, nil
}
