package gridcrypto

import (
	"crypto/aes"
	"crypto/cipher"
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
)

// AEADKeySize is the AES-256 key length used for all symmetric protection.
const AEADKeySize = 32

// ErrSealOverflow is returned when a Sealer's nonce counter would wrap.
var ErrSealOverflow = errors.New("gridcrypto: sealer nonce counter exhausted")

// ErrOpenFailed is returned when AEAD authentication fails.
var ErrOpenFailed = errors.New("gridcrypto: AEAD open failed")

// Sealer provides ordered authenticated encryption with a deterministic
// 64-bit counter nonce, as used for record protection in a security
// context. A Sealer must only be used by one direction of a connection;
// each side of a context derives its own sending key.
type Sealer struct {
	mu    sync.Mutex
	aead  cipher.AEAD
	seq   uint64
	nonce [12]byte // scratch, guarded by mu (a stack nonce would escape through the AEAD interface)
}

// NewSealer builds a Sealer over AES-256-GCM with the given key.
func NewSealer(key []byte) (*Sealer, error) {
	aead, err := newGCM(key)
	if err != nil {
		return nil, err
	}
	return &Sealer{aead: aead}, nil
}

// SealOverhead is the per-record ciphertext expansion (the GCM tag).
const SealOverhead = 16

// Seal encrypts plaintext with associated data aad and returns the
// sequence number used together with the ciphertext. Sequence numbers
// start at zero and increase by one per call.
func (s *Sealer) Seal(plaintext, aad []byte) (seq uint64, ciphertext []byte, err error) {
	return s.SealInto(nil, plaintext, aad)
}

// SealInto is Seal appending the ciphertext to dst instead of a fresh
// allocation. Pass dst = plaintext[:0] to encrypt in place (the caller's
// buffer then holds ciphertext||tag, needing SealOverhead spare
// capacity to avoid growing); any other overlap between dst's spare
// capacity and plaintext is the caller's bug, per crypto/cipher.
func (s *Sealer) SealInto(dst, plaintext, aad []byte) (seq uint64, ciphertext []byte, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.seq == ^uint64(0) {
		return 0, nil, ErrSealOverflow
	}
	seq = s.seq
	s.seq++
	binary.BigEndian.PutUint64(s.nonce[4:], seq)
	ciphertext = s.aead.Seal(dst, s.nonce[:], plaintext, aad)
	return seq, ciphertext, nil
}

// Opener is the receiving half: it decrypts records sealed by the peer's
// Sealer, enforcing strictly increasing sequence numbers (anti-replay).
type Opener struct {
	mu    sync.Mutex
	aead  cipher.AEAD
	next  uint64
	nonce [12]byte // scratch, guarded by mu
}

// NewOpener builds an Opener over AES-256-GCM with the given key.
func NewOpener(key []byte) (*Opener, error) {
	aead, err := newGCM(key)
	if err != nil {
		return nil, err
	}
	return &Opener{aead: aead}, nil
}

// Open decrypts a record produced with the given sequence number. Records
// must arrive in order; replayed or reordered sequence numbers are
// rejected before any cryptographic work.
func (o *Opener) Open(seq uint64, ciphertext, aad []byte) ([]byte, error) {
	return o.open(nil, seq, ciphertext, aad)
}

// OpenInPlace is Open decrypting into the ciphertext's own storage: the
// returned plaintext is ciphertext[:len(ciphertext)-SealOverhead]. The
// record is consumed either way — on success the buffer holds plaintext,
// on failure its contents are undefined.
func (o *Opener) OpenInPlace(seq uint64, ciphertext, aad []byte) ([]byte, error) {
	return o.open(ciphertext[:0], seq, ciphertext, aad)
}

func (o *Opener) open(dst []byte, seq uint64, ciphertext, aad []byte) ([]byte, error) {
	o.mu.Lock()
	defer o.mu.Unlock()
	if seq != o.next {
		return nil, fmt.Errorf("gridcrypto: record sequence %d, want %d (replay or reorder)", seq, o.next)
	}
	binary.BigEndian.PutUint64(o.nonce[4:], seq)
	plaintext, err := o.aead.Open(dst, o.nonce[:], ciphertext, aad)
	if err != nil {
		return nil, ErrOpenFailed
	}
	o.next++
	return plaintext, nil
}

// SealOnce encrypts a single message under key with a random nonce,
// returning nonce||ciphertext. It is used for one-shot protection such as
// XML element encryption, where no ordering channel exists.
func SealOnce(key, plaintext, aad []byte) ([]byte, error) {
	aead, err := newGCM(key)
	if err != nil {
		return nil, err
	}
	nonce, err := RandomBytes(12)
	if err != nil {
		return nil, err
	}
	out := make([]byte, 0, 12+len(plaintext)+aead.Overhead())
	out = append(out, nonce...)
	return aead.Seal(out, nonce, plaintext, aad), nil
}

// OpenOnce reverses SealOnce.
func OpenOnce(key, sealed, aad []byte) ([]byte, error) {
	if len(sealed) < 12 {
		return nil, ErrOpenFailed
	}
	aead, err := newGCM(key)
	if err != nil {
		return nil, err
	}
	plaintext, err := aead.Open(nil, sealed[:12], sealed[12:], aad)
	if err != nil {
		return nil, ErrOpenFailed
	}
	return plaintext, nil
}

func newGCM(key []byte) (cipher.AEAD, error) {
	if len(key) != AEADKeySize {
		return nil, fmt.Errorf("gridcrypto: AEAD key must be %d bytes, got %d", AEADKeySize, len(key))
	}
	block, err := aes.NewCipher(key)
	if err != nil {
		return nil, err
	}
	return cipher.NewGCM(block)
}
