package gridcrypto

import (
	"crypto/aes"
	"crypto/cipher"
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
)

// AEADKeySize is the AES-256 key length used for all symmetric protection.
const AEADKeySize = 32

// ErrSealOverflow is returned when a Sealer's nonce counter would wrap.
var ErrSealOverflow = errors.New("gridcrypto: sealer nonce counter exhausted")

// ErrOpenFailed is returned when AEAD authentication fails.
var ErrOpenFailed = errors.New("gridcrypto: AEAD open failed")

// Sealer provides ordered authenticated encryption with a deterministic
// 64-bit counter nonce, as used for record protection in a security
// context. A Sealer must only be used by one direction of a connection;
// each side of a context derives its own sending key.
type Sealer struct {
	mu    sync.Mutex
	aead  cipher.AEAD
	seq   uint64
	nonce [12]byte // scratch, guarded by mu (a stack nonce would escape through the AEAD interface)
}

// NewSealer builds a Sealer over AES-256-GCM with the given key.
func NewSealer(key []byte) (*Sealer, error) {
	aead, err := newGCM(key)
	if err != nil {
		return nil, err
	}
	return &Sealer{aead: aead}, nil
}

// SealOverhead is the per-record ciphertext expansion (the GCM tag).
const SealOverhead = 16

// Seal encrypts plaintext with associated data aad and returns the
// sequence number used together with the ciphertext. Sequence numbers
// start at zero and increase by one per call.
func (s *Sealer) Seal(plaintext, aad []byte) (seq uint64, ciphertext []byte, err error) {
	return s.SealInto(nil, plaintext, aad)
}

// SealInto is Seal appending the ciphertext to dst instead of a fresh
// allocation. Pass dst = plaintext[:0] to encrypt in place (the caller's
// buffer then holds ciphertext||tag, needing SealOverhead spare
// capacity to avoid growing); any other overlap between dst's spare
// capacity and plaintext is the caller's bug, per crypto/cipher.
func (s *Sealer) SealInto(dst, plaintext, aad []byte) (seq uint64, ciphertext []byte, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.seq == ^uint64(0) {
		return 0, nil, ErrSealOverflow
	}
	seq = s.seq
	s.seq++
	binary.BigEndian.PutUint64(s.nonce[4:], seq)
	ciphertext = s.aead.Seal(dst, s.nonce[:], plaintext, aad)
	return seq, ciphertext, nil
}

// Reserve claims the next sequence number without sealing anything.
// It is the pipelined-seal entry point: a submitter reserves sequence
// numbers in submission order, then worker goroutines seal concurrently
// with SealAtInto — submission order fixes wire order regardless of
// which worker finishes first.
func (s *Sealer) Reserve() (uint64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.seq == ^uint64(0) {
		return 0, ErrSealOverflow
	}
	seq := s.seq
	s.seq++
	return seq, nil
}

// SealAtInto encrypts plaintext under an explicitly reserved sequence
// number. Unlike SealInto it takes no lock over the cipher: GCM's Seal
// is safe for concurrent use, and each call derives its nonce from its
// own seq, so any number of workers may seal reserved records in
// parallel. The caller must have obtained seq from Reserve (sealing the
// same seq twice reuses a GCM nonce — catastrophic — so reservations
// must be used exactly once).
func (s *Sealer) SealAtInto(seq uint64, dst, plaintext, aad []byte) []byte {
	var nonce [12]byte
	binary.BigEndian.PutUint64(nonce[4:], seq)
	return s.aead.Seal(dst, nonce[:], plaintext, aad)
}

// Opener is the receiving half: it decrypts records sealed by the peer's
// Sealer, enforcing strictly increasing sequence numbers (anti-replay).
type Opener struct {
	mu    sync.Mutex
	aead  cipher.AEAD
	next  uint64
	nonce [12]byte // scratch, guarded by mu
}

// NewOpener builds an Opener over AES-256-GCM with the given key.
func NewOpener(key []byte) (*Opener, error) {
	aead, err := newGCM(key)
	if err != nil {
		return nil, err
	}
	return &Opener{aead: aead}, nil
}

// Open decrypts a record produced with the given sequence number. Records
// must arrive in order; replayed or reordered sequence numbers are
// rejected before any cryptographic work.
func (o *Opener) Open(seq uint64, ciphertext, aad []byte) ([]byte, error) {
	return o.open(nil, seq, ciphertext, aad)
}

// OpenInPlace is Open decrypting into the ciphertext's own storage: the
// returned plaintext is ciphertext[:len(ciphertext)-SealOverhead]. The
// record is consumed either way — on success the buffer holds plaintext,
// on failure its contents are undefined.
func (o *Opener) OpenInPlace(seq uint64, ciphertext, aad []byte) ([]byte, error) {
	return o.open(ciphertext[:0], seq, ciphertext, aad)
}

func (o *Opener) open(dst []byte, seq uint64, ciphertext, aad []byte) ([]byte, error) {
	o.mu.Lock()
	defer o.mu.Unlock()
	if seq != o.next {
		return nil, fmt.Errorf("gridcrypto: record sequence %d, want %d (replay or reorder)", seq, o.next)
	}
	binary.BigEndian.PutUint64(o.nonce[4:], seq)
	plaintext, err := o.aead.Open(dst, o.nonce[:], ciphertext, aad)
	if err != nil {
		return nil, ErrOpenFailed
	}
	o.next++
	return plaintext, nil
}

// Advance is the pipelined-open counterpart of Reserve: it accepts the
// next expected sequence number, in arrival order, and moves the
// anti-replay cursor past it. Records on an ordered carrier arrive in
// seal order, so advancing at read time preserves exactly the replay
// and reorder detection of Open while letting the expensive decrypt
// (OpenAtInPlace) run on a worker afterwards.
func (o *Opener) Advance(seq uint64) error {
	o.mu.Lock()
	defer o.mu.Unlock()
	if seq != o.next {
		return fmt.Errorf("gridcrypto: record sequence %d, want %d (replay or reorder)", seq, o.next)
	}
	o.next++
	return nil
}

// OpenAtInPlace decrypts a record whose sequence number was already
// admitted by Advance. It takes no lock: GCM's Open is safe for
// concurrent use and the nonce is derived from seq alone, so reserved
// records decrypt in parallel. The returned plaintext occupies the
// ciphertext's own storage (see OpenInPlace).
func (o *Opener) OpenAtInPlace(seq uint64, ciphertext, aad []byte) ([]byte, error) {
	var nonce [12]byte
	binary.BigEndian.PutUint64(nonce[4:], seq)
	plaintext, err := o.aead.Open(ciphertext[:0], nonce[:], ciphertext, aad)
	if err != nil {
		return nil, ErrOpenFailed
	}
	return plaintext, nil
}

// SealOnce encrypts a single message under key with a random nonce,
// returning nonce||ciphertext. It is used for one-shot protection such as
// XML element encryption, where no ordering channel exists.
func SealOnce(key, plaintext, aad []byte) ([]byte, error) {
	aead, err := newGCM(key)
	if err != nil {
		return nil, err
	}
	nonce, err := RandomBytes(12)
	if err != nil {
		return nil, err
	}
	out := make([]byte, 0, 12+len(plaintext)+aead.Overhead())
	out = append(out, nonce...)
	return aead.Seal(out, nonce, plaintext, aad), nil
}

// OpenOnce reverses SealOnce.
func OpenOnce(key, sealed, aad []byte) ([]byte, error) {
	if len(sealed) < 12 {
		return nil, ErrOpenFailed
	}
	aead, err := newGCM(key)
	if err != nil {
		return nil, err
	}
	plaintext, err := aead.Open(nil, sealed[:12], sealed[12:], aad)
	if err != nil {
		return nil, ErrOpenFailed
	}
	return plaintext, nil
}

func newGCM(key []byte) (cipher.AEAD, error) {
	if len(key) != AEADKeySize {
		return nil, fmt.Errorf("gridcrypto: AEAD key must be %d bytes, got %d", AEADKeySize, len(key))
	}
	block, err := aes.NewCipher(key)
	if err != nil {
		return nil, err
	}
	return cipher.NewGCM(block)
}
