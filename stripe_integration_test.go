// Race-enabled integration test for the striped data plane (PR 7): a
// 64 MiB transfer fanned over K=4 parallel stripe sessions from the
// shared pool, with the credential manager rotating the client
// credential mid-flight — and, separately, a stripe killed mid-transfer
// by an interposed TCP proxy. A dead stripe must surface as an error on
// both ends; the FIN-trailer protocol makes silent truncation
// impossible.
package repro

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/pkg/gsi"
)

const stripedTransferSize = 64 << 20

// stripedWorld is the shared fixture: CA, environment, one streaming
// endpoint, and a pooled client with a rotating credential manager.
type stripedWorld struct {
	env    *gsi.Environment
	ep     gsi.Endpoint
	client *gsi.Client
	cm     *gsi.CredentialManager

	mu      sync.Mutex
	files   map[string][]byte
	upErrs  map[string]error
	initial *gsi.Credential
}

func newStripedWorld(t *testing.T) *stripedWorld {
	t.Helper()
	authority, err := gsi.NewCA("/O=Grid/CN=Stripe CA", 24*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	env, err := gsi.NewEnvironment(gsi.WithRoots(authority.Certificate()))
	if err != nil {
		t.Fatal(err)
	}
	alice, err := authority.NewEntity(gsi.MustParseName("/O=Grid/CN=Alice"), 12*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	host, err := authority.NewHostEntity(gsi.MustParseName("/O=Grid/CN=host stripe"), 12*time.Hour)
	if err != nil {
		t.Fatal(err)
	}

	w := &stripedWorld{
		env:    env,
		files:  make(map[string][]byte),
		upErrs: make(map[string]error),
	}
	streamHandler := func(ctx context.Context, peer gsi.Peer, op string, st gsi.Stream) error {
		switch {
		case strings.HasPrefix(op, "upload:"):
			path := strings.TrimPrefix(op, "upload:")
			var buf bytes.Buffer
			_, err := io.Copy(&buf, st)
			w.mu.Lock()
			defer w.mu.Unlock()
			if err != nil {
				// Record the failure; a failed upload must never store.
				w.upErrs[path] = err
				return err
			}
			w.files[path] = buf.Bytes()
			return nil
		case strings.HasPrefix(op, "download:"):
			w.mu.Lock()
			data := w.files[strings.TrimPrefix(op, "download:")]
			w.mu.Unlock()
			if data == nil {
				return fmt.Errorf("no such file")
			}
			_, err := st.Write(data)
			return err
		}
		return fmt.Errorf("unknown stream op %q", op)
	}

	server, err := env.NewServer(host, gsi.WithStreamHandler(streamHandler))
	if err != nil {
		t.Fatal(err)
	}
	ep, err := server.Serve(context.Background(), "127.0.0.1:0",
		func(ctx context.Context, peer gsi.Peer, op string, body []byte) ([]byte, error) {
			return body, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ep.Close() })
	w.ep = ep

	initial, err := gsi.NewProxy(alice, gsi.ProxyOptions{Lifetime: 2 * time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	w.initial = initial
	cm, err := env.NewCredentialManager(initial,
		gsi.DelegationRenewal(alice, gsi.ProxyOptions{Lifetime: 2 * time.Hour}))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cm.Close() })
	w.cm = cm
	client, err := env.NewClient(nil,
		gsi.WithCredentialManager(cm),
		gsi.WithSessionPool(nil),
		gsi.WithMaxConcurrentPerHost(64),
	)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { client.Pool().Close() })
	w.client = client
	return w
}

func stripedTransferPayload() []byte {
	payload := make([]byte, stripedTransferSize)
	for i := range payload {
		payload[i] = byte(i*2654435761 + i>>13)
	}
	return payload
}

// 64 MiB up and back down over K=4 stripes while the credential
// rotates mid-transfer: zero failed operations, retired sessions, and
// post-rotation traffic under the successor credential.
func TestStripedTransferAcrossRotation(t *testing.T) {
	w := newStripedWorld(t)
	ctx := context.Background()
	payload := stripedTransferPayload()

	// Rotate while the upload is in flight.
	rotated := make(chan error, 1)
	go func() {
		time.Sleep(20 * time.Millisecond)
		_, err := w.cm.Renew(ctx)
		rotated <- err
	}()

	up, err := w.client.OpenStripedStream(ctx, w.ep.Addr(), "upload:/big", gsi.WithStripes(4))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := up.Write(payload); err != nil {
		t.Fatalf("striped write: %v", err)
	}
	if err := up.Close(); err != nil {
		t.Fatalf("striped close: %v", err)
	}
	if err := <-rotated; err != nil {
		t.Fatalf("rotation: %v", err)
	}

	down, err := w.client.OpenStripedStream(ctx, w.ep.Addr(), "download:/big", gsi.WithStripes(4))
	if err != nil {
		t.Fatal(err)
	}
	down.CloseWrite()
	var back bytes.Buffer
	back.Grow(stripedTransferSize)
	if _, err := io.Copy(&back, down); err != nil {
		t.Fatalf("striped read: %v", err)
	}
	if err := down.Close(); err != nil {
		t.Fatalf("striped close down: %v", err)
	}
	if !bytes.Equal(back.Bytes(), payload) {
		t.Fatalf("striped round trip corrupted (%d bytes back)", back.Len())
	}

	if cur := w.client.Credential(); cur.Leaf().Fingerprint() == w.initial.Leaf().Fingerprint() {
		t.Fatal("credential did not rotate")
	}
	if stats := w.client.Pool().Stats(); stats.Retired == 0 {
		t.Fatalf("no sessions retired across rotation: %+v", stats)
	}
	// The pool still serves ordinary traffic after the striped work.
	if _, err := w.client.Exchange(ctx, w.ep.Addr(), "final", []byte("ok")); err != nil {
		t.Fatal(err)
	}
}

// stripeKillerProxy relays TCP between the client and the endpoint,
// counting client→server bytes per connection, and hard-kills the
// first connection that ships more than killAfter — simulating one
// stripe of a parallel transfer dying mid-flight.
type stripeKillerProxy struct {
	ln        net.Listener
	backend   string
	killAfter int64
	killed    atomic.Bool
	wg        sync.WaitGroup
}

func newStripeKillerProxy(t *testing.T, backend string, killAfter int64) *stripeKillerProxy {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	p := &stripeKillerProxy{ln: ln, backend: backend, killAfter: killAfter}
	go p.acceptLoop()
	t.Cleanup(func() { ln.Close(); p.wg.Wait() })
	return p
}

func (p *stripeKillerProxy) Addr() string { return p.ln.Addr().String() }

func (p *stripeKillerProxy) acceptLoop() {
	for {
		c, err := p.ln.Accept()
		if err != nil {
			return
		}
		p.wg.Add(1)
		go p.relay(c)
	}
}

func (p *stripeKillerProxy) relay(client net.Conn) {
	defer p.wg.Done()
	server, err := net.Dial("tcp", p.backend)
	if err != nil {
		client.Close()
		return
	}
	var once sync.Once
	closeBoth := func() { client.Close(); server.Close() }
	var sent int64
	var inner sync.WaitGroup
	inner.Add(2)
	go func() { // client → server, metered
		defer inner.Done()
		buf := make([]byte, 32<<10)
		for {
			n, err := client.Read(buf)
			if n > 0 {
				sent += int64(n)
				if _, werr := server.Write(buf[:n]); werr != nil {
					break
				}
				// First connection past the threshold dies abruptly:
				// one stripe of the transfer is gone.
				if sent > p.killAfter && p.killed.CompareAndSwap(false, true) {
					once.Do(closeBoth)
					break
				}
			}
			if err != nil {
				break
			}
		}
		once.Do(func() { client.Close(); server.Close() })
	}()
	go func() { // server → client, plain
		defer inner.Done()
		io.Copy(client, server)
		once.Do(closeBoth)
	}()
	inner.Wait()
}

// A stripe killed mid-upload must error on both ends — the client's
// striped stream fails, the server handler fails, and the file is
// never stored. Truncation is structurally impossible: every stripe
// must FIN with the transfer's total chunk count before the server
// accepts it.
func TestStripedTransferDeadStripeNeverTruncates(t *testing.T) {
	w := newStripedWorld(t)
	ctx := context.Background()
	payload := stripedTransferPayload()

	// Kill the first connection that ships > 4 MiB: only a data stripe
	// ever crosses that line (handshakes and control traffic are tiny),
	// and each of the 4 stripes carries ~16 MiB.
	proxy := newStripeKillerProxy(t, w.ep.Addr(), 4<<20)

	up, err := w.client.OpenStripedStream(ctx, proxy.Addr(), "upload:/doomed", gsi.WithStripes(4))
	if err != nil {
		t.Fatal(err)
	}
	_, werr := up.Write(payload)
	cerr := up.Close()
	if werr == nil && cerr == nil {
		t.Fatal("transfer with a killed stripe reported success")
	}
	if !proxy.killed.Load() {
		t.Fatal("proxy never killed a stripe; test proved nothing")
	}

	// Give the server a beat to finish failing its side.
	deadline := time.Now().Add(5 * time.Second)
	for {
		w.mu.Lock()
		_, stored := w.files["/doomed"]
		herr := w.upErrs["/doomed"]
		w.mu.Unlock()
		if stored {
			t.Fatal("server stored a truncated file")
		}
		if herr != nil {
			break // server saw the dead stripe
		}
		if time.Now().After(deadline) {
			t.Fatal("server handler never observed the dead stripe")
		}
		time.Sleep(10 * time.Millisecond)
	}

	// The pool discards the broken stripe sessions; fresh traffic to
	// the real endpoint still works.
	if _, err := w.client.Exchange(ctx, w.ep.Addr(), "after", []byte("ok")); err != nil {
		t.Fatalf("pool unusable after dead stripe: %v", err)
	}
}
