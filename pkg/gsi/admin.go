package gsi

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"

	"repro/internal/gsitransport"
	"repro/internal/record"
)

// adminBackend implements ogsa.AdminBackend over the facade's live
// state: it is what a gsictl call reaches after the container has
// authorized it against local policy and the admin service has enforced
// the channel rules. Built per endpoint by the server's container hook;
// pool and registry are whatever the operator attached, so each method
// degrades to a clear error when its state was never configured rather
// than inventing empty answers.
type adminBackend struct {
	server   *Server
	pipeline *AuthorizationPipeline // nil when the endpoint authenticates only
	reg      *MetricsRegistry       // nil without WithMetrics
	pool     *SessionPool           // nil without WithAdminPool
	tracer   *Tracer                // nil without WithTracing
}

// adminStats is the Stats op's JSON shape — a point-in-time snapshot of
// every subsystem the observability plane watches. Optional sections
// are omitted when their subsystem is not configured, so a consumer can
// distinguish "zero activity" from "not present".
type adminStats struct {
	Identity string `json:"identity"`

	Pool *PoolStats `json:"pool,omitempty"`

	Resumption *struct {
		Hits    uint64 `json:"hits"`
		Misses  uint64 `json:"misses"`
		Entries int    `json:"entries"`
	} `json:"resumption,omitempty"`

	AuthzCache *DecisionCacheStats `json:"authz_cache,omitempty"`

	Conversations struct {
		Live    uint64 `json:"live"`
		Evicted uint64 `json:"evicted"`
	} `json:"conversations"`

	Reload *struct {
		Reloads  uint64               `json:"reloads"`
		Failures uint64               `json:"failures"`
		Sources  []ReloadSourceStatus `json:"sources"`
	} `json:"reload,omitempty"`

	RecordPool struct {
		Gets     uint64 `json:"gets"`
		Misses   uint64 `json:"misses"`
		Oversize uint64 `json:"oversize"`
		Frees    uint64 `json:"frees"`
	} `json:"record_pool"`

	Transport struct {
		RecordsSent     uint64 `json:"records_sent"`
		RecordsReceived uint64 `json:"records_received"`
		BytesSent       uint64 `json:"bytes_sent"`
		BytesReceived   uint64 `json:"bytes_received"`
	} `json:"transport"`
}

func (b *adminBackend) AdminStats() ([]byte, error) {
	snap := adminStats{Identity: b.server.Identity().String()}
	if b.pool != nil {
		ps := b.pool.Stats()
		snap.Pool = &ps
		rs := b.pool.ResumptionStats()
		snap.Resumption = &struct {
			Hits    uint64 `json:"hits"`
			Misses  uint64 `json:"misses"`
			Entries int    `json:"entries"`
		}{Hits: rs.Hits, Misses: rs.Misses, Entries: rs.Len}
	}
	if b.pipeline != nil {
		cs := b.pipeline.CacheStats()
		snap.AuthzCache = &cs
	}
	if src := b.server.sources(); src != nil {
		snap.Conversations.Live, snap.Conversations.Evicted = src.conversations()
	}
	if r := b.server.currentReloader(); r != nil {
		st := r.Stats()
		snap.Reload = &struct {
			Reloads  uint64               `json:"reloads"`
			Failures uint64               `json:"failures"`
			Sources  []ReloadSourceStatus `json:"sources"`
		}{Reloads: st.Reloads, Failures: st.Failures, Sources: r.Status()}
	}
	rp := record.PoolStats()
	snap.RecordPool.Gets, snap.RecordPool.Misses = rp.Gets, rp.Misses
	snap.RecordPool.Oversize, snap.RecordPool.Frees = rp.Oversize, rp.Frees
	tp := gsitransport.Throughput()
	snap.Transport.RecordsSent, snap.Transport.RecordsReceived = tp.RecordsSent, tp.RecordsReceived
	snap.Transport.BytesSent, snap.Transport.BytesReceived = tp.BytesSent, tp.BytesReceived
	return json.MarshalIndent(snap, "", "  ")
}

func (b *adminBackend) AdminMetrics() ([]byte, error) {
	if b.reg == nil {
		return nil, errors.New("gsi: no metrics registry configured (WithMetrics)")
	}
	var buf bytes.Buffer
	if err := b.reg.WritePrometheus(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func (b *adminBackend) AdminRetire(fingerprint string) ([]byte, error) {
	if b.pool == nil {
		return nil, errors.New("gsi: no session pool attached to the admin surface (WithAdminPool)")
	}
	drained, err := b.pool.RetireFingerprint(fingerprint)
	if err != nil {
		return nil, err
	}
	return []byte(fmt.Sprintf(`{"retired":%q,"drained":%d}`, fingerprint, drained)), nil
}

func (b *adminBackend) AdminDrain() ([]byte, error) {
	if b.pool == nil {
		return nil, errors.New("gsi: no session pool attached to the admin surface (WithAdminPool)")
	}
	return []byte(fmt.Sprintf(`{"drained":%d}`, b.pool.DrainIdle())), nil
}

// adminTraceQuery is the Traces op's JSON request shape, mirrored by
// gsictl traces. An empty body selects the slowest DefaultQueryN spans.
type adminTraceQuery struct {
	N          int    `json:"n,omitempty"`
	Op         string `json:"op,omitempty"`
	Peer       string `json:"peer,omitempty"`
	ErrorsOnly bool   `json:"errors_only,omitempty"`
	Trace      string `json:"trace,omitempty"`
}

func (b *adminBackend) AdminTraces(query []byte) ([]byte, error) {
	if b.tracer == nil {
		return nil, errors.New("gsi: no tracer configured (WithTracing)")
	}
	var q adminTraceQuery
	if len(bytes.TrimSpace(query)) > 0 {
		if err := json.Unmarshal(query, &q); err != nil {
			return nil, fmt.Errorf("gsi: bad trace query: %w", err)
		}
	}
	spans := b.tracer.Recorder().Snapshot(TraceQuery{
		N:          q.N,
		Op:         q.Op,
		Peer:       q.Peer,
		ErrorsOnly: q.ErrorsOnly,
		TraceID:    q.Trace,
	})
	return json.MarshalIndent(spans, "", "  ")
}

func (b *adminBackend) AdminTransfers() ([]byte, error) {
	if b.tracer == nil {
		return nil, errors.New("gsi: no tracer configured (WithTracing)")
	}
	return json.MarshalIndent(b.tracer.Transfers().Snapshot(), "", "  ")
}

func (b *adminBackend) AdminCASStatus() ([]byte, error) {
	cs := b.server.currentCASSyncer()
	if cs == nil {
		return nil, errors.New("gsi: no CAS upstream configured on this server (WithCASUpstream)")
	}
	return cs.statusJSON()
}

func (b *adminBackend) AdminCASSync() ([]byte, error) {
	cs := b.server.currentCASSyncer()
	if cs == nil {
		return nil, errors.New("gsi: no CAS upstream configured on this server (WithCASUpstream)")
	}
	// Like AdminReload: a failed pull is not a failed op. The caller asked
	// "pull now and tell me how it went"; on failure the previous bundle
	// stays live and the error is the answer.
	err := cs.syncOnce(context.Background())
	report := struct {
		OK    bool   `json:"ok"`
		Error string `json:"error,omitempty"`
		CASSyncStatus
	}{OK: err == nil, CASSyncStatus: cs.status()}
	if err != nil {
		report.Error = err.Error()
	}
	return json.MarshalIndent(report, "", "  ")
}

func (b *adminBackend) AdminCompact() ([]byte, error) {
	ds := b.server.DurableState()
	if ds == nil {
		return nil, errors.New("gsi: no durable state on this server (WithDurableState)")
	}
	// Like AdminReload: the caller asked "compact now and tell me how it
	// went". A failed compaction (sustained mutation churn) leaves the
	// journal intact, and the error plus the journal's shape is the
	// answer, not an op error.
	err := ds.Compact()
	report := struct {
		OK    bool   `json:"ok"`
		Error string `json:"error,omitempty"`
		JournalStats
	}{OK: err == nil, JournalStats: ds.JournalStats()}
	if err != nil {
		report.Error = err.Error()
	}
	return json.MarshalIndent(report, "", "  ")
}

func (b *adminBackend) AdminReload() ([]byte, error) {
	r := b.server.currentReloader()
	if r == nil {
		return nil, errors.New("gsi: no reload configuration on this server (WithReload)")
	}
	// A failed source is not a failed op: the caller asked "re-read
	// everything and tell me how it went", and per-source outcomes —
	// previous state live on failure — are the answer.
	err := r.Reload()
	report := struct {
		OK      bool                 `json:"ok"`
		Error   string               `json:"error,omitempty"`
		Sources []ReloadSourceStatus `json:"sources"`
	}{OK: err == nil, Sources: r.Status()}
	if err != nil {
		report.Error = err.Error()
	}
	return json.MarshalIndent(report, "", "  ")
}
