package gsi

import (
	"context"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"

	"repro/internal/gsitransport"
	"repro/internal/ogsa"
	"repro/internal/soap"
	"repro/internal/wire"
	"repro/internal/wssec"
	"repro/internal/xmlsec"
)

// Handler serves one secured exchange on a Server. By the time it runs,
// the transport has authenticated peer and (for GT3) the container has
// authorized the call; op and body are the application request. Op
// names beginning with "gsi.__" are reserved for the transport itself
// (the GT2 liveness ping) and never reach the handler.
type Handler func(ctx context.Context, peer Peer, op string, body []byte) ([]byte, error)

// Session is an established secured channel to one peer. Exchange is a
// request/response round-trip; every call honors its context's
// cancellation and deadline mid-RPC.
type Session interface {
	// Exchange sends op+body and returns the peer's reply.
	Exchange(ctx context.Context, op string, body []byte) ([]byte, error)
	// Peer is the authenticated remote party (zero-valued on
	// ProtectionSigned GT3 sessions, which authenticate requests, not
	// the response channel).
	Peer() Peer
	// Close releases the session.
	Close() error
}

// Endpoint is a served address accepting sessions.
type Endpoint interface {
	// Addr is the dialable address: "host:port" for GT2, a URL for GT3.
	Addr() string
	// Close stops accepting and tears down live sessions.
	Close() error
}

// Transport is how secured sessions reach peers. The two
// implementations carry the very same GSS handshake tokens — the GT2
// transport frames them over TCP, the GT3 transport carries them in
// SOAP envelopes (the paper's §5.1 observation) — so callers choose by
// option, not by function name:
//
//	client, _ := env.NewClient(cred, gsi.WithTransport(gsi.TransportGT3()))
type Transport interface {
	// String names the transport ("gt2", "gt3").
	String() string
	// Dial establishes a secured session with the peer at endpoint.
	Dial(ctx context.Context, endpoint string, cfg DialConfig) (Session, error)
	// Serve accepts sessions on addr, delivering exchanges to a handler.
	Serve(ctx context.Context, addr string, cfg ServeConfig) (Endpoint, error)
}

// DialConfig is what a Transport needs to initiate sessions. Custom
// Transport implementations receive the resolved option set this way.
type DialConfig struct {
	// Context parameterises the GSS handshake.
	Context ContextConfig
	// Protection selects the message-protection mechanism.
	Protection ProtectionLevel

	// resumption and resumeKey, when set by a pooling client, let the
	// GT3 transport resume an established secure conversation (one
	// symmetric-crypto round trip) instead of re-running the WS-Trust
	// bootstrap. The key is the client's pool key rendered to a stable
	// string, so the two keyings can never diverge. Custom transports
	// never see either; they are plumbing between the session pool and
	// the built-in transports.
	resumption *wssec.ResumptionCache
	resumeKey  string
}

// ServeConfig is what a Transport needs to accept sessions.
type ServeConfig struct {
	// Context parameterises the acceptor side of handshakes.
	Context ContextConfig
	// Handler receives authenticated, authorized exchanges.
	Handler Handler
	// Environment supplies the authorizer and audit plumbing (GT3).
	Environment *Environment
	// Pipeline is the chain-aware authorization pipeline; when set it
	// gates every exchange (CAS assertion, VO ∩ local policy, gridmap)
	// on both transports and wins over the environment's plain
	// authorizer.
	Pipeline *AuthorizationPipeline
}

// exchangeHandle is the service handle GT3 exchanges are routed under.
const exchangeHandle = "gsi.exchange"

// reservedOpPrefix is the op namespace owned by the transport layer:
// ops under it never reach the authorizer or the application handler
// on either transport.
const reservedOpPrefix = "gsi.__"

// gt2PingOp is the infrastructure-level liveness probe of the GT2
// exchange protocol: answered by the server loop itself (one wrapped
// round trip proving peer, context, and record stream are all alive)
// without touching the authorizer or the application handler.
const gt2PingOp = reservedOpPrefix + "ping"

// --- GT2: the raw-socket transport -------------------------------------

type gt2Transport struct{}

// TransportGT2 returns the GT2 transport: the GSS handshake framed
// directly over TCP, followed by wrapped records (paper §3). Endpoints
// are "host:port" addresses.
func TransportGT2() Transport { return gt2Transport{} }

func (gt2Transport) String() string { return "gt2" }

// gt2 exchange framing: request = (op, body); reply = (status, payload)
// where status 0 carries a result and nonzero an error message.
const (
	gt2StatusOK byte = iota
	gt2StatusUnauthorized
	gt2StatusNotFound
	gt2StatusError
)

func gt2EncodeRequest(op string, body []byte) []byte {
	return wire.NewEncoder().Str(op).Bytes(body).Finish()
}

func gt2DecodeRequest(b []byte) (op string, body []byte, err error) {
	d := wire.NewDecoder(b)
	op = d.Str()
	body = d.Bytes()
	return op, body, d.Done()
}

func gt2EncodeReply(status byte, payload []byte) []byte {
	return wire.NewEncoder().U8(status).Bytes(payload).Finish()
}

func gt2DecodeReply(b []byte) (status byte, payload []byte, err error) {
	d := wire.NewDecoder(b)
	status = d.U8()
	payload = d.Bytes()
	return status, payload, d.Done()
}

func gt2Status(err error) byte {
	switch {
	case errors.Is(err, ErrUnauthorized):
		return gt2StatusUnauthorized
	case errors.Is(err, ErrNotFound):
		return gt2StatusNotFound
	default:
		return gt2StatusError
	}
}

// errRemoteStatus marks errors the peer reported over an intact record
// stream: the exchange failed, but the connection is still safe to
// reuse (the session pool branches on this when deciding poisoning).
var errRemoteStatus = errors.New("gsi: remote status")

func gt2StatusErr(status byte, msg string) error {
	remote := fmt.Errorf("%w: %s", errRemoteStatus, msg)
	switch status {
	case gt2StatusUnauthorized:
		return &Error{Op: "gsi.Session.Exchange", Kind: ErrUnauthorized, Err: remote}
	case gt2StatusNotFound:
		return &Error{Op: "gsi.Session.Exchange", Kind: ErrNotFound, Err: remote}
	default:
		return &Error{Op: "gsi.Session.Exchange", Err: remote}
	}
}

func (gt2Transport) Dial(ctx context.Context, endpoint string, cfg DialConfig) (Session, error) {
	conn, err := gsitransport.DialContext(ctx, endpoint, cfg.Context)
	if err != nil {
		return nil, err
	}
	return &gt2Session{conn: conn}, nil
}

type gt2Session struct {
	conn *gsitransport.Conn
	mu   sync.Mutex // serializes request/response pairs on the record stream
}

func (s *gt2Session) Exchange(ctx context.Context, op string, body []byte) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.conn.SendContext(ctx, gt2EncodeRequest(op, body)); err != nil {
		return nil, opErr("gsi.Session.Exchange", err)
	}
	reply, err := s.conn.ReceiveContext(ctx)
	if err != nil {
		return nil, opErr("gsi.Session.Exchange", err)
	}
	status, payload, err := gt2DecodeReply(reply)
	if err != nil {
		return nil, opErr("gsi.Session.Exchange", err)
	}
	if status != gt2StatusOK {
		return nil, gt2StatusErr(status, string(payload))
	}
	return payload, nil
}

func (s *gt2Session) Peer() Peer { return s.conn.Peer() }

func (s *gt2Session) Close() error { return s.conn.Close() }

// Healthy is the I/O-free reuse check the session pool runs: record
// stream intact, security context unexpired.
func (s *gt2Session) Healthy() bool { return s.conn.Healthy() }

// Probe is the active liveness check: one ping exchange through the
// secured stream, answered by the server loop below the application.
func (s *gt2Session) Probe(ctx context.Context) error {
	_, err := s.Exchange(ctx, gt2PingOp, nil)
	return err
}

func (t gt2Transport) Serve(ctx context.Context, addr string, cfg ServeConfig) (Endpoint, error) {
	inner, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	serveCtx, cancel := context.WithCancel(ctx)
	listener := gsitransport.NewListener(inner, cfg.Context)
	ep := &gt2Endpoint{addr: inner.Addr().String(), cancel: cancel, listener: listener}
	go func() {
		for {
			conn, err := listener.AcceptContext(serveCtx)
			if err != nil {
				if serveCtx.Err() != nil || errors.Is(err, net.ErrClosed) {
					return
				}
				continue // a failed handshake must not stop the acceptor
			}
			go serveGT2Conn(serveCtx, conn, cfg)
		}
	}()
	return ep, nil
}

// serveGT2Conn answers exchanges on one accepted connection until the
// peer hangs up or the serve context ends.
func serveGT2Conn(ctx context.Context, conn *gsitransport.Conn, cfg ServeConfig) {
	defer conn.Close()
	peer := conn.Peer()
	authorizer := authorizerOf(cfg.Environment)
	for {
		req, err := conn.ReceiveContext(ctx)
		if err != nil {
			return
		}
		op, body, err := gt2DecodeRequest(req)
		if err != nil {
			return
		}
		var reply []byte
		if op == gt2PingOp {
			reply = gt2EncodeReply(gt2StatusOK, []byte("pong"))
		} else if strings.HasPrefix(op, reservedOpPrefix) {
			reply = gt2EncodeReply(gt2StatusNotFound, []byte("gsi: reserved op "+op))
		} else {
			// Authorization: the chain-aware pipeline when configured
			// (CAS assertion, VO ∩ local policy, gridmap — with the
			// mapped account surfaced on the handler's Peer), else the
			// environment's plain engine.
			exPeer := peer
			var authErr error
			if cfg.Pipeline != nil {
				exPeer, authErr = authorizePipelined(ctx, cfg.Pipeline, peer, op)
			} else {
				authErr = authorizeExchange(authorizer, cfg.Environment, peer, op)
			}
			if authErr != nil {
				reply = gt2EncodeReply(gt2Status(authErr), []byte(authErr.Error()))
			} else if out, err := cfg.Handler(ctx, exPeer, op, body); err != nil {
				reply = gt2EncodeReply(gt2Status(err), []byte(err.Error()))
			} else {
				reply = gt2EncodeReply(gt2StatusOK, out)
			}
		}
		if err := conn.SendContext(ctx, reply); err != nil {
			return
		}
	}
}

type gt2Endpoint struct {
	addr     string
	cancel   context.CancelFunc
	listener *gsitransport.Listener
}

func (e *gt2Endpoint) Addr() string { return e.addr }

func (e *gt2Endpoint) Close() error {
	e.cancel()
	return e.listener.Close()
}

// --- GT3: the SOAP/HTTP transport --------------------------------------

type gt3Transport struct{}

// TransportGT3 returns the GT3 transport: the same handshake tokens
// carried in WS-SecureConversation SOAP envelopes over HTTP, or
// per-message XML signatures for ProtectionSigned (paper §4.4, §5.1).
// Endpoints are SOAP URLs as returned by Endpoint.Addr.
func TransportGT3() Transport { return gt3Transport{} }

func (gt3Transport) String() string { return "gt3" }

func (gt3Transport) Dial(ctx context.Context, endpoint string, cfg DialConfig) (Session, error) {
	soapClient := &soap.Client{Endpoint: endpoint}
	transport := func(ctx context.Context, env *soap.Envelope) (*soap.Envelope, error) {
		return soapClient.CallContext(ctx, env)
	}
	if cfg.Protection == ProtectionSigned {
		return &gt3SignedSession{cred: cfg.Context.Credential, transport: transport}, nil
	}
	if cfg.resumption != nil && cfg.resumeKey != "" {
		conv, _, err := cfg.resumption.EstablishOrResume(ctx, cfg.resumeKey, cfg.Context, transport)
		if err != nil {
			return nil, err
		}
		return &gt3Session{conv: conv}, nil
	}
	conv, err := wssec.EstablishConversationContext(ctx, cfg.Context, transport)
	if err != nil {
		return nil, err
	}
	return &gt3Session{conv: conv}, nil
}

type gt3Session struct {
	conv *wssec.Conversation
}

func (s *gt3Session) Exchange(ctx context.Context, op string, body []byte) ([]byte, error) {
	reply, err := s.conv.CallContext(ctx, soap.NewEnvelope("ogsa-sc/"+exchangeHandle+"/"+op, body))
	if err != nil {
		return nil, opErr("gsi.Session.Exchange", err)
	}
	return reply.Body, nil
}

func (s *gt3Session) Peer() Peer { return s.conv.Peer() }

func (s *gt3Session) Close() error { return nil }

// Healthy reports whether the conversation's context has not lapsed.
func (s *gt3Session) Healthy() bool { return !s.conv.Context().Expired() }

// gt3SignedSession is the stateless variant: no context, each message
// signed under the caller's credential.
type gt3SignedSession struct {
	cred      *Credential
	transport wssec.ContextTransport
}

func (s *gt3SignedSession) Exchange(ctx context.Context, op string, body []byte) ([]byte, error) {
	env := soap.NewEnvelope("ogsa/"+exchangeHandle+"/"+op, body)
	if err := xmlsec.SignEnvelope(env, s.cred); err != nil {
		return nil, opErr("gsi.Session.Exchange", err)
	}
	reply, err := s.transport(ctx, env)
	if err != nil {
		return nil, opErr("gsi.Session.Exchange", err)
	}
	if reply.Fault != nil {
		return nil, opErr("gsi.Session.Exchange", reply.Fault)
	}
	return reply.Body, nil
}

func (s *gt3SignedSession) Peer() Peer { return Peer{} }

func (s *gt3SignedSession) Close() error { return nil }

func (gt3Transport) Serve(ctx context.Context, addr string, cfg ServeConfig) (Endpoint, error) {
	containerCfg := ogsa.ContainerConfig{
		Name:          exchangeHandle,
		Credential:    cfg.Context.Credential,
		TrustStore:    cfg.Context.TrustStore,
		Authorizer:    authorizerOf(cfg.Environment),
		RejectLimited: cfg.Context.RejectLimited,
		Now:           cfg.Context.Now,
	}
	if cfg.Pipeline != nil {
		// A typed-nil *AuthorizationPipeline must not become a non-nil
		// interface in the container, hence the guard.
		containerCfg.ChainAuthorizer = cfg.Pipeline
	}
	container, err := ogsa.NewContainer(containerCfg)
	if err != nil {
		return nil, err
	}
	serveCtx, cancel := context.WithCancel(ctx)
	container.Publish(exchangeHandle, &handlerService{ctx: serveCtx, h: cfg.Handler})
	srv, err := soap.NewServer(addr, container.Dispatcher())
	if err != nil {
		cancel()
		return nil, err
	}
	return &gt3Endpoint{url: srv.URL(), cancel: cancel, close: srv.Close}, nil
}

// handlerService adapts a Handler to the OGSA service interface. The
// per-exchange context is the serve context: SOAP's request path carries
// no caller deadline, so cancellation here means endpoint shutdown.
type handlerService struct {
	ctx context.Context
	h   Handler
}

func (s *handlerService) Invoke(call *ogsa.Call) ([]byte, error) {
	if strings.HasPrefix(call.Op, reservedOpPrefix) {
		return nil, fmt.Errorf("gsi: reserved op %s not found", call.Op)
	}
	peer := Peer{
		Anonymous:    call.Caller.Anonymous,
		Identity:     call.Caller.Name,
		Subject:      call.Caller.Name,
		LocalAccount: call.Caller.LocalAccount,
	}
	return s.h(s.ctx, peer, call.Op, call.Body)
}

type gt3Endpoint struct {
	url    string
	cancel context.CancelFunc
	close  func() error
}

func (e *gt3Endpoint) Addr() string { return e.url }

func (e *gt3Endpoint) Close() error {
	e.cancel()
	return e.close()
}

// --- shared server-side authorization -----------------------------------

func authorizerOf(env *Environment) Engine {
	if env == nil {
		return nil
	}
	return env.authorizer
}

// authorizeExchange runs the environment's authorization engine against
// one GT2 exchange, mirroring the container's Figure-3 step 5 with the
// resource named after the exchange handle. The request is stamped with
// the environment's clock so time-bounded rules never fall back to
// time.Now inside the engine.
func authorizeExchange(engine Engine, env *Environment, peer Peer, op string) error {
	if engine == nil {
		return nil
	}
	req := Request{
		Subject:  peer.Identity,
		Resource: "ogsa:" + exchangeHandle,
		Action:   op,
	}
	if env != nil {
		req.Time = env.Now()
	}
	decision, err := engine.Authorize(req)
	if err != nil {
		return &Error{Op: "gsi.Server", Err: err}
	}
	if decision != Permit {
		return &Error{
			Op:   "gsi.Server",
			Kind: ErrUnauthorized,
			Err:  fmt.Errorf("gsi: %q denied %s", peer.Identity, op),
		}
	}
	return nil
}

// authorizePipelined gates one GT2 exchange through the authorization
// pipeline, returning the peer augmented with its gridmap account on
// permit and an ErrUnauthorized-classified error on deny.
func authorizePipelined(ctx context.Context, p *AuthorizationPipeline, peer Peer, op string) (Peer, error) {
	d, err := p.Authorize(ctx, peer, "ogsa:"+exchangeHandle, op)
	if err != nil {
		return peer, &Error{Op: "gsi.Server", Err: err}
	}
	if d.Decision != Permit {
		return peer, &Error{
			Op:   "gsi.Server",
			Kind: ErrUnauthorized,
			Err:  fmt.Errorf("gsi: %q denied %s: %s", peer.Identity, op, d.Reason),
		}
	}
	peer.LocalAccount = d.LocalAccount
	return peer, nil
}
