package gsi

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"strings"
	"sync"

	"repro/internal/gsitransport"
	"repro/internal/ogsa"
	"repro/internal/record"
	"repro/internal/soap"
	"repro/internal/trace"
	"repro/internal/wire"
	"repro/internal/wssec"
	"repro/internal/xmlsec"
)

// Handler serves one secured exchange on a Server. By the time it runs,
// the transport has authenticated peer and (for GT3) the container has
// authorized the call; op and body are the application request. Op
// names beginning with "gsi.__" are reserved for the transport itself
// (the GT2 liveness ping) and never reach the handler.
type Handler func(ctx context.Context, peer Peer, op string, body []byte) ([]byte, error)

// Session is an established secured channel to one peer. Exchange is a
// request/response round-trip; every call honors its context's
// cancellation and deadline mid-RPC.
type Session interface {
	// Exchange sends op+body and returns the peer's reply.
	Exchange(ctx context.Context, op string, body []byte) ([]byte, error)
	// OpenStream opens a chunked byte stream for op (authorized once,
	// server-side, before any data flows). The stream owns the session
	// until its Close; see the Stream type for the protocol.
	OpenStream(ctx context.Context, op string) (Stream, error)
	// Peer is the authenticated remote party (zero-valued on
	// ProtectionSigned GT3 sessions, which authenticate requests, not
	// the response channel).
	Peer() Peer
	// Close releases the session.
	Close() error
}

// Endpoint is a served address accepting sessions.
type Endpoint interface {
	// Addr is the dialable address: "host:port" for GT2, a URL for GT3.
	Addr() string
	// Close stops accepting and tears down live sessions.
	Close() error
}

// Transport is how secured sessions reach peers. The two
// implementations carry the very same GSS handshake tokens — the GT2
// transport frames them over TCP, the GT3 transport carries them in
// SOAP envelopes (the paper's §5.1 observation) — so callers choose by
// option, not by function name:
//
//	client, _ := env.NewClient(cred, gsi.WithTransport(gsi.TransportGT3()))
type Transport interface {
	// String names the transport ("gt2", "gt3").
	String() string
	// Dial establishes a secured session with the peer at endpoint.
	Dial(ctx context.Context, endpoint string, cfg DialConfig) (Session, error)
	// Serve accepts sessions on addr, delivering exchanges to a handler.
	Serve(ctx context.Context, addr string, cfg ServeConfig) (Endpoint, error)
}

// DialConfig is what a Transport needs to initiate sessions. Custom
// Transport implementations receive the resolved option set this way.
type DialConfig struct {
	// Context parameterises the GSS handshake.
	Context ContextConfig
	// Protection selects the message-protection mechanism.
	Protection ProtectionLevel

	// resumption and resumeKey, when set by a pooling client, let the
	// GT3 transport resume an established secure conversation (one
	// symmetric-crypto round trip) instead of re-running the WS-Trust
	// bootstrap. The key is the client's pool key rendered to a stable
	// string, so the two keyings can never diverge. Custom transports
	// never see either; they are plumbing between the session pool and
	// the built-in transports.
	resumption *wssec.ResumptionCache
	resumeKey  string
}

// ServeConfig is what a Transport needs to accept sessions.
type ServeConfig struct {
	// Context parameterises the acceptor side of handshakes.
	Context ContextConfig
	// Handler receives authenticated, authorized exchanges.
	Handler Handler
	// StreamHandler receives opened streams (Session.OpenStream on the
	// client side); nil refuses stream opens.
	StreamHandler StreamHandler
	// Environment supplies the authorizer and audit plumbing (GT3).
	Environment *Environment
	// Pipeline is the chain-aware authorization pipeline; when set it
	// gates every exchange (CAS assertion, VO ∩ local policy, gridmap)
	// on both transports and wins over the environment's plain
	// authorizer.
	Pipeline *AuthorizationPipeline

	// ConfigureContainer, when set, observes the GT3 hosting container
	// after the exchange service is published and before the listener
	// opens — the facade's control plane uses it to register the
	// conversation table with its metrics and to publish the admin port
	// type. An error aborts Serve. GT2 has no container; transports
	// without one ignore the hook.
	ConfigureContainer func(*ogsa.Container) error

	// Tracer, when set, records server-side spans for every exchange,
	// stream, and stripe lane, continuing the trace context received
	// over the wire (the GT2 trailing field, the GT3 SOAP header) so
	// client and server spans share one trace id. Nil disables tracing.
	Tracer *Tracer
}

// exchangeHandle is the service handle GT3 exchanges are routed under.
const exchangeHandle = "gsi.exchange"

// reservedOpPrefix is the op namespace owned by the transport layer:
// ops under it never reach the authorizer or the application handler
// on either transport.
const reservedOpPrefix = "gsi.__"

// gt2PingOp is the infrastructure-level liveness probe of the GT2
// exchange protocol: answered by the server loop itself (one wrapped
// round trip proving peer, context, and record stream are all alive)
// without touching the authorizer or the application handler.
const gt2PingOp = reservedOpPrefix + "ping"

// streamOpenOp opens a chunked stream on a session. Its body names the
// application op the stream is for; the server authorizes that op —
// once, through the PR-4 pipeline when configured — before any chunk
// flows. The GT3 form suffixes the op: "gsi.__stream.open:<op>".
const streamOpenOp = reservedOpPrefix + "stream.open"

// gt2PingOpBytes/pongBytes keep the ping fast path allocation-free.
var (
	gt2PingOpBytes = []byte(gt2PingOp)
	pongBytes      = []byte("pong")
)

// --- GT2: the raw-socket transport -------------------------------------

type gt2Transport struct{}

// TransportGT2 returns the GT2 transport: the GSS handshake framed
// directly over TCP, followed by wrapped records (paper §3). Endpoints
// are "host:port" addresses.
func TransportGT2() Transport { return gt2Transport{} }

func (gt2Transport) String() string { return "gt2" }

// gt2 exchange framing: request = (op, body); reply = (status, payload)
// where status 0 carries a result and nonzero an error message.
const (
	gt2StatusOK byte = iota
	gt2StatusUnauthorized
	gt2StatusNotFound
	gt2StatusError
)

func gt2EncodeRequest(op string, body []byte) []byte {
	return wire.NewEncoder().Str(op).Bytes(body).Finish()
}

func gt2DecodeRequest(b []byte) (op string, body []byte, err error) {
	d := wire.NewDecoder(b)
	op = d.Str()
	body = d.Bytes()
	return op, body, d.Done()
}

func gt2EncodeReply(status byte, payload []byte) []byte {
	return wire.NewEncoder().U8(status).Bytes(payload).Finish()
}

func gt2DecodeReply(b []byte) (status byte, payload []byte, err error) {
	d := wire.NewDecoder(b)
	status = d.U8()
	payload = d.Bytes()
	return status, payload, d.Done()
}

func gt2Status(err error) byte {
	switch {
	case errors.Is(err, ErrUnauthorized):
		return gt2StatusUnauthorized
	case errors.Is(err, ErrNotFound):
		return gt2StatusNotFound
	default:
		return gt2StatusError
	}
}

// errRemoteStatus marks errors the peer reported over an intact record
// stream: the exchange failed, but the connection is still safe to
// reuse (the session pool branches on this when deciding poisoning).
var errRemoteStatus = errors.New("gsi: remote status")

func gt2StatusErr(status byte, msg string) error {
	remote := fmt.Errorf("%w: %s", errRemoteStatus, msg)
	switch status {
	case gt2StatusUnauthorized:
		return &Error{Op: "gsi.Session.Exchange", Kind: ErrUnauthorized, Err: remote}
	case gt2StatusNotFound:
		return &Error{Op: "gsi.Session.Exchange", Kind: ErrNotFound, Err: remote}
	default:
		return &Error{Op: "gsi.Session.Exchange", Err: remote}
	}
}

func (gt2Transport) Dial(ctx context.Context, endpoint string, cfg DialConfig) (Session, error) {
	conn, err := gsitransport.DialContext(ctx, endpoint, cfg.Context)
	if err != nil {
		return nil, err
	}
	return &gt2Session{conn: conn}, nil
}

type gt2Session struct {
	conn *gsitransport.Conn
	mu   sync.Mutex // serializes request/response pairs on the record stream
}

// roundTrip performs one request/reply pair on the record layer: the
// request is assembled directly into a pooled frame buffer (sealed in
// place, one write), the reply is read into a pooled buffer and opened
// in place. On success the reply payload is returned as a view backed
// by buf — the caller must Free it. Callers hold s.mu.
func (s *gt2Session) roundTrip(ctx context.Context, op string, body []byte) (payload []byte, buf *record.Buf, err error) {
	// A traced operation appends its span context as a fixed-size
	// trailer behind the (op, body) layout; untraced requests are
	// byte-identical to the pre-trace wire format.
	sp := trace.SpanFromContext(ctx)
	extra := 0
	if sp != nil {
		extra = trace.EncodedLen
	}
	reqBuf := record.Get(gsitransport.SendOverhead + 8 + len(op) + len(body) + extra)
	var e wire.Encoder
	e.Reset(reqBuf.B[:gsitransport.Headroom]).Str(op).Bytes(body)
	if sp != nil {
		var tmp [trace.EncodedLen]byte
		e.Raw(sp.Context().Encode(tmp[:0]))
	}
	frame := e.Finish()
	err = s.conn.SendAssembled(ctx, frame)
	reqBuf.Free()
	if err != nil {
		return nil, nil, err
	}
	reply, rbuf, err := s.conn.ReceiveView(ctx)
	if err != nil {
		return nil, nil, err
	}
	d := wire.NewDecoder(reply)
	status := d.U8()
	payload = d.View()
	if err := d.Done(); err != nil {
		rbuf.Free()
		return nil, nil, err
	}
	if status != gt2StatusOK {
		err = gt2StatusErr(status, string(payload))
		rbuf.Free()
		return nil, nil, err
	}
	return payload, rbuf, nil
}

func (s *gt2Session) Exchange(ctx context.Context, op string, body []byte) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	payload, buf, err := s.roundTrip(ctx, op, body)
	if err != nil {
		return nil, opErr("gsi.Session.Exchange", err)
	}
	// The payload view dies with the pooled buffer; the caller owns the
	// result, so this copy is the one unavoidable allocation.
	out := make([]byte, len(payload))
	copy(out, payload)
	buf.Free()
	return out, nil
}

func (s *gt2Session) Peer() Peer { return s.conn.Peer() }

func (s *gt2Session) Close() error { return s.conn.Close() }

// Healthy is the I/O-free reuse check the session pool runs: record
// stream intact, security context unexpired.
func (s *gt2Session) Healthy() bool { return s.conn.Healthy() }

// Probe is the active liveness check: one ping exchange through the
// secured stream, answered by the server loop below the application.
// It rides the pooled record path end to end and — unlike Exchange —
// discards the payload view instead of copying it, so an idle-pool
// probe allocates nothing.
func (s *gt2Session) Probe(ctx context.Context) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, buf, err := s.roundTrip(ctx, gt2PingOp, nil)
	if err != nil {
		return err
	}
	buf.Free()
	return nil
}

func (t gt2Transport) Serve(ctx context.Context, addr string, cfg ServeConfig) (Endpoint, error) {
	inner, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	serveCtx, cancel := context.WithCancel(ctx)
	listener := gsitransport.NewListener(inner, cfg.Context)
	ep := &gt2Endpoint{addr: inner.Addr().String(), cancel: cancel, listener: listener}
	// The stripe-group registry is endpoint-scoped: striped opens on
	// different connections of this endpoint rendezvous through it.
	groups := newStripeGroups()
	go func() {
		for {
			conn, err := listener.AcceptContext(serveCtx)
			if err != nil {
				if serveCtx.Err() != nil || errors.Is(err, net.ErrClosed) {
					return
				}
				continue // a failed handshake must not stop the acceptor
			}
			go serveGT2Conn(serveCtx, conn, cfg, groups)
		}
	}()
	return ep, nil
}

// sendGT2Reply assembles a status/payload reply directly in a pooled
// frame buffer and sends it sealed in place.
func sendGT2Reply(ctx context.Context, conn *gsitransport.Conn, status byte, payload []byte) error {
	buf := record.Get(gsitransport.SendOverhead + 5 + len(payload))
	var e wire.Encoder
	frame := e.Reset(buf.B[:gsitransport.Headroom]).U8(status).Bytes(payload).Finish()
	err := conn.SendAssembled(ctx, frame)
	buf.Free()
	return err
}

// maxInternedOps bounds the per-connection op-name intern table so a
// hostile peer cycling op names cannot grow it without limit.
const maxInternedOps = 1024

// serveGT2Conn answers exchanges on one accepted connection until the
// peer hangs up or the serve context ends. The serve context is watched
// once per connection (CloseOnDone) rather than once per record, and
// the request path runs on pooled record views: the only steady-state
// allocations are the ones the application handler itself makes.
//
// The body slice a Handler receives is a view into a pooled record
// buffer, valid only for the duration of the call — handlers that
// retain it must copy (returning it, as an echo handler does, is safe:
// the reply is sealed before the buffer is reused).
func serveGT2Conn(ctx context.Context, conn *gsitransport.Conn, cfg ServeConfig, groups *stripeGroups) {
	defer conn.Close()
	stop := conn.CloseOnDone(ctx)
	defer stop()
	peer := conn.Peer()
	authorizer := authorizerOf(cfg.Environment)
	tracer := cfg.Tracer
	var peerDN string
	if tracer != nil {
		peerDN = peer.Identity.String()
	}
	// handshakeSpan emits the connection's handshake timing once, as a
	// retroactive child of the first traced span on the connection —
	// the handshake happened before any trace context arrived, so it
	// joins the trace after the fact.
	hsEmitted := false
	handshakeSpan := func(sp *trace.Span) {
		if hsEmitted || sp == nil {
			return
		}
		hsEmitted = true
		start, d := conn.HandshakeTiming()
		sp.AddTimed("server.handshake", start, d, peerDN)
	}
	// Op names are interned per connection so the string conversion is
	// paid once per distinct op, not once per exchange.
	interned := make(map[string]string)
	bg := context.Background() // cancellation arrives via CloseOnDone
	for {
		req, rbuf, err := conn.ReceiveView(bg)
		if err != nil {
			return
		}
		d := wire.NewDecoder(req)
		opView := d.View()
		body := d.View()
		// The optional trace-context trailer is consumed regardless of
		// whether this endpoint traces — a traced client talking to an
		// untraced server must still frame-decode cleanly.
		var remote trace.SpanContext
		if tail := d.Tail(trace.EncodedLen); tail != nil {
			remote, _ = trace.DecodeSpanContext(tail)
		}
		if err := d.Done(); err != nil {
			rbuf.Free()
			return
		}
		// Infrastructure fast path: the liveness ping answers below the
		// authorizer and allocates nothing.
		if bytes.Equal(opView, gt2PingOpBytes) {
			rbuf.Free()
			if err := sendGT2Reply(bg, conn, gt2StatusOK, pongBytes); err != nil {
				return
			}
			continue
		}
		op, ok := interned[string(opView)] // no-alloc map probe
		if !ok {
			op = string(opView)
			if len(interned) < maxInternedOps {
				interned[op] = op
			}
		}
		if op == streamOpenOp {
			var sp *trace.Span
			if tracer != nil {
				sp = tracer.StartRemote(remote, "server.stream")
				sp.SetPeer(peerDN)
				handshakeSpan(sp)
			}
			if !serveGT2Stream(ctx, conn, cfg, peer, authorizer, string(body), rbuf, sp) {
				return
			}
			continue
		}
		if op == stripedOpenOp {
			var sp *trace.Span
			if tracer != nil {
				sp = tracer.StartRemote(remote, "server.stripe")
				sp.SetPeer(peerDN)
				handshakeSpan(sp)
			}
			if !serveGT2StripedOpen(ctx, conn, cfg, peer, authorizer, groups, body, rbuf, sp) {
				return
			}
			continue
		}
		var status byte = gt2StatusOK
		var payload []byte
		if strings.HasPrefix(op, reservedOpPrefix) {
			status, payload = gt2StatusNotFound, []byte("gsi: reserved op "+op)
		} else {
			// The server span continues the client's trace when a context
			// arrived; otherwise it roots a server-local trace.
			var sp *trace.Span
			hctx := ctx
			if tracer != nil {
				sp = tracer.StartRemote(remote, "server.exchange")
				sp.SetPeer(peerDN)
				handshakeSpan(sp)
				hctx = trace.ContextWithSpan(ctx, sp)
			}
			// Authorization: the chain-aware pipeline when configured
			// (CAS assertion, VO ∩ local policy, gridmap — with the
			// mapped account surfaced on the handler's Peer), else the
			// environment's plain engine.
			exPeer := peer
			var authErr error
			asp := sp.StartChild("server.authz")
			if cfg.Pipeline != nil {
				exPeer, authErr = authorizePipelined(hctx, cfg.Pipeline, peer, op)
			} else {
				authErr = authorizeExchange(authorizer, cfg.Environment, peer, op)
			}
			asp.SetError(authErr)
			asp.End()
			if authErr != nil {
				status, payload = gt2Status(authErr), []byte(authErr.Error())
				sp.SetError(authErr)
			} else if out, err := cfg.Handler(hctx, exPeer, op, body); err != nil {
				status, payload = gt2Status(err), []byte(err.Error())
				sp.SetError(err)
			} else {
				payload = out
			}
			if sp != nil {
				sp.AddBytes(int64(len(body)))
				sp.End()
			}
		}
		// The reply is sealed from payload before the request buffer is
		// released: a handler echoing its body view stays valid.
		err = sendGT2Reply(bg, conn, status, payload)
		rbuf.Free()
		if err != nil {
			return
		}
	}
}

// serveGT2Stream handles one stream open on a GT2 connection: authorize
// the named op (once, through the pipeline when configured), hand the
// stream to the StreamHandler, and resynchronize the record stream when
// the handler returns. Reports whether the connection is still usable.
func serveGT2Stream(ctx context.Context, conn *gsitransport.Conn, cfg ServeConfig, peer Peer, authorizer Engine, op string, rbuf *record.Buf, sp *trace.Span) bool {
	rbuf.Free()
	if cfg.StreamHandler == nil {
		err := errors.New("gsi: endpoint does not accept streams")
		sp.SetError(err)
		sp.End()
		return sendGT2Reply(context.Background(), conn, gt2StatusNotFound, []byte(err.Error())) == nil
	}
	if op == "" || strings.HasPrefix(op, reservedOpPrefix) {
		err := errors.New("gsi: invalid stream op " + op)
		sp.SetError(err)
		sp.End()
		return sendGT2Reply(context.Background(), conn, gt2StatusNotFound, []byte(err.Error())) == nil
	}
	exPeer := peer
	var authErr error
	asp := sp.StartChild("server.authz")
	if cfg.Pipeline != nil {
		exPeer, authErr = authorizePipelined(ctx, cfg.Pipeline, peer, op)
	} else {
		authErr = authorizeExchange(authorizer, cfg.Environment, peer, op)
	}
	asp.SetError(authErr)
	asp.End()
	if authErr != nil {
		sp.SetError(authErr)
		sp.End()
		return sendGT2Reply(context.Background(), conn, gt2Status(authErr), []byte(authErr.Error())) == nil
	}
	if err := sendGT2Reply(context.Background(), conn, gt2StatusOK, nil); err != nil {
		sp.SetError(err)
		sp.End()
		return false
	}
	// The stream's record I/O runs under Background like the exchange
	// loop's: cancellation arrives through the connection-lifetime
	// CloseOnDone watcher, not a per-record watcher goroutine.
	st := gsitransport.NewStream(context.Background(), conn)
	var hstream Stream = &serverGT2Stream{st: st, peer: exPeer}
	var ts *tracedStream
	if sp != nil {
		// The traced wrapper accounts bytes and cumulative seal/open
		// pipeline time; it ends sp (emitting the pipeline child spans)
		// when the handler is done, registering the stream as an active
		// transfer meanwhile.
		ts = newTracedStream(hstream, sp, "server")
		ts.xfer = cfg.Tracer.Transfers().Begin("stream:"+op, peerDNOf(exPeer), 1, sp.Context().TraceID)
		hstream = ts
	}
	serr := cfg.StreamHandler(ctx, exPeer, op, hstream)
	if ts != nil {
		ts.finish(serr)
	}
	// Terminate the server half: the handler's error travels as the
	// stream's terminal record.
	if serr != nil {
		if err := st.CloseWithError(serr.Error()); err != nil {
			st.Release()
			return false
		}
	} else if err := st.CloseWrite(); err != nil {
		st.Release()
		return false
	}
	// Resynchronize: consume the client half to its FIN if the handler
	// did not. A client-side abort is a clean termination too.
	if err := st.Drain(); err != nil {
		var peerErr *record.PeerError
		if !errors.As(err, &peerErr) {
			st.Release()
			return false
		}
	}
	st.Release()
	return true
}

type gt2Endpoint struct {
	addr     string
	cancel   context.CancelFunc
	listener *gsitransport.Listener
}

func (e *gt2Endpoint) Addr() string { return e.addr }

func (e *gt2Endpoint) Close() error {
	e.cancel()
	return e.listener.Close()
}

// --- GT3: the SOAP/HTTP transport --------------------------------------

type gt3Transport struct{}

// TransportGT3 returns the GT3 transport: the same handshake tokens
// carried in WS-SecureConversation SOAP envelopes over HTTP, or
// per-message XML signatures for ProtectionSigned (paper §4.4, §5.1).
// Endpoints are SOAP URLs as returned by Endpoint.Addr.
func TransportGT3() Transport { return gt3Transport{} }

func (gt3Transport) String() string { return "gt3" }

func (gt3Transport) Dial(ctx context.Context, endpoint string, cfg DialConfig) (Session, error) {
	soapClient := &soap.Client{Endpoint: endpoint}
	transport := func(ctx context.Context, env *soap.Envelope) (*soap.Envelope, error) {
		return soapClient.CallContext(ctx, env)
	}
	if cfg.Protection == ProtectionSigned {
		return &gt3SignedSession{cred: cfg.Context.Credential, transport: transport}, nil
	}
	if cfg.resumption != nil && cfg.resumeKey != "" {
		conv, _, err := cfg.resumption.EstablishOrResume(ctx, cfg.resumeKey, cfg.Context, transport)
		if err != nil {
			return nil, err
		}
		return &gt3Session{conv: conv}, nil
	}
	conv, err := wssec.EstablishConversationContext(ctx, cfg.Context, transport)
	if err != nil {
		return nil, err
	}
	return &gt3Session{conv: conv}, nil
}

type gt3Session struct {
	conv *wssec.Conversation
}

func (s *gt3Session) Exchange(ctx context.Context, op string, body []byte) ([]byte, error) {
	env := soap.NewEnvelope("ogsa-sc/"+exchangeHandle+"/"+op, body)
	setTraceHeader(ctx, env)
	reply, err := s.conv.CallContext(ctx, env)
	if err != nil {
		return nil, opErr("gsi.Session.Exchange", err)
	}
	return reply.Body, nil
}

func (s *gt3Session) Peer() Peer { return s.conv.Peer() }

func (s *gt3Session) Close() error { return nil }

// Healthy reports whether the conversation's context has not lapsed.
func (s *gt3Session) Healthy() bool { return !s.conv.Context().Expired() }

// gt3SignedSession is the stateless variant: no context, each message
// signed under the caller's credential.
type gt3SignedSession struct {
	cred      *Credential
	transport wssec.ContextTransport
}

func (s *gt3SignedSession) Exchange(ctx context.Context, op string, body []byte) ([]byte, error) {
	env := soap.NewEnvelope("ogsa/"+exchangeHandle+"/"+op, body)
	if err := xmlsec.SignEnvelope(env, s.cred); err != nil {
		return nil, opErr("gsi.Session.Exchange", err)
	}
	reply, err := s.transport(ctx, env)
	if err != nil {
		return nil, opErr("gsi.Session.Exchange", err)
	}
	if reply.Fault != nil {
		return nil, opErr("gsi.Session.Exchange", reply.Fault)
	}
	return reply.Body, nil
}

func (s *gt3SignedSession) Peer() Peer { return Peer{} }

func (s *gt3SignedSession) Close() error { return nil }

func (gt3Transport) Serve(ctx context.Context, addr string, cfg ServeConfig) (Endpoint, error) {
	containerCfg := ogsa.ContainerConfig{
		Name:          exchangeHandle,
		Credential:    cfg.Context.Credential,
		TrustStore:    cfg.Context.TrustStore,
		Authorizer:    authorizerOf(cfg.Environment),
		RejectLimited: cfg.Context.RejectLimited,
		Now:           cfg.Context.Now,
	}
	serveCtx, cancel := context.WithCancel(ctx)
	svc := &handlerService{ctx: serveCtx, h: cfg.Handler, sh: cfg.StreamHandler, tracer: cfg.Tracer}
	if cfg.Pipeline != nil || cfg.StreamHandler != nil {
		// The chain gate carries the pipeline (typed-nil guard included:
		// a nil *AuthorizationPipeline must not become a non-nil
		// interface) and admits chunk calls on streams their peer opened.
		svc.reg = newGT3StreamRegistry()
		containerCfg.ChainAuthorizer = &gt3AuthGate{
			pipeline: cfg.Pipeline,
			engine:   authorizerOf(cfg.Environment),
			env:      cfg.Environment,
			reg:      svc.reg,
			tracer:   cfg.Tracer,
		}
		containerCfg.Authorizer = nil // the gate reproduces the engine path
	}
	container, err := ogsa.NewContainer(containerCfg)
	if err != nil {
		cancel()
		return nil, err
	}
	container.Publish(exchangeHandle, svc)
	if cfg.ConfigureContainer != nil {
		if err := cfg.ConfigureContainer(container); err != nil {
			cancel()
			return nil, err
		}
	}
	srv, err := soap.NewServer(addr, container.Dispatcher())
	if err != nil {
		cancel()
		return nil, err
	}
	return &gt3Endpoint{url: srv.URL(), cancel: cancel, close: srv.Close}, nil
}

// handlerService adapts a Handler to the OGSA service interface. The
// per-exchange context is the serve context: SOAP's request path carries
// no caller deadline, so cancellation here means endpoint shutdown.
type handlerService struct {
	ctx    context.Context
	h      Handler
	sh     StreamHandler
	reg    *gt3StreamRegistry // nil when the endpoint takes no streams and has no pipeline
	tracer *Tracer
}

func (s *handlerService) Invoke(call *ogsa.Call) ([]byte, error) {
	if strings.HasPrefix(call.Op, reservedOpPrefix) {
		return s.invokeReserved(call)
	}
	if s.tracer == nil {
		return s.h(s.ctx, callerPeer(call), call.Op, call.Body)
	}
	// The server span continues the trace context the OGSA router
	// lifted off the envelope's trace header into the call.
	peer := callerPeer(call)
	sp := s.tracer.StartRemote(call.Trace, "server.exchange")
	sp.SetPeer(peerDNOf(peer))
	out, err := s.h(trace.ContextWithSpan(s.ctx, sp), peer, call.Op, call.Body)
	sp.AddBytes(int64(len(call.Body)))
	sp.SetError(err)
	sp.End()
	return out, err
}

func callerPeer(call *ogsa.Call) Peer {
	return Peer{
		Anonymous:    call.Caller.Anonymous,
		Identity:     call.Caller.Name,
		Subject:      call.Caller.Name,
		LocalAccount: call.Caller.LocalAccount,
	}
}

// invokeReserved serves the transport-owned op namespace: the GT3
// stream protocol. The authorization gate has already admitted the
// call (open as the carried op; chunks by stream possession).
func (s *handlerService) invokeReserved(call *ogsa.Call) ([]byte, error) {
	switch {
	case s.sh != nil && strings.HasPrefix(call.Op, gt3StreamOpenPrefix):
		if !call.Conversation {
			return nil, errors.New("gsi: streams require a secure conversation")
		}
		op, err := decodeStreamOp(strings.TrimPrefix(call.Op, gt3StreamOpenPrefix))
		if err != nil {
			return nil, err
		}
		return s.openStream(call, op)
	case s.reg != nil && strings.HasPrefix(call.Op, gt3StreamWritePrefix):
		st := s.reg.get(strings.TrimPrefix(call.Op, gt3StreamWritePrefix))
		if st == nil {
			return nil, errors.New("gsi: unknown stream")
		}
		if err := st.acceptIn(call.Body); err != nil {
			return nil, err
		}
		return nil, nil
	case s.reg != nil && strings.HasPrefix(call.Op, gt3StreamReadPrefix):
		id := strings.TrimPrefix(call.Op, gt3StreamReadPrefix)
		st := s.reg.get(id)
		if st == nil {
			return nil, errors.New("gsi: unknown stream")
		}
		rec, terminal, err := st.nextOut()
		if err != nil {
			return nil, err
		}
		if terminal {
			s.reg.remove(id)
		}
		return rec, nil
	}
	return nil, fmt.Errorf("gsi: reserved op %s not found", call.Op)
}

// openStream creates the server-side stream state and runs the
// StreamHandler in its own goroutine; the handler's outcome travels to
// the client as the stream's terminal record.
func (s *handlerService) openStream(call *ogsa.Call, op string) ([]byte, error) {
	idBytes, err := newStreamID()
	if err != nil {
		return nil, err
	}
	peer := callerPeer(call)
	inR, inW := io.Pipe()
	st := &gt3ServerStream{
		id:      idBytes,
		peer:    peer,
		peerKey: peerKey(peer),
		account: call.Caller.LocalAccount,
		inR:     inR,
		inW:     inW,
		out:     make(chan []byte, 1),
		dead:    make(chan struct{}),
		ctx:     s.ctx,
	}
	st.touch()
	if err := s.reg.add(st); err != nil {
		return nil, err
	}
	handlerStream := &serverGT3Stream{s: st}
	var hstream Stream = handlerStream
	var ts *tracedStream
	if s.tracer != nil {
		// Continue the opener's trace: the span covers the handler's
		// whole run over the stream, chunks included.
		sp := s.tracer.StartRemote(call.Trace, "server.stream")
		dn := peerDNOf(peer)
		sp.SetPeer(dn)
		ts = newTracedStream(hstream, sp, "server")
		ts.xfer = s.tracer.Transfers().Begin("stream:"+op, dn, 1, sp.Context().TraceID)
		hstream = ts
	}
	go func() {
		herr := s.sh(s.ctx, peer, op, hstream)
		// Stop absorbing input and terminate the out half with the
		// handler's verdict.
		inR.CloseWithError(io.ErrClosedPipe)
		if herr != nil {
			handlerStream.closeWithError(herr.Error())
		} else {
			handlerStream.CloseWrite()
		}
		if ts != nil {
			ts.finish(herr)
		}
	}()
	return []byte(st.id), nil
}

type gt3Endpoint struct {
	url    string
	cancel context.CancelFunc
	close  func() error
}

func (e *gt3Endpoint) Addr() string { return e.url }

func (e *gt3Endpoint) Close() error {
	e.cancel()
	return e.close()
}

// --- shared server-side authorization -----------------------------------

func authorizerOf(env *Environment) Engine {
	if env == nil {
		return nil
	}
	return env.authorizer
}

// authorizeExchange runs the environment's authorization engine against
// one GT2 exchange, mirroring the container's Figure-3 step 5 with the
// resource named after the exchange handle. The request is stamped with
// the environment's clock so time-bounded rules never fall back to
// time.Now inside the engine.
func authorizeExchange(engine Engine, env *Environment, peer Peer, op string) error {
	if engine == nil {
		return nil
	}
	req := Request{
		Subject:  peer.Identity,
		Resource: "ogsa:" + exchangeHandle,
		Action:   op,
	}
	if env != nil {
		req.Time = env.Now()
	}
	decision, err := engine.Authorize(req)
	if err != nil {
		return &Error{Op: "gsi.Server", Err: err}
	}
	if decision != Permit {
		return &Error{
			Op:   "gsi.Server",
			Kind: ErrUnauthorized,
			Err:  fmt.Errorf("gsi: %q denied %s", peer.Identity, op),
		}
	}
	return nil
}

// authorizePipelined gates one GT2 exchange through the authorization
// pipeline, returning the peer augmented with its gridmap account on
// permit and an ErrUnauthorized-classified error on deny.
func authorizePipelined(ctx context.Context, p *AuthorizationPipeline, peer Peer, op string) (Peer, error) {
	d, err := p.Authorize(ctx, peer, "ogsa:"+exchangeHandle, op)
	if err != nil {
		return peer, &Error{Op: "gsi.Server", Err: err}
	}
	if d.Decision != Permit {
		return peer, &Error{
			Op:   "gsi.Server",
			Kind: ErrUnauthorized,
			Err:  fmt.Errorf("gsi: %q denied %s: %s", peer.Identity, op, d.Reason),
		}
	}
	peer.LocalAccount = d.LocalAccount
	return peer, nil
}
