package gsi_test

import (
	"net"
	"testing"
	"time"

	"repro/internal/gsitransport"
	"repro/internal/proxy"
	"repro/pkg/gsi"
)

// TestFacadeCASFlow drives the CAS helpers of the public API.
func TestFacadeCASFlow(t *testing.T) {
	authority, err := gsi.NewCA("/O=Grid/CN=CA", 24*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	trust := gsi.NewTrustStore()
	if err := trust.AddRoot(authority.Certificate()); err != nil {
		t.Fatal(err)
	}
	alice, _ := authority.NewEntity(gsi.MustParseName("/O=Grid/CN=Alice"), 12*time.Hour)
	voCred, _ := authority.NewEntity(gsi.MustParseName("/O=Grid/CN=VO"), 12*time.Hour)

	server := gsi.NewCASServer(voCred)
	server.AddMember(alice.Identity(), "g")
	server.AddPolicy(gsi.Rule{
		Effect:    gsi.EffectPermit,
		Groups:    []string{"g"},
		Resources: []string{"r:/*"},
		Actions:   []string{"read"},
	})
	assertion, err := server.IssueAssertion(alice.Identity())
	if err != nil {
		t.Fatal(err)
	}
	cred, err := gsi.EmbedAssertion(alice, assertion)
	if err != nil {
		t.Fatal(err)
	}
	enforcer := gsi.NewCASEnforcer(trust, gsi.NewPolicy(gsi.Rule{
		Effect:    gsi.EffectPermit,
		Subjects:  []string{"*"},
		Resources: []string{"r:/*"},
		Actions:   []string{"read", "write"},
	}))
	enforcer.TrustVO(server.Certificate())
	res, err := enforcer.Authorize(cred.Chain, "r:/x", "read", time.Time{})
	if err != nil || res.Decision != gsi.Permit {
		t.Fatalf("%v %+v", err, res)
	}
}

// TestFacadeMyProxyAndGridMap drives the remaining constructors.
func TestFacadeMyProxyAndGridMap(t *testing.T) {
	authority, _ := gsi.NewCA("/O=Grid/CN=CA", 24*time.Hour)
	alice, _ := authority.NewEntity(gsi.MustParseName("/O=Grid/CN=Alice"), 12*time.Hour)

	repo := gsi.NewMyProxy()
	deposit, err := gsi.NewProxy(alice, gsi.ProxyOptions{Lifetime: 2 * time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	if err := repo.Store("alice", "pw", deposit, time.Hour); err != nil {
		t.Fatal(err)
	}
	info, err := repo.Info("alice")
	if err != nil || !info.Identity.Equal(alice.Identity()) {
		t.Fatalf("%v %+v", err, info)
	}

	gm := gsi.NewGridMap()
	gm.Add(alice.Identity(), "alice")
	if acct, ok := gm.Lookup(alice.Identity()); !ok || acct != "alice" {
		t.Fatal("gridmap lookup failed")
	}
	if _, err := gsi.GenerateKey(); err != nil {
		t.Fatal(err)
	}
	if _, err := gsi.ParseName("not-a-dn"); err == nil {
		t.Fatal("ParseName accepted junk")
	}
	if _, err := gsi.NewCA("junk", time.Hour); err == nil {
		t.Fatal("NewCA accepted junk subject")
	}
}

// TestFacadeDialGSI covers the GT2 transport helper.
func TestFacadeDialGSI(t *testing.T) {
	authority, _ := gsi.NewCA("/O=Grid/CN=CA", 24*time.Hour)
	trust := gsi.NewTrustStore()
	trust.AddRoot(authority.Certificate())
	alice, _ := authority.NewEntity(gsi.MustParseName("/O=Grid/CN=Alice"), 12*time.Hour)
	host, _ := authority.NewHostEntity(gsi.MustParseName("/O=Grid/CN=host d"), 12*time.Hour)

	inner, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	l := gsitransport.NewListener(inner, gsi.ContextConfig{Credential: host, TrustStore: trust})
	defer l.Close()
	done := make(chan error, 1)
	go func() {
		conn, err := l.Accept()
		if err != nil {
			done <- err
			return
		}
		defer conn.Close()
		msg, err := conn.Receive()
		if err != nil {
			done <- err
			return
		}
		done <- conn.Send(msg)
	}()
	conn, err := gsi.DialGSI(l.Addr().String(), gsi.ContextConfig{Credential: alice, TrustStore: trust})
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := conn.Send([]byte("ping")); err != nil {
		t.Fatal(err)
	}
	if pong, err := conn.Receive(); err != nil || string(pong) != "ping" {
		t.Fatalf("%v %q", err, pong)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

// TestGT2GT3CredentialCompatibility asserts the §6 claim: "GSI3 remains
// compatible (in terms of credential formats) with those used in GT2" —
// the very same proxy credential authenticates over the GT2 transport
// and the GT3 SOAP stack.
func TestGT2GT3CredentialCompatibility(t *testing.T) {
	boot, err := gsi.NewBootstrap("/O=Grid/CN=CA", "/O=Grid/CN=host compat", nil)
	if err != nil {
		t.Fatal(err)
	}
	alice, _ := boot.CA.NewEntity(gsi.MustParseName("/O=Grid/CN=Alice"), 12*time.Hour)
	p, err := proxy.New(alice, proxy.Options{})
	if err != nil {
		t.Fatal(err)
	}

	// GT2: raw transport mutual auth with the proxy.
	ictx, actx, err := gsi.EstablishContext(
		gsi.ContextConfig{Credential: p, TrustStore: boot.Trust},
		gsi.ContextConfig{Credential: boot.Host, TrustStore: boot.Trust},
	)
	if err != nil {
		t.Fatalf("GT2 path: %v", err)
	}
	_ = ictx
	if !actx.Peer().Identity.Equal(alice.Identity()) {
		t.Fatalf("GT2 identity = %q", actx.Peer().Identity)
	}

	// GT3: the same credential drives the SOAP pipeline.
	client := &gsi.ServiceClient{
		Transport:  gsi.PipeTransport(boot.Stack.Container),
		Credential: p,
		TrustStore: boot.Trust,
	}
	out, err := client.InvokeSigned("security/credential-processing", "ValidateChain",
		gsi.EncodeChain(p.Chain))
	if err != nil {
		t.Fatalf("GT3 path: %v", err)
	}
	if string(out) != alice.Identity().String() {
		t.Fatalf("GT3 identity = %q", out)
	}
}
