package gsi_test

import (
	"context"
	"errors"
	"net"
	"testing"
	"time"

	"repro/pkg/gsi"
)

// blackholeListener accepts TCP connections and never writes a byte, so
// a GSI handshake against it blocks reading token2 until interrupted.
func blackholeListener(t *testing.T) net.Listener {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			defer conn.Close()
		}
	}()
	t.Cleanup(func() { ln.Close() })
	return ln
}

// TestConnectCancellationMidHandshake proves the acceptance criterion:
// an in-flight handshake — blocked on the network waiting for the
// peer's token — aborts promptly when the context is canceled.
func TestConnectCancellationMidHandshake(t *testing.T) {
	tb := newTestbed(t)
	ln := blackholeListener(t)
	client, err := tb.env.NewClient(tb.alice)
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err = client.Connect(ctx, ln.Addr().String())
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("Connect succeeded against a blackhole")
	}
	if !errors.Is(err, gsi.ErrContextClosed) || !errors.Is(err, context.Canceled) {
		t.Fatalf("cancellation not surfaced: %v", err)
	}
	if elapsed > 2*time.Second {
		t.Fatalf("handshake abort took %v; not prompt", elapsed)
	}
}

// TestConnectDeadlineMidHandshake: a context deadline interrupts the
// blocked handshake with ErrContextClosed / DeadlineExceeded.
func TestConnectDeadlineMidHandshake(t *testing.T) {
	tb := newTestbed(t)
	ln := blackholeListener(t)
	client, err := tb.env.NewClient(tb.alice)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 80*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = client.Connect(ctx, ln.Addr().String())
	if err == nil {
		t.Fatal("Connect succeeded against a blackhole")
	}
	if !errors.Is(err, gsi.ErrContextClosed) || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("deadline not surfaced: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("deadline abort took %v", elapsed)
	}
}

// TestDeadlineSkewShrinksDeadline: WithDeadlineSkew gives up before the
// caller's deadline, budgeting for peer clock skew.
func TestDeadlineSkewShrinksDeadline(t *testing.T) {
	tb := newTestbed(t)
	ln := blackholeListener(t)
	client, err := tb.env.NewClient(tb.alice, gsi.WithDeadlineSkew(400*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 500*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = client.Connect(ctx, ln.Addr().String())
	elapsed := time.Since(start)
	if !errors.Is(err, gsi.ErrContextClosed) {
		t.Fatalf("skewed deadline not surfaced: %v", err)
	}
	// The skewed budget is ~100ms; well before the caller's 500ms.
	if elapsed >= 450*time.Millisecond {
		t.Fatalf("skew not applied: gave up after %v", elapsed)
	}
}

// TestEstablishCancellationBetweenTokens: gss.EstablishContext checks
// the context at token boundaries; a context canceled by the acceptor's
// own clock callback aborts before completion.
func TestEstablishCancellationBetweenTokens(t *testing.T) {
	tb := newTestbed(t)
	ctx, cancel := context.WithCancel(context.Background())
	// The initiator's clock first fires while it processes token2 —
	// cancel there, so the cancellation lands mid-handshake
	// deterministically and the next token boundary must catch it.
	cancelEnv, err := gsi.NewEnvironment(
		gsi.WithTrustStore(tb.env.Trust()),
		gsi.WithClock(func() time.Time {
			cancel()
			return time.Now()
		}),
	)
	if err != nil {
		t.Fatal(err)
	}
	client, err := cancelEnv.NewClient(tb.alice)
	if err != nil {
		t.Fatal(err)
	}
	_, _, err = client.Establish(ctx, gsi.ContextConfig{
		Credential: tb.host,
		TrustStore: tb.env.Trust(),
	})
	if !errors.Is(err, gsi.ErrContextClosed) {
		t.Fatalf("mid-establish cancellation not surfaced: %v", err)
	}
}

// TestCASRequestCancellation: a cancellation that lands while the CAS
// server is processing the request (after the policy scan, before
// signing) aborts the issuance — no assertion is signed for a caller
// that has gone away.
func TestCASRequestCancellation(t *testing.T) {
	tb := newTestbed(t)
	vo, err := tb.ca.NewEntity(gsi.MustParseName("/O=Grid/CN=VO"), 12*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	server := gsi.NewCASServer(vo)
	server.AddMember(tb.alice.Identity(), "researchers")
	server.AddPolicy(gsi.Rule{
		Effect:    gsi.EffectPermit,
		Groups:    []string{"researchers"},
		Resources: []string{"data:/*"},
		Actions:   []string{"read"},
	})

	ctx, cancel := context.WithCancel(context.Background())
	server.SetClock(func() time.Time {
		cancel() // fires mid-issuance, between the scan and the signature
		return time.Now()
	})
	client, err := tb.env.NewClient(tb.alice)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client.RequestAssertion(ctx, server); !errors.Is(err, gsi.ErrContextClosed) || !errors.Is(err, context.Canceled) {
		t.Fatalf("mid-issuance cancellation not surfaced: %v", err)
	}

	// And a sane request still succeeds afterwards.
	server.SetClock(time.Now)
	a, err := client.RequestAssertion(context.Background(), server)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Rules) != 1 {
		t.Fatalf("assertion rules = %d", len(a.Rules))
	}
}

// TestGT3InvokeCancellation: the Figure-3 pipeline run through
// Client.Invoke aborts with the context, mid-RPC, over real HTTP.
func TestGT3InvokeCancellation(t *testing.T) {
	boot, err := gsi.NewBootstrap("/O=Grid/CN=CA", "/O=Grid/CN=host inv", nil)
	if err != nil {
		t.Fatal(err)
	}
	url, shutdown, err := gsi.ServeHTTP(boot.Stack.Container, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown()
	alice, err := boot.CA.NewEntity(gsi.MustParseName("/O=Grid/CN=Alice"), 12*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	env, err := gsi.NewEnvironment(gsi.WithTrustStore(boot.Trust))
	if err != nil {
		t.Fatal(err)
	}
	client, err := env.NewClient(alice)
	if err != nil {
		t.Fatal(err)
	}
	canceled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := client.Invoke(canceled, url, "security/audit", "Count", nil); !errors.Is(err, gsi.ErrContextClosed) {
		t.Fatalf("canceled Invoke not surfaced: %v", err)
	}
	// Live context: full pipeline succeeds.
	if out, _, err := client.Invoke(context.Background(), url, "security/audit", "Count", nil); err != nil {
		t.Fatalf("live Invoke: %v (out=%q)", err, out)
	}
}
