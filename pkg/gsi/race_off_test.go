//go:build !race

package gsi

const raceEnabled = false
