package gsi

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/soap"
)

// TestSessionPoisonedClassification pins down which exchange errors let
// a session back into the idle pool: peer-reported application errors
// are benign, channel-level failures — including SOAP faults that
// report the secure conversation itself dead — poison.
func TestSessionPoisonedClassification(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want bool
	}{
		{"nil", nil, false},
		{"remote status", gt2StatusErr(gt2StatusError, "boom"), false},
		{"remote unauthorized", gt2StatusErr(gt2StatusUnauthorized, "denied"), false},
		{"remote not found", gt2StatusErr(gt2StatusNotFound, "gone"), false},
		{"application fault", &soap.Fault{Code: "app", Reason: "quota exceeded"}, false},
		{"wrapped application fault", fmt.Errorf("call: %w", &soap.Fault{Code: "app", Reason: "denied by policy"}), false},
		{"unknown security context fault", &soap.Fault{Code: "handler", Reason: `wssec: unknown security context "sct-1"`}, true},
		{"unwrap fault", &soap.Fault{Code: "handler", Reason: "wssec: unwrap: cipher: message authentication failed"}, true},
		{"transport error", errors.New("read tcp: connection reset by peer"), true},
		{"broken conn", opErr("gsi.Session.Exchange", errors.New("gsitransport: connection broken by interrupted operation")), true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := sessionPoisoned(tc.err); got != tc.want {
				t.Fatalf("sessionPoisoned(%v) = %v, want %v", tc.err, got, tc.want)
			}
		})
	}
}
