package gsi

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
)

// fakeCloseStream is a Stream whose Close returns a canned error.
type fakeCloseStream struct {
	Stream
	closeErr error
	closes   atomic.Int32
}

func (f *fakeCloseStream) Close() error {
	f.closes.Add(1)
	return f.closeErr
}

// fakeCloseSession is a Session whose Close returns a canned error.
type fakeCloseSession struct {
	closeErr error
	closes   atomic.Int32
}

func (f *fakeCloseSession) Exchange(context.Context, string, []byte) ([]byte, error) {
	return nil, errors.New("not implemented")
}
func (f *fakeCloseSession) OpenStream(context.Context, string) (Stream, error) {
	return nil, errors.New("not implemented")
}
func (f *fakeCloseSession) Peer() Peer { return Peer{} }
func (f *fakeCloseSession) Close() error {
	f.closes.Add(1)
	return f.closeErr
}

// Regression: ownedStream.Close used to discard the session-release
// error — a pool-side failure on release was invisible to the caller.
// Both failure sites must surface, joined.
func TestOwnedStreamCloseJoinsErrors(t *testing.T) {
	streamErr := errors.New("stream close failed")
	sessErr := errors.New("session release failed")
	cases := []struct {
		name           string
		stErr, seErr   error
		wantSt, wantSe bool
		wantNil        bool
	}{
		{"both fail", streamErr, sessErr, true, true, false},
		{"session only", nil, sessErr, false, true, false},
		{"stream only", streamErr, nil, true, false, false},
		{"clean", nil, nil, false, false, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			st := &fakeCloseStream{closeErr: tc.stErr}
			se := &fakeCloseSession{closeErr: tc.seErr}
			o := &ownedStream{Stream: st, sess: se}
			err := o.Close()
			if tc.wantNil != (err == nil) {
				t.Fatalf("Close() = %v", err)
			}
			if got := errors.Is(err, streamErr); got != tc.wantSt {
				t.Fatalf("stream error surfaced = %v, want %v (err=%v)", got, tc.wantSt, err)
			}
			if got := errors.Is(err, sessErr); got != tc.wantSe {
				t.Fatalf("session error surfaced = %v, want %v (err=%v)", got, tc.wantSe, err)
			}
			// Idempotent: the second Close is a no-op.
			if err := o.Close(); err != nil {
				t.Fatalf("second Close() = %v", err)
			}
			if st.closes.Load() != 1 || se.closes.Load() != 1 {
				t.Fatalf("close counts: stream %d session %d", st.closes.Load(), se.closes.Load())
			}
		})
	}
}

// Regression: ownedStream documents that Close is required even after
// errors, so a reader goroutine and a writer goroutine can both reach
// it — the closed flag must be race-safe and the underlying halves must
// be closed exactly once.
func TestOwnedStreamConcurrentClose(t *testing.T) {
	st := &fakeCloseStream{}
	se := &fakeCloseSession{}
	o := &ownedStream{Stream: st, sess: se}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := o.Close(); err != nil {
				t.Errorf("Close() = %v", err)
			}
		}()
	}
	wg.Wait()
	if st.closes.Load() != 1 || se.closes.Load() != 1 {
		t.Fatalf("close counts: stream %d session %d", st.closes.Load(), se.closes.Load())
	}
}
