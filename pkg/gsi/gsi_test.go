package gsi_test

import (
	"testing"
	"time"

	"repro/internal/ogsa"
	"repro/pkg/gsi"
)

// TestPublicAPIQuickstart exercises the documented quickstart flow
// through the public facade only.
func TestPublicAPIQuickstart(t *testing.T) {
	authority, err := gsi.NewCA("/O=Grid/CN=Demo CA", 24*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	trust := gsi.NewTrustStore()
	if err := trust.AddRoot(authority.Certificate()); err != nil {
		t.Fatal(err)
	}
	alice, err := authority.NewEntity(gsi.MustParseName("/O=Grid/CN=Alice"), 12*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	host, err := authority.NewHostEntity(gsi.MustParseName("/O=Grid/CN=host demo"), 12*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	// Single sign-on: create a proxy.
	p, err := gsi.NewProxy(alice, gsi.ProxyOptions{Lifetime: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	// Mutual authentication with the proxy.
	ictx, actx, err := gsi.EstablishContext(
		gsi.ContextConfig{Credential: p, TrustStore: trust},
		gsi.ContextConfig{Credential: host, TrustStore: trust},
	)
	if err != nil {
		t.Fatal(err)
	}
	if actx.Peer().Identity.String() != "/O=Grid/CN=Alice" {
		t.Fatalf("peer = %q", actx.Peer().Identity)
	}
	// Protected message.
	w, err := ictx.Wrap([]byte("hello"))
	if err != nil {
		t.Fatal(err)
	}
	if pt, err := actx.Unwrap(w); err != nil || string(pt) != "hello" {
		t.Fatalf("unwrap: %q %v", pt, err)
	}
}

type pingService struct{ *ogsa.Base }

func (s *pingService) Invoke(call *gsi.Call) ([]byte, error) {
	if reply, handled, err := s.HandleStandardOp(call); handled {
		return reply, err
	}
	return []byte("pong:" + call.Caller.Name.String()), nil
}

func TestPublicAPIServiceStack(t *testing.T) {
	boot, err := gsi.NewBootstrap("/O=Grid/CN=CA", "/O=Grid/CN=host svc", nil)
	if err != nil {
		t.Fatal(err)
	}
	boot.Stack.Container.Publish("ping", &pingService{Base: ogsa.NewBase()})
	alice, err := boot.CA.NewEntity(gsi.MustParseName("/O=Grid/CN=Alice"), 12*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	req := &gsi.Requestor{Credential: alice, Trust: boot.Trust}
	out, trace, err := req.Invoke(gsi.PipeTransport(boot.Stack.Container), "ping", "ping", nil)
	if err != nil {
		t.Fatal(err)
	}
	if string(out) != "pong:/O=Grid/CN=Alice" {
		t.Fatalf("out = %q", out)
	}
	if trace.Total() <= 0 {
		t.Fatal("no trace")
	}
}

func TestPublicAPIOverHTTP(t *testing.T) {
	boot, err := gsi.NewBootstrap("/O=Grid/CN=CA", "/O=Grid/CN=host svc", nil)
	if err != nil {
		t.Fatal(err)
	}
	boot.Stack.Container.Publish("ping", &pingService{Base: ogsa.NewBase()})
	url, shutdown, err := gsi.ServeHTTP(boot.Stack.Container, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown()
	alice, _ := boot.CA.NewEntity(gsi.MustParseName("/O=Grid/CN=Alice"), 12*time.Hour)
	req := &gsi.Requestor{Credential: alice, Trust: boot.Trust}
	out, _, err := req.Invoke(gsi.HTTPTransport(url), "ping", "ping", nil)
	if err != nil {
		t.Fatal(err)
	}
	if string(out) != "pong:/O=Grid/CN=Alice" {
		t.Fatalf("out = %q", out)
	}
}
