// End-to-end CAS bundle replication: a community server publishes its
// signed policy bundle on gsi.__cas.sync, a resource server pulls it
// through the control plane, and VO members arriving WITHOUT an
// assertion are decided from the replicated bundle. The failover half
// kills the primary publisher and proves the standby keeps the replica
// fresh — including a membership update that happened after the
// primary died — while decisions stay fail-closed throughout.
package gsi_test

import (
	"context"
	"encoding/json"
	"fmt"
	"testing"
	"time"

	"repro/internal/ogsa"
	"repro/pkg/gsi"
)

// casSyncBed is the federation fixture: one VO, two publisher
// endpoints (primary + standby) serving the same community server, and
// one resource server pulling bundles.
type casSyncBed struct {
	bed        *authzBed
	vo         *gsi.CASServer
	primary    gsi.Endpoint
	standby    gsi.Endpoint
	primarySrv *gsi.Server
	standbySrv *gsi.Server
	resource   *gsi.Server
	rsEP       gsi.Endpoint
}

func newCASSyncBed(t *testing.T, resourceOpts ...gsi.Option) *casSyncBed {
	t.Helper()
	bed := newAuthzBed(t)
	ctx := context.Background()

	// The community server's own policy for the scale resource.
	bed.vo.AddPolicy(gsi.Rule{
		ID:        "vo-data",
		Effect:    gsi.EffectPermit,
		Groups:    []string{"researchers"},
		Resources: []string{"data:/climate/*"},
		Actions:   []string{"read"},
	})

	// Which resource servers may read the membership roll is itself
	// policy: the publishers permit only our resource server's identity.
	rsCred, err := bed.ca.NewHostEntity(gsi.MustParseName("/O=Grid/CN=resource node"), 72*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	pubPolicy := gsi.NewPolicy(gsi.Rule{
		ID:        "bundle-readers",
		Effect:    gsi.EffectPermit,
		Subjects:  []string{rsCred.Identity().String()},
		Resources: []string{"ogsa:gsi.__cas.sync"},
		Actions:   []string{"*"},
	})
	echo := func(ctx context.Context, peer gsi.Peer, op string, body []byte) ([]byte, error) {
		return body, nil
	}
	serveBundle := func(name string) (*gsi.Server, gsi.Endpoint) {
		cred, err := bed.ca.NewHostEntity(gsi.MustParseName("/O=Grid/CN="+name), 72*time.Hour)
		if err != nil {
			t.Fatal(err)
		}
		srv, err := bed.env.NewServer(cred,
			gsi.WithTransport(gsi.TransportGT3()),
			gsi.WithCASPublisher(bed.vo),
			gsi.WithLocalPolicy(pubPolicy))
		if err != nil {
			t.Fatal(err)
		}
		ep, err := srv.Serve(ctx, "127.0.0.1:0", echo)
		if err != nil {
			t.Fatal(err)
		}
		return srv, ep
	}
	primarySrv, primary := serveBundle("cas primary")
	standbySrv, standby := serveBundle("cas standby")
	t.Cleanup(func() { primary.Close(); standby.Close() })

	opts := append([]gsi.Option{
		gsi.WithTransport(gsi.TransportGT3()),
		gsi.WithCASUpstream(gsi.CASUpstreamConfig{
			Endpoints: []string{primary.Addr(), standby.Addr()},
			Cert:      bed.vo.Certificate(),
			Interval:  25 * time.Millisecond,
		}),
		gsi.WithLocalPolicy(bed.local),
		gsi.WithGridMap(bed.gridmap),
	}, resourceOpts...)
	resource, err := bed.env.NewServer(rsCred, opts...)
	if err != nil {
		t.Fatal(err)
	}
	rsEP, err := resource.Serve(ctx, "127.0.0.1:0", echo)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { rsEP.Close() })
	return &casSyncBed{
		bed: bed, vo: bed.vo,
		primary: primary, standby: standby,
		primarySrv: primarySrv, standbySrv: standbySrv,
		resource: resource, rsEP: rsEP,
	}
}

// waitSync polls until cond accepts the resource server's sync status.
func (c *casSyncBed) waitSync(t *testing.T, what string, cond func(gsi.CASSyncStatus) bool) gsi.CASSyncStatus {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		st := c.resource.CASSyncStatus()
		if cond(st) {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s; status %+v", what, st)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestCASSyncFailover(t *testing.T) {
	c := newCASSyncBed(t)
	bed := c.bed
	ctx := context.Background()
	pipe := c.resource.AuthorizationPipeline()
	if pipe == nil {
		t.Fatal("resource server has no pipeline")
	}

	// The local side of the intersection for the replicated VO layer.
	bed.local.Add(gsi.Rule{
		ID:        "local-data",
		Effect:    gsi.EffectPermit,
		Groups:    []string{"researchers"},
		Resources: []string{"data:/climate/*"},
		Actions:   []string{"read"},
	})

	first := c.waitSync(t, "first bundle", func(st gsi.CASSyncStatus) bool { return st.Version >= 1 })
	if !first.Configured || first.Members == 0 {
		t.Fatalf("first sync status: %+v", first)
	}
	if first.LastEndpoint != c.primary.Addr() {
		t.Fatalf("first sync came from %q, want primary %q", first.LastEndpoint, c.primary.Addr())
	}

	// Alice is a VO member arriving BARE — no assertion embedded. The
	// replica supplies the VO layer; the intersection permits.
	alice := gsi.Peer{Identity: bed.alice.Identity(), Chain: bed.alice.Chain}
	d, err := pipe.Authorize(ctx, alice, "data:/climate/x", "read")
	if err != nil || d.Decision != gsi.Permit {
		t.Fatalf("member via replica: %+v err=%v", d, err)
	}
	if d.VOName.String() != bed.vo.Certificate().Subject.String() {
		t.Fatalf("decision VO = %q", d.VOName)
	}
	// Bob is not a member: no VO layer, local policy alone says nothing
	// about him — deny.
	bob := gsi.Peer{Identity: bed.bob.Identity(), Chain: bed.bob.Chain}
	if d, err = pipe.Authorize(ctx, bob, "data:/climate/x", "read"); err != nil || d.Decision != gsi.Deny {
		t.Fatalf("non-member: %+v err=%v", d, err)
	}

	// Failover: the primary dies, then the VO admits bob. The standby
	// must deliver the new bundle.
	c.primary.Close()
	c.vo.AddMember(bed.bob.Identity(), "researchers")
	bed.gridmap.Add(bed.bob.Identity(), "bob")
	want := c.vo.Version()
	st := c.waitSync(t, "standby bundle", func(st gsi.CASSyncStatus) bool {
		return st.Version >= want && st.LastEndpoint == c.standby.Addr()
	})
	if st.Members < first.Members+1 {
		t.Fatalf("standby bundle members = %d, want > %d", st.Members, first.Members)
	}
	if d, err = pipe.Authorize(ctx, bob, "data:/climate/x", "read"); err != nil || d.Decision != gsi.Permit {
		t.Fatalf("new member after failover: %+v err=%v", d, err)
	}
	// Alice's grant survived the failover uninterrupted.
	if d, err = pipe.Authorize(ctx, alice, "data:/climate/x", "read"); err != nil || d.Decision != gsi.Permit {
		t.Fatalf("member after failover: %+v err=%v", d, err)
	}
}

// TestCASWarmPromotionFailover is the PR 10 standby-promotion scenario
// end to end: a resource server follows the VO by signed delta and
// warms its decision cache from the publishers' hot-key exports; the
// primary is killed mid-run with membership churn (deltas) in flight.
// The standby must keep serving deltas, warming must survive the
// failover, the first decision for a publisher-hot subject must be a
// warm cache hit (the cold baseline misses), and nothing may fail open.
func TestCASWarmPromotionFailover(t *testing.T) {
	c := newCASSyncBed(t, gsi.WithCacheWarming(64))
	bed := c.bed
	ctx := context.Background()
	pipe := c.resource.AuthorizationPipeline()
	if pipe == nil {
		t.Fatal("resource server has no pipeline")
	}
	bed.local.Add(gsi.Rule{
		ID:        "local-data",
		Effect:    gsi.EffectPermit,
		Groups:    []string{"researchers"},
		Resources: []string{"data:/climate/*"},
		Actions:   []string{"read"},
	})

	first := c.waitSync(t, "first bundle", func(st gsi.CASSyncStatus) bool { return st.Version >= 1 })
	if first.FullSyncs == 0 {
		t.Fatalf("initial sync was not a full bundle: %+v", first)
	}

	// Heat the publishers: alice is busy against the publisher fleet, so
	// her decision keys become the hot set both exporters serve. The
	// publishers' own decisions are irrelevant (their policy knows
	// nothing of the data tree) — hot keys carry no decisions, and the
	// resource server recomputes through its OWN replica ∩ local policy.
	alice := gsi.Peer{Identity: bed.alice.Identity(), Chain: bed.alice.Chain}
	for _, srv := range []*gsi.Server{c.primarySrv, c.standbySrv} {
		pp := srv.AuthorizationPipeline()
		if pp == nil {
			t.Fatal("publisher has no pipeline")
		}
		for i := 0; i < 3; i++ {
			if _, err := pp.Authorize(ctx, alice, "data:/climate/hot", "read"); err != nil {
				t.Fatal(err)
			}
		}
	}

	// Membership churn with the primary dying mid-stream: deltas are in
	// flight when the endpoint list fails over.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 40; i++ {
			c.vo.AddMember(gsi.MustParseName(fmt.Sprintf("/O=Grid/CN=churn %02d", i)), "researchers")
			time.Sleep(2 * time.Millisecond)
		}
	}()
	time.Sleep(10 * time.Millisecond)
	c.primary.Close()
	c.vo.AddMember(bed.bob.Identity(), "researchers")
	bed.gridmap.Add(bed.bob.Identity(), "bob")
	<-done
	want := c.vo.Version()
	st := c.waitSync(t, "standby deltas", func(st gsi.CASSyncStatus) bool {
		return st.Version >= want && st.LastEndpoint == c.standby.Addr()
	})
	if st.DeltaSyncs == 0 {
		t.Fatalf("failover caught up without a single delta: %+v", st)
	}
	// (Byte savings are a scale claim — BenchmarkCASDeltaSync100k proves
	// them; a fixture VO this small can't.)

	// The post-churn sync cycle must re-warm against the settled
	// generation vector: WarmCurrent reports that the most recent warm
	// matches the pipeline's live generations, i.e. the warmed entries
	// are actually servable (a counter-delta wait here would race with
	// the settling cycle).
	c.waitSync(t, "warm set current", func(st gsi.CASSyncStatus) bool {
		return st.WarmedKeys > 0 && st.WarmCurrent
	})

	// Promotion: alice has NEVER contacted the resource server, yet her
	// first decision is a verified warm hit — while bob (a legitimate
	// member who was not hot on the publishers) pays the cold miss.
	d, err := pipe.Authorize(ctx, alice, "data:/climate/hot", "read")
	if err != nil || d.Decision != gsi.Permit {
		t.Fatalf("warm first decision: %+v err=%v", d, err)
	}
	if !d.Cached {
		t.Fatal("publisher-hot subject's first decision missed the warmed cache")
	}
	bob := gsi.Peer{Identity: bed.bob.Identity(), Chain: bed.bob.Chain}
	d, err = pipe.Authorize(ctx, bob, "data:/climate/hot", "read")
	if err != nil || d.Decision != gsi.Permit {
		t.Fatalf("cold first decision: %+v err=%v", d, err)
	}
	if d.Cached {
		t.Fatal("cold baseline was served from cache on its first decision")
	}

	// Zero fail-open: an outsider stays denied through promotion, warm
	// cache and all.
	malloryCred, err := bed.ca.NewEntity(gsi.MustParseName("/O=Grid/CN=Mallory"), 12*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	mallory := gsi.Peer{Identity: malloryCred.Identity(), Chain: malloryCred.Chain}
	if d, err = pipe.Authorize(ctx, mallory, "data:/climate/hot", "read"); err != nil || d.Decision != gsi.Deny {
		t.Fatalf("outsider after promotion: %+v err=%v", d, err)
	}
}

// TestCASAdminOps drives the gsi.__admin CAS surface (what gsictl
// cas-status / cas-sync invoke) over a real GT3 conversation.
func TestCASAdminOps(t *testing.T) {
	c := newCASSyncBed(t, gsi.WithAdmin())
	bed := c.bed
	ctx := context.Background()
	// Bob is not a VO member, so no VO layer applies and local policy
	// alone decides his admin calls (a member's admin call would need
	// the VO to permit it too — the intersection rule has no carve-out).
	bed.local.Add(gsi.Rule{
		ID:        "admin-ops",
		Effect:    gsi.EffectPermit,
		Subjects:  []string{bed.bob.Identity().String()},
		Resources: []string{"ogsa:" + ogsa.AdminHandle},
		Actions:   []string{"*"},
	})
	bed.gridmap.Add(bed.bob.Identity(), "bob")
	c.waitSync(t, "first bundle", func(st gsi.CASSyncStatus) bool { return st.Version >= 1 })

	admin, err := bed.env.NewClient(bed.bob, gsi.WithTransport(gsi.TransportGT3()))
	if err != nil {
		t.Fatal(err)
	}
	out, _, err := admin.Invoke(ctx, c.rsEP.Addr(), ogsa.AdminHandle, ogsa.AdminOpCASStatus, nil)
	if err != nil {
		t.Fatalf("CASStatus: %v", err)
	}
	var status gsi.CASSyncStatus
	if err := json.Unmarshal(out, &status); err != nil {
		t.Fatalf("CASStatus is not JSON: %v\n%s", err, out)
	}
	if !status.Configured || status.Version < 1 || status.Syncs < 1 {
		t.Fatalf("CASStatus: %+v", status)
	}

	before := status.Syncs
	out, _, err = admin.Invoke(ctx, c.rsEP.Addr(), ogsa.AdminHandle, ogsa.AdminOpCASSync, nil)
	if err != nil {
		t.Fatalf("CASSync: %v", err)
	}
	var sync struct {
		OK bool `json:"ok"`
		gsi.CASSyncStatus
	}
	if err := json.Unmarshal(out, &sync); err != nil {
		t.Fatalf("CASSync is not JSON: %v\n%s", err, out)
	}
	if !sync.OK || sync.Syncs <= before {
		t.Fatalf("forced sync did not pull: %+v (before %d)", sync, before)
	}
}
