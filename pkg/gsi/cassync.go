package gsi

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/cas"
)

// DefaultCASSyncInterval is the bundle pull period when
// CASUpstreamConfig.Interval is zero.
const DefaultCASSyncInterval = 30 * time.Second

// casSyncTimeout bounds one pull attempt against one endpoint.
const casSyncTimeout = 30 * time.Second

// casSyncer is the control-plane goroutine behind WithCASUpstream: it
// pulls the VO's signed policy bundle from the configured endpoints —
// in order, so the second entry is the standby and failover is simply
// "the first pull failed, the next succeeded" — and applies it to the
// pipeline's replica through the fail-closed, generation-counted swap.
type casSyncer struct {
	client  *Client
	replica *cas.Replica
	cfg     CASUpstreamConfig

	stop chan struct{}
	done chan struct{}

	mu       sync.Mutex
	lastErr  string
	lastOK   string // endpoint of the most recent successful pull
	lastTime time.Time
	syncs    uint64
	failures uint64
}

// CASSyncStatus is the JSON shape of the gsi.__admin CASStatus op and
// Server.CASSyncStatus.
type CASSyncStatus struct {
	// Configured reports that WithCASUpstream is active.
	Configured bool `json:"configured"`
	// Version and Generation are the replica's applied bundle version
	// and its apply count.
	Version    uint64 `json:"version"`
	Generation uint64 `json:"generation"`
	// Members is the replica's membership count.
	Members int `json:"members"`
	// Endpoints are the configured upstream addresses, in failover order.
	Endpoints []string `json:"endpoints,omitempty"`
	// LastEndpoint is where the most recent successful pull landed.
	LastEndpoint string `json:"last_endpoint,omitempty"`
	// LastSync is the time of the most recent successful pull.
	LastSync time.Time `json:"last_sync,omitzero"`
	// LastError is the most recent full-round failure ("" when the last
	// round succeeded).
	LastError string `json:"last_error,omitempty"`
	// Syncs and Failures count successful pulls and full rounds where
	// every endpoint failed.
	Syncs    uint64 `json:"syncs"`
	Failures uint64 `json:"failures"`
}

func newCASSyncer(env *Environment, cred *Credential, replica *cas.Replica, cfg CASUpstreamConfig) (*casSyncer, error) {
	client, err := env.NewClient(cred, WithTransport(TransportGT3()))
	if err != nil {
		return nil, err
	}
	if cfg.Interval <= 0 {
		cfg.Interval = DefaultCASSyncInterval
	}
	return &casSyncer{
		client:  client,
		replica: replica,
		cfg:     cfg,
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
	}, nil
}

func (cs *casSyncer) start() {
	go func() {
		defer close(cs.done)
		// First pull immediately: an endpoint that comes up pointing at a
		// live community server should enforce its bundle from the first
		// request, not after one interval of local-only decisions.
		cs.syncOnce(context.Background())
		t := time.NewTicker(cs.cfg.Interval)
		defer t.Stop()
		for {
			select {
			case <-cs.stop:
				return
			case <-t.C:
				cs.syncOnce(context.Background())
			}
		}
	}()
}

func (cs *casSyncer) close() {
	close(cs.stop)
	<-cs.done
}

// syncOnce tries each endpoint in order until one yields a bundle the
// replica accepts. "Up to date" (same version) counts as success.
func (cs *casSyncer) syncOnce(ctx context.Context) error {
	var errs []error
	for _, ep := range cs.cfg.Endpoints {
		err := cs.pull(ctx, ep)
		if err == nil {
			cs.mu.Lock()
			cs.lastOK = ep
			cs.lastTime = time.Now()
			cs.lastErr = ""
			cs.syncs++
			cs.mu.Unlock()
			return nil
		}
		errs = append(errs, fmt.Errorf("%s: %w", ep, err))
	}
	err := errors.Join(errs...)
	cs.mu.Lock()
	cs.lastErr = err.Error()
	cs.failures++
	cs.mu.Unlock()
	return err
}

func (cs *casSyncer) pull(ctx context.Context, endpoint string) error {
	ctx, cancel := context.WithTimeout(ctx, casSyncTimeout)
	defer cancel()
	body, _, err := cs.client.Invoke(ctx, endpoint, cas.SyncHandle, cas.SyncOpBundle, nil)
	if err != nil {
		return err
	}
	b, err := cas.DecodeBundle(body)
	if err != nil {
		return err
	}
	return cs.replica.Apply(b)
}

// status snapshots the syncer for the admin surface.
func (cs *casSyncer) status() CASSyncStatus {
	cs.mu.Lock()
	st := CASSyncStatus{
		Configured:   true,
		Endpoints:    cs.cfg.Endpoints,
		LastEndpoint: cs.lastOK,
		LastSync:     cs.lastTime,
		LastError:    cs.lastErr,
		Syncs:        cs.syncs,
		Failures:     cs.failures,
	}
	cs.mu.Unlock()
	st.Version = cs.replica.Version()
	st.Generation = cs.replica.Generation()
	st.Members = cs.replica.Members()
	return st
}

func (cs *casSyncer) statusJSON() ([]byte, error) {
	return json.MarshalIndent(cs.status(), "", "  ")
}
