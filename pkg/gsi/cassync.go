package gsi

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"strconv"
	"sync"
	"time"

	"repro/internal/cas"
)

// DefaultCASSyncInterval is the bundle pull period when
// CASUpstreamConfig.Interval is zero.
const DefaultCASSyncInterval = 30 * time.Second

// casSyncTimeout bounds one pull attempt against one endpoint.
const casSyncTimeout = 30 * time.Second

// casSyncer is the control-plane goroutine behind WithCASUpstream: it
// pulls the VO's signed policy bundle from the configured endpoints —
// in order, so the second entry is the standby and failover is simply
// "the first pull failed, the next succeeded" — and applies it to the
// pipeline's replica through the fail-closed, generation-counted swap.
//
// Once the replica holds a version, each round asks for a signed DELTA
// from that version first and falls back to the full bundle on any
// refusal — gap, stale, bad signature, malformed — so steady-state
// sync traffic scales with the change rate, not the membership roll.
// With cache warming enabled it also pulls the publisher's hot
// decision keys after an apply and pre-computes those decisions
// through the local pipeline.
type casSyncer struct {
	client   *Client
	replica  *cas.Replica
	pipeline *AuthorizationPipeline // hot-key warming target (nil = off)
	warmN    int                    // hot keys to request per warm (0 = off)
	cfg      CASUpstreamConfig

	stop chan struct{}
	done chan struct{}

	mu       sync.Mutex
	lastErr  string
	lastOK   string // endpoint of the most recent successful pull
	lastTime time.Time
	syncs    uint64
	failures uint64

	deltaSyncs     uint64
	fullSyncs      uint64
	deltaBytes     uint64
	fullBytes      uint64
	bytesSaved     uint64 // vs shipping the last full bundle again
	deltaFallbacks uint64
	lastFullBytes  uint64

	warmedKeys uint64
	warmedGens [5]uint64 // pipeline generation vector at the last warm
	warmedAt   time.Time
}

// CASSyncStatus is the JSON shape of the gsi.__admin CASStatus op and
// Server.CASSyncStatus.
type CASSyncStatus struct {
	// Configured reports that WithCASUpstream is active.
	Configured bool `json:"configured"`
	// Version and Generation are the replica's applied bundle version
	// and its apply count.
	Version    uint64 `json:"version"`
	Generation uint64 `json:"generation"`
	// Members is the replica's membership count.
	Members int `json:"members"`
	// Endpoints are the configured upstream addresses, in failover order.
	Endpoints []string `json:"endpoints,omitempty"`
	// LastEndpoint is where the most recent successful pull landed.
	LastEndpoint string `json:"last_endpoint,omitempty"`
	// LastSync is the time of the most recent successful pull.
	LastSync time.Time `json:"last_sync,omitzero"`
	// LastError is the most recent full-round failure ("" when the last
	// round succeeded).
	LastError string `json:"last_error,omitempty"`
	// Syncs and Failures count successful pulls and full rounds where
	// every endpoint failed.
	Syncs    uint64 `json:"syncs"`
	Failures uint64 `json:"failures"`
	// DeltaSyncs and FullSyncs split successful pulls by transfer shape;
	// DeltaFallbacks counts delta attempts that fell back to a full
	// bundle (version gap, verify failure, malformed delta).
	DeltaSyncs     uint64 `json:"delta_syncs"`
	FullSyncs      uint64 `json:"full_syncs"`
	DeltaFallbacks uint64 `json:"delta_fallbacks"`
	// DeltaBytes and FullBytes are cumulative transfer sizes; BytesSaved
	// estimates what delta sync avoided shipping, measured against the
	// most recent full bundle's size.
	DeltaBytes uint64 `json:"delta_bytes"`
	FullBytes  uint64 `json:"full_bytes"`
	BytesSaved uint64 `json:"bytes_saved"`
	// WarmedKeys counts decisions pre-computed from the publisher's hot
	// keys (0 unless WithCacheWarming is active). WarmCurrent reports
	// that the most recent warm ran against the pipeline's current
	// generation vector — i.e. the warmed entries are servable, not
	// invalidated by a policy/gridmap/bundle change since the warm.
	WarmedKeys  uint64 `json:"warmed_keys"`
	WarmCurrent bool   `json:"warm_current,omitempty"`
}

func newCASSyncer(env *Environment, cred *Credential, pipeline *AuthorizationPipeline, cfg CASUpstreamConfig, warmN int) (*casSyncer, error) {
	client, err := env.NewClient(cred, WithTransport(TransportGT3()))
	if err != nil {
		return nil, err
	}
	if cfg.Interval <= 0 {
		cfg.Interval = DefaultCASSyncInterval
	}
	return &casSyncer{
		client:   client,
		replica:  pipeline.Replica(),
		pipeline: pipeline,
		warmN:    warmN,
		cfg:      cfg,
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}, nil
}

func (cs *casSyncer) start() {
	go func() {
		defer close(cs.done)
		// First pull immediately: an endpoint that comes up pointing at a
		// live community server should enforce its bundle from the first
		// request, not after one interval of local-only decisions.
		cs.syncOnce(context.Background())
		t := time.NewTicker(cs.cfg.Interval)
		defer t.Stop()
		for {
			select {
			case <-cs.stop:
				return
			case <-t.C:
				cs.syncOnce(context.Background())
			}
		}
	}()
}

func (cs *casSyncer) close() {
	close(cs.stop)
	<-cs.done
}

// syncOnce tries each endpoint in order until one yields a bundle the
// replica accepts. "Up to date" (same version) counts as success.
func (cs *casSyncer) syncOnce(ctx context.Context) error {
	var errs []error
	for _, ep := range cs.cfg.Endpoints {
		err := cs.pull(ctx, ep)
		if err == nil {
			cs.mu.Lock()
			cs.lastOK = ep
			cs.lastTime = time.Now()
			cs.lastErr = ""
			cs.syncs++
			cs.mu.Unlock()
			return nil
		}
		errs = append(errs, fmt.Errorf("%s: %w", ep, err))
	}
	err := errors.Join(errs...)
	cs.mu.Lock()
	cs.lastErr = err.Error()
	cs.failures++
	cs.mu.Unlock()
	return err
}

func (cs *casSyncer) pull(ctx context.Context, endpoint string) error {
	ctx, cancel := context.WithTimeout(ctx, casSyncTimeout)
	defer cancel()
	// Delta first once the replica tracks a version. Every delta failure
	// mode — endpoint refusal (log gap), decode error, verify failure,
	// ApplyDelta's gap/stale/malformed refusals — falls back to the full
	// bundle, with the last good state live throughout.
	if have := cs.replica.Version(); have > 0 {
		if err := cs.pullDelta(ctx, endpoint, have); err == nil {
			cs.maybeWarm(ctx, endpoint)
			return nil
		}
		cs.mu.Lock()
		cs.deltaFallbacks++
		cs.mu.Unlock()
	}
	body, _, err := cs.client.Invoke(ctx, endpoint, cas.SyncHandle, cas.SyncOpBundle, nil)
	if err != nil {
		return err
	}
	b, err := cas.DecodeBundle(body)
	if err != nil {
		return err
	}
	if err := cs.replica.Apply(b); err != nil {
		return err
	}
	cs.mu.Lock()
	cs.fullSyncs++
	cs.fullBytes += uint64(len(body))
	cs.lastFullBytes = uint64(len(body))
	cs.mu.Unlock()
	cs.maybeWarm(ctx, endpoint)
	return nil
}

func (cs *casSyncer) pullDelta(ctx context.Context, endpoint string, have uint64) error {
	body, _, err := cs.client.Invoke(ctx, endpoint, cas.SyncHandle, cas.SyncOpDelta, []byte(strconv.FormatUint(have, 10)))
	if err != nil {
		return err
	}
	d, err := cas.DecodeDelta(body)
	if err != nil {
		return err
	}
	if err := cs.replica.ApplyDelta(d); err != nil {
		return err
	}
	cs.mu.Lock()
	cs.deltaSyncs++
	cs.deltaBytes += uint64(len(body))
	if cs.lastFullBytes > uint64(len(body)) {
		cs.bytesSaved += cs.lastFullBytes - uint64(len(body))
	}
	cs.mu.Unlock()
	return nil
}

// maybeWarm pulls the publisher's hot decision keys and pre-computes
// those decisions through the local pipeline. Purely advisory: any
// failure is ignored (never a sync failure), and re-warming is skipped
// while the pipeline's generation vector is unchanged and the last
// warm is recent, so a quiet upstream does not cost an evaluation
// storm per poll. The vector — not just the replica generation —
// matters: warmed entries are keyed by all five generations, so a
// local policy or gridmap change invalidates them just as surely as a
// bundle apply does, and must trigger a re-warm.
func (cs *casSyncer) maybeWarm(ctx context.Context, endpoint string) {
	if cs.warmN <= 0 || cs.pipeline == nil {
		return
	}
	gens := cs.pipeline.generations()
	cs.mu.Lock()
	fresh := cs.warmedGens == gens && !cs.warmedAt.IsZero() && time.Since(cs.warmedAt) < cs.pipeline.cacheTTL()/2
	cs.mu.Unlock()
	if fresh {
		return
	}
	body, _, err := cs.client.Invoke(ctx, endpoint, cas.SyncHandle, cas.SyncOpHotKeys, []byte(strconv.Itoa(cs.warmN)))
	if err != nil {
		return
	}
	keys, err := cas.DecodeHotKeys(body)
	if err != nil {
		return
	}
	n := cs.pipeline.WarmDecisions(keys)
	cs.mu.Lock()
	cs.warmedKeys += uint64(n)
	cs.warmedGens = gens
	cs.warmedAt = time.Now()
	cs.mu.Unlock()
}

// status snapshots the syncer for the admin surface.
func (cs *casSyncer) status() CASSyncStatus {
	cs.mu.Lock()
	st := CASSyncStatus{
		Configured:     true,
		Endpoints:      cs.cfg.Endpoints,
		LastEndpoint:   cs.lastOK,
		LastSync:       cs.lastTime,
		LastError:      cs.lastErr,
		Syncs:          cs.syncs,
		Failures:       cs.failures,
		DeltaSyncs:     cs.deltaSyncs,
		FullSyncs:      cs.fullSyncs,
		DeltaFallbacks: cs.deltaFallbacks,
		DeltaBytes:     cs.deltaBytes,
		FullBytes:      cs.fullBytes,
		BytesSaved:     cs.bytesSaved,
		WarmedKeys:     cs.warmedKeys,
	}
	if !cs.warmedAt.IsZero() && cs.pipeline != nil {
		st.WarmCurrent = cs.warmedGens == cs.pipeline.generations()
	}
	cs.mu.Unlock()
	st.Version = cs.replica.Version()
	st.Generation = cs.replica.Generation()
	st.Members = cs.replica.Members()
	return st
}

func (cs *casSyncer) statusJSON() ([]byte, error) {
	return json.MarshalIndent(cs.status(), "", "  ")
}
