package gsi

import (
	"context"
	"encoding/hex"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/soap"
	"repro/internal/wssec"
)

// Session-pool defaults, chosen for interactive grid clients: a few
// parked connections per peer, retired before credential-scale
// lifetimes matter, with a cap that keeps one misbehaving caller from
// opening unbounded sockets to one host.
const (
	// DefaultMaxIdle is the idle sessions parked per pool key.
	DefaultMaxIdle = 4
	// DefaultIdleTTL is how long an idle session stays reusable.
	DefaultIdleTTL = 5 * time.Minute
	// DefaultMaxConcurrentPerHost caps live sessions per pool key.
	DefaultMaxConcurrentPerHost = 16
	// probeAfter is the idle age beyond which a checkout actively probes
	// the session (one cheap ping round trip) before trusting it; fresher
	// sessions are reused on the strength of the I/O-free health check.
	probeAfter = 30 * time.Second
	// probeTimeout bounds the liveness probe.
	probeTimeout = 2 * time.Second
)

// poolKey identifies interchangeable sessions. Everything that shapes
// the security context of a session is part of the key — the endpoint,
// the transport, the protection level, every GSS handshake parameter
// (delegation, anonymity, limited-proxy policy, depth cap, peer
// pinning, lifetime), and the exact client credential (by leaf
// fingerprint, so a rotated credential never inherits its
// predecessor's sessions) — plus the Environment itself, whose trust
// roots and clock the handshake validated against, so clients of
// different Environments sharing one pool can never bypass each other's
// trust policy. A checkout therefore never receives a session
// established under different terms than the caller's resolved options.
type poolKey struct {
	env           *Environment
	endpoint      string
	transport     string
	protection    ProtectionLevel
	delegation    bool
	anonymous     bool
	rejectLimited bool
	maxProxyDepth int
	expectedPeer  string
	lifetime      time.Duration
	credential    [32]byte // leaf certificate fingerprint; zero if anonymous
}

func poolKeyOf(env *Environment, endpoint string, s settings, cred *Credential) poolKey {
	key := poolKey{
		env:           env,
		endpoint:      endpoint,
		transport:     s.transport.String(),
		protection:    s.protection,
		delegation:    s.delegation,
		anonymous:     s.anonymous,
		rejectLimited: s.rejectLimited,
		maxProxyDepth: s.maxProxyDepth,
		expectedPeer:  s.expectedPeer.String(),
		lifetime:      s.lifetime,
	}
	if cred != nil {
		key.credential = cred.Leaf().Fingerprint()
	}
	return key
}

// resumeScope renders the pool key as the stable string the GT3
// resumption cache is keyed by. Deriving it from poolKey keeps the two
// keyings in lockstep (an option added to poolKey cannot be forgotten
// here), and the environment appears as its process-unique random id —
// never a pointer, which GC address reuse could alias. Free-form fields
// (endpoint, expected peer) are %q-escaped so no crafted value can make
// two distinct keys render identically.
func (k poolKey) resumeScope() string {
	return fmt.Sprintf("%s|%q|%q|%d|d=%v|a=%v|rl=%v|md=%d|ep=%q|lt=%d|%x",
		k.env.id, k.endpoint, k.transport, k.protection, k.delegation,
		k.anonymous, k.rejectLimited, k.maxProxyDepth, k.expectedPeer,
		k.lifetime, k.credential)
}

// idleSession is a parked session plus the instant it was parked.
type idleSession struct {
	sess  Session
	since time.Time
}

// hostPool is the per-key state: parked sessions (LIFO, so the warmest
// connection is reused first), the checked-out count, and the FIFO of
// checkouts waiting for capacity.
type hostPool struct {
	idle    []idleSession
	active  int
	waiters []chan struct{}
}

func (hp *hostPool) total() int { return hp.active + len(hp.idle) }

// signal wakes the longest-waiting checkout, if any. Callers hold the
// pool mutex.
func (hp *hostPool) signal() {
	if len(hp.waiters) > 0 {
		close(hp.waiters[0])
		hp.waiters = hp.waiters[1:]
	}
}

// PoolStats is a snapshot of pool activity.
type PoolStats struct {
	// Dials counts sessions established (each paid a handshake; for GT3
	// with a warm resumption cache, a cheap resumed one).
	Dials uint64
	// Hits counts checkouts satisfied from the idle pool (no handshake).
	Hits uint64
	// Evictions counts idle sessions discarded as stale, unhealthy, or
	// failing their liveness probe.
	Evictions uint64
	// Poisoned counts sessions discarded at return because an exchange
	// left them unsafe to reuse.
	Poisoned uint64
	// Resumes counts GT3 sessions whose conversation was resumed from
	// the secure-conversation cache instead of fully bootstrapped.
	Resumes uint64
	// Retired counts sessions closed because their credential was
	// retired by a rotation: idle sessions drained at RetireCredential
	// plus checked-out sessions discarded as they returned.
	Retired uint64
	// Idle and Active are the current session counts across all keys.
	Idle   int
	Active int
}

// SessionPool reuses established sessions across Connect/Exchange calls
// so the public-key handshake is paid once per connection instead of
// once per call. Checkouts are keyed by (endpoint, transport,
// protection, delegation, credential); state is context-aware (checkout
// honors its ctx; Close drains) and failures surface through the
// package taxonomy (ErrPoolExhausted, ErrContextClosed, ErrTransport).
// The pool also owns the GT3 secure-conversation resumption cache, so
// even a session the pool had to re-dial can skip the WS-Trust
// bootstrap. Safe for concurrent use; share one pool between clients
// freely.
type SessionPool struct {
	maxIdle    int
	idleTTL    time.Duration
	maxPerHost int // <= 0 means unlimited

	resume *wssec.ResumptionCache

	mu      sync.Mutex
	closed  bool
	hosts   map[poolKey]*hostPool
	retired map[[32]byte]time.Time // rotated-away fingerprints → their NotAfter

	dials       atomic.Uint64
	hits        atomic.Uint64
	evictions   atomic.Uint64
	poisoned    atomic.Uint64
	retiredSess atomic.Uint64
}

// NewSessionPool builds a standalone pool tuned by the pool options
// (WithMaxIdle, WithIdleTTL, WithMaxConcurrentPerHost); other options
// are accepted and ignored. Share the pool between clients with
// WithSessionPool.
func NewSessionPool(opts ...Option) (*SessionPool, error) {
	s, err := settings{}.apply(opts)
	if err != nil {
		return nil, opErr("gsi.NewSessionPool", err)
	}
	return newSessionPool(s), nil
}

func newSessionPool(s settings) *SessionPool {
	p := &SessionPool{
		maxIdle:    s.poolMaxIdle,
		idleTTL:    s.poolIdleTTL,
		maxPerHost: s.poolMaxPerHost,
		resume:     wssec.NewResumptionCache(0),
		hosts:      make(map[poolKey]*hostPool),
	}
	if p.maxIdle == 0 {
		p.maxIdle = DefaultMaxIdle
	}
	if p.idleTTL == 0 {
		p.idleTTL = DefaultIdleTTL
	}
	if p.maxPerHost == 0 {
		p.maxPerHost = DefaultMaxConcurrentPerHost
	}
	return p
}

// Stats returns a snapshot of the pool counters.
func (p *SessionPool) Stats() PoolStats {
	st := PoolStats{
		Dials:     p.dials.Load(),
		Hits:      p.hits.Load(),
		Evictions: p.evictions.Load(),
		Poisoned:  p.poisoned.Load(),
		Resumes:   p.resume.Stats().Hits,
		Retired:   p.retiredSess.Load(),
	}
	p.mu.Lock()
	for _, hp := range p.hosts {
		st.Idle += len(hp.idle)
		st.Active += hp.active
	}
	p.mu.Unlock()
	return st
}

// Close drains the pool: parked sessions are closed immediately,
// waiting checkouts fail with ErrPoolExhausted, and sessions still
// checked out are closed as they are returned. Closing twice is safe.
func (p *SessionPool) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	var toClose []Session
	for key, hp := range p.hosts {
		for _, it := range hp.idle {
			toClose = append(toClose, it.sess)
		}
		hp.idle = nil
		for _, w := range hp.waiters {
			close(w)
		}
		hp.waiters = nil
		p.reapLocked(key, hp)
	}
	p.mu.Unlock()
	var first error
	for _, sess := range toClose {
		if err := sess.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

var errPoolClosed = errors.New("gsi: session pool closed")

func (p *SessionPool) host(key poolKey) *hostPool {
	hp := p.hosts[key]
	if hp == nil {
		hp = &hostPool{}
		p.hosts[key] = hp
	}
	return hp
}

// reapLocked drops a key's state once nothing references it, so a
// long-lived pool serving many ephemeral endpoints or rotated
// credentials does not accrete empty entries. Callers hold the mutex.
func (p *SessionPool) reapLocked(key poolKey, hp *hostPool) {
	if hp.active == 0 && len(hp.idle) == 0 && len(hp.waiters) == 0 {
		delete(p.hosts, key)
	}
}

// sessionHealth is the I/O-free liveness check a session may offer the
// pool (GT2 record-stream integrity, GT3 context expiry).
type sessionHealth interface{ Healthy() bool }

// sessionProber is the active liveness probe a session may offer: one
// cheap round trip proving the peer is still there.
type sessionProber interface {
	Probe(ctx context.Context) error
}

// dialRequest packages one potential dial for a pool checkout as plain
// values: unlike a closure it costs no allocation on the idle-hit path,
// which is what keeps the steady-state Exchange near zero allocs/op.
type dialRequest struct {
	client   *Client
	endpoint string
	s        settings
	cred     *Credential
}

func (d dialRequest) dial(ctx context.Context) (Session, error) {
	return d.client.dialSession(ctx, d.endpoint, d.s, d.cred)
}

// checkout returns a live session for key, in preference order: a
// parked idle session (probed first when it has been idle a while), a
// fresh dial when under the per-host cap, or — at the cap — whatever a
// returning caller frees, waiting no longer than ctx allows.
func (p *SessionPool) checkout(ctx context.Context, key poolKey, dial dialRequest) (*pooledSession, error) {
	const op = "gsi.SessionPool.Checkout"
	if err := ctx.Err(); err != nil {
		// The pool was never consulted: a dead context at entry is the
		// caller's, not exhaustion.
		return nil, &Error{Op: op, Kind: ErrContextClosed, Err: err}
	}
	p.mu.Lock()
	for {
		if p.closed {
			p.mu.Unlock()
			return nil, &Error{Op: op, Kind: ErrPoolExhausted, Err: errPoolClosed}
		}
		hp := p.host(key)

		// Prefer a parked session, warmest first.
		if n := len(hp.idle); n > 0 {
			it := hp.idle[n-1]
			hp.idle = hp.idle[:n-1]
			if time.Since(it.since) > p.idleTTL || !sessionHealthy(it.sess) {
				p.evictions.Add(1)
				hp.signal() // capacity freed
				p.mu.Unlock()
				it.sess.Close()
				p.mu.Lock()
				continue
			}
			hp.active++
			p.mu.Unlock()
			if time.Since(it.since) > probeAfter {
				if err := probeSession(ctx, it.sess); err != nil {
					p.evictions.Add(1)
					p.discard(key, it.sess)
					if ctxErr := ctx.Err(); ctxErr != nil {
						// Not queued at the cap — the context died while
						// probing, so this is closure, not exhaustion.
						return nil, &Error{Op: op, Kind: ErrContextClosed, Err: ctxErr}
					}
					p.mu.Lock()
					continue
				}
			}
			p.hits.Add(1)
			return &pooledSession{pool: p, key: key, sess: it.sess, reused: true}, nil
		}

		// Under the cap: establish a fresh session.
		if p.maxPerHost <= 0 || hp.total() < p.maxPerHost {
			hp.active++
			p.mu.Unlock()
			sess, err := dial.dial(ctx)
			if err != nil {
				p.discard(key, nil)
				return nil, err
			}
			p.dials.Add(1)
			return &pooledSession{pool: p, key: key, sess: sess}, nil
		}

		// At the cap: wait for a return, an eviction, or the context.
		w := make(chan struct{})
		hp.waiters = append(hp.waiters, w)
		p.mu.Unlock()
		select {
		case <-w:
			p.mu.Lock()
		case <-ctx.Done():
			p.mu.Lock()
			if !removeWaiter(hp, w) {
				// Already signaled: pass the wakeup on so the freed
				// capacity is not lost on an abandoned checkout.
				hp.signal()
			}
			p.mu.Unlock()
			return nil, checkoutAbort(op, ctx.Err())
		}
	}
}

func removeWaiter(hp *hostPool, w chan struct{}) bool {
	for i, q := range hp.waiters {
		if q == w {
			hp.waiters = append(hp.waiters[:i], hp.waiters[i+1:]...)
			return true
		}
	}
	return false
}

// checkoutAbort classifies a checkout whose context ended while queued
// at the per-host cap: a deadline that passed during the wait means the
// pool could not produce a session in time (ErrPoolExhausted); an
// explicit cancel means the caller abandoned the wait
// (ErrContextClosed). Contexts that die before or outside the wait are
// always ErrContextClosed — exhaustion is only ever reported from the
// capacity queue.
func checkoutAbort(op string, err error) error {
	if errors.Is(err, context.DeadlineExceeded) {
		return &Error{Op: op, Kind: ErrPoolExhausted,
			Err: fmt.Errorf("gsi: no session became available before the deadline: %w", err)}
	}
	return &Error{Op: op, Kind: ErrContextClosed, Err: err}
}

// sessionHealthy runs the optional I/O-free health check.
func sessionHealthy(sess Session) bool {
	if h, ok := sess.(sessionHealth); ok {
		return h.Healthy()
	}
	return true
}

// probeSession runs the optional active probe under a bounded deadline.
func probeSession(ctx context.Context, sess Session) error {
	pr, ok := sess.(sessionProber)
	if !ok {
		return nil
	}
	probeCtx, cancel := context.WithTimeout(ctx, probeTimeout)
	defer cancel()
	return pr.Probe(probeCtx)
}

// discard drops a checked-out slot, closing sess if non-nil, and wakes
// a waiter: used for failed dials, failed probes, and poisoned returns.
func (p *SessionPool) discard(key poolKey, sess Session) {
	p.mu.Lock()
	hp := p.host(key)
	hp.active--
	hp.signal()
	p.reapLocked(key, hp)
	p.mu.Unlock()
	if sess != nil {
		sess.Close()
	}
}

// RetireCredential rekeys the pool after a credential rotation: idle
// sessions established under old's leaf fingerprint are closed, the
// fingerprint is marked so sessions still checked out drain — they
// finish their in-flight exchange, then are discarded at return instead
// of parked — and old's secure-conversation resumption trees are
// invalidated so they can never seed new conversations. New checkouts
// are keyed by the successor's fingerprint and handshake fresh. A
// Client bound to a CredentialManager calls this automatically on
// rotation; call it directly when rotating credentials by hand over a
// shared pool.
func (p *SessionPool) RetireCredential(old *Credential) {
	if old == nil {
		return
	}
	fp := old.Leaf().Fingerprint()
	var toClose []Session
	p.mu.Lock()
	if !p.closed {
		if p.retired == nil {
			p.retired = make(map[[32]byte]time.Time)
		}
		// Once a retired credential's own NotAfter passes, no session
		// under it can be parked anyway — every context it
		// authenticated has expired (gss clamps context lifetime to the
		// credential) and fails the health check at release. Prune such
		// entries so a pool rotating for months stays bounded.
		now := time.Now()
		for oldFP, notAfter := range p.retired {
			if now.After(notAfter) {
				delete(p.retired, oldFP)
			}
		}
		p.retired[fp] = old.Leaf().NotAfter
	}
	for key, hp := range p.hosts {
		if key.credential != fp {
			continue
		}
		for _, it := range hp.idle {
			toClose = append(toClose, it.sess)
			hp.signal() // each closed idle session frees capacity
		}
		hp.idle = nil
		p.reapLocked(key, hp)
	}
	p.mu.Unlock()
	for _, sess := range toClose {
		p.retiredSess.Add(1)
		sess.Close()
	}
	// Resumption-cache keys end in the credential fingerprint (see
	// poolKey.resumeScope), so a suffix match removes exactly the
	// retired credential's parent conversations.
	suffix := fmt.Sprintf("%x", fp)
	p.resume.InvalidateMatching(func(key string) bool {
		return strings.HasSuffix(key, suffix)
	})
}

// ResumptionStats is a snapshot of the pool's GT3 secure-conversation
// resumption cache (hits = conversations minted by cheap resumption,
// misses = full WS-Trust bootstraps).
type ResumptionStats = wssec.ResumptionStats

// ResumptionStats snapshots the pool's secure-conversation cache
// counters.
func (p *SessionPool) ResumptionStats() ResumptionStats {
	return p.resume.Stats()
}

// DrainIdle closes every parked idle session across all keys, counting
// each as an eviction, and reports how many were closed. Checked-out
// sessions are untouched; returning ones may park again. This is the
// admin surface's blunt instrument — after a trust or policy change an
// operator may want every future call to pay a fresh handshake under
// the new state.
func (p *SessionPool) DrainIdle() int {
	var toClose []Session
	p.mu.Lock()
	for key, hp := range p.hosts {
		for _, it := range hp.idle {
			toClose = append(toClose, it.sess)
			hp.signal()
		}
		hp.idle = nil
		p.reapLocked(key, hp)
	}
	p.mu.Unlock()
	for _, sess := range toClose {
		p.evictions.Add(1)
		sess.Close()
	}
	return len(toClose)
}

// RetireFingerprint is RetireCredential for callers that hold only the
// credential's leaf fingerprint (hex, a unique prefix suffices) — the
// admin surface, where the rotated-away credential object is long gone.
// It drains the matching credential's idle sessions, marks the
// fingerprint retired so checked-out sessions are discarded as they
// return, and invalidates its secure-conversation resumption trees.
// An ambiguous prefix (matching several pooled credentials) is an
// error; a prefix matching nothing is an error unless it is a full
// 64-hex-digit fingerprint, which is retired preemptively. Lacking the
// credential's NotAfter, the retired mark is kept for 24h — beyond any
// context lifetime the pool could still be holding.
func (p *SessionPool) RetireFingerprint(prefix string) (drained int, err error) {
	prefix = strings.ToLower(strings.TrimSpace(prefix))
	if prefix == "" || len(prefix) > 64 {
		return 0, errors.New("gsi: fingerprint must be 1-64 hex digits")
	}
	for _, r := range prefix {
		if (r < '0' || r > '9') && (r < 'a' || r > 'f') {
			return 0, fmt.Errorf("gsi: fingerprint %q is not hex", prefix)
		}
	}
	var fp [32]byte
	found := false
	p.mu.Lock()
	for key := range p.hosts {
		if key.anonymous || !strings.HasPrefix(fmt.Sprintf("%x", key.credential), prefix) {
			continue
		}
		if found && key.credential != fp {
			p.mu.Unlock()
			return 0, fmt.Errorf("gsi: fingerprint prefix %q is ambiguous", prefix)
		}
		fp = key.credential
		found = true
	}
	p.mu.Unlock()
	if !found {
		if len(prefix) != 64 {
			return 0, fmt.Errorf("gsi: no pooled credential matches fingerprint %q", prefix)
		}
		raw, decodeErr := hex.DecodeString(prefix)
		if decodeErr != nil {
			return 0, fmt.Errorf("gsi: fingerprint %q is not hex", prefix)
		}
		copy(fp[:], raw)
	}
	var toClose []Session
	p.mu.Lock()
	if !p.closed {
		if p.retired == nil {
			p.retired = make(map[[32]byte]time.Time)
		}
		now := time.Now()
		for oldFP, notAfter := range p.retired {
			if now.After(notAfter) {
				delete(p.retired, oldFP)
			}
		}
		p.retired[fp] = now.Add(24 * time.Hour)
	}
	for key, hp := range p.hosts {
		if key.credential != fp {
			continue
		}
		for _, it := range hp.idle {
			toClose = append(toClose, it.sess)
			hp.signal()
		}
		hp.idle = nil
		p.reapLocked(key, hp)
	}
	p.mu.Unlock()
	for _, sess := range toClose {
		p.retiredSess.Add(1)
		sess.Close()
	}
	suffix := fmt.Sprintf("%x", fp)
	p.resume.InvalidateMatching(func(key string) bool {
		return strings.HasSuffix(key, suffix)
	})
	return len(toClose), nil
}

// credentialRetired reports whether key's credential has been rotated
// away. Callers hold the mutex.
func (p *SessionPool) credentialRetired(key poolKey) bool {
	if len(p.retired) == 0 || key.anonymous {
		return false
	}
	_, ok := p.retired[key.credential]
	return ok
}

// isClosed reports whether Close ran (rotation hooks prune themselves
// on closed pools).
func (p *SessionPool) isClosed() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.closed
}

// fingerprintRetired reports whether cred's leaf fingerprint has been
// rotated away (dials under it must skip the resumption cache).
func (p *SessionPool) fingerprintRetired(cred *Credential) bool {
	if cred == nil {
		return false
	}
	fp := cred.Leaf().Fingerprint()
	p.mu.Lock()
	defer p.mu.Unlock()
	_, ok := p.retired[fp]
	return ok
}

// release returns a session to the idle pool, or closes it when the
// pool is closed, the session was poisoned, the session's credential
// was retired (rotation drain), or the idle cap is reached.
func (p *SessionPool) release(key poolKey, sess Session, poisoned bool) {
	if poisoned {
		p.poisoned.Add(1)
		p.discard(key, sess)
		return
	}
	p.mu.Lock()
	if p.credentialRetired(key) {
		p.mu.Unlock()
		p.retiredSess.Add(1)
		p.discard(key, sess)
		return
	}
	hp := p.host(key)
	hp.active--
	if p.closed || len(hp.idle) >= p.maxIdle || !sessionHealthy(sess) {
		hp.signal()
		p.reapLocked(key, hp)
		p.mu.Unlock()
		sess.Close()
		return
	}
	hp.idle = append(hp.idle, idleSession{sess: sess, since: time.Now()})
	hp.signal()
	p.mu.Unlock()
}

// pooledSession is the Session a pooled Connect hands out: Exchange
// delegates to the underlying session and watches for poisoning, and
// Close returns the session to the pool instead of tearing it down.
type pooledSession struct {
	pool     *SessionPool
	key      poolKey
	sess     Session
	reused   bool // satisfied from the idle pool (no handshake paid)
	released atomic.Bool
	poisoned atomic.Bool
}

func (ps *pooledSession) Exchange(ctx context.Context, op string, body []byte) ([]byte, error) {
	if ps.released.Load() {
		return nil, &Error{Op: "gsi.Session.Exchange", Err: errors.New("gsi: session already returned to pool")}
	}
	out, err := ps.sess.Exchange(ctx, op, body)
	if sessionPoisoned(err) {
		// A cancellation that struck before any I/O leaves the channel
		// intact (the transports guarantee it); trust the session's own
		// health check there instead of discarding a good connection.
		ctxErr := errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
		if !ctxErr || !sessionHealthy(ps.sess) {
			ps.poisoned.Store(true)
		}
	}
	return out, err
}

// OpenStream opens a stream on the pooled session. The stream borrows
// the checkout: return the session (Close) only after the stream
// closes, and a stream that ends with the session unhealthy poisons it
// so the pool discards instead of parking.
func (ps *pooledSession) OpenStream(ctx context.Context, op string) (Stream, error) {
	if ps.released.Load() {
		return nil, &Error{Op: "gsi.Session.OpenStream", Err: errors.New("gsi: session already returned to pool")}
	}
	st, err := ps.sess.OpenStream(ctx, op)
	if err != nil {
		if sessionPoisoned(err) && !sessionHealthy(ps.sess) {
			ps.poisoned.Store(true)
		}
		return nil, err
	}
	return &pooledStream{Stream: st, ps: ps}, nil
}

// pooledStream watches a stream's end for session health so a pooled
// session never parks with a desynchronized record stream.
type pooledStream struct {
	Stream
	ps     *pooledSession
	closed atomic.Bool
}

func (p *pooledStream) Close() error {
	if p.closed.Swap(true) {
		return nil
	}
	err := p.Stream.Close()
	if !sessionHealthy(p.ps.sess) {
		p.ps.poisoned.Store(true)
	}
	return err
}

func (ps *pooledSession) Peer() Peer { return ps.sess.Peer() }

// Close returns the session to the pool (discarding it if poisoned).
// Closing twice is safe; only the first return counts.
func (ps *pooledSession) Close() error {
	if ps.released.Swap(true) {
		return nil
	}
	ps.pool.release(ps.key, ps.sess, ps.poisoned.Load())
	return nil
}

// sessionPoisoned decides whether an exchange error leaves the session
// unsafe to reuse. Errors the peer reported over an intact channel —
// remote statuses on GT2, application SOAP faults on GT3 — are benign;
// anything touching the channel itself (transport failures, interrupted
// frames, lapsed contexts) poisons the session so the pool evicts
// instead of re-parking it. A SOAP fault that reports the *secure
// conversation* dead — the server restarted or expired the context, so
// every future call on this session will fault the same way — poisons
// too, letting Client.Exchange recover on a fresh session.
func sessionPoisoned(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, errRemoteStatus) || errors.Is(err, ErrUnauthorized) || errors.Is(err, ErrNotFound) {
		return false
	}
	var fault *soap.Fault
	if errors.As(err, &fault) {
		return strings.Contains(fault.Reason, "security context") ||
			strings.Contains(fault.Reason, "wssec: unwrap")
	}
	return true
}
