package gsi

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/authz"
	"repro/internal/gridcert"
	"repro/internal/reload"
)

// ReloadConfig names the configuration files a server re-reads while it
// runs, passed to WithReload. Every field is optional but at least one
// must be set. Files use the library's own codecs:
//
//   - TrustRoots: an EncodeChain blob of CA certificates (the whole
//     root set — the file replaces, never appends).
//   - CRLs: an EncodeCRLSet blob; each CRL is applied through the
//     trust store's signature and monotonicity checks, and one already
//     installed is silently skipped.
//   - GridMap: classic grid-mapfile text ("DN" account...).
//   - Policy: the JSON form written by Policy.EncodePolicyJSON. Its
//     combining algorithm must match the live policy's — reload swaps
//     rules, never the algorithm.
//
// Every applier is fail-closed: the file is parsed and validated
// completely before any live state moves, so a corrupt or half-written
// file keeps the previous generation live and bumps reload_failures —
// the server never drops to an empty trust store mid-swap.
type ReloadConfig struct {
	// TrustRoots is the path of the CA root set (EncodeChain format).
	TrustRoots string
	// CRLs is the path of the revocation set (EncodeCRLSet format).
	CRLs string
	// GridMap is the path of the grid-mapfile.
	GridMap string
	// Policy is the path of the local policy (EncodePolicyJSON format).
	Policy string
	// Interval is the polling cadence; <= 0 selects the default
	// (2 seconds).
	Interval time.Duration
}

func (c ReloadConfig) empty() bool {
	return c.TrustRoots == "" && c.CRLs == "" && c.GridMap == "" && c.Policy == ""
}

// ReloadStats is a snapshot of reload activity.
type ReloadStats = reload.Stats

// ReloadSourceStatus reports one watched file's last outcome.
type ReloadSourceStatus = reload.SourceStatus

// Reloader watches a server's configuration files and applies changes
// to the live trust store, gridmap, and policy through their
// generation-counted swap operations — so the PR 4 decision cache and
// the PR 2 chain cache invalidate themselves on the next lookup, with
// no restart and no explicit cache flush. Obtain one via WithReload;
// the server starts and stops it with its control plane.
type Reloader struct {
	w *reload.Watcher
}

// newReloader wires cfg's files to appliers over the environment's
// trust store and the pipeline's gridmap/policy. pipeline may be nil
// when the server authenticates only; gridmap/policy paths then have
// nothing to apply to and are rejected.
func newReloader(cfg ReloadConfig, env *Environment, pipeline *AuthorizationPipeline) (*Reloader, error) {
	if cfg.empty() {
		return nil, errors.New("gsi: reload configuration names no files")
	}
	if pipeline == nil && (cfg.GridMap != "" || cfg.Policy != "") {
		return nil, errors.New("gsi: gridmap/policy reload requires an authorization pipeline (WithAuthorization)")
	}
	w := reload.New(cfg.Interval)
	if cfg.TrustRoots != "" {
		trust := env.Trust()
		w.Watch("trust-roots", cfg.TrustRoots, func(data []byte) error {
			roots, err := gridcert.DecodeChain(data)
			if err != nil {
				return err
			}
			return trust.ReplaceRoots(roots)
		})
	}
	if cfg.CRLs != "" {
		trust := env.Trust()
		w.Watch("crls", cfg.CRLs, func(data []byte) error {
			crls, err := gridcert.DecodeCRLSet(data)
			if err != nil {
				return err
			}
			// Validate-then-apply across the set: a bad CRL rejects the
			// whole file before any of it lands, matching the other
			// appliers' no-half-apply rule. AddCRL itself only ever
			// tightens (monotonic CRL numbers, issuer must be trusted),
			// and a CRL we already hold is not an error.
			for _, crl := range crls {
				if err := trust.CheckCRL(crl); err != nil && !errors.Is(err, gridcert.ErrCRLStale) {
					return err
				}
			}
			for _, crl := range crls {
				if err := trust.AddCRL(crl); err != nil && !errors.Is(err, gridcert.ErrCRLStale) {
					return err
				}
			}
			return nil
		})
	}
	if cfg.GridMap != "" {
		gm := pipeline.GridMap()
		w.Watch("gridmap", cfg.GridMap, func(data []byte) error {
			parsed, err := authz.ParseGridMap(string(data))
			if err != nil {
				return err
			}
			return gm.Replace(parsed)
		})
	}
	if cfg.Policy != "" {
		pol := pipeline.LocalPolicy()
		w.Watch("policy", cfg.Policy, func(data []byte) error {
			rules, combining, err := authz.DecodePolicyJSON(data)
			if err != nil {
				return err
			}
			if combining != pol.Combining() {
				return fmt.Errorf("gsi: policy file declares combining mode %d but the live policy uses %d; reload swaps rules, not algorithms", combining, pol.Combining())
			}
			return pol.Replace(rules)
		})
	}
	return &Reloader{w: w}, nil
}

// Reload forces a full re-read of every watched file regardless of
// mtime (the admin surface's Reload op). Sources that fail keep their
// previous state live; their errors are joined and returned.
func (r *Reloader) Reload() error { return r.w.Reload() }

// Stats snapshots the reload counters.
func (r *Reloader) Stats() ReloadStats { return r.w.Stats() }

// Status reports each watched file's last outcome.
func (r *Reloader) Status() []ReloadSourceStatus { return r.w.Status() }

func (r *Reloader) start() { r.w.Start() }
func (r *Reloader) close() { r.w.Close() }
