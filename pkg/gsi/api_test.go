package gsi_test

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/authz"
	"repro/pkg/gsi"
)

// echoHandler answers "echo" with the body and "whoami" with the
// authenticated peer identity.
func echoHandler(ctx context.Context, peer gsi.Peer, op string, body []byte) ([]byte, error) {
	switch op {
	case "echo":
		return body, nil
	case "whoami":
		return []byte(peer.Identity.String()), nil
	default:
		return nil, fmt.Errorf("no such op %q", op)
	}
}

// permitOnly builds an environment authorizer admitting only subject.
func permitOnly(subject string) gsi.Engine {
	return &authz.PolicyEngine{
		Policy: gsi.NewPolicy(gsi.Rule{
			Effect:    gsi.EffectPermit,
			Subjects:  []string{subject},
			Resources: []string{"*"},
			Actions:   []string{"*"},
		}),
		DefaultDeny: true,
	}
}

// transportRoundTrip drives one transport end to end through the
// handles: serve, connect, exchange, peer identity, authorization deny.
func transportRoundTrip(t *testing.T, transport gsi.Transport, opts ...gsi.Option) {
	t.Helper()
	tb := newTestbed(t)
	authEnv, err := gsi.NewEnvironment(
		gsi.WithTrustStore(tb.env.Trust()),
		gsi.WithAuthorizer(permitOnly("/O=Grid/CN=Alice")),
	)
	if err != nil {
		t.Fatal(err)
	}

	server, err := authEnv.NewServer(tb.host, gsi.WithTransport(transport))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ep, err := server.Serve(ctx, "127.0.0.1:0", echoHandler)
	if err != nil {
		t.Fatal(err)
	}
	defer ep.Close()

	clientOpts := append([]gsi.Option{gsi.WithTransport(transport)}, opts...)
	client, err := tb.env.NewClient(tb.alice, clientOpts...)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := client.Connect(ctx, ep.Addr())
	if err != nil {
		t.Fatalf("%s connect: %v", transport, err)
	}
	defer sess.Close()

	out, err := sess.Exchange(ctx, "echo", []byte("ping"))
	if err != nil || string(out) != "ping" {
		t.Fatalf("%s echo: %v %q", transport, err, out)
	}
	who, err := sess.Exchange(ctx, "whoami", nil)
	if err != nil || string(who) != "/O=Grid/CN=Alice" {
		t.Fatalf("%s whoami: %v %q", transport, err, who)
	}

	// Bob authenticates but the environment's authorizer denies him.
	bob, err := tb.ca.NewEntity(gsi.MustParseName("/O=Grid/CN=Bob"), 12*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	bobClient, err := tb.env.NewClient(bob, clientOpts...)
	if err != nil {
		t.Fatal(err)
	}
	bobSess, err := bobClient.Connect(ctx, ep.Addr())
	if err != nil {
		t.Fatalf("%s bob connect: %v", transport, err)
	}
	defer bobSess.Close()
	if _, err := bobSess.Exchange(ctx, "echo", []byte("hi")); !errors.Is(err, gsi.ErrUnauthorized) {
		t.Fatalf("%s bob exchange not ErrUnauthorized: %v", transport, err)
	}
}

// TestGT2SessionRoundTrip: the raw-socket transport through the handles.
func TestGT2SessionRoundTrip(t *testing.T) {
	transportRoundTrip(t, gsi.TransportGT2())
}

// TestGT3SessionRoundTrip: the SOAP/HTTP transport through the same
// handles — callers pick transport by option, not by function name.
func TestGT3SessionRoundTrip(t *testing.T) {
	transportRoundTrip(t, gsi.TransportGT3())
}

// TestGT3SignedSessionRoundTrip: the stateless per-message-signature
// mechanism over GT3.
func TestGT3SignedSessionRoundTrip(t *testing.T) {
	transportRoundTrip(t, gsi.TransportGT3(), gsi.WithMessageProtection(gsi.ProtectionSigned))
}

// TestSessionPeerIdentity: the client sees the server's identity on GT2
// and GT3 private sessions.
func TestSessionPeerIdentity(t *testing.T) {
	for _, transport := range []gsi.Transport{gsi.TransportGT2(), gsi.TransportGT3()} {
		tb := newTestbed(t)
		server, err := tb.env.NewServer(tb.host, gsi.WithTransport(transport))
		if err != nil {
			t.Fatal(err)
		}
		ctx := context.Background()
		ep, err := server.Serve(ctx, "127.0.0.1:0", echoHandler)
		if err != nil {
			t.Fatal(err)
		}
		client, err := tb.env.NewClient(tb.alice, gsi.WithTransport(transport))
		if err != nil {
			t.Fatal(err)
		}
		sess, err := client.Connect(ctx, ep.Addr())
		if err != nil {
			t.Fatal(err)
		}
		if got := sess.Peer().Identity; !got.Equal(tb.host.Identity()) {
			t.Fatalf("%s peer = %q, want %q", transport, got, tb.host.Identity())
		}
		sess.Close()
		ep.Close()
	}
}

// TestWithExpectedPeer: a peer-identity pin that does not match fails
// the handshake with an authentication error.
func TestWithExpectedPeer(t *testing.T) {
	tb := newTestbed(t)
	server, err := tb.env.NewServer(tb.host)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	ep, err := server.Serve(ctx, "127.0.0.1:0", echoHandler)
	if err != nil {
		t.Fatal(err)
	}
	defer ep.Close()

	pinned, err := tb.env.NewClient(tb.alice,
		gsi.WithExpectedPeer(gsi.MustParseName("/O=Grid/CN=host other")))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pinned.Connect(ctx, ep.Addr()); !errors.Is(err, gsi.ErrAuthentication) {
		t.Fatalf("identity mismatch not ErrAuthentication: %v", err)
	}

	correct, err := tb.env.NewClient(tb.alice,
		gsi.WithExpectedPeer(tb.host.Identity()))
	if err != nil {
		t.Fatal(err)
	}
	sess, err := correct.Connect(ctx, ep.Addr())
	if err != nil {
		t.Fatalf("pinned connect: %v", err)
	}
	sess.Close()
}

// TestWithDelegationFlag: WithDelegation sets the GSS delegation flag,
// visible to the acceptor.
func TestWithDelegationFlag(t *testing.T) {
	tb := newTestbed(t)
	client, err := tb.env.NewClient(tb.alice, gsi.WithDelegation())
	if err != nil {
		t.Fatal(err)
	}
	_, actx, err := client.Establish(context.Background(), gsi.ContextConfig{
		Credential: tb.host,
		TrustStore: tb.env.Trust(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !actx.DelegationRequested() {
		t.Fatal("delegation flag not visible to acceptor")
	}
}

// TestWithRejectLimited: a limited proxy is refused by a server built
// with WithRejectLimited.
func TestWithRejectLimited(t *testing.T) {
	tb := newTestbed(t)
	aliceClient, err := tb.env.NewClient(tb.alice)
	if err != nil {
		t.Fatal(err)
	}
	limited, err := aliceClient.Proxy(gsi.ProxyOptions{
		Lifetime: time.Hour,
		Variant:  gsi.ProxyLimited,
	})
	if err != nil {
		t.Fatal(err)
	}
	server, err := tb.env.NewServer(tb.host, gsi.WithRejectLimited())
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	ep, err := server.Serve(ctx, "127.0.0.1:0", echoHandler)
	if err != nil {
		t.Fatal(err)
	}
	defer ep.Close()
	limClient, err := tb.env.NewClient(limited)
	if err != nil {
		t.Fatal(err)
	}
	// The initiator completes first in the 3-token handshake, so the
	// acceptor's rejection surfaces on the first exchange at the latest.
	sess, err := limClient.Connect(ctx, ep.Addr())
	if err == nil {
		_, err = sess.Exchange(ctx, "echo", []byte("x"))
		sess.Close()
	}
	if err == nil {
		t.Fatal("limited proxy accepted by WithRejectLimited server")
	}
	full, err := tb.env.NewClient(tb.alice)
	if err != nil {
		t.Fatal(err)
	}
	fullSess, err := full.Connect(ctx, ep.Addr())
	if err != nil {
		t.Fatalf("full credential refused: %v", err)
	}
	fullSess.Close()
}

// TestSubmitJobThroughClient: the Figure-4 GRAM flow through the new
// handle, context-first.
func TestSubmitJobThroughClient(t *testing.T) {
	tb := newTestbed(t)
	gm := gsi.NewGridMap()
	gm.Add(tb.alice.Identity(), "alice")
	resource, err := gsi.NewJobResource(tb.host, tb.env.Trust(), gm)
	if err != nil {
		t.Fatal(err)
	}
	if err := resource.CreateAccount("alice"); err != nil {
		t.Fatal(err)
	}
	client, err := tb.env.NewClient(tb.alice)
	if err != nil {
		t.Fatal(err)
	}
	proxy, err := client.Proxy(gsi.ProxyOptions{Lifetime: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	proxyClient, err := tb.env.NewClient(proxy)
	if err != nil {
		t.Fatal(err)
	}
	mjs, err := proxyClient.SubmitJob(context.Background(), resource, gsi.JobDescription{
		Executable:         gsi.JobProgram,
		DelegateCredential: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if mjs.Job().State().String() != "Done" {
		t.Fatalf("job state = %v", mjs.Job().State())
	}
	// Canceled submissions never reach the resource.
	canceled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := proxyClient.SubmitJob(canceled, resource, gsi.JobDescription{Executable: gsi.JobProgram}); !errors.Is(err, gsi.ErrContextClosed) {
		t.Fatalf("canceled SubmitJob: %v", err)
	}
}

// TestCASFlowThroughHandles: Figure 2 end to end on the new API —
// request assertion, embed, enforce.
func TestCASFlowThroughHandles(t *testing.T) {
	tb := newTestbed(t)
	vo, err := tb.ca.NewEntity(gsi.MustParseName("/O=Grid/CN=VO"), 12*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	casServer := gsi.NewCASServer(vo)
	casServer.AddMember(tb.alice.Identity(), "researchers")
	casServer.AddPolicy(gsi.Rule{
		Effect:    gsi.EffectPermit,
		Groups:    []string{"researchers"},
		Resources: []string{"data:/climate/*"},
		Actions:   []string{"read"},
	})
	client, err := tb.env.NewClient(tb.alice)
	if err != nil {
		t.Fatal(err)
	}
	assertion, err := client.RequestAssertion(context.Background(), casServer)
	if err != nil {
		t.Fatal(err)
	}
	restricted, err := client.EmbedAssertion(assertion)
	if err != nil {
		t.Fatal(err)
	}
	enforcer := gsi.NewCASEnforcer(tb.env.Trust(), gsi.NewPolicy(gsi.Rule{
		Effect:    gsi.EffectPermit,
		Subjects:  []string{"*"},
		Resources: []string{"data:/*"},
		Actions:   []string{"read"},
	}))
	enforcer.TrustVO(casServer.Certificate())
	res, err := enforcer.Authorize(restricted.Chain, "data:/climate/run1", "read", time.Time{})
	if err != nil || res.Decision != gsi.Permit {
		t.Fatalf("%v %+v", err, res)
	}
}
