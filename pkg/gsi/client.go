package gsi

import (
	"context"
	"errors"
	"time"

	"repro/internal/cas"
	"repro/internal/gram"
	"repro/internal/gss"
	"repro/internal/proxy"
	"repro/internal/trace"
)

// Client is the initiator handle of the redesigned API: one grid party
// (a user proxy, a service acting on a user's behalf) bound to an
// Environment, from which it takes trust roots and clock. All blocking
// operations take a context.Context and honor its cancellation and
// deadline; all failures are *Error values classified onto the package
// taxonomy.
//
//	client, _ := env.NewClient(aliceProxy, gsi.WithTransport(gsi.TransportGT2()))
//	sess, err := client.Connect(ctx, endpoint)
type Client struct {
	env  *Environment
	cred *Credential
	base settings
}

// NewClient builds a Client from a credential. A nil credential is
// allowed only together with WithAnonymous or WithCredentialManager (a
// managed client always reads the manager's current credential, so a
// fixed one here would be misleading). Any pool option
// (WithSessionPool, WithMaxIdle, WithIdleTTL, WithMaxConcurrentPerHost)
// enables session pooling; without an explicitly shared pool the client
// gets a private one tuned by those options. A pooling client bound to
// a CredentialManager rekeys its pool on every rotation: the replaced
// credential's sessions drain and its resumption trees are dropped.
func (e *Environment) NewClient(cred *Credential, opts ...Option) (*Client, error) {
	base := settings{transport: TransportGT2()}
	base, err := base.apply(opts)
	if err != nil {
		return nil, opErr("gsi.NewClient", err)
	}
	if cred == nil && !base.anonymous && base.credman == nil {
		return nil, opErr("gsi.NewClient", errors.New("gsi: client requires a credential unless anonymous or managed"))
	}
	if cred != nil && base.credman != nil {
		return nil, opErr("gsi.NewClient", errors.New("gsi: a managed client takes its credential from the manager; pass a nil credential"))
	}
	if base.poolEnable && base.pool == nil {
		base.pool = newSessionPool(base)
	}
	if base.pool != nil && base.credman != nil {
		base.credman.bindPool(base.pool)
	}
	if base.metrics != nil {
		id := cred
		if id == nil && base.credman != nil {
			id = base.credman.Current()
		}
		if err := registerClientMetrics(base.metrics, metricID(id), base.pool, base.credman); err != nil {
			return nil, opErr("gsi.NewClient", err)
		}
	}
	if err := base.buildTracer(); err != nil {
		return nil, opErr("gsi.NewClient", err)
	}
	return &Client{env: e, cred: cred, base: base}, nil
}

// credential resolves the client's effective credential: the manager's
// current one on a managed client, the fixed one otherwise. Callers
// snapshot it once per operation so a rotation cannot split one
// operation across two credentials.
func (c *Client) credential() *Credential {
	if c.base.credman != nil {
		return c.base.credman.Current()
	}
	return c.cred
}

// Pool returns the client's session pool (nil when pooling is off).
func (c *Client) Pool() *SessionPool { return c.base.pool }

// Environment returns the client's environment.
func (c *Client) Environment() *Environment { return c.env }

// Credential returns the client's effective credential: the manager's
// current one on a managed client (so it changes across rotations), the
// fixed one otherwise, nil for anonymous clients.
func (c *Client) Credential() *Credential { return c.credential() }

// CredentialManager returns the manager a managed client is bound to
// (nil otherwise).
func (c *Client) CredentialManager() *CredentialManager { return c.base.credman }

// resolve folds per-call options over the handle's base settings and
// derives the effective context: the deadline-skew budget (if any) is
// taken off the caller's deadline.
func (c *Client) resolve(ctx context.Context, opts []Option) (context.Context, context.CancelFunc, settings, error) {
	s, err := c.base.apply(opts)
	if err != nil {
		return ctx, func() {}, s, err
	}
	if deadline, ok := ctx.Deadline(); ok && s.deadlineSkew > 0 {
		skewed, cancel := context.WithDeadline(ctx, deadline.Add(-s.deadlineSkew))
		return skewed, cancel, s, nil
	}
	return ctx, func() {}, s, nil
}

// Connect establishes a secured session with the peer at endpoint over
// the client's transport. Cancellation aborts the handshake mid-flight,
// including while blocked on the network. On a pooling client the
// session is checked out of the pool — its Close returns it for reuse
// rather than tearing it down — so the handshake is paid only when the
// pool has no live session for (endpoint, transport, protection,
// delegation, credential).
func (c *Client) Connect(ctx context.Context, endpoint string, opts ...Option) (Session, error) {
	const op = "gsi.Client.Connect"
	ctx, cancelSkew, s, err := c.resolve(ctx, opts)
	defer cancelSkew()
	if err != nil {
		return nil, opErr(op, err)
	}
	if err := s.poolUsable(); err != nil {
		return nil, opErr(op, err)
	}
	cred := c.credential()
	// Tracing: a Connect inside a traced operation (OpenStream's dial,
	// a stream's parent span in ctx) lands as a retroactive child on
	// that span; a standalone traced Connect gets its own root span.
	parent := trace.SpanFromContext(ctx)
	var sp *trace.Span
	if s.tracer != nil && parent == nil {
		sp = s.tracer.StartRoot("client.connect")
		parent = sp
	}
	start := time.Time{}
	if parent != nil {
		start = time.Now()
	}
	if s.pool != nil {
		sess, err := s.pool.checkout(ctx, poolKeyOf(c.env, endpoint, s, cred),
			dialRequest{client: c, endpoint: endpoint, s: s, cred: cred})
		if err != nil {
			sp.SetError(err)
			sp.End()
			return nil, opErr(op, err)
		}
		if parent != nil && !sess.reused {
			if sp == nil {
				parent.AddTimed("client.connect", start, time.Since(start), "")
			}
			clientHandshakeSpan(parent, sess)
		}
		if sp != nil {
			sp.SetPeer(sess.Peer().Identity.String())
			sp.End()
		}
		return sess, nil
	}
	sess, err := c.dialSession(ctx, endpoint, s, cred)
	if err != nil {
		sp.SetError(err)
		sp.End()
		return nil, opErr(op, err)
	}
	if parent != nil {
		if sp == nil {
			parent.AddTimed("client.connect", start, time.Since(start), "")
		}
		clientHandshakeSpan(parent, sess)
	}
	if sp != nil {
		sp.SetPeer(sess.Peer().Identity.String())
		sp.End()
	}
	return sess, nil
}

// dialSession performs one dial attempt (directly or from a pool
// checkout miss). A pooling client threads the pool's
// secure-conversation resumption cache into the transport so even
// fresh GT3 dials skip the WS-Trust bootstrap when an earlier
// conversation with the peer is still warm.
func (c *Client) dialSession(ctx context.Context, endpoint string, s settings, cred *Credential) (Session, error) {
	cfg := DialConfig{
		Context:    s.contextConfig(c.env, cred),
		Protection: s.protection,
	}
	// A retired credential dials without the resumption cache at all:
	// otherwise a client still holding it would re-seed a parent
	// conversation under the retired fingerprint right after the
	// rotation invalidated those trees, and later dials would resume
	// off it. Retired means every dial bootstraps fresh, permanently.
	if s.pool != nil && !s.pool.fingerprintRetired(cred) {
		cfg.resumption = s.pool.resume
		cfg.resumeKey = poolKeyOf(c.env, endpoint, s, cred).resumeScope()
	}
	return s.transport.Dial(ctx, endpoint, cfg)
}

// Exchange performs one secured request/response with the peer at
// endpoint: on a pooling client it checks a session out, exchanges, and
// returns it; otherwise it dials, exchanges, and closes. When a reused
// session turns out poisoned (the peer went away while it sat idle),
// the exchange is retried on a fresh session — only reused sessions are
// retried, so an error from a newly established session is reported,
// not masked by re-execution.
//
// The retry relaxes at-most-once delivery: a parked connection that
// died after the peer processed the request but before the reply
// arrived is indistinguishable from one that died before delivery, so
// the op may execute twice. Issue non-idempotent operations through
// Connect and Session.Exchange instead, which never retry.
func (c *Client) Exchange(ctx context.Context, endpoint, op string, body []byte, opts ...Option) ([]byte, error) {
	const opName = "gsi.Client.Exchange"
	ctx, cancelSkew, s, err := c.resolve(ctx, opts)
	defer cancelSkew()
	if err != nil {
		return nil, opErr(opName, err)
	}
	if err := s.poolUsable(); err != nil {
		return nil, opErr(opName, err)
	}
	// Tracing: the root span covers the whole operation — dial (or pool
	// checkout), any retries, and the exchange itself — and rides ctx so
	// the transport appends its context to the outgoing frame. The
	// disabled path pays nil checks only: no context wrap, no clock
	// reads, no allocations.
	var sp *trace.Span
	if s.tracer != nil {
		sp = s.tracer.StartRoot("client.exchange")
		ctx = trace.ContextWithSpan(ctx, sp)
	}
	if s.pool == nil {
		dialStart := time.Time{}
		if sp != nil {
			dialStart = time.Now()
		}
		sess, err := c.dialSession(ctx, endpoint, s, c.credential())
		if err != nil {
			sp.SetError(err)
			sp.End()
			return nil, opErr(opName, err)
		}
		if sp != nil {
			sp.AddTimed("client.connect", dialStart, time.Since(dialStart), "")
			clientHandshakeSpan(sp, sess)
			sp.SetPeer(sess.Peer().Identity.String())
		}
		defer sess.Close()
		out, err := sess.Exchange(ctx, op, body)
		if sp != nil {
			sp.AddBytes(int64(len(body) + len(out)))
			sp.SetError(err)
			sp.End()
		}
		if err != nil {
			return nil, opErr(opName, err)
		}
		return out, nil
	}
	// Every reused-but-poisoned session may hide another stale one
	// behind it in the idle pool; allow one attempt per possible parked
	// session plus a final fresh dial. The credential is re-resolved per
	// attempt so a retry racing a rotation lands on the successor.
	attempts := s.pool.maxIdle + 2
	var lastErr error
	for i := 0; i < attempts; i++ {
		cred := c.credential()
		key := poolKeyOf(c.env, endpoint, s, cred)
		checkoutStart := time.Time{}
		if sp != nil {
			checkoutStart = time.Now()
		}
		sess, err := s.pool.checkout(ctx, key, dialRequest{client: c, endpoint: endpoint, s: s, cred: cred})
		if err != nil {
			sp.SetError(err)
			sp.End()
			return nil, opErr(opName, err)
		}
		if sp != nil {
			if !sess.reused {
				sp.AddTimed("client.connect", checkoutStart, time.Since(checkoutStart), "")
				clientHandshakeSpan(sp, sess)
			}
			sp.SetPeer(sess.Peer().Identity.String())
		}
		out, err := sess.Exchange(ctx, op, body)
		retriable := err != nil && sess.reused && sess.poisoned.Load() && ctx.Err() == nil
		sess.Close()
		if err == nil {
			if sp != nil {
				sp.AddBytes(int64(len(body) + len(out)))
				sp.End()
			}
			return out, nil
		}
		lastErr = err
		if !retriable {
			break
		}
	}
	sp.SetError(lastErr)
	sp.End()
	return nil, opErr(opName, lastErr)
}

// Establish runs an in-memory mutual authentication against an acceptor
// configuration — the handle-based form of the old EstablishContext free
// function, for co-located services and tests.
func (c *Client) Establish(ctx context.Context, acceptor ContextConfig, opts ...Option) (initiator, accepted *Context, err error) {
	const op = "gsi.Client.Establish"
	ctx, cancelSkew, s, err := c.resolve(ctx, opts)
	defer cancelSkew()
	if err != nil {
		return nil, nil, opErr(op, err)
	}
	ictx, actx, err := gss.EstablishContext(ctx, s.contextConfig(c.env, c.credential()), acceptor)
	if err != nil {
		return nil, nil, opErr(op, err)
	}
	return ictx, actx, nil
}

// Proxy creates a proxy credential below the client's credential
// (grid-proxy-init as a method).
func (c *Client) Proxy(opts ProxyOptions) (*Credential, error) {
	cred, err := proxy.New(c.credential(), opts)
	if err != nil {
		return nil, opErr("gsi.Client.Proxy", err)
	}
	return cred, nil
}

// RequestAssertion performs step 1 of the CAS flow (Figure 2): the
// client's authenticated identity asks the VO's CAS server for its
// signed policy assertion. Cancellation aborts the policy scan.
func (c *Client) RequestAssertion(ctx context.Context, server *CASServer, opts ...Option) (*CASAssertion, error) {
	const op = "gsi.Client.RequestAssertion"
	ctx, cancelSkew, _, err := c.resolve(ctx, opts)
	defer cancelSkew()
	if err != nil {
		return nil, opErr(op, err)
	}
	cred := c.credential()
	if cred == nil {
		return nil, opErr(op, errors.New("gsi: anonymous clients cannot request assertions"))
	}
	a, err := server.IssueAssertionContext(ctx, cred.Identity())
	if err != nil {
		return nil, opErr(op, err)
	}
	return a, nil
}

// EmbedAssertion wraps a CAS assertion into a restricted proxy below the
// client's credential (step 2 of Figure 2), returning the credential the
// client presents to VO resources.
func (c *Client) EmbedAssertion(a *CASAssertion) (*Credential, error) {
	cred, err := cas.EmbedInProxy(c.credential(), a)
	if err != nil {
		return nil, opErr("gsi.Client.EmbedAssertion", err)
	}
	return cred, nil
}

// RetrieveCredential authenticates to a MyProxy repository by passphrase
// and receives a fresh short-lived proxy delegated from the stored
// credential. The private key is generated locally and never crosses the
// exchange.
func (c *Client) RetrieveCredential(ctx context.Context, repo *MyProxy, username, passphrase string, lifetime time.Duration, opts ...Option) (*Credential, error) {
	const op = "gsi.Client.RetrieveCredential"
	ctx, cancelSkew, _, err := c.resolve(ctx, opts)
	defer cancelSkew()
	if err != nil {
		return nil, opErr(op, err)
	}
	if err := ctx.Err(); err != nil {
		return nil, opErr(op, err)
	}
	delegatee, req, err := proxy.NewDelegatee(lifetime, false)
	if err != nil {
		return nil, opErr(op, err)
	}
	req.Lifetime = lifetime
	reply, err := repo.RetrieveContext(ctx, username, passphrase, req)
	if err != nil {
		return nil, opErr(op, err)
	}
	cred, err := delegatee.Accept(reply)
	if err != nil {
		return nil, opErr(op, err)
	}
	return cred, nil
}

// StoreCredential delegates a proxy below the client's credential into a
// MyProxy repository under username/passphrase; maxLifetime bounds
// proxies later retrieved.
func (c *Client) StoreCredential(ctx context.Context, repo *MyProxy, username, passphrase string, deposit *Credential, maxLifetime time.Duration, opts ...Option) error {
	const op = "gsi.Client.StoreCredential"
	ctx, cancelSkew, _, err := c.resolve(ctx, opts)
	defer cancelSkew()
	if err != nil {
		return opErr(op, err)
	}
	if err := repo.StoreContext(ctx, username, passphrase, deposit, maxLifetime); err != nil {
		return opErr(op, err)
	}
	return nil
}

// SubmitJob runs the full Figure-4 GRAM flow against a resource: sign
// and submit the description, then mutually authenticate with the
// created MJS, delegate if the description asks for it, and start the
// job. Cancellation aborts between the submit, connect, delegate, and
// start steps.
func (c *Client) SubmitJob(ctx context.Context, resource *JobResource, desc JobDescription, opts ...Option) (*MJS, error) {
	const op = "gsi.Client.SubmitJob"
	ctx, cancelSkew, s, err := c.resolve(ctx, opts)
	defer cancelSkew()
	if err != nil {
		return nil, opErr(op, err)
	}
	// The resolved options shape the step-7 MJS connection: delegation
	// intent, peer pinning, limited-proxy rejection, depth caps.
	gc := &gram.Client{
		Credential:    c.credential(),
		Trust:         c.env.trust,
		Resource:      resource,
		ConnectConfig: s.contextConfig(c.env, nil),
	}
	mjs, err := gc.SubmitAndRunContext(ctx, desc)
	if err != nil {
		return nil, opErr(op, err)
	}
	return mjs, nil
}

// Invoke runs the Figure-3 secured-request pipeline against a GT3
// container endpoint (policy fetch, mechanism selection, token
// processing, delivery), returning the reply and the phase timings.
func (c *Client) Invoke(ctx context.Context, endpoint, handle, op string, body []byte, opts ...Option) ([]byte, Trace, error) {
	const opName = "gsi.Client.Invoke"
	ctx, cancelSkew, s, err := c.resolve(ctx, opts)
	defer cancelSkew()
	if err != nil {
		return nil, Trace{}, opErr(opName, err)
	}
	r := &Requestor{
		Credential:      c.credential(),
		Trust:           c.env.trust,
		PreferStateless: s.protection == ProtectionSigned,
	}
	out, phases, err := r.InvokeContext(ctx, HTTPTransport(endpoint), handle, op, body)
	if err != nil {
		return nil, phases, opErr(opName, err)
	}
	return out, phases, nil
}

// compile-time interface checks for the session and stream
// implementations.
var (
	_ Session = (*gt2Session)(nil)
	_ Session = (*gt3Session)(nil)
	_ Session = (*gt3SignedSession)(nil)
	_ Session = (*pooledSession)(nil)

	_ sessionHealth = (*gt2Session)(nil)
	_ sessionHealth = (*gt3Session)(nil)
	_ sessionProber = (*gt2Session)(nil)

	_ Stream = (*gt2Stream)(nil)
	_ Stream = (*gt3Stream)(nil)
	_ Stream = (*gt2StripedStream)(nil)
	_ Stream = (*serverGT2Stream)(nil)
	_ Stream = (*serverGT3Stream)(nil)
	_ Stream = (*serverStripedStream)(nil)
	_ Stream = (*pooledStream)(nil)
	_ Stream = (*ownedStream)(nil)
)
