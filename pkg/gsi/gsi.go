// Package gsi is the public API of this Grid Security Infrastructure
// reproduction ("Security for Grid Services", Welch et al., HPDC 2003).
//
// # The handle-based API
//
// The primary surface is three handles (see DESIGN.md for the full
// shape and migration notes):
//
//   - Environment — trust roots + clock + authorization policy,
//     constructed with NewEnvironment and EnvOptions;
//   - Client — an initiator credential bound to an Environment; its
//     Connect/Establish/RequestAssertion/RetrieveCredential/SubmitJob/
//     Invoke methods all take a context.Context (cancellation and
//     deadlines are honored mid-handshake and mid-RPC) and return typed
//     errors matchable with errors.Is (ErrExpiredCredential,
//     ErrUntrustedIssuer, ErrUnauthorized, ErrContextClosed,
//     ErrTransport, …);
//   - Server — an acceptor credential serving secured exchanges to a
//     Handler behind the environment's authorizer.
//
// A fourth handle, CredentialManager, keeps a credential alive across
// its own expiry: it renews from a pluggable RenewalSource (MyProxy,
// local re-delegation, or a remote delegation endpoint) ahead of a
// configurable horizon, and a Client bound to one (WithCredentialManager)
// picks up each rotation on its very next call — its session pool
// drains the replaced credential's sessions while traffic continues.
//
// Both handles take functional options (WithTransport, WithDelegation,
// WithMessageProtection, WithDeadlineSkew, WithExpectedPeer, …), and the
// Transport interface unifies the GT2 raw-socket path (TransportGT2)
// and the GT3 SOAP/HTTP path (TransportGT3) — the same handshake
// tokens over either carriage, chosen by option rather than by
// function name.
//
// # Underlying domain types
//
// The package also re-exports the stable surface of the internal
// packages:
//
//   - PKI: certificate authorities, trust stores, proxy certificates and
//     delegation (GT2 §3);
//   - security contexts: GSS-style mutual authentication and message
//     protection, over raw sockets (GT2) or SOAP (GT3);
//   - community authorization: CAS servers, assertions, and resource-side
//     enforcement (Figure 2);
//   - the GT3 service stack: hosting environments with security handler
//     pipelines, published security policy, WS-SecureConversation and
//     per-message signatures, and the OGSA security services (Figures 3);
//   - GRAM: least-privilege remote job management (Figure 4).
//
// The free functions at the bottom of this file predate the handles;
// they remain as thin deprecated shims.
//
// The quickstart example (examples/quickstart) shows the typical flow:
// create a CA, issue a user, make a proxy, authenticate mutually, and
// delegate.
package gsi

import (
	"time"

	"repro/internal/authz"
	"repro/internal/ca"
	"repro/internal/cas"
	"repro/internal/core"
	"repro/internal/gram"
	"repro/internal/gridcert"
	"repro/internal/gridcrypto"
	"repro/internal/gsitransport"
	"repro/internal/gss"
	"repro/internal/myproxy"
	"repro/internal/ogsa"
	"repro/internal/proxy"
	"repro/internal/soap"
	"repro/internal/wssec"
)

// PKI types.
type (
	// Name is an X.500-style distinguished name.
	Name = gridcert.Name
	// Certificate is a grid certificate (identity, CA, or proxy).
	Certificate = gridcert.Certificate
	// Credential is a certificate chain plus the leaf private key.
	Credential = gridcert.Credential
	// TrustStore holds trusted CA roots and CRLs.
	TrustStore = gridcert.TrustStore
	// ChainInfo is the result of validating a chain.
	ChainInfo = gridcert.ChainInfo
	// VerifyOptions tunes chain validation.
	VerifyOptions = gridcert.VerifyOptions
	// CA is a certificate authority.
	CA = ca.Authority
	// ProxyOptions tunes proxy creation and delegation.
	ProxyOptions = proxy.Options
)

// Security context types.
type (
	// Context is an established GSS security context.
	Context = gss.Context
	// ContextConfig parameterises context establishment.
	ContextConfig = gss.Config
	// Peer is the authenticated remote party.
	Peer = gss.Peer
	// Conn is a GT2-style secured transport connection.
	Conn = gsitransport.Conn
)

// Authorization and CAS types.
type (
	// Policy is an ordered rule set.
	Policy = authz.Policy
	// Rule is one policy statement.
	Rule = authz.Rule
	// Request is an access-control question.
	Request = authz.Request
	// Decision is permit/deny/not-applicable.
	Decision = authz.Decision
	// Engine decides authorization requests.
	Engine = authz.Engine
	// GridMap maps grid identities to local accounts.
	GridMap = authz.GridMap
	// CASServer is a community authorization server.
	CASServer = cas.Server
	// CASAssertion is a signed VO policy statement.
	CASAssertion = cas.Assertion
	// CASEnforcer applies local ∩ VO policy at a resource.
	CASEnforcer = cas.Enforcer
)

// GT3 service types.
type (
	// Container is an OGSA hosting environment.
	Container = ogsa.Container
	// Service is a Grid service.
	Service = ogsa.Service
	// Call is an authenticated, authorized invocation.
	Call = ogsa.Call
	// ServiceClient invokes container services (signed or stateful).
	ServiceClient = ogsa.Client
	// Requestor automates the Figure-3 secured-request pipeline.
	Requestor = core.Requestor
	// Stack is a hosting environment with the standard security services.
	Stack = core.Stack
	// Bootstrap is a single-CA demo/test environment.
	Bootstrap = core.Bootstrap
	// PolicyDocument is a published WS-Policy security policy.
	PolicyDocument = wssec.PolicyDocument
	// Envelope is a SOAP message.
	Envelope = soap.Envelope
	// MyProxy is an online credential repository.
	MyProxy = myproxy.Server
	// DelegationConfig tunes a container's delegation port type
	// (Container.EnableDelegation; see DelegationEndpoint).
	DelegationConfig = ogsa.DelegationConfig
	// DelegationService is the online delegation port type: subjects
	// deposit a credential over a secure conversation and later
	// retrieve fresh proxies minted below it (a renewal source for
	// CredentialManager via EndpointRenewal).
	DelegationService = ogsa.DelegationService
	// Trace records where time went in one secured request (Figure 3).
	Trace = core.Trace
)

// GRAM types (Figure 4).
type (
	// JobResource is a GT3 GRAM resource (router, MMJFS, per-user
	// LMJFS/MJS machinery over a simulated OS).
	JobResource = gram.Resource
	// JobDescription describes a job to submit.
	JobDescription = gram.JobDescription
	// JobHandle identifies a submitted job.
	JobHandle = gram.JobHandle
	// MJS is a managed job service instance.
	MJS = gram.MJS
	// Job is the job state machine an MJS manages.
	Job = gram.Job
)

// Decision and effect constants.
const (
	Permit        = authz.Permit
	Deny          = authz.Deny
	NotApplicable = authz.NotApplicable
	EffectPermit  = authz.EffectPermit
	EffectDeny    = authz.EffectDeny
)

// Proxy variants.
const (
	ProxyImpersonation = gridcert.ProxyImpersonation
	ProxyLimited       = gridcert.ProxyLimited
	ProxyRestricted    = gridcert.ProxyRestricted
)

// JobProgram is the well-known simulated job executable on GRAM
// resources.
const JobProgram = gram.JobProgram

// NewJobResource boots a GT3 GRAM resource host (Figure 4): proxy
// router, MMJFS, setuid starter, and GRIM over a simulated OS. Jobs are
// submitted with Client.SubmitJob.
func NewJobResource(hostCred *Credential, trust *TrustStore, gridmap *GridMap) (*JobResource, error) {
	return gram.NewResource(hostCred, trust, gridmap)
}

// ParseName parses "/O=Grid/CN=Alice" style distinguished names.
func ParseName(s string) (Name, error) { return gridcert.ParseName(s) }

// MustParseName is ParseName that panics on error.
func MustParseName(s string) Name { return gridcert.MustParseName(s) }

// NewCA creates a certificate authority with a self-signed root.
func NewCA(subject string, lifetime time.Duration) (*CA, error) {
	n, err := gridcert.ParseName(subject)
	if err != nil {
		return nil, err
	}
	return ca.New(n, lifetime, ca.DefaultPolicy())
}

// NewTrustStore creates an empty trust store.
func NewTrustStore() *TrustStore { return gridcert.NewTrustStore() }

// NewProxy creates a proxy credential below signer (grid-proxy-init).
func NewProxy(signer *Credential, opts ProxyOptions) (*Credential, error) {
	return proxy.New(signer, opts)
}

// EstablishContext runs an in-memory mutual authentication and returns
// both sides' contexts.
//
// Deprecated: build a Client with Environment.NewClient and use
// Client.Establish, which honors a context.Context and returns typed
// errors.
func EstablishContext(initiator, acceptor ContextConfig) (*Context, *Context, error) {
	return gss.Establish(initiator, acceptor)
}

// DialGSI connects to a GT2-style secured TCP endpoint.
//
// Deprecated: build a Client with Environment.NewClient and use
// Client.Connect with TransportGT2 (the default), which honors a
// context.Context mid-handshake and returns typed errors. DialGSI
// remains for callers speaking raw GT2 record streams rather than
// request/response exchanges.
func DialGSI(addr string, cfg ContextConfig) (*Conn, error) {
	return gsitransport.Dial(addr, cfg)
}

// NewPolicy creates a deny-overrides policy.
func NewPolicy(rules ...Rule) *Policy {
	return authz.NewPolicy(authz.DenyOverrides).Add(rules...)
}

// NewGridMap creates an empty grid-mapfile.
func NewGridMap() *GridMap { return authz.NewGridMap() }

// NewCASServer creates a community authorization server for a VO
// credential. Members request assertions with Client.RequestAssertion.
func NewCASServer(voCred *Credential) *CASServer { return cas.NewServer(voCred) }

// NewCASEnforcer creates the resource-side CAS policy combiner.
func NewCASEnforcer(trust *TrustStore, local *Policy) *CASEnforcer {
	return cas.NewEnforcer(trust, local)
}

// EmbedAssertion wraps a CAS assertion into a restricted proxy.
//
// Deprecated: use Client.EmbedAssertion, which classifies failures onto
// the package error taxonomy.
func EmbedAssertion(member *Credential, a *CASAssertion) (*Credential, error) {
	return cas.EmbedInProxy(member, a)
}

// NewBootstrap builds a complete single-CA environment: CA, trust store,
// host credential, and a security stack.
func NewBootstrap(caName, hostName string, authorizer authz.Engine) (*Bootstrap, error) {
	return core.NewBootstrap(caName, hostName, authorizer)
}

// NewMyProxy creates an online credential repository.
func NewMyProxy() *MyProxy { return myproxy.NewServer() }

// PipeTransport wires a Requestor or ServiceClient directly to a
// container in-process.
func PipeTransport(c *Container) func(*Envelope) (*Envelope, error) {
	return soap.Pipe(c.Dispatcher())
}

// ServeHTTP binds a container's dispatcher to an HTTP endpoint and
// returns its URL and a shutdown function.
func ServeHTTP(c *Container, addr string) (url string, shutdown func() error, err error) {
	srv, err := soap.NewServer(addr, c.Dispatcher())
	if err != nil {
		return "", nil, err
	}
	return srv.URL(), srv.Close, nil
}

// HTTPTransport returns a transport calling a remote SOAP endpoint.
func HTTPTransport(endpoint string) func(*Envelope) (*Envelope, error) {
	client := &soap.Client{Endpoint: endpoint}
	return client.Call
}

// GenerateKey creates a fresh Ed25519 key pair (for CSR-style issuance).
func GenerateKey() (*gridcrypto.KeyPair, error) {
	return gridcrypto.GenerateKeyPair(gridcrypto.AlgEd25519)
}

// EncodeChain serialises a certificate chain, leaf first.
func EncodeChain(chain []*Certificate) []byte { return gridcert.EncodeChain(chain) }

// DecodeChain reverses EncodeChain.
func DecodeChain(b []byte) ([]*Certificate, error) { return gridcert.DecodeChain(b) }

// DecodeCertificate parses one encoded certificate (grid-cert-info).
func DecodeCertificate(b []byte) (*Certificate, error) { return gridcert.Decode(b) }
