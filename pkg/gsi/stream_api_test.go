package gsi_test

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/pkg/gsi"
)

// streamStore is the stream handler both transports are driven
// against: "upload" consumes the client's bytes into a map, "download"
// streams stored bytes back, "mirror" echoes the inbound stream to the
// outbound half, "fail" reads a little and then errors mid-stream.
type streamStore struct {
	mu    sync.Mutex
	files map[string][]byte
}

func newStreamStore() *streamStore { return &streamStore{files: make(map[string][]byte)} }

func (s *streamStore) handle(ctx context.Context, peer gsi.Peer, op string, st gsi.Stream) error {
	switch {
	case strings.HasPrefix(op, "upload:"):
		var buf bytes.Buffer
		if _, err := io.Copy(&buf, st); err != nil {
			return err
		}
		s.mu.Lock()
		s.files[strings.TrimPrefix(op, "upload:")] = buf.Bytes()
		s.mu.Unlock()
		return nil
	case strings.HasPrefix(op, "download:"):
		s.mu.Lock()
		data, ok := s.files[strings.TrimPrefix(op, "download:")]
		s.mu.Unlock()
		if !ok {
			return fmt.Errorf("no such file")
		}
		if _, err := st.Write(data); err != nil {
			return err
		}
		return nil
	case op == "mirror":
		_, err := io.Copy(st, st)
		return err
	case op == "fail":
		var scratch [1024]byte
		st.Read(scratch[:])
		return errors.New("handler exploded mid-stream")
	default:
		return fmt.Errorf("no such stream op %q", op)
	}
}

// streamWorld serves the streamStore over one transport with an
// authorization pipeline admitting only Alice.
func streamWorld(t *testing.T, transport gsi.Transport, clientOpts ...gsi.Option) (*streamStore, *gsi.Client, string, func()) {
	t.Helper()
	tb := newTestbed(t)
	store := newStreamStore()
	policy := gsi.NewPolicy(gsi.Rule{
		Effect:    gsi.EffectPermit,
		Subjects:  []string{"/O=Grid/CN=Alice"},
		Resources: []string{"*"},
		Actions:   []string{"*"},
	})
	gm := gsi.NewGridMap()
	gm.Add(gsi.MustParseName("/O=Grid/CN=Alice"), "alice")
	server, err := tb.env.NewServer(tb.host,
		gsi.WithTransport(transport),
		gsi.WithStreamHandler(store.handle),
		gsi.WithLocalPolicy(policy),
		gsi.WithGridMap(gm),
	)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	ep, err := server.Serve(ctx, "127.0.0.1:0", echoHandler)
	if err != nil {
		cancel()
		t.Fatal(err)
	}
	client, err := tb.env.NewClient(tb.alice, append([]gsi.Option{gsi.WithTransport(transport)}, clientOpts...)...)
	if err != nil {
		cancel()
		t.Fatal(err)
	}
	return store, client, ep.Addr(), func() {
		if p := client.Pool(); p != nil {
			p.Close()
		}
		ep.Close()
		cancel()
	}
}

func streamRoundTrip(t *testing.T, transport gsi.Transport, clientOpts ...gsi.Option) {
	t.Helper()
	store, client, addr, done := streamWorld(t, transport, clientOpts...)
	defer done()
	ctx := context.Background()

	payload := make([]byte, 1_200_000) // several chunks, unaligned tail
	for i := range payload {
		payload[i] = byte(i * 13)
	}

	// Upload: write half carries data, read half only the FIN.
	up, err := client.OpenStream(ctx, addr, "upload:/data/a")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := up.Write(payload); err != nil {
		t.Fatal(err)
	}
	if err := up.CloseWrite(); err != nil {
		t.Fatal(err)
	}
	if err := up.Close(); err != nil {
		t.Fatal(err)
	}
	store.mu.Lock()
	stored := store.files["/data/a"]
	store.mu.Unlock()
	if !bytes.Equal(stored, payload) {
		t.Fatalf("upload corrupted: stored %d bytes", len(stored))
	}

	// Download it back on a fresh stream.
	down, err := client.OpenStream(ctx, addr, "download:/data/a")
	if err != nil {
		t.Fatal(err)
	}
	if err := down.CloseWrite(); err != nil { // nothing to send
		t.Fatal(err)
	}
	var back bytes.Buffer
	if _, err := io.Copy(&back, down); err != nil {
		t.Fatal(err)
	}
	if err := down.Close(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back.Bytes(), payload) {
		t.Fatalf("download corrupted: %d bytes", back.Len())
	}

	// Ordinary exchanges still work on the same client afterwards.
	out, err := client.Exchange(ctx, addr, "echo", []byte("post-stream"))
	if err != nil || string(out) != "post-stream" {
		t.Fatalf("post-stream exchange: %q %v", out, err)
	}

	// A handler failure surfaces as a stream error on the reader.
	fail, err := client.OpenStream(ctx, addr, "fail")
	if err != nil {
		t.Fatal(err)
	}
	fail.Write([]byte("some input"))
	fail.CloseWrite()
	_, err = io.Copy(io.Discard, fail)
	if err == nil || !strings.Contains(err.Error(), "handler exploded") {
		t.Fatalf("handler failure not surfaced: %v", err)
	}
	fail.Close()

	// The pipeline still gates streams: an op form the handler knows
	// but policy denies never reaches it. (Deny is proven with Bob in
	// TestStreamDenied; here prove invalid/reserved ops are refused.)
	if _, err := client.OpenStream(ctx, addr, "gsi.__stream.open"); err == nil {
		t.Fatal("reserved op accepted as stream op")
	}
}

func TestStreamGT2(t *testing.T) { streamRoundTrip(t, gsi.TransportGT2()) }
func TestStreamGT2Pooled(t *testing.T) {
	streamRoundTrip(t, gsi.TransportGT2(), gsi.WithSessionPool(nil))
}
func TestStreamGT3(t *testing.T) { streamRoundTrip(t, gsi.TransportGT3()) }
func TestStreamGT3Pooled(t *testing.T) {
	streamRoundTrip(t, gsi.TransportGT3(), gsi.WithSessionPool(nil))
}

// Duplex mirror on GT2: both halves busy at once.
func TestStreamMirrorGT2(t *testing.T) {
	_, client, addr, done := streamWorld(t, gsi.TransportGT2())
	defer done()
	ctx := context.Background()
	st, err := client.OpenStream(ctx, addr, "mirror")
	if err != nil {
		t.Fatal(err)
	}
	msg := bytes.Repeat([]byte("ping-pong "), 50_000)
	errc := make(chan error, 1)
	go func() {
		if _, err := st.Write(msg); err != nil {
			errc <- err
			return
		}
		errc <- st.CloseWrite()
	}()
	var got bytes.Buffer
	if _, err := io.Copy(&got, st); err != nil {
		t.Fatal(err)
	}
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), msg) {
		t.Fatalf("mirror corrupted: %d bytes", got.Len())
	}
}

// An identity outside the pipeline's policy cannot open a stream on
// either transport — authorization happens before the handler, once,
// at open.
func TestStreamDenied(t *testing.T) {
	for _, transport := range []gsi.Transport{gsi.TransportGT2(), gsi.TransportGT3()} {
		t.Run(transport.String(), func(t *testing.T) {
			tb := newTestbed(t)
			bob, err := tb.ca.NewEntity(gsi.MustParseName("/O=Grid/CN=Bob"), 12*time.Hour)
			if err != nil {
				t.Fatal(err)
			}
			store := newStreamStore()
			policy := gsi.NewPolicy(gsi.Rule{
				Effect:    gsi.EffectPermit,
				Subjects:  []string{"/O=Grid/CN=Alice"},
				Resources: []string{"*"},
				Actions:   []string{"*"},
			})
			gm := gsi.NewGridMap()
			gm.Add(gsi.MustParseName("/O=Grid/CN=Alice"), "alice")
			server, err := tb.env.NewServer(tb.host,
				gsi.WithTransport(transport),
				gsi.WithStreamHandler(store.handle),
				gsi.WithLocalPolicy(policy),
				gsi.WithGridMap(gm),
			)
			if err != nil {
				t.Fatal(err)
			}
			ctx := context.Background()
			ep, err := server.Serve(ctx, "127.0.0.1:0", echoHandler)
			if err != nil {
				t.Fatal(err)
			}
			defer ep.Close()
			client, err := tb.env.NewClient(bob, gsi.WithTransport(transport))
			if err != nil {
				t.Fatal(err)
			}
			_, err = client.OpenStream(ctx, ep.Addr(), "upload:/x")
			if err == nil {
				t.Fatal("unauthorized stream open accepted")
			}
			if !errors.Is(err, gsi.ErrUnauthorized) {
				t.Fatalf("deny classified as %v", err)
			}
		})
	}
}

// ProtectionSigned sessions are stateless and refuse streams.
func TestStreamSignedRefused(t *testing.T) {
	_, client, addr, done := streamWorld(t, gsi.TransportGT3())
	defer done()
	_, err := client.OpenStream(context.Background(), addr, "upload:/x",
		gsi.WithMessageProtection(gsi.ProtectionSigned))
	if err == nil {
		t.Fatal("signed session accepted a stream")
	}
}
