//go:build race

package gsi

// raceEnabled reports that the race detector is instrumenting this
// build; allocation-exactness assertions are skipped under it.
const raceEnabled = true
