package gsi

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"
)

type credmanWorld struct {
	env   *Environment
	ca    *CA
	alice *Credential
	host  *Credential
}

func newCredmanWorld(t testing.TB) credmanWorld {
	t.Helper()
	authority, err := NewCA("/O=Grid/CN=Rotation CA", 24*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	env, err := NewEnvironment(WithRoots(authority.Certificate()))
	if err != nil {
		t.Fatal(err)
	}
	alice, err := authority.NewEntity(MustParseName("/O=Grid/CN=Alice"), 12*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	host, err := authority.NewHostEntity(MustParseName("/O=Grid/CN=host rot.example.org"), 12*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	return credmanWorld{env: env, ca: authority, alice: alice, host: host}
}

func (w credmanWorld) proxy(t testing.TB, lifetime time.Duration) *Credential {
	t.Helper()
	c, err := NewProxy(w.alice, ProxyOptions{Lifetime: lifetime})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestCredentialManagerFacade(t *testing.T) {
	w := newCredmanWorld(t)
	initial := w.proxy(t, time.Hour)
	cm, err := w.env.NewCredentialManager(initial,
		DelegationRenewal(w.alice, ProxyOptions{Lifetime: time.Hour}),
		WithRenewalHorizon(10*time.Minute),
		WithRenewalJitter(time.Minute),
		WithRenewalRetry(10*time.Millisecond, time.Second))
	if err != nil {
		t.Fatal(err)
	}
	defer cm.Close()
	if cm.Current() != initial {
		t.Fatal("manager does not start on the initial credential")
	}
	next, err := cm.Renew(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if cm.Current() != next || next == initial {
		t.Fatal("rotation did not publish a successor")
	}
	if st := cm.Stats(); st.Rotations != 1 {
		t.Fatalf("stats = %+v, want 1 rotation", st)
	}
}

func TestCredentialManagerOptionValidation(t *testing.T) {
	w := newCredmanWorld(t)
	initial := w.proxy(t, time.Hour)
	src := DelegationRenewal(w.alice, ProxyOptions{Lifetime: time.Hour})
	if _, err := w.env.NewCredentialManager(nil, src); err == nil {
		t.Fatal("nil initial credential must be rejected")
	}
	if _, err := w.env.NewCredentialManager(initial, nil); err == nil {
		t.Fatal("nil source must be rejected")
	}
	if _, err := w.env.NewCredentialManager(initial, src, WithRenewalHorizon(-time.Second)); err == nil {
		t.Fatal("negative horizon must be rejected")
	}
	if _, err := w.env.NewCredentialManager(initial, src, WithRenewalRetry(time.Minute, time.Second)); err == nil {
		t.Fatal("retry min > max must be rejected")
	}
}

func TestManagedClientCredentialIsDynamic(t *testing.T) {
	w := newCredmanWorld(t)
	initial := w.proxy(t, time.Hour)
	cm, err := w.env.NewCredentialManager(initial, DelegationRenewal(w.alice, ProxyOptions{Lifetime: time.Hour}))
	if err != nil {
		t.Fatal(err)
	}
	defer cm.Close()

	if _, err := w.env.NewClient(initial, WithCredentialManager(cm)); err == nil {
		t.Fatal("a managed client must not also take a fixed credential")
	}
	client, err := w.env.NewClient(nil, WithCredentialManager(cm))
	if err != nil {
		t.Fatal(err)
	}
	if client.Credential() != initial {
		t.Fatal("managed client does not read the manager's credential")
	}
	if client.CredentialManager() != cm {
		t.Fatal("CredentialManager accessor broken")
	}
	next, err := cm.Renew(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if client.Credential() != next {
		t.Fatal("rotation is not visible through the client")
	}
	// The dynamic credential authenticates: establish against the host.
	ictx, actx, err := client.Establish(context.Background(), ContextConfig{
		Credential: w.host,
		TrustStore: w.env.Trust(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !actx.Peer().Identity.Equal(w.alice.Identity()) {
		t.Fatalf("acceptor sees %s, want Alice", actx.Peer().Identity)
	}
	_ = ictx
}

// Rotation on a pooling client drains the replaced credential's
// sessions: idle ones close immediately, checked-out ones are discarded
// at return, and the next checkout handshakes under the successor.
func TestPoolRekeyOnRotation(t *testing.T) {
	w := newCredmanWorld(t)
	initial := w.proxy(t, time.Hour)
	cm, err := w.env.NewCredentialManager(initial, DelegationRenewal(w.alice, ProxyOptions{Lifetime: time.Hour}))
	if err != nil {
		t.Fatal(err)
	}
	defer cm.Close()

	server, err := w.env.NewServer(w.host)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	ep, err := server.Serve(ctx, "127.0.0.1:0", func(ctx context.Context, peer Peer, op string, body []byte) ([]byte, error) {
		return body, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ep.Close()

	client, err := w.env.NewClient(nil, WithCredentialManager(cm), WithSessionPool(nil))
	if err != nil {
		t.Fatal(err)
	}
	pool := client.Pool()
	defer pool.Close()

	// Warm the pool under the initial credential: hold two sessions so
	// the pool dials twice, then park one and keep one checked out
	// across the rotation — the parked one must close at rotation, the
	// held one must finish its work and be discarded at return.
	held, err := client.Connect(ctx, ep.Addr())
	if err != nil {
		t.Fatal(err)
	}
	parked, err := client.Connect(ctx, ep.Addr())
	if err != nil {
		t.Fatal(err)
	}
	parked.Close()
	if st := pool.Stats(); st.Idle != 1 || st.Dials != 2 {
		t.Fatalf("pool not warm: %+v", st)
	}
	warm := pool.Stats()

	if _, err := cm.Renew(ctx); err != nil {
		t.Fatal(err)
	}
	afterRotate := pool.Stats()
	if afterRotate.Idle != 0 {
		t.Fatalf("idle old-credential sessions survived rotation: %+v", afterRotate)
	}
	if afterRotate.Retired == 0 {
		t.Fatal("rotation did not retire any sessions")
	}

	// The held session still works (graceful drain, not a kill) …
	if _, err := held.Exchange(ctx, "echo", []byte("in-flight")); err != nil {
		t.Fatalf("in-flight session broken by rotation: %v", err)
	}
	// … and is discarded on return.
	retiredBefore := pool.Stats().Retired
	held.Close()
	if got := pool.Stats(); got.Retired != retiredBefore+1 {
		t.Fatalf("held session not discarded at return: %+v", got)
	}
	if got := pool.Stats().Idle; got != 0 {
		t.Fatalf("retired session was parked: idle=%d", got)
	}

	// New traffic handshakes fresh under the successor.
	if _, err := client.Exchange(ctx, ep.Addr(), "echo", []byte("successor")); err != nil {
		t.Fatal(err)
	}
	after := pool.Stats()
	if after.Dials <= warm.Dials {
		t.Fatalf("no fresh handshake under the successor: warm=%+v after=%+v", warm, after)
	}
}

// Rotation invalidates the old credential's GT3 resumption trees: the
// first exchange under the successor must run a full bootstrap, never a
// resume from a conversation the retired credential established.
func TestRotationInvalidatesResumptionTrees(t *testing.T) {
	w := newCredmanWorld(t)
	initial := w.proxy(t, time.Hour)
	cm, err := w.env.NewCredentialManager(initial, DelegationRenewal(w.alice, ProxyOptions{Lifetime: time.Hour}))
	if err != nil {
		t.Fatal(err)
	}
	defer cm.Close()

	server, err := w.env.NewServer(w.host, WithTransport(TransportGT3()))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	ep, err := server.Serve(ctx, "127.0.0.1:0", func(ctx context.Context, peer Peer, op string, body []byte) ([]byte, error) {
		return body, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ep.Close()

	client, err := w.env.NewClient(nil,
		WithCredentialManager(cm), WithTransport(TransportGT3()), WithSessionPool(nil), WithMaxIdle(1))
	if err != nil {
		t.Fatal(err)
	}
	pool := client.Pool()
	defer pool.Close()

	// Establish a conversation, then force a re-dial (drop the idle
	// session) so the next dial resumes from the cached parent.
	sess, err := client.Connect(ctx, ep.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Exchange(ctx, "echo", []byte("a")); err != nil {
		t.Fatal(err)
	}
	sess.Close()
	pool.RetireCredential(nil) // no-op: nil is ignored
	before := pool.Stats()
	if before.Resumes != 0 {
		t.Fatalf("unexpected resume before the test arranged one: %+v", before)
	}

	// Second connection while the parent is cached: must resume.
	old := cm.Current()
	sessB, err := client.Connect(ctx, ep.Addr())
	if err != nil {
		t.Fatal(err)
	}
	sessB.Close()
	_ = old
	if got := pool.Stats().Resumes; got == 0 {
		// The first Connect parked its session; a second checkout would
		// reuse rather than dial. Dial pressure: hold two sessions at
		// once so the pool must dial twice.
		s1, err := client.Connect(ctx, ep.Addr())
		if err != nil {
			t.Fatal(err)
		}
		s2, err := client.Connect(ctx, ep.Addr())
		if err != nil {
			t.Fatal(err)
		}
		s1.Close()
		s2.Close()
		if pool.Stats().Resumes == 0 {
			t.Fatal("test harness never exercised resumption")
		}
	}

	resumesBeforeRotation := pool.Stats().Resumes
	if _, err := cm.Renew(ctx); err != nil {
		t.Fatal(err)
	}
	// Successor traffic: with the old trees invalidated and a new cache
	// scope, nothing may resume off the retired credential.
	s1, err := client.Connect(ctx, ep.Addr())
	if err != nil {
		t.Fatal(err)
	}
	s2, err := client.Connect(ctx, ep.Addr())
	if err != nil {
		t.Fatal(err)
	}
	s1.Close()
	s2.Close()
	afterFirst := pool.Stats().Resumes
	// The successor's own parent may seed resumes (the second dial
	// above), but the very first dial after rotation cannot have
	// resumed — it had no live parent. So at most one of the two dials
	// resumed.
	if afterFirst-resumesBeforeRotation > 1 {
		t.Fatalf("successor traffic resumed %d times off two dials; the first must have bootstrapped",
			afterFirst-resumesBeforeRotation)
	}
}

// Pool options and credential-manager plumbing misuse surfaces as
// errors, not silent misbehavior.
func TestCredentialManagerOptionErrors(t *testing.T) {
	w := newCredmanWorld(t)
	if _, err := w.env.NewClient(nil, WithCredentialManager(nil)); err == nil {
		t.Fatal("nil manager must be rejected")
	}
	if _, err := w.env.NewClient(nil); err == nil || !strings.Contains(err.Error(), "anonymous or managed") {
		t.Fatalf("unmanaged nil-credential client = %v", err)
	}
	var e *Error
	_, err := w.env.NewClient(nil)
	if !errors.As(err, &e) {
		t.Fatal("facade errors must be *gsi.Error")
	}
}

// The rotation→rekey hook is registered once per (manager, pool) pair
// and prunes itself once the pool is closed, so short-lived pooled
// clients do not accumulate on a long-lived manager.
func TestRotationHookDedupAndSelfPrune(t *testing.T) {
	w := newCredmanWorld(t)
	cm, err := w.env.NewCredentialManager(w.proxy(t, time.Hour),
		DelegationRenewal(w.alice, ProxyOptions{Lifetime: time.Hour}))
	if err != nil {
		t.Fatal(err)
	}
	defer cm.Close()

	shared, err := NewSessionPool()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ { // three clients, one pool: one hook
		if _, err := w.env.NewClient(nil, WithCredentialManager(cm), WithSessionPool(shared)); err != nil {
			t.Fatal(err)
		}
	}
	cm.mu.Lock()
	bound := len(cm.pools)
	cm.mu.Unlock()
	if bound != 1 {
		t.Fatalf("bound pools = %d, want 1 (dedup per pool)", bound)
	}

	shared.Close()
	if _, err := cm.Renew(context.Background()); err != nil {
		t.Fatal(err)
	}
	cm.mu.Lock()
	bound = len(cm.pools)
	cm.mu.Unlock()
	if bound != 0 {
		t.Fatalf("hook for a closed pool survived rotation: %d bound", bound)
	}
	// Further rotations are fine with no pools bound.
	if _, err := cm.Renew(context.Background()); err != nil {
		t.Fatal(err)
	}
}
