package gsi

import (
	"bytes"
	"testing"
)

// Fuzz targets for the GT2 exchange framing: whatever arrives off the
// wire, the decoders must return an error or a faithful decoding —
// never panic. Corpora are seeded from valid encodings.

func FuzzGT2DecodeRequest(f *testing.F) {
	f.Add(gt2EncodeRequest("echo", []byte("payload")))
	f.Add(gt2EncodeRequest("", nil))
	f.Add(gt2EncodeRequest("gsi.__ping", []byte{}))
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, b []byte) {
		op, body, err := gt2DecodeRequest(b)
		if err != nil {
			return
		}
		// A successful decode must round-trip exactly.
		if !bytes.Equal(gt2EncodeRequest(op, body), b) {
			t.Fatalf("round trip diverged for %x", b)
		}
	})
}

func FuzzGT2DecodeReply(f *testing.F) {
	f.Add(gt2EncodeReply(gt2StatusOK, []byte("result")))
	f.Add(gt2EncodeReply(gt2StatusUnauthorized, []byte("denied")))
	f.Add(gt2EncodeReply(gt2StatusError, nil))
	f.Add([]byte{})
	f.Add([]byte{0x00})
	f.Fuzz(func(t *testing.T, b []byte) {
		status, payload, err := gt2DecodeReply(b)
		if err != nil {
			return
		}
		if !bytes.Equal(gt2EncodeReply(status, payload), b) {
			t.Fatalf("round trip diverged for %x", b)
		}
	})
}
