package gsi_test

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/cas"
	"repro/internal/gridcert"
	"repro/internal/proxy"
	"repro/internal/secsvc"
	"repro/pkg/gsi"
)

// authzBed is a full authorization-pipeline fixture: a CA, an
// Environment, a host, a VO CAS server with one enrolled member
// (Alice, group "researchers", role "operator"), an outsider (Bob),
// a local policy, and a gridmap.
type authzBed struct {
	ca      *gsi.CA
	env     *gsi.Environment
	host    *gsi.Credential
	alice   *gsi.Credential // end-entity
	aliceVO *gsi.Credential // restricted proxy with embedded assertion
	bob     *gsi.Credential
	vo      *gsi.CASServer
	local   *gsi.Policy
	gridmap *gsi.GridMap
	audit   *secsvc.AuditLog
}

func newAuthzBed(t testing.TB) *authzBed {
	t.Helper()
	authority, err := gsi.NewCA("/O=Grid/CN=CA", 96*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	env, err := gsi.NewEnvironment(gsi.WithRoots(authority.Certificate()))
	if err != nil {
		t.Fatal(err)
	}
	host, err := authority.NewHostEntity(gsi.MustParseName("/O=Grid/CN=host data"), 72*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	alice, err := authority.NewEntity(gsi.MustParseName("/O=Grid/CN=Alice"), 72*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	bob, err := authority.NewEntity(gsi.MustParseName("/O=Grid/CN=Bob"), 72*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	voCred, err := authority.NewEntity(gsi.MustParseName("/O=Grid/CN=ClimateVO CAS"), 72*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	vo := gsi.NewCASServer(voCred)
	vo.AssertionLifetime = 48 * time.Hour
	vo.AddMember(alice.Identity(), "researchers")
	vo.AssignRole(alice.Identity(), "operator")
	vo.AddPolicy(gsi.Rule{
		ID:        "vo-exchange",
		Effect:    gsi.EffectPermit,
		Groups:    []string{"researchers"},
		Resources: []string{"ogsa:gsi.exchange"},
		Actions:   []string{"read", "echo"},
	})
	aliceClient, err := env.NewClient(alice)
	if err != nil {
		t.Fatal(err)
	}
	assertion, err := aliceClient.RequestAssertion(context.Background(), vo)
	if err != nil {
		t.Fatal(err)
	}
	aliceVO, err := aliceClient.EmbedAssertion(assertion)
	if err != nil {
		t.Fatal(err)
	}
	local := gsi.NewPolicy(gsi.Rule{
		ID:        "local-exchange",
		Effect:    gsi.EffectPermit,
		Subjects:  []string{"*"},
		Resources: []string{"ogsa:gsi.exchange"},
		Actions:   []string{"*"},
	})
	gm := gsi.NewGridMap()
	gm.Add(alice.Identity(), "alice")
	return &authzBed{
		ca:  authority,
		env: env, host: host, alice: alice, aliceVO: aliceVO, bob: bob,
		vo: vo, local: local, gridmap: gm, audit: secsvc.NewAuditLog(),
	}
}

func (b *authzBed) pipeline(t testing.TB, extra ...gsi.Option) *gsi.AuthorizationPipeline {
	t.Helper()
	opts := append([]gsi.Option{
		gsi.WithLocalPolicy(b.local),
		gsi.WithTrustedVO(b.vo.Certificate()),
		gsi.WithGridMap(b.gridmap),
		gsi.WithAuditSink(b.audit),
	}, extra...)
	p, err := b.env.NewAuthorizationPipeline(opts...)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// serveEcho starts a server whose handler reports the mapped local
// account, so tests can observe Peer.LocalAccount end to end.
func (b *authzBed) serveEcho(t testing.TB, transport gsi.Transport, pl *gsi.AuthorizationPipeline) gsi.Endpoint {
	t.Helper()
	server, err := b.env.NewServer(b.host,
		gsi.WithTransport(transport),
		gsi.WithAuthorizationPipeline(pl))
	if err != nil {
		t.Fatal(err)
	}
	ep, err := server.Serve(context.Background(), "127.0.0.1:0",
		func(ctx context.Context, peer gsi.Peer, op string, body []byte) ([]byte, error) {
			return []byte("account=" + peer.LocalAccount), nil
		})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ep.Close() })
	return ep
}

func testPipelineEndToEnd(t *testing.T, transport gsi.Transport) {
	bed := newAuthzBed(t)
	pl := bed.pipeline(t)
	ep := bed.serveEcho(t, transport, pl)
	ctx := context.Background()

	// Alice, carrying her CAS assertion: VO ∩ local permits, gridmap
	// maps, and the handler sees the account.
	aliceCl, err := bed.env.NewClient(bed.aliceVO, gsi.WithTransport(transport))
	if err != nil {
		t.Fatal(err)
	}
	out, err := aliceCl.Exchange(ctx, ep.Addr(), "echo", []byte("hi"))
	if err != nil {
		t.Fatalf("assertion-carrying exchange denied: %v", err)
	}
	if string(out) != "account=alice" {
		t.Fatalf("handler saw %q, want account=alice (gridmap mapping lost)", out)
	}

	// The VO narrowed Alice to read/echo: a write op fails the VO leg
	// even though local policy alone would permit it.
	if _, err := aliceCl.Exchange(ctx, ep.Addr(), "write", nil); !errors.Is(err, gsi.ErrUnauthorized) {
		t.Fatalf("VO-narrowed op: got %v, want ErrUnauthorized", err)
	}

	// Bob has no assertion and no gridmap entry: denied despite the
	// permissive local policy (fail-closed mapping).
	bobCl, err := bed.env.NewClient(bed.bob, gsi.WithTransport(transport))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := bobCl.Exchange(ctx, ep.Addr(), "echo", nil); !errors.Is(err, gsi.ErrUnauthorized) {
		t.Fatalf("unmapped peer: got %v, want ErrUnauthorized", err)
	}

	// Every decision landed in the tamper-evident audit chain.
	if bed.audit.Len() == 0 {
		t.Fatal("no audit events recorded")
	}
	if i := bed.audit.VerifyChain(); i >= 0 {
		t.Fatalf("audit chain corrupt at %d", i)
	}
	var permits, denies int
	for _, e := range bed.audit.Events() {
		switch e.Event {
		case "authz-permit":
			permits++
		case "authz-deny":
			denies++
		}
	}
	if permits == 0 || denies == 0 {
		t.Fatalf("audit trail incomplete: %d permits, %d denies", permits, denies)
	}
}

func TestPipelineEndToEndGT2(t *testing.T) { testPipelineEndToEnd(t, gsi.TransportGT2()) }
func TestPipelineEndToEndGT3(t *testing.T) { testPipelineEndToEnd(t, gsi.TransportGT3()) }

// TestPipelineMalformedAssertionDenied: a peer presenting a restricted
// proxy whose CAS policy block is garbage must be denied at the facade,
// not silently downgraded to local-only policy.
func TestPipelineMalformedAssertionDenied(t *testing.T) {
	bed := newAuthzBed(t)
	pl := bed.pipeline(t)
	ep := bed.serveEcho(t, gsi.TransportGT2(), pl)

	garbage, err := proxy.New(bed.alice, proxy.Options{
		Variant:        gridcert.ProxyRestricted,
		PolicyLanguage: cas.PolicyLanguage,
		Policy:         []byte("definitely not an assertion"),
		Lifetime:       time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	cl, err := bed.env.NewClient(garbage)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Exchange(context.Background(), ep.Addr(), "echo", nil); !errors.Is(err, gsi.ErrUnauthorized) {
		t.Fatalf("malformed assertion: got %v, want ErrUnauthorized", err)
	}
}

// TestPipelineClockPlumbing is the clock regression: time-bounded rules
// must be evaluated against the Environment clock (WithClock), not a
// time.Now fallback inside the engine.
func TestPipelineClockPlumbing(t *testing.T) {
	fake := time.Now().Add(48 * time.Hour)
	authority, err := gsi.NewCA("/O=Grid/CN=CA", 96*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	env, err := gsi.NewEnvironment(
		gsi.WithRoots(authority.Certificate()),
		gsi.WithClock(func() time.Time { return fake }),
	)
	if err != nil {
		t.Fatal(err)
	}
	host, _ := authority.NewHostEntity(gsi.MustParseName("/O=Grid/CN=host clock"), 72*time.Hour)
	alice, _ := authority.NewEntity(gsi.MustParseName("/O=Grid/CN=Alice"), 72*time.Hour)

	// The rule's window brackets the fake clock only: under the real
	// clock it has not started yet, so a time.Now fallback would deny.
	local := gsi.NewPolicy(gsi.Rule{
		ID:        "window",
		Effect:    gsi.EffectPermit,
		Subjects:  []string{"*"},
		Resources: []string{"*"},
		Actions:   []string{"*"},
		NotBefore: fake.Add(-time.Hour),
		NotAfter:  fake.Add(time.Hour),
	})
	pl, err := env.NewAuthorizationPipeline(gsi.WithLocalPolicy(local))
	if err != nil {
		t.Fatal(err)
	}
	server, err := env.NewServer(host, gsi.WithAuthorizationPipeline(pl))
	if err != nil {
		t.Fatal(err)
	}
	ep, err := server.Serve(context.Background(), "127.0.0.1:0",
		func(ctx context.Context, peer gsi.Peer, op string, body []byte) ([]byte, error) {
			return body, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	defer ep.Close()
	cl, err := env.NewClient(alice)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Exchange(context.Background(), ep.Addr(), "op", nil); err != nil {
		t.Fatalf("rule valid at the environment clock was denied (engine fell back to time.Now): %v", err)
	}

	// The inverse: a rule whose window brackets the real clock but not
	// the fake one must deny.
	local.Remove("window")
	local.Add(gsi.Rule{
		ID:        "real-window",
		Effect:    gsi.EffectPermit,
		Subjects:  []string{"*"},
		Resources: []string{"*"},
		Actions:   []string{"*"},
		NotBefore: time.Now().Add(-time.Hour),
		NotAfter:  time.Now().Add(time.Hour),
	})
	if _, err := cl.Exchange(context.Background(), ep.Addr(), "op", nil); !errors.Is(err, gsi.ErrUnauthorized) {
		t.Fatalf("rule outside the environment clock: got %v, want ErrUnauthorized", err)
	}
}

// TestDecisionCacheHitsAndInvalidation drives the cache directly:
// repeated decisions hit, every mutation class invalidates on the very
// next authorize.
func TestDecisionCacheHitsAndInvalidation(t *testing.T) {
	bed := newAuthzBed(t)
	pl := bed.pipeline(t, gsi.WithDecisionCache(time.Minute))
	ctx := context.Background()
	peer := gsi.Peer{Identity: bed.alice.Identity(), Subject: bed.aliceVO.Leaf().Subject, Chain: bed.aliceVO.Chain}

	d1, err := pl.Authorize(ctx, peer, "ogsa:gsi.exchange", "echo")
	if err != nil || d1.Decision != gsi.Permit {
		t.Fatalf("cold authorize: %+v %v", d1, err)
	}
	if d1.Cached {
		t.Fatal("first decision claims cached")
	}
	if d1.LocalAccount != "alice" {
		t.Fatalf("account %q, want alice", d1.LocalAccount)
	}
	d2, _ := pl.Authorize(ctx, peer, "ogsa:gsi.exchange", "echo")
	if !d2.Cached || d2.Decision != gsi.Permit || d2.LocalAccount != "alice" {
		t.Fatalf("second authorize not served from cache: %+v", d2)
	}
	if st := pl.CacheStats(); st.Hits == 0 {
		t.Fatalf("no cache hits recorded: %+v", st)
	}

	// Local-policy mutation invalidates immediately.
	bed.local.Remove("local-exchange")
	d3, _ := pl.Authorize(ctx, peer, "ogsa:gsi.exchange", "echo")
	if d3.Cached {
		t.Fatal("decision served from cache across a policy mutation")
	}
	if d3.Decision != gsi.Deny {
		t.Fatalf("revoked local rule still permits: %+v", d3)
	}
	bed.local.Add(gsi.Rule{
		ID: "local-exchange", Effect: gsi.EffectPermit,
		Subjects: []string{"*"}, Resources: []string{"ogsa:gsi.exchange"}, Actions: []string{"*"},
	})

	// Gridmap mutation invalidates immediately.
	pl.Authorize(ctx, peer, "ogsa:gsi.exchange", "echo") // repopulate
	bed.gridmap.Remove(bed.alice.Identity())
	d4, _ := pl.Authorize(ctx, peer, "ogsa:gsi.exchange", "echo")
	if d4.Cached || d4.Decision != gsi.Deny {
		t.Fatalf("gridmap removal not honored on next exchange: %+v", d4)
	}
	bed.gridmap.Add(bed.alice.Identity(), "alice")

	// VO-set mutation invalidates immediately.
	pl.Authorize(ctx, peer, "ogsa:gsi.exchange", "echo")
	pl.DistrustVO(bed.vo.VO())
	d5, _ := pl.Authorize(ctx, peer, "ogsa:gsi.exchange", "echo")
	if d5.Cached || d5.Decision != gsi.Deny {
		t.Fatalf("distrusted VO still honored: %+v", d5)
	}
	pl.TrustVO(bed.vo.Certificate())
	d6, _ := pl.Authorize(ctx, peer, "ogsa:gsi.exchange", "echo")
	if d6.Decision != gsi.Permit {
		t.Fatalf("re-trusted VO denied: %+v", d6)
	}
}

// TestDecisionCacheDisabled: WithDecisionCache(0) evaluates every time.
func TestDecisionCacheDisabled(t *testing.T) {
	bed := newAuthzBed(t)
	pl := bed.pipeline(t, gsi.WithDecisionCache(0))
	ctx := context.Background()
	peer := gsi.Peer{Identity: bed.alice.Identity(), Chain: bed.aliceVO.Chain}
	for i := 0; i < 3; i++ {
		d, err := pl.Authorize(ctx, peer, "ogsa:gsi.exchange", "echo")
		if err != nil || d.Decision != gsi.Permit || d.Cached {
			t.Fatalf("iteration %d: %+v %v", i, d, err)
		}
	}
	if st := pl.CacheStats(); st.Hits != 0 || st.Len != 0 {
		t.Fatalf("disabled cache has state: %+v", st)
	}
}

// TestPipelineRevocationBitesLiveConnection: a CRL installed after the
// handshake must deny the peer's very next exchange on the same
// session — the pipeline re-validates through the generation-aware
// verify cache instead of trusting handshake-time ChainInfo forever.
func TestPipelineRevocationBitesLiveConnection(t *testing.T) {
	authority, err := gsi.NewCA("/O=Grid/CN=CA", 96*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	env, err := gsi.NewEnvironment(gsi.WithRoots(authority.Certificate()))
	if err != nil {
		t.Fatal(err)
	}
	host, _ := authority.NewHostEntity(gsi.MustParseName("/O=Grid/CN=host crl"), 72*time.Hour)
	alice, _ := authority.NewEntity(gsi.MustParseName("/O=Grid/CN=Alice"), 72*time.Hour)
	local := gsi.NewPolicy(gsi.Rule{
		ID: "allow", Effect: gsi.EffectPermit,
		Subjects: []string{"*"}, Resources: []string{"*"}, Actions: []string{"*"},
	})
	pl, err := env.NewAuthorizationPipeline(
		gsi.WithLocalPolicy(local), gsi.WithDecisionCache(time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	server, err := env.NewServer(host, gsi.WithAuthorizationPipeline(pl))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	ep, err := server.Serve(ctx, "127.0.0.1:0",
		func(ctx context.Context, peer gsi.Peer, op string, body []byte) ([]byte, error) {
			return body, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	defer ep.Close()
	cl, err := env.NewClient(alice)
	if err != nil {
		t.Fatal(err)
	}
	// One long-lived session: handshake once, exchange across the
	// revocation without reconnecting.
	sess, err := cl.Connect(ctx, ep.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	if _, err := sess.Exchange(ctx, "op", nil); err != nil {
		t.Fatalf("pre-revocation exchange: %v", err)
	}
	if err := authority.Revoke(alice.Leaf().SerialNumber); err != nil {
		t.Fatal(err)
	}
	crl, err := authority.CRL()
	if err != nil {
		t.Fatal(err)
	}
	if err := env.Trust().AddCRL(crl); err != nil {
		t.Fatal(err)
	}
	// The refusal is an authentication failure (the chain no longer
	// validates), not a policy deny, so it crosses the wire as a
	// generic server error carrying the revocation cause.
	if _, err := sess.Exchange(ctx, "op", nil); err == nil {
		t.Fatal("revoked credential still served on live session")
	} else if !strings.Contains(err.Error(), "revoked") {
		t.Fatalf("post-CRL exchange failed for the wrong reason: %v", err)
	}
}

// TestServePerCallPipelineOptions: pipeline options given per Serve
// call must take effect (an endpoint-private pipeline is rebuilt from
// the merged settings) instead of being silently dropped in favor of
// the handle's pipeline.
func TestServePerCallPipelineOptions(t *testing.T) {
	bed := newAuthzBed(t)
	server, err := bed.env.NewServer(bed.host,
		gsi.WithLocalPolicy(bed.local),
		gsi.WithTrustedVO(bed.vo.Certificate()))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	handler := func(ctx context.Context, peer gsi.Peer, op string, body []byte) ([]byte, error) {
		return []byte(peer.LocalAccount), nil
	}
	// Endpoint 1: the handle's pipeline — no gridmap, so no account.
	ep1, err := server.Serve(ctx, "127.0.0.1:0", handler)
	if err != nil {
		t.Fatal(err)
	}
	defer ep1.Close()
	// Endpoint 2: per-call gridmap — mapping must be enforced here.
	ep2, err := server.Serve(ctx, "127.0.0.1:0", handler, gsi.WithGridMap(bed.gridmap))
	if err != nil {
		t.Fatal(err)
	}
	defer ep2.Close()

	aliceCl, err := bed.env.NewClient(bed.aliceVO)
	if err != nil {
		t.Fatal(err)
	}
	out, err := aliceCl.Exchange(ctx, ep1.Addr(), "echo", nil)
	if err != nil || string(out) != "" {
		t.Fatalf("gridmap-free endpoint: %q %v", out, err)
	}
	out, err = aliceCl.Exchange(ctx, ep2.Addr(), "echo", nil)
	if err != nil || string(out) != "alice" {
		t.Fatalf("per-call WithGridMap dropped: %q %v", out, err)
	}
	// And fail-closed: Bob is unmapped on endpoint 2 but fine on 1 —
	// except local policy there still requires... local permits any
	// subject, no assertion required, so endpoint 1 permits Bob.
	bobCl, err := bed.env.NewClient(bed.bob)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := bobCl.Exchange(ctx, ep1.Addr(), "echo", nil); err != nil {
		t.Fatalf("endpoint 1 denied Bob: %v", err)
	}
	if _, err := bobCl.Exchange(ctx, ep2.Addr(), "echo", nil); !errors.Is(err, gsi.ErrUnauthorized) {
		t.Fatalf("endpoint 2 permitted unmapped Bob: %v", err)
	}
}

// TestServeRefusesTuningPrebuiltPipeline: a prebuilt pipeline's policy
// lives inside the pipeline object, so per-call assembly options cannot
// be merged into it — Serve must error loudly rather than silently
// rebuild an empty deny-all pipeline.
func TestServeRefusesTuningPrebuiltPipeline(t *testing.T) {
	bed := newAuthzBed(t)
	pl := bed.pipeline(t)
	server, err := bed.env.NewServer(bed.host, gsi.WithAuthorizationPipeline(pl))
	if err != nil {
		t.Fatal(err)
	}
	handler := func(ctx context.Context, peer gsi.Peer, op string, body []byte) ([]byte, error) {
		return body, nil
	}
	if _, err := server.Serve(context.Background(), "127.0.0.1:0", handler,
		gsi.WithDecisionCache(5*time.Second)); err == nil {
		t.Fatal("Serve accepted per-call assembly options on a prebuilt pipeline")
	}
	// The same combination at NewServer time must refuse identically,
	// not silently drop the assembly option.
	if _, err := bed.env.NewServer(bed.host,
		gsi.WithAuthorizationPipeline(pl), gsi.WithGridMap(bed.gridmap)); err == nil {
		t.Fatal("NewServer accepted assembly options alongside a prebuilt pipeline")
	}
	// Replacing the pipeline per-call is fine.
	ep, err := server.Serve(context.Background(), "127.0.0.1:0", handler,
		gsi.WithAuthorizationPipeline(bed.pipeline(t, gsi.WithDecisionCache(5*time.Second))))
	if err != nil {
		t.Fatal(err)
	}
	ep.Close()
}

// TestTuningOptionsAloneDoNotEnforce: WithAuditSink/WithDecisionCache
// are observability/tuning, not enforcement — on their own they must
// not assemble a policy-less (deny-everything) pipeline.
func TestTuningOptionsAloneDoNotEnforce(t *testing.T) {
	bed := newAuthzBed(t)
	server, err := bed.env.NewServer(bed.host,
		gsi.WithAuditSink(bed.audit), gsi.WithDecisionCache(time.Second))
	if err != nil {
		t.Fatal(err)
	}
	ep, err := server.Serve(context.Background(), "127.0.0.1:0",
		func(ctx context.Context, peer gsi.Peer, op string, body []byte) ([]byte, error) {
			return body, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	defer ep.Close()
	cl, err := bed.env.NewClient(bed.alice)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Exchange(context.Background(), ep.Addr(), "echo", nil); err != nil {
		t.Fatalf("tuning-only options turned the server deny-all: %v", err)
	}
}

// TestPipelineAnonymousDenied: anonymous peers never pass the pipeline.
func TestPipelineAnonymousDenied(t *testing.T) {
	bed := newAuthzBed(t)
	pl := bed.pipeline(t)
	d, err := pl.Authorize(context.Background(), gsi.Peer{Anonymous: true}, "r", "a")
	if err != nil {
		t.Fatal(err)
	}
	if d.Decision != gsi.Deny {
		t.Fatalf("anonymous peer: %+v", d)
	}
}
