package gsi

import (
	"sync"
	"time"

	"repro/internal/gsitransport"
	"repro/internal/gss"
	"repro/internal/record"
	"repro/internal/telemetry"
	"repro/internal/wssec"
)

// MetricsRegistry collects the facade's instruments and renders them in
// Prometheus text exposition format (WritePrometheus; it is also an
// http.Handler). Registries are cheap scrape-time views: the hot-path
// counters live in the instrumented packages as plain atomics, and a
// registry samples them only when scraped.
type MetricsRegistry = telemetry.Registry

// NewMetricsRegistry creates an empty registry for WithMetrics.
func NewMetricsRegistry() *MetricsRegistry { return telemetry.NewRegistry() }

// --- process-wide instruments -------------------------------------------
//
// Handshake/resume latency, record-pool pressure, and transport
// throughput are process-wide state (package atomics in internal/gss,
// internal/record, internal/gsitransport), so their instruments are
// process-wide singletons: every registry that wants them registers the
// same objects, which telemetry treats as idempotent.

var (
	processOnce    sync.Once
	processMetrics []telemetry.Metric
)

func buildProcessMetrics() []telemetry.Metric {
	processOnce.Do(func() {
		handshake := telemetry.NewHistogram("gsi_handshake_seconds",
			"Full security-context establishment latency (public-key handshake), both transports.",
			telemetry.LatencyBuckets)
		resume := telemetry.NewHistogram("gsi_resume_seconds",
			"Secure-conversation resumption latency (one symmetric-crypto round trip).",
			telemetry.LatencyBuckets)
		// The observers cost two atomic loads per handshake until this
		// runs — and a handshake is public-key work, so the histogram
		// update is noise even afterwards.
		gss.SetHandshakeObserver(handshake.ObserveDuration)
		gss.SetResumeObserver(resume.ObserveDuration)
		processMetrics = []telemetry.Metric{
			handshake, resume,
			telemetry.NewCounterFunc("gsi_record_pool_gets_total",
				"Record-layer buffer checkouts (pooled or not).",
				func() uint64 { return record.PoolStats().Gets }),
			telemetry.NewCounterFunc("gsi_record_pool_misses_total",
				"Buffer checkouts that found their size-class pool empty and allocated.",
				func() uint64 { return record.PoolStats().Misses }),
			telemetry.NewCounterFunc("gsi_record_pool_oversize_total",
				"Buffer checkouts beyond the largest size class (unpooled allocations).",
				func() uint64 { return record.PoolStats().Oversize }),
			telemetry.NewCounterFunc("gsi_record_pool_frees_total",
				"Buffers returned to their size-class pool.",
				func() uint64 { return record.PoolStats().Frees }),
			telemetry.NewCounterFunc("gsi_transport_records_sent_total",
				"Protected records written by the GT2 transport.",
				func() uint64 { return gsitransport.Throughput().RecordsSent }),
			telemetry.NewCounterFunc("gsi_transport_records_received_total",
				"Protected records read by the GT2 transport.",
				func() uint64 { return gsitransport.Throughput().RecordsReceived }),
			telemetry.NewCounterFunc("gsi_transport_bytes_sent_total",
				"Plaintext payload bytes sent over the GT2 transport.",
				func() uint64 { return gsitransport.Throughput().BytesSent }),
			telemetry.NewCounterFunc("gsi_transport_bytes_received_total",
				"Plaintext payload bytes received over the GT2 transport.",
				func() uint64 { return gsitransport.Throughput().BytesReceived }),
		}
	})
	return processMetrics
}

// metricID renders the id label value for a handle's per-handle series:
// the credential's grid identity (end-entity DN), which — unlike a leaf
// fingerprint — survives proxy rotation, so a managed client keeps one
// series across renewals.
func metricID(cred *Credential) string {
	if cred == nil {
		return "anonymous"
	}
	return telemetry.EscapeLabelValue(cred.Identity().String())
}

func labeled(family, id string) string {
	return family + `{id="` + id + `"}`
}

// registerClientMetrics lands a client handle's instruments in reg:
// the process-wide set plus per-handle pool, resumption-cache, and
// credential-lifecycle series labeled with the client's identity.
func registerClientMetrics(reg *MetricsRegistry, id string, pool *SessionPool, cm *CredentialManager) error {
	ms := append([]telemetry.Metric(nil), buildProcessMetrics()...)
	if pool != nil {
		ms = append(ms, poolMetrics(id, pool)...)
	}
	if cm != nil {
		ms = append(ms, credentialMetrics(id, cm)...)
	}
	return reg.Register(ms...)
}

func poolMetrics(id string, pool *SessionPool) []telemetry.Metric {
	return []telemetry.Metric{
		telemetry.NewCounterFunc(labeled("gsi_pool_dials_total", id),
			"Sessions established by the pool (each paid a handshake or a resumption).",
			func() uint64 { return pool.Stats().Dials }),
		telemetry.NewCounterFunc(labeled("gsi_pool_hits_total", id),
			"Checkouts satisfied from the idle pool (no handshake).",
			func() uint64 { return pool.Stats().Hits }),
		telemetry.NewCounterFunc(labeled("gsi_pool_evictions_total", id),
			"Idle sessions discarded as stale, unhealthy, probe-failed, or drained.",
			func() uint64 { return pool.Stats().Evictions }),
		telemetry.NewCounterFunc(labeled("gsi_pool_poisoned_total", id),
			"Sessions discarded at return because an exchange left them unsafe.",
			func() uint64 { return pool.Stats().Poisoned }),
		telemetry.NewCounterFunc(labeled("gsi_pool_retired_total", id),
			"Sessions discarded because their credential was rotated away.",
			func() uint64 { return pool.Stats().Retired }),
		telemetry.NewGaugeFunc(labeled("gsi_pool_idle", id),
			"Sessions currently parked idle across all keys.",
			func() float64 { return float64(pool.Stats().Idle) }),
		telemetry.NewGaugeFunc(labeled("gsi_pool_active", id),
			"Sessions currently checked out across all keys.",
			func() float64 { return float64(pool.Stats().Active) }),
		telemetry.NewCounterFunc(labeled("gsi_resume_cache_hits_total", id),
			"Conversations minted by secure-conversation resumption.",
			func() uint64 { return pool.ResumptionStats().Hits }),
		telemetry.NewCounterFunc(labeled("gsi_resume_cache_misses_total", id),
			"Conversations that paid the full WS-Trust bootstrap.",
			func() uint64 { return pool.ResumptionStats().Misses }),
		telemetry.NewGaugeFunc(labeled("gsi_resume_cache_entries", id),
			"Parent conversations currently cached for resumption.",
			func() float64 { return float64(pool.ResumptionStats().Len) }),
	}
}

func credentialMetrics(id string, cm *CredentialManager) []telemetry.Metric {
	return []telemetry.Metric{
		telemetry.NewCounterFunc(labeled("gsi_credential_rotations_total", id),
			"Successful credential renewals (rotations).",
			func() uint64 { return cm.Stats().Rotations }),
		telemetry.NewCounterFunc(labeled("gsi_credential_renew_failures_total", id),
			"Failed renewal attempts (each retried with backoff).",
			func() uint64 { return cm.Stats().Failures }),
		telemetry.NewGaugeFunc(labeled("gsi_credential_ttl_seconds", id),
			"Remaining lifetime of the managed credential; renewal lead time when positive.",
			func() float64 { return time.Until(cm.Stats().NotAfter).Seconds() }),
	}
}

// serverMetricSources is the mutable state a server handle's gauges
// sample: conversation managers accrete one per GT3 endpoint, and the
// reloader appears when the first endpoint wires it.
type serverMetricSources struct {
	mu       sync.Mutex
	convMgrs []*wssec.ConversationManager
	reloader *Reloader
	casSync  *casSyncer
}

func (s *serverMetricSources) addConvMgr(m *wssec.ConversationManager) {
	s.mu.Lock()
	s.convMgrs = append(s.convMgrs, m)
	s.mu.Unlock()
}

func (s *serverMetricSources) setReloader(r *Reloader) {
	s.mu.Lock()
	s.reloader = r
	s.mu.Unlock()
}

func (s *serverMetricSources) setCASSyncer(cs *casSyncer) {
	s.mu.Lock()
	s.casSync = cs
	s.mu.Unlock()
}

func (s *serverMetricSources) casStats() (syncs, failures uint64) {
	s.mu.Lock()
	cs := s.casSync
	s.mu.Unlock()
	if cs == nil {
		return 0, 0
	}
	st := cs.status()
	return st.Syncs, st.Failures
}

func (s *serverMetricSources) conversations() (live, evicted uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, m := range s.convMgrs {
		live += uint64(m.Sessions())
		evicted += m.Evicted()
	}
	return live, evicted
}

func (s *serverMetricSources) reloadStats() (ok bool, st ReloadStats, unhealthy int) {
	s.mu.Lock()
	r := s.reloader
	s.mu.Unlock()
	if r == nil {
		return false, ReloadStats{}, 0
	}
	st = r.Stats()
	for _, src := range r.Status() {
		if !src.Healthy {
			unhealthy++
		}
	}
	return true, st, unhealthy
}

// registerServerMetrics lands a server handle's instruments in reg:
// the process-wide set plus decision-cache, conversation-table, and
// reload series labeled with the server's identity. The pipeline may
// be nil (no authorization configured); src must not be.
func registerServerMetrics(reg *MetricsRegistry, id string, pipeline *AuthorizationPipeline, src *serverMetricSources, tracer *Tracer) error {
	ms := append([]telemetry.Metric(nil), buildProcessMetrics()...)
	if pipeline != nil {
		ms = append(ms,
			telemetry.NewCounterFunc(labeled("gsi_authz_cache_hits_total", id),
				"Authorization decisions served from the decision cache.",
				func() uint64 { return pipeline.CacheStats().Hits }),
			telemetry.NewCounterFunc(labeled("gsi_authz_cache_misses_total", id),
				"Authorization decisions that paid a full pipeline evaluation.",
				func() uint64 { return pipeline.CacheStats().Misses }),
			telemetry.NewGaugeFunc(labeled("gsi_authz_cache_entries", id),
				"Decisions currently cached across all shards.",
				func() float64 { return float64(pipeline.CacheStats().Len) }),
			telemetry.NewGaugeFunc(labeled("gsi_authz_cache_max_shard", id),
				"Entry count of the fullest decision-cache shard (shard pressure).",
				func() float64 { return float64(pipeline.CacheStats().MaxShard) }),
			telemetry.NewCounterFunc(labeled("gsi_authz_generation", id),
				"Sum of the trust/policy/gridmap/VO/replica generation counters; each step is one cache-wide invalidation.",
				func() uint64 {
					g := pipeline.generations()
					return g[0] + g[1] + g[2] + g[3] + g[4]
				}),
		)
		if rep := pipeline.Replica(); rep != nil {
			ms = append(ms,
				telemetry.NewGaugeFunc(labeled("gsi_cas_bundle_version", id),
					"Version of the last CAS policy bundle the replica applied (0 = none yet).",
					func() float64 { return float64(rep.Version()) }),
				telemetry.NewCounterFunc(labeled("gsi_cas_bundle_applied_total", id),
					"CAS policy bundles applied through the fail-closed swap (the replica generation).",
					func() uint64 { return rep.Generation() }),
				telemetry.NewCounterFunc(labeled("gsi_cas_sync_total", id),
					"Successful CAS bundle pulls (up-to-date counts as success).",
					func() uint64 { syncs, _ := src.casStats(); return syncs }),
				telemetry.NewCounterFunc(labeled("gsi_cas_sync_failures_total", id),
					"Sync rounds in which every configured CAS endpoint failed; the previous bundle stayed live each time.",
					func() uint64 { _, failures := src.casStats(); return failures }),
			)
		}
	}
	if tracer != nil {
		if exp := tracer.Exporter(); exp != nil {
			ms = append(ms,
				telemetry.NewCounterFunc(labeled("gsi_trace_export_dropped_total", id),
					"Spans lost by the push exporter to queue overflow or failed-batch backlog rotation.",
					func() uint64 { return exp.Dropped() }),
			)
		}
	}
	ms = append(ms,
		telemetry.NewGaugeFunc(labeled("gsi_conversations", id),
			"Live server-side secure-conversation contexts across this handle's endpoints.",
			func() float64 { live, _ := src.conversations(); return float64(live) }),
		telemetry.NewCounterFunc(labeled("gsi_conversations_evicted_total", id),
			"Server-side conversation contexts evicted to honor the session-table cap.",
			func() uint64 { _, evicted := src.conversations(); return evicted }),
		telemetry.NewCounterFunc(labeled("gsi_reload_total", id),
			"Successful configuration-file reloads.",
			func() uint64 { ok, st, _ := src.reloadStats(); _ = ok; return st.Reloads }),
		telemetry.NewCounterFunc(labeled("gsi_reload_failures_total", id),
			"Reload attempts that failed; the previous configuration stayed live each time.",
			func() uint64 { _, st, _ := src.reloadStats(); return st.Failures }),
		telemetry.NewGaugeFunc(labeled("gsi_reload_unhealthy_sources", id),
			"Watched configuration files whose last reload attempt failed.",
			func() float64 { _, _, unhealthy := src.reloadStats(); return float64(unhealthy) }),
	)
	return reg.Register(ms...)
}
