package gsi_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/pkg/gsi"
)

// poolBed is a testbed plus a live GT2 server endpoint and a pooled
// client against it.
type poolBed struct {
	*testbed
	ep     gsi.Endpoint
	client *gsi.Client
}

func newPoolBed(t *testing.T, serverOpts []gsi.Option, clientOpts ...gsi.Option) *poolBed {
	t.Helper()
	tb := newTestbed(t)
	server, err := tb.env.NewServer(tb.host, serverOpts...)
	if err != nil {
		t.Fatal(err)
	}
	ep, err := server.Serve(context.Background(), "127.0.0.1:0", echoHandler)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ep.Close() })
	client, err := tb.env.NewClient(tb.alice, clientOpts...)
	if err != nil {
		t.Fatal(err)
	}
	if p := client.Pool(); p != nil {
		t.Cleanup(func() { p.Close() })
	}
	return &poolBed{testbed: tb, ep: ep, client: client}
}

// TestPoolReuseAmortizesHandshake: repeated Exchanges through a pooled
// client ride one connection — one dial, many hits.
func TestPoolReuseAmortizesHandshake(t *testing.T) {
	pb := newPoolBed(t, nil, gsi.WithSessionPool(nil))
	ctx := context.Background()
	for i := 0; i < 10; i++ {
		out, err := pb.client.Exchange(ctx, pb.ep.Addr(), "echo", []byte("ping"))
		if err != nil {
			t.Fatal(err)
		}
		if string(out) != "ping" {
			t.Fatalf("out = %q", out)
		}
	}
	st := pb.client.Pool().Stats()
	if st.Dials != 1 {
		t.Fatalf("dials = %d, want 1 (one handshake for 10 exchanges)", st.Dials)
	}
	if st.Hits != 9 {
		t.Fatalf("hits = %d, want 9", st.Hits)
	}
}

// TestPoolErrorTaxonomy: the table the ISSUE asks for — exhausted pool
// surfaces ErrPoolExhausted, a cancelled checkout ErrContextClosed, and
// a closed pool ErrPoolExhausted, all via errors.Is.
func TestPoolErrorTaxonomy(t *testing.T) {
	cases := []struct {
		name string
		run  func(t *testing.T, pb *poolBed) error
		want error
	}{
		{
			name: "exhausted pool hits deadline",
			want: gsi.ErrPoolExhausted,
			run: func(t *testing.T, pb *poolBed) error {
				// Cap of 1, held by an open session: the second checkout
				// queues until its deadline passes.
				held, err := pb.client.Connect(context.Background(), pb.ep.Addr())
				if err != nil {
					t.Fatal(err)
				}
				defer held.Close()
				ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
				defer cancel()
				_, err = pb.client.Exchange(ctx, pb.ep.Addr(), "echo", nil)
				return err
			},
		},
		{
			name: "cancelled checkout",
			want: gsi.ErrContextClosed,
			run: func(t *testing.T, pb *poolBed) error {
				held, err := pb.client.Connect(context.Background(), pb.ep.Addr())
				if err != nil {
					t.Fatal(err)
				}
				defer held.Close()
				ctx, cancel := context.WithCancel(context.Background())
				go func() {
					time.Sleep(20 * time.Millisecond)
					cancel()
				}()
				_, err = pb.client.Exchange(ctx, pb.ep.Addr(), "echo", nil)
				return err
			},
		},
		{
			name: "dead context at entry",
			want: gsi.ErrContextClosed,
			run: func(t *testing.T, pb *poolBed) error {
				// Even with an expired deadline, a context that was dead
				// before the pool was consulted is the caller's problem,
				// not exhaustion.
				ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
				defer cancel()
				_, err := pb.client.Exchange(ctx, pb.ep.Addr(), "echo", nil)
				return err
			},
		},
		{
			name: "closed pool",
			want: gsi.ErrPoolExhausted,
			run: func(t *testing.T, pb *poolBed) error {
				pb.client.Pool().Close()
				_, err := pb.client.Exchange(context.Background(), pb.ep.Addr(), "echo", nil)
				return err
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			pb := newPoolBed(t, nil, gsi.WithMaxConcurrentPerHost(1))
			err := tc.run(t, pb)
			if err == nil {
				t.Fatal("no error")
			}
			if !errors.Is(err, tc.want) {
				t.Fatalf("errors.Is(%v, %v) = false", err, tc.want)
			}
			var e *gsi.Error
			if !errors.As(err, &e) {
				t.Fatalf("not a *gsi.Error: %v", err)
			}
		})
	}
}

// TestPoolPoisonedConnRetriedOnFreshSession: an idle pooled connection
// whose server vanished is poisoned on first use; Exchange transparently
// retries on a freshly dialed session against the revived endpoint.
func TestPoolPoisonedConnRetriedOnFreshSession(t *testing.T) {
	pb := newPoolBed(t, nil, gsi.WithSessionPool(nil))
	ctx := context.Background()
	if _, err := pb.client.Exchange(ctx, pb.ep.Addr(), "echo", []byte("warm")); err != nil {
		t.Fatal(err)
	}
	addr := pb.ep.Addr()
	// The server goes away — the parked client conn is now a dead socket
	// the I/O-free health check cannot see — and comes back on the same
	// address.
	if err := pb.ep.Close(); err != nil {
		t.Fatal(err)
	}
	server, err := pb.env.NewServer(pb.host)
	if err != nil {
		t.Fatal(err)
	}
	var ep2 gsi.Endpoint
	for i := 0; i < 50; i++ {
		ep2, err = server.Serve(ctx, addr, echoHandler)
		if err == nil {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err != nil {
		t.Fatalf("rebinding %s: %v", addr, err)
	}
	defer ep2.Close()

	out, err := pb.client.Exchange(ctx, addr, "echo", []byte("after restart"))
	if err != nil {
		t.Fatalf("exchange after server restart: %v", err)
	}
	if string(out) != "after restart" {
		t.Fatalf("out = %q", out)
	}
	st := pb.client.Pool().Stats()
	if st.Poisoned == 0 {
		t.Fatalf("stats = %+v: dead session was not detected as poisoned", st)
	}
	if st.Dials != 2 {
		t.Fatalf("dials = %d, want 2 (original + fresh retry)", st.Dials)
	}
}

// TestPoolSessionKeying: sessions established under different delegation
// modes or protection levels never mix, because they key separately.
func TestPoolSessionKeying(t *testing.T) {
	pb := newPoolBed(t, nil, gsi.WithSessionPool(nil))
	ctx := context.Background()
	if _, err := pb.client.Exchange(ctx, pb.ep.Addr(), "echo", nil); err != nil {
		t.Fatal(err)
	}
	// Same endpoint, delegation intent: must not reuse the parked
	// non-delegating session.
	if _, err := pb.client.Exchange(ctx, pb.ep.Addr(), "echo", nil, gsi.WithDelegation()); err != nil {
		t.Fatal(err)
	}
	// Stricter per-call policy: must not reuse a session handshaken
	// without the limited-proxy check.
	if _, err := pb.client.Exchange(ctx, pb.ep.Addr(), "echo", nil, gsi.WithRejectLimited()); err != nil {
		t.Fatal(err)
	}
	st := pb.client.Pool().Stats()
	if st.Dials != 3 {
		t.Fatalf("dials = %d, want 3 (distinct keys)", st.Dials)
	}
}

// TestPoolGT3ResumptionCache: after the pool's idle sessions are gone,
// a new GT3 dial resumes the cached secure conversation instead of
// re-running the WS-Trust bootstrap.
func TestPoolGT3ResumptionCache(t *testing.T) {
	pb := newPoolBed(t,
		[]gsi.Option{gsi.WithTransport(gsi.TransportGT3())},
		gsi.WithTransport(gsi.TransportGT3()), gsi.WithMaxIdle(1), gsi.WithIdleTTL(time.Millisecond))
	ctx := context.Background()
	if _, err := pb.client.Exchange(ctx, pb.ep.Addr(), "echo", []byte("a")); err != nil {
		t.Fatal(err)
	}
	// Let the parked session age past the TTL so the next checkout must
	// evict it and dial anew — which should hit the resumption cache.
	time.Sleep(5 * time.Millisecond)
	if _, err := pb.client.Exchange(ctx, pb.ep.Addr(), "echo", []byte("b")); err != nil {
		t.Fatal(err)
	}
	st := pb.client.Pool().Stats()
	if st.Evictions == 0 {
		t.Fatalf("stats = %+v: stale session not evicted", st)
	}
	if st.Resumes == 0 {
		t.Fatalf("stats = %+v: second dial did not resume the conversation", st)
	}
}

// TestPoolDrainOnClose: Close empties the idle pool and later returns
// close rather than park their sessions.
func TestPoolDrainOnClose(t *testing.T) {
	pb := newPoolBed(t, nil, gsi.WithSessionPool(nil))
	ctx := context.Background()
	sess, err := pb.client.Connect(ctx, pb.ep.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pb.client.Exchange(ctx, pb.ep.Addr(), "echo", nil); err != nil {
		t.Fatal(err)
	}
	pool := pb.client.Pool()
	if st := pool.Stats(); st.Idle != 1 || st.Active != 1 {
		t.Fatalf("pre-close stats = %+v, want 1 idle / 1 active", st)
	}
	if err := pool.Close(); err != nil {
		t.Fatal(err)
	}
	// The checked-out session is still usable and its return closes it.
	if _, err := sess.Exchange(ctx, "echo", []byte("late")); err != nil {
		t.Fatalf("in-flight session after pool close: %v", err)
	}
	sess.Close()
	if st := pool.Stats(); st.Idle != 0 || st.Active != 0 {
		t.Fatalf("post-drain stats = %+v, want empty pool", st)
	}
}
