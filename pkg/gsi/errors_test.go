package gsi_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/gridcert"
	"repro/internal/myproxy"
	"repro/pkg/gsi"
)

// testbed is a single-CA world for API tests.
type testbed struct {
	env   *gsi.Environment
	ca    *gsi.CA
	alice *gsi.Credential
	host  *gsi.Credential
}

func newTestbed(t testing.TB) *testbed {
	t.Helper()
	authority, err := gsi.NewCA("/O=Grid/CN=CA", 24*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	env, err := gsi.NewEnvironment(gsi.WithRoots(authority.Certificate()))
	if err != nil {
		t.Fatal(err)
	}
	alice, err := authority.NewEntity(gsi.MustParseName("/O=Grid/CN=Alice"), 12*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	host, err := authority.NewHostEntity(gsi.MustParseName("/O=Grid/CN=host svc"), 12*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	return &testbed{env: env, ca: authority, alice: alice, host: host}
}

// TestErrorTaxonomyUntrustedIssuer: authenticating against an
// environment that does not trust the peer's CA surfaces
// ErrUntrustedIssuer through errors.Is, with the *Error carrying the Op.
func TestErrorTaxonomyUntrustedIssuer(t *testing.T) {
	tb := newTestbed(t)
	// A second world whose environment does NOT trust tb's CA.
	otherCA, err := gsi.NewCA("/O=Other/CN=CA", 24*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	otherEnv, err := gsi.NewEnvironment(gsi.WithRoots(otherCA.Certificate()))
	if err != nil {
		t.Fatal(err)
	}
	client, err := otherEnv.NewClient(tb.alice) // Alice's chain is alien to otherEnv
	if err != nil {
		t.Fatal(err)
	}
	_, _, err = client.Establish(context.Background(), gsi.ContextConfig{
		Credential: tb.host,
		TrustStore: tb.env.Trust(),
	})
	if err == nil {
		t.Fatal("establish succeeded across disjoint trust roots")
	}
	if !errors.Is(err, gsi.ErrAuthentication) && !errors.Is(err, gsi.ErrUntrustedIssuer) {
		t.Fatalf("error not classified as authentication/untrusted: %v", err)
	}
	var ge *gsi.Error
	if !errors.As(err, &ge) {
		t.Fatalf("error is not *gsi.Error: %T", err)
	}
	if ge.Op == "" {
		t.Fatal("gsi.Error.Op empty")
	}
}

// TestErrorTaxonomyExpiredCredential: a credential past its NotAfter is
// classified ErrExpiredCredential, and the original gridcert sentinel
// stays reachable through the wrap chain.
func TestErrorTaxonomyExpiredCredential(t *testing.T) {
	tb := newTestbed(t)
	short, err := tb.ca.NewEntity(gsi.MustParseName("/O=Grid/CN=Shortlived"), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	future := time.Now().Add(time.Hour)
	env, err := gsi.NewEnvironment(
		gsi.WithTrustStore(tb.env.Trust()),
		gsi.WithClock(func() time.Time { return future }),
	)
	if err != nil {
		t.Fatal(err)
	}
	client, err := env.NewClient(short)
	if err != nil {
		t.Fatal(err)
	}
	_, _, err = client.Establish(context.Background(), gsi.ContextConfig{
		Credential: tb.host,
		TrustStore: env.Trust(),
		Now:        env.Now,
	})
	if err == nil {
		t.Fatal("established with an expired credential")
	}
	if !errors.Is(err, gsi.ErrExpiredCredential) {
		t.Fatalf("not classified expired: %v", err)
	}
	if !errors.Is(err, gridcert.ErrExpired) {
		t.Fatalf("internal sentinel lost from chain: %v", err)
	}
}

// TestErrorTaxonomyMyProxy: repository failures map onto ErrNotFound and
// ErrBadPassphrase while the myproxy sentinels stay matchable.
func TestErrorTaxonomyMyProxy(t *testing.T) {
	tb := newTestbed(t)
	client, err := tb.env.NewClient(tb.alice)
	if err != nil {
		t.Fatal(err)
	}
	repo := gsi.NewMyProxy()
	ctx := context.Background()

	_, err = client.RetrieveCredential(ctx, repo, "nobody", "pw", time.Hour)
	if !errors.Is(err, gsi.ErrNotFound) || !errors.Is(err, myproxy.ErrNotFound) {
		t.Fatalf("absent user not ErrNotFound: %v", err)
	}

	deposit, err := client.Proxy(gsi.ProxyOptions{Lifetime: 2 * time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	if err := client.StoreCredential(ctx, repo, "alice", "pw", deposit, time.Hour); err != nil {
		t.Fatal(err)
	}
	_, err = client.RetrieveCredential(ctx, repo, "alice", "wrong", time.Hour)
	if !errors.Is(err, gsi.ErrBadPassphrase) {
		t.Fatalf("wrong passphrase not ErrBadPassphrase: %v", err)
	}
	cred, err := client.RetrieveCredential(ctx, repo, "alice", "pw", time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if !cred.Identity().Equal(tb.alice.Identity()) {
		t.Fatalf("retrieved identity %q", cred.Identity())
	}
}

// TestErrorTaxonomyContextClosed: every context-aware entry point
// returns ErrContextClosed for an already-canceled context, and the
// underlying context.Canceled stays matchable.
func TestErrorTaxonomyContextClosed(t *testing.T) {
	tb := newTestbed(t)
	client, err := tb.env.NewClient(tb.alice)
	if err != nil {
		t.Fatal(err)
	}
	canceled, cancel := context.WithCancel(context.Background())
	cancel()

	if _, _, err := client.Establish(canceled, gsi.ContextConfig{Credential: tb.host, TrustStore: tb.env.Trust()}); !errors.Is(err, gsi.ErrContextClosed) || !errors.Is(err, context.Canceled) {
		t.Fatalf("Establish: %v", err)
	}
	if _, err := client.Connect(canceled, "127.0.0.1:1"); !errors.Is(err, gsi.ErrContextClosed) {
		t.Fatalf("Connect: %v", err)
	}
	repo := gsi.NewMyProxy()
	if err := client.StoreCredential(canceled, repo, "a", "b", tb.alice, time.Hour); !errors.Is(err, gsi.ErrContextClosed) {
		t.Fatalf("StoreCredential: %v", err)
	}
	vo := gsi.NewCASServer(tb.alice)
	if _, err := client.RequestAssertion(canceled, vo); !errors.Is(err, gsi.ErrContextClosed) {
		t.Fatalf("RequestAssertion: %v", err)
	}
}

// TestErrorOpString: the formatted error leads with the public
// operation.
func TestErrorOpString(t *testing.T) {
	e := &gsi.Error{Op: "gsi.Client.Connect", Kind: gsi.ErrTransport, Err: errors.New("boom")}
	if got := e.Error(); got != "gsi.Client.Connect: boom" {
		t.Fatalf("Error() = %q", got)
	}
	if !errors.Is(e, gsi.ErrTransport) {
		t.Fatal("Kind not matchable")
	}
}
