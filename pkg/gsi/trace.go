package gsi

import (
	"context"
	"errors"
	"net/http"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/soap"
	"repro/internal/trace"
)

// setTraceHeader attaches the ctx span's wire context to env as a
// SOAP header — deliberately outside the signed header set, so
// tracing never perturbs WS-Security signatures. No-op when the
// operation is untraced.
func setTraceHeader(ctx context.Context, env *soap.Envelope) {
	if sp := trace.SpanFromContext(ctx); sp != nil {
		env.SetHeader(trace.SOAPHeader, sp.Context().Encode(make([]byte, 0, trace.EncodedLen)))
	}
}

// Tracer is the facade's end-to-end tracer: spans for every traced
// exchange, stream, and striped transfer, per-op latency histograms in
// the metrics registry, and a bounded flight recorder queryable live
// via Tracer().Recorder(), the gsi.__admin Traces op, or gsictl
// traces. A nil *Tracer is valid and inert.
type Tracer = trace.Tracer

// TraceSampler decides per root span whether a new trace is recorded
// (latency histograms observe regardless).
type TraceSampler = trace.Sampler

// SpanRecord is one finished span as the flight recorder holds it.
type SpanRecord = trace.SpanRecord

// TraceQuery selects spans from the flight recorder (slowest-N,
// by-op, by-peer-DN, errors-only, or one full trace by id).
type TraceQuery = trace.Query

// TransferInfo is one active bulk transfer as the admin plane lists it.
type TransferInfo = trace.TransferInfo

// SampleAlways records every trace (the default sampler).
func SampleAlways() TraceSampler { return trace.AlwaysSample() }

// SampleNever records no traces; histograms still observe.
func SampleNever() TraceSampler { return trace.NeverSample() }

// SampleRatio records approximately ratio of traces (0..1).
func SampleRatio(ratio float64) TraceSampler { return trace.RatioSampler(ratio) }

// TraceExporterConfig parameterizes the push exporter of
// WithTraceExporter: finished spans and the Prometheus exposition are
// periodically POSTed as a JSON batch to URL, with bounded queueing
// and retry with exponential backoff. For scrapeless deployments —
// batch workers behind NAT, short-lived submit hosts — that cannot
// expose a /metrics listener.
type TraceExporterConfig struct {
	// URL receives the POSTed batches.
	URL string
	// Interval between pushes (0 = 10s).
	Interval time.Duration
	// MaxQueue bounds spans buffered between pushes; oldest drop first
	// (0 = 8192).
	MaxQueue int
	// MaxRetries bounds redelivery attempts per batch (0 = 3).
	MaxRetries int
	// MaxBacklog bounds retained undeliverable batches across pushes
	// during a collector outage; the oldest rotates out first and its
	// spans count toward trace_export_dropped_total (0 = 16).
	MaxBacklog int
	// Client is the HTTP client used for delivery (nil = 10s timeout).
	Client *http.Client
}

// WithTracing enables end-to-end tracing on a Client or Server: every
// exchange, stream open, and striped transfer produces a causally
// linked trace whose context crosses the wire on both transports, so
// the client's spans and the server's spans share one trace id.
// Tracing is materialized by NewClient/NewServer; with WithMetrics
// also set, per-op latency histograms (gsi_op_seconds) land in the
// same registry. Disabled tracing costs nothing on the hot path.
func WithTracing() Option {
	return func(s *settings) error {
		s.traceEnable = true
		return nil
	}
}

// WithTraceSampler sets the recording sampler (implies WithTracing).
// Sampling gates the flight recorder and exporter only — per-op
// latency histograms observe every operation regardless.
func WithTraceSampler(sm TraceSampler) Option {
	return func(s *settings) error {
		if sm == nil {
			return errors.New("gsi: nil trace sampler")
		}
		s.traceSampler = sm
		s.traceEnable = true
		return nil
	}
}

// WithTraceExporter attaches a batching push exporter to the handle's
// tracer (implies WithTracing). The exporter runs until the tracer is
// closed (Tracer().Close()).
func WithTraceExporter(cfg TraceExporterConfig) Option {
	return func(s *settings) error {
		if cfg.URL == "" {
			return errors.New("gsi: trace exporter needs a URL")
		}
		c := cfg
		s.traceExport = &c
		s.traceEnable = true
		return nil
	}
}

// buildTracer materializes the handle's tracer from resolved
// settings. Idempotent: an already-materialized (or adopted) tracer
// is kept.
func (s *settings) buildTracer() error {
	if !s.traceEnable || s.tracer != nil {
		return nil
	}
	t := trace.New(trace.Config{Registry: s.metrics, Sampler: s.traceSampler})
	if s.traceExport != nil {
		ecfg := trace.ExporterConfig{
			URL:        s.traceExport.URL,
			Interval:   s.traceExport.Interval,
			MaxQueue:   s.traceExport.MaxQueue,
			MaxRetries: s.traceExport.MaxRetries,
			MaxBacklog: s.traceExport.MaxBacklog,
			Client:     s.traceExport.Client,
		}
		if reg := s.metrics; reg != nil {
			ecfg.Metrics = func() string {
				var b strings.Builder
				if err := reg.WritePrometheus(&b); err != nil {
					return ""
				}
				return b.String()
			}
		}
		exp, err := trace.NewExporter(ecfg)
		if err != nil {
			return err
		}
		t.AttachExporter(exp)
	}
	s.tracer = t
	return nil
}

// Tracer returns the client's tracer (nil unless WithTracing was set
// at NewClient).
func (c *Client) Tracer() *Tracer { return c.base.tracer }

// peerDNOf renders the peer's grid identity for span records and the
// transfer registry.
func peerDNOf(p Peer) string { return p.Identity.String() }

// clientHandshakeSpan records the transport handshake as a
// retroactive child of sp when the session exposes precise timing
// (GT2 sessions carry it on the secured connection).
func clientHandshakeSpan(sp *trace.Span, sess Session) {
	if sp == nil {
		return
	}
	if g := gt2SessionOf(sess); g != nil {
		start, d := g.conn.HandshakeTiming()
		if d > 0 {
			sp.AddTimed("client.handshake", start, d, "")
		}
	}
}

// Tracer returns the server's tracer (nil unless WithTracing was set
// at NewServer).
func (s *Server) Tracer() *Tracer { return s.base.tracer }

// tracedStream wraps a Stream with span accounting: bytes and
// cumulative open/seal pipeline time accumulate per direction, and
// Close ends the owning span after emitting the pipeline child spans.
// Lane spans (striped transfers) and an active-transfer registration
// may ride along; both are released exactly once at Close.
type tracedStream struct {
	Stream
	sp    *trace.Span
	lanes []*trace.Span
	xfer  *trace.Transfer
	side  string // "client" or "server": prefixes the pipeline span ops

	opened  time.Time
	readNS  atomic.Int64
	writeNS atomic.Int64
	readB   atomic.Int64
	writeB  atomic.Int64
	closed  atomic.Bool
}

// newTracedStream wraps st; sp must be non-nil (callers skip wrapping
// when tracing is off).
func newTracedStream(st Stream, sp *trace.Span, side string) *tracedStream {
	return &tracedStream{Stream: st, sp: sp, side: side, opened: time.Now()}
}

func (t *tracedStream) Read(p []byte) (int, error) {
	start := time.Now()
	n, err := t.Stream.Read(p)
	t.readNS.Add(int64(time.Since(start)))
	if n > 0 {
		t.readB.Add(int64(n))
		t.xfer.Add(int64(n))
	}
	return n, err
}

func (t *tracedStream) Write(p []byte) (int, error) {
	start := time.Now()
	n, err := t.Stream.Write(p)
	t.writeNS.Add(int64(time.Since(start)))
	if n > 0 {
		t.writeB.Add(int64(n))
		t.xfer.Add(int64(n))
	}
	return n, err
}

// finish emits the pipeline child spans and ends the owning span (and
// lane spans, oldest id first) exactly once.
func (t *tracedStream) finish(err error) {
	if !t.closed.CompareAndSwap(false, true) {
		return
	}
	// Reads cross the open (unseal) pipeline; writes the seal pipeline.
	if ns := t.readNS.Load(); ns > 0 || t.readB.Load() > 0 {
		t.sp.AddTimed(t.side+".open.pipeline", t.opened, time.Duration(ns), "")
	}
	if ns := t.writeNS.Load(); ns > 0 || t.writeB.Load() > 0 {
		t.sp.AddTimed(t.side+".seal.pipeline", t.opened, time.Duration(ns), "")
	}
	for _, lane := range t.lanes {
		lane.End()
	}
	t.sp.AddBytes(t.readB.Load() + t.writeB.Load())
	t.sp.SetError(err)
	t.sp.End()
	t.xfer.End()
}

func (t *tracedStream) Close() error {
	err := t.Stream.Close()
	t.finish(err)
	return err
}
