package gsi

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/gss"
)

// ProtectionLevel selects the message-protection mechanism a client
// requests — the two GT3 mechanisms of the paper's §4.4, which the GT2
// transport maps onto its record protection.
type ProtectionLevel int

const (
	// ProtectionPrivate establishes a security context and encrypts every
	// message under it (WS-SecureConversation on GT3, wrapped records on
	// GT2). Amortizes the handshake across calls; the default.
	ProtectionPrivate ProtectionLevel = iota
	// ProtectionSigned signs each message independently with the caller's
	// credential (per-message XML signature on GT3). Stateless: no
	// handshake, but every message pays a signature. GT2 — whose
	// transport always establishes a context — treats it as
	// ProtectionPrivate.
	ProtectionSigned
)

// String names the protection level.
func (p ProtectionLevel) String() string {
	switch p {
	case ProtectionPrivate:
		return "private"
	case ProtectionSigned:
		return "signed"
	default:
		return "unknown"
	}
}

// settings is the resolved option set of a Client, Server, Connect, or
// Serve call. Options compose left to right; per-call options override
// per-handle ones.
type settings struct {
	transport     Transport
	protection    ProtectionLevel
	delegation    bool
	anonymous     bool
	rejectLimited bool
	maxProxyDepth int
	expectedPeer  Name
	lifetime      time.Duration
	deadlineSkew  time.Duration

	// Session pooling. poolEnable is set by any pool option; NewClient
	// then creates a private pool unless one was adopted explicitly.
	pool           *SessionPool
	poolEnable     bool
	poolMaxIdle    int           // 0 = DefaultMaxIdle
	poolIdleTTL    time.Duration // 0 = DefaultIdleTTL
	poolMaxPerHost int           // 0 = DefaultMaxConcurrentPerHost, < 0 = unlimited

	// streamHandler receives streams opened by peers (Server option).
	streamHandler StreamHandler

	// stripes is the parallel-stripe count OpenStripedStream fans a
	// stream over (client option; 0/1 = single stream). Deliberately not
	// part of the pool key: stripe sessions are ordinary pooled sessions.
	stripes int

	// Credential lifecycle. credman makes a Client's credential dynamic;
	// the renew* knobs tune a CredentialManager under construction.
	credman       *CredentialManager
	renewHorizon  time.Duration // 0 = credman.DefaultHorizon
	renewJitter   time.Duration
	renewRetryMin time.Duration
	renewRetryMax time.Duration

	// Authorization pipeline. authzPipeline adopts a prebuilt pipeline;
	// the authz* fields assemble a private one (any of them also sets
	// authzEnabled so servers know to build it). authzRev counts
	// assembly-option applications, so Serve can tell per-call additions
	// from the handle's baseline.
	authzPipeline *AuthorizationPipeline
	authzAdopted  bool // authzPipeline came from WithAuthorizationPipeline
	authzEnabled  bool
	authzRev      int
	authzLocal    *Policy
	authzVOs      []*Certificate
	authzGridMap  *GridMap
	authzTTL      time.Duration
	authzTTLSet   bool
	authzAudit    AuditSink
	authzAuditOff bool // WithoutDecisionAudit: durable audit not auto-wired

	// Observability & control plane (PR 6). metrics is the registry
	// instruments land in; metricsAddr optionally exposes it (plus
	// /healthz) over plaintext HTTP for Prometheus scrapes. reloadCfg
	// watches trust/policy files; adminEnable publishes the gsi.__admin
	// port type on GT3 endpoints, acting on adminPool when set.
	metrics     *MetricsRegistry
	metricsAddr string
	reloadCfg   *ReloadConfig
	adminEnable bool
	adminPool   *SessionPool

	// Durable trust plane (PR 9). durableDir roots the WAL-backed
	// policy/gridmap/audit stores; durable is the opened state (handle
	// construction materializes it). casUpstream configures the pulled
	// policy-bundle replica; casPublish exports a community server's
	// bundle feed on the endpoint's container.
	durableDir  string
	durable     *DurableState
	casUpstream *CASUpstreamConfig
	casPublish  *CASServer

	// Control-plane fast path (PR 10). walSync selects the durable
	// journal's fsync discipline; autoCompact snapshots the journal in
	// the background once it outgrows the thresholds; cacheWarmN makes
	// the CAS syncer pull the publisher's hot decision keys after a
	// bundle apply and pre-compute those decisions locally.
	walSync     WALSyncPolicy
	walSyncSet  bool
	autoCompact *AutoCompactConfig
	cacheWarmN  int

	// End-to-end tracing (PR 8). traceEnable is set by any trace
	// option; NewClient/NewServer then materialize tracer (per-op
	// histograms land in metrics when both are set). traceExport
	// attaches a push exporter to the tracer at materialization.
	traceEnable  bool
	traceSampler TraceSampler
	traceExport  *TraceExporterConfig
	tracer       *Tracer
}

// Option configures a Client or Server handle, or a single
// Connect/Serve call on one. Options that do not apply to a given
// operation (e.g. WithTransport on the in-memory Establish) are
// ignored by it; the context-shaping options (WithDeadlineSkew) and
// the GSS options apply everywhere a handshake or deadline exists.
type Option func(*settings) error

// WithTransport selects how sessions reach peers: TransportGT2 (the
// raw-socket GT2 protocol) or TransportGT3 (SOAP over HTTP). Callers
// pick transport by option, never by function name.
func WithTransport(t Transport) Option {
	return func(s *settings) error {
		if t == nil {
			return errors.New("gsi: nil transport")
		}
		s.transport = t
		return nil
	}
}

// WithMessageProtection selects the protection mechanism for sessions.
func WithMessageProtection(level ProtectionLevel) Option {
	return func(s *settings) error {
		if level != ProtectionPrivate && level != ProtectionSigned {
			return errors.New("gsi: unknown protection level")
		}
		s.protection = level
		return nil
	}
}

// WithDelegation announces the intent to delegate a proxy credential to
// the peer immediately after establishment (sets the GSS delegation
// flag, so the acceptor can prepare).
func WithDelegation() Option {
	return func(s *settings) error {
		s.delegation = true
		return nil
	}
}

// WithAnonymous withholds the client identity: only the server
// authenticates (policy-discovery requests).
func WithAnonymous() Option {
	return func(s *settings) error {
		s.anonymous = true
		return nil
	}
}

// WithRejectLimited refuses peers that authenticate with limited proxy
// credentials (the GSI job-initiation rule).
func WithRejectLimited() Option {
	return func(s *settings) error {
		s.rejectLimited = true
		return nil
	}
}

// WithMaxProxyDepth caps the peer chain's delegation depth (0 removes
// the cap).
func WithMaxProxyDepth(n int) Option {
	return func(s *settings) error {
		if n < 0 {
			return errors.New("gsi: negative proxy depth")
		}
		s.maxProxyDepth = n
		return nil
	}
}

// WithExpectedPeer requires the peer's grid identity (its end-entity
// subject, regardless of proxying) to equal name.
func WithExpectedPeer(name Name) Option {
	return func(s *settings) error {
		s.expectedPeer = name
		return nil
	}
}

// WithLifetime caps the security-context lifetime (0 means the 12h
// default; never beyond the credential's own expiry).
func WithLifetime(d time.Duration) Option {
	return func(s *settings) error {
		if d < 0 {
			return errors.New("gsi: negative lifetime")
		}
		s.lifetime = d
		return nil
	}
}

// WithSessionPool enables session pooling on a Client: Connect checks
// sessions out of the pool and Session.Close returns them for reuse, so
// the public-key handshake is paid once per pooled connection instead
// of once per call (the paper's WS-SecureConversation amortization
// argument). Passing nil gives the client a private pool built from the
// other pool options; passing a pool built with NewSessionPool shares
// it — sessions are keyed by (endpoint, transport, protection,
// delegation, credential), so clients with different credentials never
// receive each other's sessions.
func WithSessionPool(p *SessionPool) Option {
	return func(s *settings) error {
		s.pool = p
		s.poolEnable = true
		return nil
	}
}

// WithMaxIdle caps the idle sessions the pool parks per key (omit for
// DefaultMaxIdle; a pool always parks at least one). Implies pooling.
func WithMaxIdle(n int) Option {
	return func(s *settings) error {
		if n <= 0 {
			return errors.New("gsi: max idle must be positive")
		}
		s.poolMaxIdle = n
		s.poolEnable = true
		return nil
	}
}

// WithIdleTTL bounds how long an idle session may sit parked before the
// pool discards it instead of reusing it (omit for DefaultIdleTTL).
// Implies pooling.
func WithIdleTTL(d time.Duration) Option {
	return func(s *settings) error {
		if d <= 0 {
			return errors.New("gsi: idle TTL must be positive")
		}
		s.poolIdleTTL = d
		s.poolEnable = true
		return nil
	}
}

// WithMaxConcurrentPerHost caps live sessions (checked out plus idle)
// per pool key; checkouts beyond the cap wait for a return until their
// context ends (default DefaultMaxConcurrentPerHost; negative removes
// the cap). Implies pooling.
func WithMaxConcurrentPerHost(n int) Option {
	return func(s *settings) error {
		if n == 0 {
			return errors.New("gsi: zero concurrent-per-host cap")
		}
		s.poolMaxPerHost = n
		s.poolEnable = true
		return nil
	}
}

// WithStreamHandler installs the server-side receiver for streams
// peers open with Session.OpenStream: bulk transfers cross as chunk
// records through the pooled record layer instead of one monolithic
// message, so their size is unbounded. The stream's op is authorized
// once — through the authorization pipeline when one is configured —
// before the handler sees the stream. Endpoints without a stream
// handler refuse stream opens.
func WithStreamHandler(h StreamHandler) Option {
	return func(s *settings) error {
		if h == nil {
			return errors.New("gsi: nil stream handler")
		}
		s.streamHandler = h
		return nil
	}
}

// WithStripes sets the parallel-stripe count for
// Client.OpenStripedStream: the stream is fanned over k secured
// sessions (checked out of the pool on a pooling client), each stripe
// sealing and writing on its own connection so k stripes drive up to k
// cores. 1 falls back to the single-stream path; requires the GT2
// transport.
func WithStripes(k int) Option {
	return func(s *settings) error {
		if k < 1 || k > maxStripes {
			return fmt.Errorf("gsi: stripe count %d outside [1,%d]", k, maxStripes)
		}
		s.stripes = k
		return nil
	}
}

// WithCredentialManager binds a Client to a CredentialManager: the
// client's credential becomes dynamic — every Connect/Exchange reads
// the manager's current credential, so a rotation is picked up by the
// very next call with no coordination. On a pooling client the pool is
// additionally rekeyed at each rotation: idle sessions under the
// replaced credential are drained, its secure-conversation resumption
// trees are invalidated, and returning sessions are discarded instead
// of parked, while new checkouts handshake under the successor.
func WithCredentialManager(cm *CredentialManager) Option {
	return func(s *settings) error {
		if cm == nil {
			return errors.New("gsi: nil credential manager")
		}
		s.credman = cm
		return nil
	}
}

// WithRenewalHorizon sets how far before the managed credential's
// NotAfter a CredentialManager starts renewing (NewCredentialManager
// option; 0 means the package default).
func WithRenewalHorizon(d time.Duration) Option {
	return func(s *settings) error {
		if d < 0 {
			return errors.New("gsi: negative renewal horizon")
		}
		s.renewHorizon = d
		return nil
	}
}

// WithRenewalJitter desynchronizes renewal across a fleet: each renewal
// fires up to d earlier than the horizon, uniformly at random
// (NewCredentialManager option).
func WithRenewalJitter(d time.Duration) Option {
	return func(s *settings) error {
		if d < 0 {
			return errors.New("gsi: negative renewal jitter")
		}
		s.renewJitter = d
		return nil
	}
}

// WithRenewalRetry bounds the exponential backoff between failed
// renewal attempts (NewCredentialManager option; zeros mean the
// package defaults).
func WithRenewalRetry(min, max time.Duration) Option {
	return func(s *settings) error {
		if min < 0 || max < 0 {
			return errors.New("gsi: negative renewal retry bound")
		}
		if max > 0 && min > max {
			return errors.New("gsi: renewal retry min exceeds max")
		}
		s.renewRetryMin = min
		s.renewRetryMax = max
		return nil
	}
}

// WithAuthorizationPipeline attaches a prebuilt chain-aware
// authorization pipeline (Environment.NewAuthorizationPipeline) to a
// Server: every exchange on both transports passes through it before
// the handler runs, and its decision cache and audit trail are shared
// across all endpoints the server opens. Takes precedence over the
// environment's plain WithAuthorizer engine. Combining it with the
// assembly/tuning options below is an error — the pipeline's policy
// lives inside the pipeline object, so those options could only be
// dropped or misapplied; build the desired variant up front instead.
func WithAuthorizationPipeline(p *AuthorizationPipeline) Option {
	return func(s *settings) error {
		if p == nil {
			return errors.New("gsi: nil authorization pipeline")
		}
		s.authzPipeline = p
		s.authzAdopted = true
		s.authzEnabled = true
		return nil
	}
}

// WithLocalPolicy sets the resource's own policy for the authorization
// pipeline a Server assembles (or Environment.NewAuthorizationPipeline
// builds). Local policy must permit explicitly: a pipeline without one
// denies every exchange.
func WithLocalPolicy(p *Policy) Option {
	return func(s *settings) error {
		if p == nil {
			return errors.New("gsi: nil local policy")
		}
		s.authzLocal = p
		s.authzRev++
		s.authzEnabled = true
		return nil
	}
}

// WithTrustedVO registers community authorization servers whose signed
// assertions the pipeline honors: requests carrying a valid assertion
// from one of these VOs are decided by the intersection of the VO's
// policy and local policy (Figure 2 step 3).
func WithTrustedVO(certs ...*Certificate) Option {
	return func(s *settings) error {
		for _, c := range certs {
			if c == nil {
				return errors.New("gsi: nil VO certificate")
			}
		}
		// Copy-on-write: settings structs are copied by value when
		// per-call options fold over a handle's base, so appending in
		// place could write into the base's backing array and leak one
		// call's VOs into another (a data race under concurrent Serves).
		s.authzVOs = append(append([]*Certificate(nil), s.authzVOs...), certs...)
		s.authzRev++
		s.authzEnabled = true
		return nil
	}
}

// WithGridMap installs the grid-mapfile the pipeline maps authorized
// identities through (paper §5.3 step 3); the resulting local account
// is exposed to handlers as Peer.LocalAccount. A permitted requester
// with no entry is denied — the mapping is part of the decision.
func WithGridMap(gm *GridMap) Option {
	return func(s *settings) error {
		if gm == nil {
			return errors.New("gsi: nil gridmap")
		}
		s.authzGridMap = gm
		s.authzRev++
		s.authzEnabled = true
		return nil
	}
}

// WithDurableState roots the server's trust-plane state in dir: the
// authorization pipeline's policy, gridmap, and audit chain journal
// every mutation through a write-ahead log there (fsync before apply),
// and a restarted server replays the log to resume with identical
// state AND identical generation counters — so the decision cache
// re-warms instead of stampeding, and the audit hash chain is
// re-verified end to end. The durable objects replace WithLocalPolicy /
// WithGridMap (combining them is an error: two sources of truth for one
// policy); mutate them through Server.DurableState. Handle option — it
// may not appear per-call on Serve.
func WithDurableState(dir string) Option {
	return func(s *settings) error {
		if dir == "" {
			return errors.New("gsi: empty durable state directory")
		}
		s.durableDir = dir
		s.authzRev++
		s.authzEnabled = true
		return nil
	}
}

// WALSyncPolicy selects when the durable journal's appends reach
// stable storage (WithWALSync).
type WALSyncPolicy int

const (
	// WALSyncAlways fsyncs once per mutation: the strictest discipline,
	// and the default — an acknowledged mutation survives kill -9.
	WALSyncAlways WALSyncPolicy = iota
	// WALSyncBatched is group commit: concurrent mutations coalesce onto
	// one fsync, but every mutation still blocks until its own record is
	// on stable storage. Identical durability per acknowledged mutation,
	// a fraction of the fsync count under write concurrency.
	WALSyncBatched
)

// WithWALSync selects the durable journal's fsync discipline. Both
// policies acknowledge a mutation only after its record is durable;
// WALSyncBatched merely shares fsyncs between concurrent writers.
// Requires WithDurableState (or pass to OpenDurableState directly).
func WithWALSync(p WALSyncPolicy) Option {
	return func(s *settings) error {
		if p != WALSyncAlways && p != WALSyncBatched {
			return errors.New("gsi: unknown WAL sync policy")
		}
		s.walSync = p
		s.walSyncSet = true
		return nil
	}
}

// AutoCompactConfig tunes background journal compaction (WithAutoCompact).
type AutoCompactConfig struct {
	// MaxBytes triggers a compaction once the journal holds at least
	// this many bytes past its last snapshot (0 = no byte threshold).
	MaxBytes int64
	// MaxRecords triggers on records past the last snapshot (0 = no
	// record threshold). At least one threshold must be set.
	MaxRecords uint64
	// Interval is how often the thresholds are checked
	// (0 = DefaultAutoCompactInterval).
	Interval time.Duration
}

// WithAutoCompact starts a background compactor on the durable state:
// a goroutine watches the journal's growth since its last snapshot and
// folds it into a fresh snapshot once a threshold is crossed, bounding
// replay time after a restart without an operator in the loop. The
// snapshot payload is staged off the mutation path; only the final
// rename/rotate stalls writers. Requires WithDurableState (or pass to
// OpenDurableState directly).
func WithAutoCompact(cfg AutoCompactConfig) Option {
	return func(s *settings) error {
		if cfg.MaxBytes < 0 {
			return errors.New("gsi: negative auto-compact byte threshold")
		}
		if cfg.Interval < 0 {
			return errors.New("gsi: negative auto-compact interval")
		}
		if cfg.MaxBytes == 0 && cfg.MaxRecords == 0 {
			return errors.New("gsi: auto-compact config sets no threshold (set MaxBytes and/or MaxRecords)")
		}
		c := cfg
		s.autoCompact = &c
		return nil
	}
}

// WithCacheWarming makes the WithCASUpstream syncer pull the
// publisher's n hottest decision-cache keys after applying a bundle and
// pre-compute those decisions through the local pipeline, so a standby
// promoted mid-incident starts with the community's working set warm
// instead of serving every first request cold. The keys are hints, not
// authority: each decision is computed by THIS server's policy, and a
// warmed entry is not served until the requester's own verified
// credentials confirm the identity it was computed for — a forged key
// can waste one evaluation, never flip a decision. No effect without
// WithCASUpstream. Server option.
func WithCacheWarming(n int) Option {
	return func(s *settings) error {
		if n <= 0 {
			return errors.New("gsi: cache warming wants a positive key count")
		}
		s.cacheWarmN = n
		return nil
	}
}

// CASUpstreamConfig points a resource server at its community server's
// bundle feed (the gsi.__cas.sync port type).
type CASUpstreamConfig struct {
	// Endpoints are the community server addresses, tried in order each
	// sync — the second entry is the standby; a mid-run failover is one
	// failed pull followed by a successful one against the next entry.
	Endpoints []string
	// Cert is the VO's CAS signing certificate; bundles that do not
	// verify against it are rejected and the previous bundle stays live.
	Cert *Certificate
	// Interval is the pull period (0 = DefaultCASSyncInterval).
	Interval time.Duration
}

// WithCASUpstream attaches a pulled CAS policy-bundle replica to the
// server's pipeline: members of the VO that arrive WITHOUT a CAS
// assertion are decided by the intersection of local policy and the
// replicated VO policy, exactly as an assertion would be. Application
// is fail-closed and generation-counted — a bundle with a bad signature
// or stale version leaves the previous bundle live. The control plane
// pulls from Endpoints in order at Interval while an endpoint is open.
// Server option.
func WithCASUpstream(cfg CASUpstreamConfig) Option {
	return func(s *settings) error {
		if len(cfg.Endpoints) == 0 {
			return errors.New("gsi: CAS upstream names no endpoints")
		}
		if cfg.Cert == nil {
			return errors.New("gsi: CAS upstream requires the VO's signing certificate")
		}
		if cfg.Interval < 0 {
			return errors.New("gsi: negative CAS sync interval")
		}
		c := cfg
		c.Endpoints = append([]string(nil), cfg.Endpoints...)
		s.casUpstream = &c
		s.authzRev++
		s.authzEnabled = true
		return nil
	}
}

// WithCASPublisher publishes server's signed policy-bundle feed under
// the reserved handle gsi.__cas.sync on the endpoint's container, for
// resource servers configured with WithCASUpstream to pull. Requires
// TransportGT3 and an authorization pipeline — which resource servers
// may read the VO's membership roll is itself policy. Server option.
func WithCASPublisher(server *CASServer) Option {
	return func(s *settings) error {
		if server == nil {
			return errors.New("gsi: nil CAS server")
		}
		s.casPublish = server
		return nil
	}
}

// WithDecisionCache tunes the pipeline's decision cache: ttl bounds how
// long a decision may be served without re-evaluation (policy, gridmap,
// VO-set, and trust-store mutations invalidate immediately regardless,
// via generation counters). ttl = 0 disables caching — every exchange
// pays the full evaluation. Omitting the option keeps the cache at
// DefaultDecisionTTL. Tuning alone does not create a pipeline: on a
// server it takes effect only alongside an enforcement option
// (WithLocalPolicy, WithTrustedVO, WithGridMap) — a cache with no
// policy would be a deny-everything trap.
func WithDecisionCache(ttl time.Duration) Option {
	return func(s *settings) error {
		if ttl < 0 {
			return errors.New("gsi: negative decision-cache TTL")
		}
		s.authzTTL = ttl
		s.authzRev++
		s.authzTTLSet = true
		return nil
	}
}

// WithAuditSink directs every pipeline decision — permit and deny,
// cached and cold — to sink. Pass a secsvc.AuditLog to land decisions
// in the tamper-evident hash chain of the paper's audit service.
// Observability alone does not create a pipeline: on a server it takes
// effect only alongside an enforcement option (WithLocalPolicy,
// WithTrustedVO, WithGridMap).
func WithAuditSink(sink AuditSink) Option {
	return func(s *settings) error {
		if sink == nil {
			return errors.New("gsi: nil audit sink")
		}
		if s.authzAuditOff {
			return errors.New("gsi: WithAuditSink conflicts with WithoutDecisionAudit")
		}
		s.authzAudit = sink
		s.authzRev++
		return nil
	}
}

// WithoutDecisionAudit keeps per-decision audit recording off even
// when WithDurableState would otherwise wire the durable audit chain
// as the pipeline's sink. For load-bearing deployments that journal
// exchanges elsewhere: with no sink the cached decision path stays
// allocation-free. The durable chain itself remains available through
// DurableState().Audit() for events recorded by other subsystems.
func WithoutDecisionAudit() Option {
	return func(s *settings) error {
		if s.authzAudit != nil {
			return errors.New("gsi: WithoutDecisionAudit conflicts with WithAuditSink")
		}
		s.authzAuditOff = true
		s.authzRev++
		return nil
	}
}

// WithMetrics lands the handle's instruments in reg: session-pool
// occupancy and hit rates, decision-cache effectiveness, credential
// renewal outcomes, handshake/resume latency histograms, record-pool
// pressure, and transport throughput. Registering also installs the
// process-wide instruments (latency histograms, record pool,
// throughput) into reg; several handles may share one registry — their
// per-handle series are disambiguated by an id label carrying the
// credential's grid identity. Scrape with Registry.WritePrometheus, the
// plaintext listener of WithMetricsListener, or the gsi.__admin
// Metrics op.
func WithMetrics(reg *MetricsRegistry) Option {
	return func(s *settings) error {
		if reg == nil {
			return errors.New("gsi: nil metrics registry")
		}
		s.metrics = reg
		return nil
	}
}

// WithMetricsListener serves the WithMetrics registry over plaintext
// HTTP on addr while the endpoint is open: GET /metrics returns the
// Prometheus text exposition, GET /healthz reports 200 while every
// watched reload source is healthy (503 otherwise). Plaintext is
// deliberate — Prometheus scrapes are infrastructure-local and carry
// no secrets; bind to loopback or a management network, never the
// service interface. Server option; requires WithMetrics.
func WithMetricsListener(addr string) Option {
	return func(s *settings) error {
		if addr == "" {
			return errors.New("gsi: empty metrics listener address")
		}
		s.metricsAddr = addr
		return nil
	}
}

// WithReload hot-reloads trust and policy configuration from the files
// named in cfg while the endpoint is open: each watched file is polled
// for changes, re-parsed fully, and applied atomically through the
// generation counters the decision cache already honors — so a changed
// gridmap or withdrawn trust root takes effect on the very next
// request, without a restart. Application is fail-closed: a corrupt or
// truncated file keeps the previous configuration live and bumps the
// reload-failure counter; trust can never drop to empty because a file
// vanished mid-write. Server option.
func WithReload(cfg ReloadConfig) Option {
	return func(s *settings) error {
		if cfg.TrustRoots == "" && cfg.CRLs == "" && cfg.GridMap == "" && cfg.Policy == "" {
			return errors.New("gsi: reload config names no files to watch")
		}
		c := cfg
		s.reloadCfg = &c
		return nil
	}
}

// WithAdmin publishes the administrative port type on the endpoint's
// container under the reserved handle gsi.__admin: stats snapshots,
// metrics scrape, credential retirement, session drain, and forced
// reload, each an op authorized through the server's authorization
// pipeline (resource "ogsa:gsi.__admin", action = op) over an
// established secure conversation. It therefore requires TransportGT3
// and an authorization pipeline — an unauthorized control plane is
// refused outright. Server option.
func WithAdmin() Option {
	return func(s *settings) error {
		s.adminEnable = true
		return nil
	}
}

// WithAdminPool names the session pool the admin surface's Retire and
// Drain ops act on — pools belong to clients, so a server exposing
// pool control is handed the process's shared pool explicitly. Its
// stats also join the Stats op and the metrics registry. Server
// option; implies nothing without WithAdmin or WithMetrics.
func WithAdminPool(p *SessionPool) Option {
	return func(s *settings) error {
		if p == nil {
			return errors.New("gsi: nil admin pool")
		}
		s.adminPool = p
		return nil
	}
}

// WithDeadlineSkew shrinks the context deadline a session operation sees
// by d, budgeting for clock skew between grid parties: an operation that
// must complete by T locally is given up at T-d so the peer — whose
// clock may run up to d ahead — never observes work past its own T.
func WithDeadlineSkew(d time.Duration) Option {
	return func(s *settings) error {
		if d < 0 {
			return errors.New("gsi: negative deadline skew")
		}
		s.deadlineSkew = d
		return nil
	}
}

// authzAssemblyDiffers reports whether pipeline-assembly options were
// applied on top of base — i.e. per-call options asked for a different
// pipeline than the handle already built. Serve rebuilds an
// endpoint-private pipeline in that case rather than silently dropping
// the per-call options.
func (s settings) authzAssemblyDiffers(base settings) bool {
	return s.authzRev != base.authzRev
}

// poolUsable rejects resolved settings that ask for pooling no pool
// can satisfy: pools are materialized by NewClient (or adopted via
// WithSessionPool with a concrete pool), so pool options appearing
// only per-call would otherwise be silently ignored.
func (s settings) poolUsable() error {
	if s.poolEnable && s.pool == nil {
		return errors.New("gsi: pool options require a pooled client (enable pooling at NewClient, or pass a concrete pool via WithSessionPool)")
	}
	return nil
}

// apply folds opts over base, returning the resolved settings. The
// no-option case stays allocation-free: taking &s for the option
// callbacks forces the copy to the heap, so that path lives in
// applyOpts and per-call-option-free hot paths (every pooled Exchange)
// never pay it.
func (s settings) apply(opts []Option) (settings, error) {
	if len(opts) == 0 {
		return s, nil
	}
	return s.applyOpts(opts)
}

func (s settings) applyOpts(opts []Option) (settings, error) {
	for _, opt := range opts {
		if err := opt(&s); err != nil {
			return s, err
		}
	}
	return s, nil
}

// contextConfig assembles the GSS configuration for one side of an
// establishment from an environment, a credential, and settings.
func (s settings) contextConfig(env *Environment, cred *Credential) gss.Config {
	return gss.Config{
		Credential:    cred,
		TrustStore:    env.trust,
		ChainCache:    env.chains,
		Anonymous:     s.anonymous,
		Delegate:      s.delegation,
		RejectLimited: s.rejectLimited,
		MaxProxyDepth: s.maxProxyDepth,
		ExpectedPeer:  s.expectedPeer,
		Lifetime:      s.lifetime,
		Now:           env.now,
	}
}
