package gsi

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/authz"
	"repro/internal/secsvc"
	"repro/internal/wal"
	"repro/internal/wire"
)

// The durable trust plane (PR 9): policy, gridmap, audit chain, and CAS
// state journal through one segmented write-ahead log, so a restarted
// server resumes with the exact rule set, mapfile, audit chain, and —
// critically — the exact generation counters it crashed with. Identical
// generations mean the sharded decision cache re-warms naturally
// instead of stampeding the cold path, and replicas never observe a
// bundle version moving backwards.

// AuditLog is the paper's §4.1 audit service with its tamper-evident
// hash chain (see secsvc). A DurableState's log journals every event.
type AuditLog = secsvc.AuditLog

// AuditEvent is one hash-chained entry of an AuditLog, as returned by
// AuditLog.Events.
type AuditEvent = secsvc.AuditEvent

// Shared-WAL record kinds: one log carries all three subsystems'
// records, discriminated by kind.
const (
	kindAuthz uint8 = 1 // authz.Mutation (policy + gridmap)
	kindAudit uint8 = 2 // secsvc.AuditEvent
	kindCAS   uint8 = 3 // cas mutation (membership, roles, VO policy)
)

const durableSnapshotVersion = 1

// DurableState is one directory of durable trust-plane state: a WAL
// plus the live objects bound to it. Obtain one with OpenDurableState
// (or implicitly via the WithDurableState server option), mutate the
// Policy/GridMap/Audit as usual — every mutation is journaled before it
// applies — and Compact periodically to bound replay time.
type DurableState struct {
	mu  sync.Mutex
	w   *wal.WAL
	dir string

	policy  *Policy
	gridmap *GridMap
	audit   *AuditLog

	cas *CASServer
	// casSnap and casBacklog preserve replayed CAS state until a server
	// attaches: the snapshot's encoded state and every kindCAS record
	// seen since, in order.
	casSnap    []byte
	casBacklog [][]byte

	// Background compaction (WithAutoCompact).
	compactStop chan struct{}
	compactDone chan struct{}
	stopOnce    sync.Once

	cmu            sync.Mutex
	autoCompacts   uint64
	lastCompactErr string
}

// DefaultAutoCompactInterval is how often the background compactor
// checks the journal against its thresholds when
// AutoCompactConfig.Interval is zero.
const DefaultAutoCompactInterval = 5 * time.Second

// OpenDurableState opens (or creates) the durable trust plane rooted at
// dir: the WAL is replayed — snapshot first, then every journaled
// mutation — into fresh Policy, GridMap, and AuditLog objects, the
// audit hash chain is re-verified end to end, and the objects are bound
// so subsequent mutations journal through the log with fsync-before-
// apply semantics. Fail closed: corruption anywhere but a torn final
// record refuses to open.
//
// The options honored here are WithWALSync and WithAutoCompact; others
// do not apply to a bare durable state and are ignored, matching the
// Option contract.
func OpenDurableState(dir string, opts ...Option) (*DurableState, error) {
	const op = "gsi.OpenDurableState"
	var cfg settings
	cfg, err := cfg.apply(opts)
	if err != nil {
		return nil, opErr(op, err)
	}
	return openDurable(op, dir, cfg)
}

func openDurable(op, dir string, cfg settings) (*DurableState, error) {
	wopts := wal.Options{}
	if cfg.walSyncSet && cfg.walSync == WALSyncBatched {
		wopts.Sync = wal.SyncBatched
	}
	w, err := wal.Open(dir, wopts)
	if err != nil {
		return nil, opErr(op, err)
	}
	ds := &DurableState{
		w:       w,
		dir:     dir,
		policy:  authz.NewPolicy(authz.DenyOverrides),
		gridmap: authz.NewGridMap(),
		audit:   secsvc.NewAuditLog(),
	}
	var auditEvents []secsvc.AuditEvent
	if snap, _, ok := w.Snapshot(); ok {
		auditEvents, err = ds.restoreSnapshot(snap)
		if err != nil {
			w.Close()
			return nil, opErr(op, err)
		}
	}
	err = w.Replay(func(rec wal.Record) error {
		switch rec.Kind {
		case kindAuthz:
			m, err := authz.DecodeMutation(rec.Payload)
			if err != nil {
				return err
			}
			return authz.ApplyMutation(m, ds.policy, ds.gridmap)
		case kindAudit:
			e, err := secsvc.DecodeAuditEvent(rec.Payload)
			if err != nil {
				return err
			}
			auditEvents = append(auditEvents, e)
			return nil
		case kindCAS:
			ds.casBacklog = append(ds.casBacklog, append([]byte(nil), rec.Payload...))
			return nil
		default:
			return fmt.Errorf("gsi: journal record %d has unknown kind %d", rec.Seq, rec.Kind)
		}
	})
	if err != nil {
		w.Close()
		return nil, opErr(op, err)
	}
	// Restore re-verifies the whole hash chain — the replayed trail is
	// trusted exactly as far as its chain proves.
	if err := ds.audit.Restore(auditEvents); err != nil {
		w.Close()
		return nil, opErr(op, err)
	}
	store := walStore{w: w}
	ds.policy.Bind(store)
	ds.gridmap.Bind(store)
	ds.audit.SetJournal(func(e secsvc.AuditEvent) error {
		_, err := w.Append(kindAudit, secsvc.EncodeAuditEvent(e))
		return err
	})
	if cfg.autoCompact != nil {
		ds.startAutoCompact(*cfg.autoCompact)
	}
	return ds, nil
}

// startAutoCompact launches the background compactor: each tick reads
// the journal's growth since its last snapshot and runs Compact once a
// threshold is crossed. Compact stages the snapshot payload off the
// mutation path, so writers stall only for the final rotate/rename. A
// failed compaction (e.g. sustained churn exhausting the stale-snapshot
// retries) is recorded and retried next tick; the journal stays intact.
func (d *DurableState) startAutoCompact(cfg AutoCompactConfig) {
	interval := cfg.Interval
	if interval <= 0 {
		interval = DefaultAutoCompactInterval
	}
	d.compactStop = make(chan struct{})
	d.compactDone = make(chan struct{})
	go func() {
		defer close(d.compactDone)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-d.compactStop:
				return
			case <-t.C:
				st := d.w.Stats()
				due := (cfg.MaxBytes > 0 && st.BytesSinceSnapshot >= cfg.MaxBytes) ||
					(cfg.MaxRecords > 0 && st.RecordsSinceSnapshot >= cfg.MaxRecords)
				if !due || st.RecordsSinceSnapshot == 0 {
					continue
				}
				err := d.Compact()
				d.cmu.Lock()
				if err != nil {
					d.lastCompactErr = err.Error()
				} else {
					d.autoCompacts++
					d.lastCompactErr = ""
				}
				d.cmu.Unlock()
			}
		}
	}()
}

// JournalStats describes the durable journal's shape and the background
// compactor's history, for the admin surface and compaction tuning.
type JournalStats struct {
	// Segments, LastSeq, and SnapshotSeq mirror the journal's on-disk
	// shape: live segment files, the newest record, and the last record
	// the snapshot covers.
	Segments    int    `json:"segments"`
	LastSeq     uint64 `json:"last_seq"`
	SnapshotSeq uint64 `json:"snapshot_seq"`
	// RecordsSinceSnapshot and BytesSinceSnapshot measure replay debt —
	// what a restart would re-apply.
	RecordsSinceSnapshot uint64 `json:"records_since_snapshot"`
	BytesSinceSnapshot   int64  `json:"bytes_since_snapshot"`
	// AutoCompactions counts background compactions since open;
	// LastCompactError is the most recent background failure ("" after a
	// success).
	AutoCompactions  uint64 `json:"auto_compactions"`
	LastCompactError string `json:"last_compact_error,omitempty"`
}

// JournalStats reports the journal's current shape.
func (d *DurableState) JournalStats() JournalStats {
	st := d.w.Stats()
	d.cmu.Lock()
	defer d.cmu.Unlock()
	return JournalStats{
		Segments:             st.Segments,
		LastSeq:              st.LastSeq,
		SnapshotSeq:          st.SnapshotSeq,
		RecordsSinceSnapshot: st.RecordsSinceSnapshot,
		BytesSinceSnapshot:   st.BytesSinceSnapshot,
		AutoCompactions:      d.autoCompacts,
		LastCompactError:     d.lastCompactErr,
	}
}

// materializeDurable opens the WithDurableState directory (once per
// handle) and substitutes the durable objects into the pipeline
// assembly slots, so newPipeline builds over the journaled policy and
// gridmap and the decision trail lands in the journaled audit chain.
// Combining with WithLocalPolicy/WithGridMap is refused: two sources of
// truth for one policy, and the ad-hoc one would silently win.
func (s *settings) materializeDurable() error {
	if s.durableDir == "" {
		if s.walSyncSet || s.autoCompact != nil {
			return errors.New("gsi: WithWALSync and WithAutoCompact configure the durable journal; they require WithDurableState")
		}
		return nil
	}
	if s.durable != nil {
		return nil
	}
	if s.authzLocal != nil || s.authzGridMap != nil {
		return errors.New("gsi: WithDurableState cannot combine with WithLocalPolicy or WithGridMap; mutate the durable objects via Server.DurableState instead")
	}
	ds, err := openDurable("gsi.OpenDurableState", s.durableDir, *s)
	if err != nil {
		return err
	}
	s.durable = ds
	s.authzLocal = ds.Policy()
	s.authzGridMap = ds.GridMap()
	if s.authzAudit == nil && !s.authzAuditOff {
		s.authzAudit = ds.Audit()
	}
	return nil
}

// walStore journals authz mutations as kindAuthz records.
type walStore struct{ w *wal.WAL }

func (s walStore) Journal(m authz.Mutation) error {
	_, err := s.w.Append(kindAuthz, m.Encode())
	return err
}

// Policy returns the durable local policy (bound: every mutation
// journals first).
func (d *DurableState) Policy() *Policy { return d.policy }

// GridMap returns the durable grid-mapfile.
func (d *DurableState) GridMap() *GridMap { return d.gridmap }

// Audit returns the durable audit log; use it as the pipeline's audit
// sink to land the decision trail in the journal.
func (d *DurableState) Audit() *AuditLog { return d.audit }

// LastSeq reports the journal's last record sequence number.
func (d *DurableState) LastSeq() uint64 { return d.w.LastSeq() }

// AttachCAS binds a community server to the durable state: CAS state
// replayed from the journal (snapshot plus every journaled mutation) is
// restored into server, and its subsequent mutations journal as kindCAS
// records. At most one server may attach.
func (d *DurableState) AttachCAS(server *CASServer) error {
	const op = "gsi.DurableState.AttachCAS"
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.cas != nil {
		return opErr(op, errors.New("gsi: a CAS server is already attached"))
	}
	if len(d.casSnap) > 0 {
		if err := server.RestoreState(d.casSnap); err != nil {
			return opErr(op, err)
		}
	}
	for i, p := range d.casBacklog {
		if err := server.ApplyReplayed(p); err != nil {
			return opErr(op, fmt.Errorf("gsi: replaying CAS journal record %d: %w", i, err))
		}
	}
	server.SetJournal(func(payload []byte) error {
		_, err := d.w.Append(kindCAS, payload)
		return err
	})
	d.cas = server
	d.casSnap = nil
	d.casBacklog = nil
	return nil
}

// Compact folds the journal into one snapshot — current policy,
// gridmap, audit chain, and CAS state — and truncates the segments it
// covers, bounding replay time after the next restart. Mutations racing
// the compaction are detected, never lost: the journal position is
// captured before the state is encoded, and the WAL refuses the
// snapshot if any record landed past it (the encoded payload could not
// account for it), in which case Compact re-captures and retries. Under
// sustained mutation churn it gives up after a few attempts and reports
// the stale-snapshot error; the journal is untouched either way.
func (d *DurableState) Compact() error {
	const op = "gsi.DurableState.Compact"
	d.mu.Lock()
	defer d.mu.Unlock()
	var err error
	for attempt := 0; attempt < 5; attempt++ {
		covered := d.w.LastSeq()
		err = d.w.WriteSnapshotAt(d.encodeSnapshotLocked(), covered)
		if !errors.Is(err, wal.ErrSnapshotStale) {
			break
		}
	}
	if err != nil {
		return opErr(op, err)
	}
	return nil
}

// encodeSnapshotLocked captures the combined snapshot payload; the
// caller holds d.mu. Each object's EncodeState takes that object's own
// lock, and every store journals-then-applies under that same lock — so
// the captured state contains a mutation if and only if its record's
// seq is at most the LastSeq read before encoding began, which is
// exactly the invariant WriteSnapshotAt enforces.
func (d *DurableState) encodeSnapshotLocked() []byte {
	e := wire.NewEncoder()
	e.U8(durableSnapshotVersion)
	e.Bytes(d.policy.EncodeState())
	e.Bytes(d.gridmap.EncodeState())
	events := d.audit.Events()
	e.U32(uint32(len(events)))
	for _, ev := range events {
		e.Bytes(secsvc.EncodeAuditEvent(ev))
	}
	casState := d.casSnap
	backlog := d.casBacklog
	if d.cas != nil {
		casState = d.cas.EncodeState()
		backlog = nil
	}
	e.Bytes(casState)
	e.U32(uint32(len(backlog)))
	for _, p := range backlog {
		e.Bytes(p)
	}
	return e.Finish()
}

// maxSnapshotAuditEvents bounds decoded snapshot audit trails (a
// corrupt count must not size an allocation).
const maxSnapshotAuditEvents = 1 << 24

// restoreSnapshot applies a combined snapshot payload, returning the
// audit events it carried (the caller appends journaled events and
// Restores the chain once).
func (d *DurableState) restoreSnapshot(snap []byte) ([]secsvc.AuditEvent, error) {
	dec := wire.NewDecoder(snap)
	if v := dec.U8(); dec.Err() == nil && v != durableSnapshotVersion {
		return nil, fmt.Errorf("gsi: unknown durable snapshot version %d", v)
	}
	policyState := dec.Bytes()
	gridmapState := dec.Bytes()
	n := dec.Count("snapshot audit event", maxSnapshotAuditEvents)
	events := make([]secsvc.AuditEvent, 0, min(n, 4096))
	for i := 0; i < n && dec.Err() == nil; i++ {
		e, err := secsvc.DecodeAuditEvent(dec.Bytes())
		if err != nil {
			return nil, err
		}
		events = append(events, e)
	}
	casState := dec.Bytes()
	bn := dec.Count("snapshot CAS record", maxSnapshotAuditEvents)
	backlog := make([][]byte, 0, min(bn, 4096))
	for i := 0; i < bn && dec.Err() == nil; i++ {
		backlog = append(backlog, append([]byte(nil), dec.Bytes()...))
	}
	if err := dec.Done(); err != nil {
		return nil, err
	}
	if err := d.policy.RestoreState(policyState); err != nil {
		return nil, err
	}
	if err := d.gridmap.RestoreState(gridmapState); err != nil {
		return nil, err
	}
	if len(casState) > 0 {
		d.casSnap = append([]byte(nil), casState...)
	}
	d.casBacklog = backlog
	return events, nil
}

// Close stops the background compactor, then syncs and closes the
// journal. The bound objects refuse further mutations (journaling into
// a closed WAL errors), which is the correct fail-closed posture for a
// trust plane that can no longer persist.
func (d *DurableState) Close() error {
	if d.compactStop != nil {
		d.stopOnce.Do(func() {
			close(d.compactStop)
			<-d.compactDone
		})
	}
	return d.w.Close()
}
