package gsi

import (
	"context"
	"errors"
	"strings"

	"repro/internal/gridcert"
	"repro/internal/gss"
	"repro/internal/myproxy"
	"repro/internal/soap"
)

// The error taxonomy of the public API. Every operation on an
// Environment, Client, Server, or Session returns either nil or an
// *Error wrapping one of these sentinels plus the underlying cause, so
// callers branch with errors.Is and inspect detail with errors.As:
//
//	sess, err := client.Connect(ctx, addr)
//	switch {
//	case errors.Is(err, gsi.ErrContextClosed):      // ctx canceled / deadline hit
//	case errors.Is(err, gsi.ErrExpiredCredential):  // renew and retry
//	case errors.Is(err, gsi.ErrUntrustedIssuer):    // fix trust roots
//	case errors.Is(err, gsi.ErrTransport):          // network-level retry
//	}
var (
	// ErrExpiredCredential marks operations that failed because a
	// credential, certificate, or stored proxy was outside its validity
	// window.
	ErrExpiredCredential = errors.New("gsi: expired credential")
	// ErrUntrustedIssuer marks chains that do not terminate at a trusted
	// root (or were signed by a revoked certificate).
	ErrUntrustedIssuer = errors.New("gsi: untrusted issuer")
	// ErrAuthentication marks mutual-authentication failures other than
	// trust-root problems: bad transcript signatures, limited proxies
	// where full ones are required, identity mismatches.
	ErrAuthentication = errors.New("gsi: authentication failed")
	// ErrUnauthorized marks requests that authenticated but were denied by
	// policy (local, VO, or container authorization).
	ErrUnauthorized = errors.New("gsi: unauthorized")
	// ErrContextClosed marks operations aborted because the request
	// context was canceled or its deadline passed, or because the
	// underlying security context expired.
	ErrContextClosed = errors.New("gsi: context closed")
	// ErrTransport marks network- or framing-level failures: dial errors,
	// broken connections, SOAP faults that carry no security meaning.
	ErrTransport = errors.New("gsi: transport failure")
	// ErrNotFound marks lookups of absent entities (stored MyProxy
	// credentials, unknown service handles, unknown jobs).
	ErrNotFound = errors.New("gsi: not found")
	// ErrBadPassphrase marks MyProxy passphrase failures (including
	// lockout after repeated attempts).
	ErrBadPassphrase = errors.New("gsi: bad passphrase")
	// ErrPoolExhausted marks session-pool checkouts that could not
	// produce a session: the per-host concurrency cap was still reached
	// when the checkout deadline passed, or the pool was closed. A
	// checkout abandoned by explicit cancellation reports
	// ErrContextClosed instead.
	ErrPoolExhausted = errors.New("gsi: session pool exhausted")
)

// Error is the concrete error type returned at the pkg/gsi boundary. It
// carries the public operation that failed, the taxonomy sentinel the
// failure belongs to, and the underlying cause; errors.Is matches both
// the sentinel and the cause chain, and errors.As can recover *Error for
// the Op.
type Error struct {
	// Op is the public operation, e.g. "gsi.Client.Connect".
	Op string
	// Kind is the taxonomy sentinel (ErrTransport, ErrUnauthorized, …),
	// or nil when the failure fits no class.
	Kind error
	// Err is the underlying cause.
	Err error
}

// Error formats as "op: cause".
func (e *Error) Error() string { return e.Op + ": " + e.Err.Error() }

// Unwrap exposes both the taxonomy sentinel and the cause to errors.Is
// and errors.As.
func (e *Error) Unwrap() []error {
	if e.Kind != nil {
		return []error{e.Kind, e.Err}
	}
	return []error{e.Err}
}

// classify maps an internal error onto the public taxonomy. Order
// matters: context errors first (a canceled handshake often also looks
// like a transport error), then the specific security classes, then
// transport.
func classify(err error) error {
	switch {
	case err == nil:
		return nil
	case errors.Is(err, context.Canceled),
		errors.Is(err, context.DeadlineExceeded),
		errors.Is(err, gss.ErrContextExpired):
		return ErrContextClosed
	case errors.Is(err, gridcert.ErrExpired),
		errors.Is(err, myproxy.ErrExpired):
		return ErrExpiredCredential
	case errors.Is(err, gridcert.ErrUntrustedIssuer),
		errors.Is(err, gridcert.ErrRevoked):
		return ErrUntrustedIssuer
	case errors.Is(err, myproxy.ErrBadPassphrase),
		errors.Is(err, myproxy.ErrLocked):
		return ErrBadPassphrase
	case errors.Is(err, myproxy.ErrNotFound),
		errors.Is(err, soap.ErrNoHandler):
		return ErrNotFound
	case errors.Is(err, gridcert.ErrLimitedProxy),
		errors.Is(err, gss.ErrAuthFailed),
		errors.Is(err, gss.ErrBadToken):
		return ErrAuthentication
	default:
		if f := (*soap.Fault)(nil); errors.As(err, &f) {
			return classifyFaultReason(f.Reason)
		}
		return ErrTransport
	}
}

// classifyFaultReason maps a SOAP fault's reason text onto the taxonomy.
// Faults cross the HTTP boundary as text, so the error identity of the
// server-side cause is gone; the container's stable phrasing ("denied",
// "authentication") is the contract instead.
func classifyFaultReason(reason string) error {
	switch {
	case strings.Contains(reason, "denied"):
		return ErrUnauthorized
	case strings.Contains(reason, "authentication"),
		strings.Contains(reason, "signature"),
		strings.Contains(reason, "limited proxy"):
		return ErrAuthentication
	case strings.Contains(reason, "no service"),
		strings.Contains(reason, "no handler"),
		strings.Contains(reason, "not found"),
		strings.Contains(reason, "no MJS"):
		return ErrNotFound
	default:
		return ErrTransport
	}
}

// opErr wraps an internal error for return from public operation op,
// classifying it onto the taxonomy. Errors already wrapped by a nested
// public operation pass through unchanged so the innermost Op (and its
// classification) is preserved.
func opErr(op string, err error) error {
	if err == nil {
		return nil
	}
	var e *Error
	if errors.As(err, &e) {
		return err
	}
	return &Error{Op: op, Kind: classify(err), Err: err}
}
