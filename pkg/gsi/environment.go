package gsi

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/authz"
	"repro/internal/gridcert"
	"repro/internal/gridcrypto"
)

// Environment is the ambient security world a process operates in: the
// trust roots it accepts, the clock it validates against, and the
// default authorization policy its servers enforce. Clients and Servers
// are constructed from an Environment so that every handshake and every
// chain validation in the process agrees on these three things.
//
//	env, _ := gsi.NewEnvironment(gsi.WithRoots(caCert))
//	client, _ := env.NewClient(cred)
//	server, _ := env.NewServer(hostCred)
type Environment struct {
	trust      *gridcert.TrustStore
	now        func() time.Time
	authorizer authz.Engine

	// id is a process-unique random tag naming this environment in
	// string-keyed caches (the secure-conversation resumption cache),
	// where a pointer would be unsound across GC address reuse.
	id string

	// chains memoizes successful peer-chain validations across every
	// handshake in the environment, so repeated peers skip full path
	// validation. Invalidation is automatic: entries are bound to the
	// trust store's generation and the chain's validity window.
	chains *gridcert.VerifyCache
}

// EnvOption configures NewEnvironment.
type EnvOption func(*Environment) error

// WithTrustStore adopts an existing trust store (shared with code using
// the lower-level API).
func WithTrustStore(ts *TrustStore) EnvOption {
	return func(e *Environment) error {
		if ts == nil {
			return errors.New("gsi: nil trust store")
		}
		e.trust = ts
		return nil
	}
}

// WithRoots installs trusted CA roots into the environment's store.
func WithRoots(roots ...*Certificate) EnvOption {
	return func(e *Environment) error {
		for _, r := range roots {
			if err := e.trust.AddRoot(r); err != nil {
				return err
			}
		}
		return nil
	}
}

// WithClock overrides the validation clock (tests, replay of recorded
// traffic).
func WithClock(now func() time.Time) EnvOption {
	return func(e *Environment) error {
		if now == nil {
			return errors.New("gsi: nil clock")
		}
		e.now = now
		return nil
	}
}

// WithAuthorizer sets the environment's default authorization engine,
// enforced by Servers built from it (nil means authenticate-only).
func WithAuthorizer(engine authz.Engine) EnvOption {
	return func(e *Environment) error {
		e.authorizer = engine
		return nil
	}
}

// NewEnvironment builds an Environment. With no options it has an empty
// trust store (add roots later via Trust().AddRoot) and the system
// clock.
func NewEnvironment(opts ...EnvOption) (*Environment, error) {
	tag, err := gridcrypto.RandomBytes(8)
	if err != nil {
		return nil, opErr("gsi.NewEnvironment", err)
	}
	e := &Environment{
		trust:  gridcert.NewTrustStore(),
		now:    time.Now,
		chains: gridcert.NewVerifyCache(gridcert.DefaultVerifyCacheSize),
		id:     fmt.Sprintf("env-%x", tag),
	}
	for _, opt := range opts {
		if err := opt(e); err != nil {
			return nil, opErr("gsi.NewEnvironment", err)
		}
	}
	return e, nil
}

// Trust returns the environment's trust store.
func (e *Environment) Trust() *TrustStore { return e.trust }

// Now returns the environment's current time.
func (e *Environment) Now() time.Time { return e.now() }

// Authorizer returns the environment's default authorization engine
// (nil means authenticate-only).
func (e *Environment) Authorizer() authz.Engine { return e.authorizer }

// ChainCacheStats reports the environment's verified-chain cache
// effectiveness (hits mean repeated peers skipped full path validation).
func (e *Environment) ChainCacheStats() gridcert.VerifyCacheStats {
	return e.chains.Stats()
}
