package gsi

import (
	"context"
	"sync"
	"time"

	"repro/internal/credman"
	"repro/internal/ogsa"
)

// DelegationEndpoint is the well-known handle of the OGSA delegation
// port type (enable it on a container with Container.EnableDelegation).
// It lives in the reserved gsi.__ namespace: security infrastructure,
// not an application service.
const DelegationEndpoint = ogsa.DelegationHandle

// DepositDelegation runs the client half of the delegation-endpoint
// deposit: the service generates a key pair, cred signs a proxy over it
// (lifetime long — this is the deposit successors are minted below),
// and the service stores it for the subject. maxLifetime caps each
// later retrieval; 0 accepts the service default. invoke carries one
// secured operation to the service (ServiceClient.InvokeSecure against
// DelegationEndpoint, typically).
func DepositDelegation(ctx context.Context, invoke func(ctx context.Context, op string, body []byte) ([]byte, error), cred *Credential, lifetime, maxLifetime time.Duration) error {
	if err := credman.Deposit(ctx, invoke, cred, lifetime, maxLifetime); err != nil {
		return opErr("gsi.DepositDelegation", err)
	}
	return nil
}

// RenewalSource obtains successor credentials for a CredentialManager.
// The built-in sources cover the paper's renewal paths — MyProxyRenewal
// (online repository), DelegationRenewal (re-delegation below a local
// signer), EndpointRenewal (the OGSA delegation port type) — and
// RenewalFunc adapts anything else.
type RenewalSource = credman.Source

// RenewalFunc adapts a function to RenewalSource (static/test sources).
type RenewalFunc = credman.SourceFunc

// RenewalStats is a snapshot of a CredentialManager's activity.
type RenewalStats = credman.Stats

// MyProxyRenewal renews from an online credential repository: each
// renewal generates a fresh key pair locally and retrieves a proxy
// delegated below the credential stored under username (myproxy-logon
// as a renewal engine). lifetime 0 accepts the repository's cap.
func MyProxyRenewal(repo *MyProxy, username, passphrase string, lifetime time.Duration) RenewalSource {
	return credman.MyProxySource{Repo: repo, Username: username, Passphrase: passphrase, Lifetime: lifetime}
}

// DelegationRenewal renews by minting a fresh sibling proxy below a
// locally held signer via the standard delegation exchange.
func DelegationRenewal(signer *Credential, opts ProxyOptions) RenewalSource {
	return credman.LocalSource{Signer: signer, Options: opts}
}

// EndpointRenewal renews against a remote delegation port type
// (ogsa.DelegationHandle): invoke carries one secured operation to the
// service, which mints a proxy below the credential the subject
// previously deposited there.
func EndpointRenewal(invoke func(ctx context.Context, op string, body []byte) ([]byte, error), lifetime time.Duration) RenewalSource {
	return credman.EndpointSource{Invoke: invoke, Lifetime: lifetime}
}

// CredentialManager keeps a credential alive across rotations: Current
// always returns a usable credential, Start runs the background renewal
// loop (horizon ahead of expiry, with jitter and retry backoff), and
// rotation hooks let session pools rekey non-disruptively. Bind it to
// Clients with WithCredentialManager; one manager can back any number
// of clients.
//
//	cm, _ := env.NewCredentialManager(proxy,
//	    gsi.MyProxyRenewal(repo, "alice", "pw", time.Hour),
//	    gsi.WithRenewalHorizon(10*time.Minute))
//	cm.Start()
//	defer cm.Close()
//	client, _ := env.NewClient(nil,
//	    gsi.WithCredentialManager(cm), gsi.WithSessionPool(nil))
type CredentialManager struct {
	m   *credman.Manager
	env *Environment

	mu    sync.Mutex
	pools map[*SessionPool]struct{} // pools with a live rekey hook
}

// bindPool registers the rotation→pool-rekey hook, once per pool no
// matter how many clients share the (manager, pool) pair. The hook
// prunes itself when the pool is closed, so short-lived pools do not
// accumulate on a long-lived manager.
func (cm *CredentialManager) bindPool(pool *SessionPool) {
	cm.mu.Lock()
	if cm.pools == nil {
		cm.pools = make(map[*SessionPool]struct{})
	}
	if _, dup := cm.pools[pool]; dup {
		cm.mu.Unlock()
		return
	}
	cm.pools[pool] = struct{}{}
	cm.mu.Unlock()
	cm.m.OnRotateWhile(func(old, _ *Credential) bool {
		if pool.isClosed() {
			cm.mu.Lock()
			delete(cm.pools, pool)
			cm.mu.Unlock()
			return false
		}
		pool.RetireCredential(old)
		return true
	})
}

// NewCredentialManager builds a manager over an initial credential,
// renewing from source and validating against the environment's clock.
// The renewal options (WithRenewalHorizon, WithRenewalJitter,
// WithRenewalRetry) tune it; options that do not apply to a manager are
// ignored, matching how handle options behave across operations.
func (e *Environment) NewCredentialManager(initial *Credential, source RenewalSource, opts ...Option) (*CredentialManager, error) {
	const op = "gsi.NewCredentialManager"
	s, err := settings{}.apply(opts)
	if err != nil {
		return nil, opErr(op, err)
	}
	m, err := credman.NewManager(initial, credman.Config{
		Source:   source,
		Horizon:  s.renewHorizon,
		Jitter:   s.renewJitter,
		RetryMin: s.renewRetryMin,
		RetryMax: s.renewRetryMax,
		Now:      e.now,
	})
	if err != nil {
		return nil, opErr(op, err)
	}
	return &CredentialManager{m: m, env: e}, nil
}

// Current returns the managed credential (never nil).
func (cm *CredentialManager) Current() *Credential { return cm.m.Current() }

// Environment returns the manager's environment.
func (cm *CredentialManager) Environment() *Environment { return cm.env }

// Start launches the background renewal loop. Idempotent.
func (cm *CredentialManager) Start() { cm.m.Start() }

// Close stops the renewal loop; Current keeps answering. Idempotent.
func (cm *CredentialManager) Close() error { return cm.m.Close() }

// Renew rotates now: one successor is obtained from the source,
// published, and the rotation hooks (pool rekey, cache invalidation)
// run before Renew returns. Used by one-shot tools and tests; the
// background loop calls the same path.
func (cm *CredentialManager) Renew(ctx context.Context) (*Credential, error) {
	const op = "gsi.CredentialManager.Renew"
	next, err := cm.m.Renew(ctx)
	if err != nil {
		return nil, opErr(op, err)
	}
	return next, nil
}

// OnRotate registers a hook called synchronously after each rotation
// with the replaced and successor credentials.
func (cm *CredentialManager) OnRotate(fn func(old, next *Credential)) { cm.m.OnRotate(fn) }

// Stats returns a snapshot of the manager's counters.
func (cm *CredentialManager) Stats() RenewalStats { return cm.m.Stats() }
