// Observability & control-plane tests (PR 6): hot reload of trust and
// policy files under live traffic on both transports, the gsi.__admin
// port type behind the authorization pipeline, and the allocation cost
// of instrumenting the pooled exchange hot path.
package gsi_test

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/gridcert"
	"repro/internal/ogsa"
	"repro/pkg/gsi"
)

// reloadBundle is the on-disk configuration a reload test watches:
// the same four files WithReload names, seeded from an authzBed.
type reloadBundle struct {
	roots, crls, gridmap, policy string
}

func newReloadBundle(t *testing.T, bed *authzBed, policy []byte) reloadBundle {
	t.Helper()
	dir := t.TempDir()
	b := reloadBundle{
		roots:   filepath.Join(dir, "roots"),
		crls:    filepath.Join(dir, "crls"),
		gridmap: filepath.Join(dir, "gridmap"),
		policy:  filepath.Join(dir, "policy.json"),
	}
	b.write(t, b.roots, gridcert.EncodeChain([]*gsi.Certificate{bed.ca.Certificate()}))
	b.write(t, b.crls, gridcert.EncodeCRLSet(nil))
	b.write(t, b.gridmap, []byte(fmt.Sprintf("%q alice\n%q bob\n",
		bed.alice.Identity(), bed.bob.Identity())))
	b.write(t, b.policy, policy)
	return b
}

func (b reloadBundle) write(t *testing.T, path string, data []byte) {
	t.Helper()
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

func (b reloadBundle) config() gsi.ReloadConfig {
	return gsi.ReloadConfig{
		TrustRoots: b.roots,
		CRLs:       b.crls,
		GridMap:    b.gridmap,
		Policy:     b.policy,
		Interval:   25 * time.Millisecond,
	}
}

func encodePolicy(t *testing.T, rules ...gsi.Rule) []byte {
	t.Helper()
	data, err := gsi.NewPolicy(rules...).EncodePolicyJSON()
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func TestHotReloadUnderTraffic(t *testing.T) {
	t.Run("GT2", func(t *testing.T) { testHotReloadUnderTraffic(t, gsi.TransportGT2()) })
	t.Run("GT3", func(t *testing.T) { testHotReloadUnderTraffic(t, gsi.TransportGT3()) })
}

// testHotReloadUnderTraffic rewrites every watched file while clients
// hammer the endpoint, then corrupts them. The invariants are the
// fail-closed contract: Alice (permitted by every policy variant) never
// sees a denial or a handshake failure mid-swap, Bob (permitted by no
// variant) never gets through, and a corrupt file bumps the failure
// counters while the previous generation keeps serving.
func testHotReloadUnderTraffic(t *testing.T, transport gsi.Transport) {
	bed := newAuthzBed(t)
	// Map Bob too, so the local policy — the thing this test swaps — is
	// the only leg standing between him and the handler.
	bed.gridmap.Add(bed.bob.Identity(), "bob")

	aliceOnly := gsi.Rule{
		ID:        "alice-only",
		Effect:    gsi.EffectPermit,
		Subjects:  []string{bed.alice.Identity().String()},
		Resources: []string{"ogsa:gsi.exchange"},
		Actions:   []string{"*"},
	}
	decoy := gsi.Rule{
		ID:        "carol-decoy",
		Effect:    gsi.EffectPermit,
		Subjects:  []string{"/O=Grid/CN=Carol"},
		Resources: []string{"ogsa:gsi.exchange"},
		Actions:   []string{"*"},
	}
	if err := bed.local.Replace([]gsi.Rule{aliceOnly}); err != nil {
		t.Fatal(err)
	}
	variantA := encodePolicy(t, aliceOnly)
	variantB := encodePolicy(t, aliceOnly, decoy)
	bundle := newReloadBundle(t, bed, variantA)
	validRoots := gridcert.EncodeChain([]*gsi.Certificate{bed.ca.Certificate()})

	pl := bed.pipeline(t)
	reg := gsi.NewMetricsRegistry()
	server, err := bed.env.NewServer(bed.host,
		gsi.WithTransport(transport),
		gsi.WithAuthorizationPipeline(pl),
		gsi.WithMetrics(reg),
		gsi.WithReload(bundle.config()))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	ep, err := server.Serve(ctx, "127.0.0.1:0",
		func(ctx context.Context, peer gsi.Peer, op string, body []byte) ([]byte, error) {
			return body, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	defer ep.Close()
	r := server.Reloader()
	if r == nil {
		t.Fatal("Server.Reloader() = nil with WithReload active")
	}

	// Traffic: two identities, opposite invariants, full handshake per
	// exchange (no pool) so trust-store swaps are on every op's path.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	var aliceOps, bobOps atomic.Uint64
	worker := func(cred *gsi.Credential, wantDenied bool, ops *atomic.Uint64) {
		defer wg.Done()
		client, err := bed.env.NewClient(cred, gsi.WithTransport(transport))
		if err != nil {
			t.Error(err)
			return
		}
		for {
			select {
			case <-stop:
				return
			default:
			}
			_, err := client.Exchange(ctx, ep.Addr(), "echo", []byte("tick"))
			ops.Add(1)
			if wantDenied {
				if !errors.Is(err, gsi.ErrUnauthorized) {
					t.Errorf("Bob mid-reload: got %v, want ErrUnauthorized (fail-open?)", err)
					return
				}
			} else if err != nil {
				t.Errorf("Alice mid-reload: %v", err)
				return
			}
		}
	}
	wg.Add(4)
	go worker(bed.alice, false, &aliceOps)
	go worker(bed.alice, false, &aliceOps)
	go worker(bed.bob, true, &bobOps)
	go worker(bed.bob, true, &bobOps)

	// Swap every watched file repeatedly under that load. Forced Reload
	// calls make each round deterministic; the 25ms poller runs too.
	for i := 0; i < 15; i++ {
		variant := variantA
		if i%2 == 1 {
			variant = variantB
		}
		bundle.write(t, bundle.policy, variant)
		bundle.write(t, bundle.roots, validRoots)
		if err := r.Reload(); err != nil {
			t.Fatalf("reload round %d: %v", i, err)
		}
		time.Sleep(5 * time.Millisecond)
	}
	clean := r.Stats()
	if clean.Reloads == 0 {
		t.Fatal("no successful reloads recorded")
	}

	// Corrupt writes: half-written JSON, garbage roots, and an empty
	// chain (the never-drop-to-empty-trust case). Each must fail the
	// reload and leave the previous generation serving.
	bundle.write(t, bundle.policy, []byte(`{"combining":"deny-overrides","rules":[{"id":`))
	if err := r.Reload(); err == nil {
		t.Fatal("corrupt policy applied cleanly")
	}
	bundle.write(t, bundle.roots, []byte("not a chain"))
	if err := r.Reload(); err == nil {
		t.Fatal("garbage trust roots applied cleanly")
	}
	bundle.write(t, bundle.roots, gridcert.EncodeChain(nil))
	if err := r.Reload(); err == nil {
		t.Fatal("empty trust-root set applied cleanly")
	}
	st := r.Stats()
	if st.Failures <= clean.Failures {
		t.Fatalf("Failures = %d after corrupt writes, want > %d", st.Failures, clean.Failures)
	}
	sick := map[string]bool{}
	for _, src := range r.Status() {
		sick[src.Name] = !src.Healthy
	}
	if !sick["policy"] || !sick["trust-roots"] {
		t.Fatalf("unhealthy sources = %v, want policy and trust-roots sick", sick)
	}
	if sick["gridmap"] || sick["crls"] {
		t.Fatalf("unhealthy sources = %v, gridmap/crls should have stayed healthy", sick)
	}

	// The previous generation is still live: a fresh client (new
	// handshake, so the trust store is exercised, not a cached session)
	// gets Alice through and keeps Bob out.
	freshAlice, err := bed.env.NewClient(bed.alice, gsi.WithTransport(transport))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := freshAlice.Exchange(ctx, ep.Addr(), "echo", []byte("post-corrupt")); err != nil {
		t.Fatalf("Alice after corrupt write: %v (old generation not kept live)", err)
	}
	freshBob, err := bed.env.NewClient(bed.bob, gsi.WithTransport(transport))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := freshBob.Exchange(ctx, ep.Addr(), "echo", nil); !errors.Is(err, gsi.ErrUnauthorized) {
		t.Fatalf("Bob after corrupt write: got %v, want ErrUnauthorized", err)
	}

	// Restoring valid files heals every source.
	bundle.write(t, bundle.policy, variantA)
	bundle.write(t, bundle.roots, validRoots)
	if err := r.Reload(); err != nil {
		t.Fatalf("reload after restore: %v", err)
	}
	for _, src := range r.Status() {
		if !src.Healthy {
			t.Fatalf("source %s still unhealthy after restore: %s", src.Name, src.Error)
		}
	}

	close(stop)
	wg.Wait()
	if aliceOps.Load() == 0 || bobOps.Load() == 0 {
		t.Fatalf("no traffic overlapped the reloads (alice=%d bob=%d)", aliceOps.Load(), bobOps.Load())
	}

	// The registry saw it all: the server's reload series exist and the
	// failure counter carries the corrupt writes.
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	exposition := sb.String()
	for _, family := range []string{"gsi_reload_total", "gsi_reload_failures_total", "gsi_handshake_seconds"} {
		if !strings.Contains(exposition, family) {
			t.Fatalf("exposition missing %s:\n%s", family, exposition)
		}
	}
}

// TestAdminSurfaceAuthz drives every gsi.__admin op through a real GT3
// secure conversation and the full authorization pipeline: the admin
// identity (permitted by local policy) gets stats, metrics, drain, and
// typed errors for unconfigured subsystems; an authenticated peer
// without a permit — or with a VO-restricted proxy — is denied.
func TestAdminSurfaceAuthz(t *testing.T) {
	bed := newAuthzBed(t)
	bed.local.Add(gsi.Rule{
		ID:        "admin-ops",
		Effect:    gsi.EffectPermit,
		Subjects:  []string{bed.alice.Identity().String()},
		Resources: []string{"ogsa:" + ogsa.AdminHandle},
		Actions:   []string{"*"},
	})
	pl := bed.pipeline(t)
	pool, err := gsi.NewSessionPool()
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	reg := gsi.NewMetricsRegistry()
	server, err := bed.env.NewServer(bed.host,
		gsi.WithTransport(gsi.TransportGT3()),
		gsi.WithAuthorizationPipeline(pl),
		gsi.WithMetrics(reg),
		gsi.WithAdmin(),
		gsi.WithAdminPool(pool))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	ep, err := server.Serve(ctx, "127.0.0.1:0",
		func(ctx context.Context, peer gsi.Peer, op string, body []byte) ([]byte, error) {
			return body, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	defer ep.Close()

	admin, err := bed.env.NewClient(bed.alice, gsi.WithTransport(gsi.TransportGT3()))
	if err != nil {
		t.Fatal(err)
	}

	out, _, err := admin.Invoke(ctx, ep.Addr(), ogsa.AdminHandle, ogsa.AdminOpStats, nil)
	if err != nil {
		t.Fatalf("Stats as admin: %v", err)
	}
	var snap struct {
		Identity string           `json:"identity"`
		Pool     *json.RawMessage `json:"pool"`
		Reload   *json.RawMessage `json:"reload"`
	}
	if err := json.Unmarshal(out, &snap); err != nil {
		t.Fatalf("Stats is not JSON: %v\n%s", err, out)
	}
	if snap.Identity != bed.host.Identity().String() {
		t.Fatalf("Stats identity = %q, want %q", snap.Identity, bed.host.Identity())
	}
	if snap.Pool == nil {
		t.Fatal("Stats missing pool section despite WithAdminPool")
	}
	if snap.Reload != nil {
		t.Fatal("Stats has a reload section but the server has no WithReload")
	}

	out, _, err = admin.Invoke(ctx, ep.Addr(), ogsa.AdminHandle, ogsa.AdminOpMetrics, nil)
	if err != nil {
		t.Fatalf("Metrics as admin: %v", err)
	}
	if !strings.Contains(string(out), "# TYPE") ||
		!strings.Contains(string(out), "gsi_authz_cache_hits_total") {
		t.Fatalf("Metrics scrape missing expected series:\n%s", out)
	}

	out, _, err = admin.Invoke(ctx, ep.Addr(), ogsa.AdminHandle, ogsa.AdminOpDrain, nil)
	if err != nil {
		t.Fatalf("Drain as admin: %v", err)
	}
	if string(out) != `{"drained":0}` {
		t.Fatalf("Drain = %s, want zero idle sessions drained", out)
	}

	// Unconfigured subsystems and bad arguments come back as faults,
	// not denials: retirement of an unknown fingerprint and a forced
	// reload on a server without WithReload.
	if _, _, err := admin.Invoke(ctx, ep.Addr(), ogsa.AdminHandle, ogsa.AdminOpRetire, []byte("deadbeef")); err == nil {
		t.Fatal("Retire of unknown fingerprint succeeded")
	} else if errors.Is(err, gsi.ErrUnauthorized) {
		t.Fatalf("Retire of unknown fingerprint misclassified as denial: %v", err)
	}
	if _, _, err := admin.Invoke(ctx, ep.Addr(), ogsa.AdminHandle, ogsa.AdminOpReload, nil); err == nil {
		t.Fatal("Reload succeeded on a server without WithReload")
	}

	// Bob authenticates fine but holds no permit for the admin
	// resource: denied by the pipeline before the backend runs.
	bob, err := bed.env.NewClient(bed.bob, gsi.WithTransport(gsi.TransportGT3()))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := bob.Invoke(ctx, ep.Addr(), ogsa.AdminHandle, ogsa.AdminOpStats, nil); !errors.Is(err, gsi.ErrUnauthorized) {
		t.Fatalf("Stats as Bob: got %v, want ErrUnauthorized", err)
	}

	// Alice's VO-restricted proxy carries an assertion scoped to
	// gsi.exchange — the VO leg refuses to extend it to the admin
	// resource even though local policy would permit her.
	restricted, err := bed.env.NewClient(bed.aliceVO, gsi.WithTransport(gsi.TransportGT3()))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := restricted.Invoke(ctx, ep.Addr(), ogsa.AdminHandle, ogsa.AdminOpStats, nil); !errors.Is(err, gsi.ErrUnauthorized) {
		t.Fatalf("Stats with VO-restricted proxy: got %v, want ErrUnauthorized", err)
	}
}

// TestAdminRequiresGT3 pins the refusal: the admin port type needs a
// hosting container, so WithAdmin on the GT2 transport is a Serve-time
// error, not a silently admin-less endpoint.
func TestAdminRequiresGT3(t *testing.T) {
	bed := newAuthzBed(t)
	server, err := bed.env.NewServer(bed.host,
		gsi.WithAuthorizationPipeline(bed.pipeline(t)),
		gsi.WithAdmin())
	if err != nil {
		t.Fatal(err)
	}
	_, err = server.Serve(context.Background(), "127.0.0.1:0",
		func(ctx context.Context, peer gsi.Peer, op string, body []byte) ([]byte, error) {
			return body, nil
		})
	if err == nil || !strings.Contains(err.Error(), "GT3") {
		t.Fatalf("Serve with WithAdmin on GT2: got %v, want GT3-transport refusal", err)
	}
}

// BenchmarkExchangeInstrumented is BenchmarkExchangeSteadyState with
// the observability plane attached on both ends: client and server
// share a metrics registry, so every pooled exchange crosses the
// instrumented pool, transport, and record-layer counters. The
// Makefile's alloc gate pins it to the same 2 allocs/op as the
// uninstrumented baseline — metrics must be free on the hot path.
func BenchmarkExchangeInstrumented(b *testing.B) {
	authority, err := gsi.NewCA("/O=Grid/CN=Bench CA", 24*time.Hour)
	if err != nil {
		b.Fatal(err)
	}
	env, err := gsi.NewEnvironment(gsi.WithRoots(authority.Certificate()))
	if err != nil {
		b.Fatal(err)
	}
	alice, err := authority.NewEntity(gsi.MustParseName("/O=Grid/CN=Alice"), 12*time.Hour)
	if err != nil {
		b.Fatal(err)
	}
	host, err := authority.NewHostEntity(gsi.MustParseName("/O=Grid/CN=host bench"), 12*time.Hour)
	if err != nil {
		b.Fatal(err)
	}
	reg := gsi.NewMetricsRegistry()
	server, err := env.NewServer(host, gsi.WithMetrics(reg))
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	ep, err := server.Serve(ctx, "127.0.0.1:0",
		func(ctx context.Context, peer gsi.Peer, op string, body []byte) ([]byte, error) {
			return body, nil
		})
	if err != nil {
		b.Fatal(err)
	}
	defer ep.Close()
	client, err := env.NewClient(alice, gsi.WithSessionPool(nil), gsi.WithMetrics(reg))
	if err != nil {
		b.Fatal(err)
	}
	defer client.Pool().Close()
	payload := []byte("steady")
	if _, err := client.Exchange(ctx, ep.Addr(), "echo", payload); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := client.Exchange(ctx, ep.Addr(), "echo", payload); err != nil {
			b.Fatal(err)
		}
	}
}
