package gsi

import (
	"context"
	"encoding/base64"
	"errors"
	"fmt"
	"io"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/authz"
	"repro/internal/gridcrypto"
	"repro/internal/gsitransport"
	"repro/internal/record"
	"repro/internal/soap"
	"repro/internal/trace"
)

// newStreamID mints the unguessable id a GT3 stream is addressed by.
func newStreamID() (string, error) {
	b, err := gridcrypto.RandomBytes(16)
	if err != nil {
		return "", err
	}
	return fmt.Sprintf("st-%x", b), nil
}

// Stream is a secured, unbounded byte stream bound to one session —
// the record layer's chunked mode surfaced at the facade. Data crosses
// in DefaultChunkSize records through pooled buffers; each direction
// terminates with an explicit FIN record, and a mid-stream failure
// travels as an ERROR record that surfaces on the peer as a read error.
//
// The stream owns its session until Close: on a pooling client the
// session returns to the pool only when the stream has terminated
// cleanly (a broken stream discards the session instead of parking
// it). Each half must be driven by one goroutine at a time; Close is
// required even after errors.
type Stream interface {
	// Read returns peer bytes, io.EOF after its FIN, and the peer's
	// abort reason as an error if it failed mid-stream.
	io.Reader
	// Write ships bytes as chunk records.
	io.Writer
	// CloseWrite terminates the write half cleanly (FIN). Idempotent.
	CloseWrite() error
	// Close terminates the stream: the write half is FINed if still
	// open, the unread remainder of the read half is drained so the
	// session resynchronizes, and the session is released.
	Close() error
	// Peer is the authenticated remote party.
	Peer() Peer
}

// StreamHandler serves one opened stream on a Server: by the time it
// runs, the peer is authenticated and op authorized (once per stream,
// through the authorization pipeline when one is configured).
// Returning an error aborts the stream — the client observes it as a
// mid-stream ERROR record. The handler must not retain the stream past
// its return.
type StreamHandler func(ctx context.Context, peer Peer, op string, stream Stream) error

// errStreamsUnsupported marks sessions that cannot stream.
var errStreamsUnsupported = errors.New("gsi: session does not support streams")

// OpenStream on a Client: checks a session out (from the pool on a
// pooling client), opens a stream for op on it, and binds the session's
// release to the stream's Close.
func (c *Client) OpenStream(ctx context.Context, endpoint, op string, opts ...Option) (Stream, error) {
	const opName = "gsi.Client.OpenStream"
	// The root span covers dial, open, every chunk, and Close; its
	// context crosses on the open round trip so the server's stream
	// span joins the same trace.
	var sp *trace.Span
	if tr := c.base.tracer; tr != nil {
		sp = tr.StartRoot("client.stream")
		ctx = trace.ContextWithSpan(ctx, sp)
	}
	sess, err := c.Connect(ctx, endpoint, opts...)
	if err != nil {
		sp.SetError(err)
		sp.End()
		return nil, opErr(opName, err)
	}
	st, err := sess.OpenStream(ctx, op)
	if err != nil {
		sess.Close()
		sp.SetError(err)
		sp.End()
		return nil, opErr(opName, err)
	}
	var out Stream = &ownedStream{Stream: st, sess: sess}
	if sp != nil {
		dn := peerDNOf(st.Peer())
		sp.SetPeer(dn)
		ts := newTracedStream(out, sp, "client")
		ts.xfer = c.base.tracer.Transfers().Begin("stream:"+op, dn, 1, sp.Context().TraceID)
		out = ts
	}
	return out, nil
}

// ownedStream couples a stream to the session checkout that carries it.
// closed is atomic because the docs require Close even after errors, so
// a reader and a writer goroutine can legitimately race into it.
type ownedStream struct {
	Stream
	sess   Session
	closed atomic.Bool
}

// Close terminates the stream and releases the session. Both halves can
// fail independently — a stream-side failure must not mask a pool-side
// release failure (or vice versa), so the errors are joined.
func (o *ownedStream) Close() error {
	if o.closed.Swap(true) {
		return nil
	}
	return errors.Join(o.Stream.Close(), o.sess.Close())
}

// --- GT2: chunk records on the connection's record stream ---------------

// OpenStream on a GT2 session: one gsi.__stream.open round trip
// (carrying op for server-side authorization), then the connection's
// record stream belongs to the chunk protocol until both halves FIN.
// The session is locked for the stream's duration.
func (s *gt2Session) OpenStream(ctx context.Context, op string) (Stream, error) {
	const opName = "gsi.Session.OpenStream"
	if op == "" || strings.HasPrefix(op, reservedOpPrefix) {
		return nil, opErr(opName, fmt.Errorf("gsi: invalid stream op %q", op))
	}
	s.mu.Lock()
	payload, buf, err := s.roundTrip(ctx, streamOpenOp, []byte(op))
	if err != nil {
		s.mu.Unlock()
		return nil, opErr(opName, err)
	}
	_ = payload
	buf.Free()
	return &gt2Stream{sess: s, st: gsitransport.NewStream(ctx, s.conn)}, nil
}

type gt2Stream struct {
	sess   *gt2Session
	st     *gsitransport.Stream
	closed bool
}

func (g *gt2Stream) Read(p []byte) (int, error) {
	n, err := g.st.Read(p)
	return n, streamErr(err)
}

func (g *gt2Stream) Write(p []byte) (int, error) {
	n, err := g.st.Write(p)
	return n, streamErr(err)
}

func (g *gt2Stream) CloseWrite() error { return streamErr(g.st.CloseWrite()) }

func (g *gt2Stream) Peer() Peer { return g.sess.conn.Peer() }

// Close terminates both halves and returns the connection to
// exchange mode: FIN the write half if still open, consume the read
// half to its terminal record. Only then is the record stream at a
// frame boundary again — a failure here leaves the session broken,
// which a pooling client observes via the health check at release.
func (g *gt2Stream) Close() error {
	if g.closed {
		return nil
	}
	g.closed = true
	defer g.sess.mu.Unlock()
	defer g.st.Release()
	var firstErr error
	if err := g.st.CloseWrite(); err != nil {
		firstErr = err
	}
	if err := g.st.Drain(); err != nil && firstErr == nil {
		var peerErr *record.PeerError
		if !errors.As(err, &peerErr) {
			firstErr = err
		}
		// A peer abort already surfaced through Read; the terminal
		// record still resynchronized the connection.
	}
	return streamErr(firstErr)
}

// streamErr classifies stream-level failures at the facade boundary.
// io.EOF passes through untouched — it is the io.Reader contract's
// clean-termination token, not a failure.
func streamErr(err error) error {
	if err == nil || err == io.EOF {
		return err
	}
	var e *Error
	if errors.As(err, &e) {
		return err
	}
	var peerErr *record.PeerError
	if errors.As(err, &peerErr) {
		return &Error{Op: "gsi.Stream", Err: err}
	}
	return &Error{Op: "gsi.Stream", Kind: classify(err), Err: err}
}

// serverGT2Stream is the handler-facing stream on a GT2 server
// connection. Termination and drain are owned by the serve loop
// (serveGT2Stream), so Close here only flushes the write half.
type serverGT2Stream struct {
	st   *gsitransport.Stream
	peer Peer
}

func (s *serverGT2Stream) Read(p []byte) (int, error) {
	n, err := s.st.Read(p)
	return n, streamErr(err)
}

func (s *serverGT2Stream) Write(p []byte) (int, error) {
	n, err := s.st.Write(p)
	return n, streamErr(err)
}

func (s *serverGT2Stream) CloseWrite() error { return streamErr(s.st.CloseWrite()) }
func (s *serverGT2Stream) Close() error      { return streamErr(s.st.CloseWrite()) }
func (s *serverGT2Stream) Peer() Peer        { return s.peer }

// --- GT3: chunk records as conversation calls ---------------------------
//
// GT3 has no connection to own, so a stream is a server-side resource:
// gsi.__stream.open:<op> creates it (authorized as <op> through the
// container's chain gate — once per stream), returning an unguessable
// stream id. Chunks then travel as calls through the same secure
// conversation: gsi.__stream.w:<id> carries a client chunk record,
// gsi.__stream.r:<id> returns the next server chunk record. The chunk
// records themselves — sequence binding, FIN, ERROR — are exactly the
// GT2 ones; only the carriage differs, which is the paper's §5.1 story
// retold for bulk data.

const (
	gt3StreamOpenPrefix  = streamOpenOp + ":"
	gt3StreamWritePrefix = reservedOpPrefix + "stream.w:"
	gt3StreamReadPrefix  = reservedOpPrefix + "stream.r:"
)

func (s *gt3Session) call(ctx context.Context, op string, body []byte) ([]byte, error) {
	env := soap.NewEnvelope("ogsa-sc/"+exchangeHandle+"/"+op, body)
	setTraceHeader(ctx, env)
	reply, err := s.conv.CallContext(ctx, env)
	if err != nil {
		return nil, err
	}
	return reply.Body, nil
}

// encodeStreamOp renders an application op for carriage in a GT3
// action suffix. Ops are arbitrary strings — a '/' would collide with
// the container's handle/op routing — so the base64url alphabet
// (slash-free) carries them.
func encodeStreamOp(op string) string {
	return base64.RawURLEncoding.EncodeToString([]byte(op))
}

func decodeStreamOp(enc string) (string, error) {
	b, err := base64.RawURLEncoding.DecodeString(enc)
	if err != nil {
		return "", fmt.Errorf("gsi: malformed stream op encoding denied: %w", err)
	}
	return string(b), nil
}

// OpenStream on a GT3 session.
func (s *gt3Session) OpenStream(ctx context.Context, op string) (Stream, error) {
	const opName = "gsi.Session.OpenStream"
	if op == "" || strings.HasPrefix(op, reservedOpPrefix) {
		return nil, opErr(opName, fmt.Errorf("gsi: invalid stream op %q", op))
	}
	id, err := s.call(ctx, gt3StreamOpenPrefix+encodeStreamOp(op), nil)
	if err != nil {
		return nil, opErr(opName, err)
	}
	if len(id) == 0 {
		return nil, opErr(opName, errors.New("gsi: stream open returned no id"))
	}
	return &gt3Stream{sess: s, ctx: ctx, id: string(id)}, nil
}

type gt3Stream struct {
	sess   *gt3Session
	ctx    context.Context
	id     string
	sender record.ChunkSender
	asm    record.Assembler
	rbuf   []byte // unread remainder of the last server chunk
	rerr   error
	closed bool
}

func (g *gt3Stream) sendChunk(build func([]byte) ([]byte, error)) error {
	rec, err := build(nil)
	if err != nil {
		return streamErr(err)
	}
	if _, err := g.sess.call(g.ctx, gt3StreamWritePrefix+g.id, rec); err != nil {
		return streamErr(err)
	}
	return nil
}

func (g *gt3Stream) Write(p []byte) (int, error) {
	if g.sender.Terminated() {
		return 0, streamErr(gsitransport.ErrWriteHalfClosed)
	}
	written := 0
	for written < len(p) {
		piece := p[written:]
		if len(piece) > record.DefaultChunkSize {
			piece = piece[:record.DefaultChunkSize]
		}
		if err := g.sendChunk(func(dst []byte) ([]byte, error) {
			return g.sender.AppendData(dst, piece)
		}); err != nil {
			return written, err
		}
		written += len(piece)
	}
	return written, nil
}

func (g *gt3Stream) CloseWrite() error {
	if g.sender.Terminated() {
		return nil
	}
	return g.sendChunk(g.sender.AppendFIN)
}

func (g *gt3Stream) Read(p []byte) (int, error) {
	for {
		if len(g.rbuf) > 0 {
			n := copy(p, g.rbuf)
			g.rbuf = g.rbuf[n:]
			return n, nil
		}
		if g.rerr != nil {
			return 0, g.rerr
		}
		if len(p) == 0 {
			return 0, nil
		}
		rec, err := g.sess.call(g.ctx, gt3StreamReadPrefix+g.id, nil)
		if err != nil {
			g.rerr = streamErr(err)
			return 0, g.rerr
		}
		payload, fin, err := g.asm.Accept(rec)
		switch {
		case err != nil:
			g.rerr = streamErr(err)
			return 0, g.rerr
		case fin:
			g.rerr = io.EOF
			return 0, io.EOF
		default:
			g.rbuf = payload // reply bodies are owned, not pooled
		}
	}
}

func (g *gt3Stream) Peer() Peer { return g.sess.conv.Peer() }

func (g *gt3Stream) Close() error {
	if g.closed {
		return nil
	}
	g.closed = true
	var firstErr error
	if err := g.CloseWrite(); err != nil {
		firstErr = err
	}
	// Drain the server half so its registry entry retires.
	var scratch [4096]byte
	for firstErr == nil {
		if _, err := g.Read(scratch[:]); err != nil {
			if err != io.EOF {
				var peerErr *record.PeerError
				if !errors.As(err, &peerErr) {
					firstErr = err
				}
			}
			break
		}
	}
	return firstErr
}

// gt3SignedSession has no security context to stream under: each signed
// message stands alone, so chunked streaming is refused.
func (s *gt3SignedSession) OpenStream(ctx context.Context, op string) (Stream, error) {
	return nil, opErr("gsi.Session.OpenStream", fmt.Errorf("%w: ProtectionSigned sessions sign stateless messages", errStreamsUnsupported))
}

// --- GT3 server side -----------------------------------------------------

// gt3StreamRegistry holds the server-side state of open GT3 streams,
// keyed by their unguessable ids.
type gt3StreamRegistry struct {
	mu      sync.Mutex
	streams map[string]*gt3ServerStream
}

func newGT3StreamRegistry() *gt3StreamRegistry {
	return &gt3StreamRegistry{streams: make(map[string]*gt3ServerStream)}
}

// maxGT3Streams bounds concurrently open server-side streams.
const maxGT3Streams = 1024

// gt3StreamIdleLimit reaps streams whose client vanished mid-protocol.
const gt3StreamIdleLimit = 5 * time.Minute

func (r *gt3StreamRegistry) add(s *gt3ServerStream) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	now := time.Now()
	for id, old := range r.streams {
		if now.Sub(old.lastActive()) > gt3StreamIdleLimit {
			old.abandon()
			delete(r.streams, id)
		}
	}
	if len(r.streams) >= maxGT3Streams {
		return errors.New("gsi: too many open streams")
	}
	r.streams[s.id] = s
	return nil
}

func (r *gt3StreamRegistry) get(id string) *gt3ServerStream {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.streams[id]
}

func (r *gt3StreamRegistry) remove(id string) {
	r.mu.Lock()
	delete(r.streams, id)
	r.mu.Unlock()
}

// peerKey renders the identity a stream is bound to: chunk calls must
// arrive from the same authenticated party that opened the stream.
func peerKey(p Peer) string {
	if p.Anonymous {
		return "anonymous"
	}
	return p.Identity.String()
}

// gt3ServerStream is one open stream's server-side state.
type gt3ServerStream struct {
	id      string
	peer    Peer
	peerKey string
	account string

	// Client -> handler: chunk payloads flow through a pipe so the w:
	// call blocks while the handler catches up (backpressure).
	inR *io.PipeReader
	inW *io.PipeWriter

	inMu  sync.Mutex // serializes w: calls
	inAsm record.Assembler

	// Handler -> client: chunk records popped by r: calls.
	out chan []byte

	// dead releases everything blocked on the stream when the registry
	// reaps it (client vanished mid-protocol).
	dead     chan struct{}
	deadOnce sync.Once

	ctx    context.Context // serve lifetime
	active int64           // unix nanos of last chunk call (atomic via mutex below)
	actMu  sync.Mutex
}

func (s *gt3ServerStream) touch() {
	s.actMu.Lock()
	s.active = time.Now().UnixNano()
	s.actMu.Unlock()
}

func (s *gt3ServerStream) lastActive() time.Time {
	s.actMu.Lock()
	defer s.actMu.Unlock()
	return time.Unix(0, s.active)
}

// abandon releases a reaped stream: the handler's reads fail, and its
// writes — including the goroutine parked pushing the terminal record
// no client will ever poll — stop blocking.
func (s *gt3ServerStream) abandon() {
	s.inW.CloseWithError(errors.New("gsi: stream abandoned by peer"))
	s.inR.CloseWithError(errors.New("gsi: stream abandoned by peer"))
	s.deadOnce.Do(func() { close(s.dead) })
}

// acceptIn processes one client chunk record.
func (s *gt3ServerStream) acceptIn(rec []byte) error {
	s.touch()
	s.inMu.Lock()
	defer s.inMu.Unlock()
	payload, fin, err := s.inAsm.Accept(rec)
	if err != nil {
		var peerErr *record.PeerError
		if errors.As(err, &peerErr) {
			// Clean client abort: surface to the handler as a read error.
			s.inW.CloseWithError(peerErr)
			return nil
		}
		return err
	}
	if fin {
		return s.inW.Close()
	}
	if len(payload) > 0 {
		// A handler that returned early closed the read end; remaining
		// client chunks are validated, then discarded.
		if _, err := s.inW.Write(payload); err != nil && !errors.Is(err, io.ErrClosedPipe) {
			var perr *record.PeerError
			if !errors.As(err, &perr) {
				return err
			}
		}
	}
	return nil
}

// nextOut blocks for the next server chunk record.
func (s *gt3ServerStream) nextOut() ([]byte, bool, error) {
	s.touch()
	select {
	case rec := <-s.out:
		typ, _, _, err := record.ParseChunk(rec)
		terminal := err == nil && (typ == record.ChunkFIN || typ == record.ChunkError)
		return rec, terminal, nil
	case <-s.dead:
		return nil, false, errors.New("gsi: stream abandoned")
	case <-s.ctx.Done():
		return nil, false, s.ctx.Err()
	}
}

// serverGT3Stream is the handler-facing Stream of a GT3 stream.
type serverGT3Stream struct {
	s      *gt3ServerStream
	sender record.ChunkSender
}

func (h *serverGT3Stream) Read(p []byte) (int, error) {
	n, err := h.s.inR.Read(p)
	return n, streamErr(err)
}

func (h *serverGT3Stream) push(rec []byte) error {
	select {
	case h.s.out <- rec:
		return nil
	case <-h.s.dead:
		return streamErr(errors.New("gsi: stream abandoned"))
	case <-h.s.ctx.Done():
		return streamErr(h.s.ctx.Err())
	}
}

func (h *serverGT3Stream) Write(p []byte) (int, error) {
	if h.sender.Terminated() {
		return 0, streamErr(gsitransport.ErrWriteHalfClosed)
	}
	written := 0
	for written < len(p) {
		piece := p[written:]
		if len(piece) > record.DefaultChunkSize {
			piece = piece[:record.DefaultChunkSize]
		}
		rec, err := h.sender.AppendData(nil, piece)
		if err != nil {
			return written, streamErr(err)
		}
		if err := h.push(rec); err != nil {
			return written, err
		}
		written += len(piece)
	}
	return written, nil
}

func (h *serverGT3Stream) CloseWrite() error {
	if h.sender.Terminated() {
		return nil
	}
	rec, err := h.sender.AppendFIN(nil)
	if err != nil {
		return streamErr(err)
	}
	return h.push(rec)
}

func (h *serverGT3Stream) closeWithError(msg string) error {
	if h.sender.Terminated() {
		return nil
	}
	rec, err := h.sender.AppendError(nil, msg)
	if err != nil {
		return streamErr(err)
	}
	return h.push(rec)
}

func (h *serverGT3Stream) Close() error { return h.CloseWrite() }
func (h *serverGT3Stream) Peer() Peer   { return h.s.peer }

// --- GT3 authorization gate ----------------------------------------------

// gt3AuthGate is the container's chain-authorization hook with stream
// awareness: stream opens are authorized as the op they carry (through
// the pipeline when configured, once per stream), chunk calls are
// admitted by possession of a live stream id bound to the same
// authenticated peer, and everything else follows the exact pre-stream
// rules (pipeline, else plain engine, else authenticated-is-enough).
type gt3AuthGate struct {
	pipeline *AuthorizationPipeline
	engine   Engine
	env      *Environment
	reg      *gt3StreamRegistry
	tracer   *Tracer
}

func (g *gt3AuthGate) AuthorizeChain(ctx context.Context, peer Peer, resource, action string) (string, error) {
	if enc, ok := strings.CutPrefix(action, gt3StreamOpenPrefix); ok {
		op, err := decodeStreamOp(enc)
		if err != nil {
			return "", err
		}
		if op == "" || strings.HasPrefix(op, reservedOpPrefix) {
			return "", fmt.Errorf("gsi: invalid stream op %q denied", op)
		}
		return g.authorize(ctx, peer, resource, op)
	}
	id, isChunk := strings.CutPrefix(action, gt3StreamWritePrefix)
	if !isChunk {
		id, isChunk = strings.CutPrefix(action, gt3StreamReadPrefix)
	}
	if isChunk {
		st := g.reg.get(id)
		if st == nil || st.peerKey != peerKey(peer) {
			return "", errors.New("gsi: unknown stream denied")
		}
		// Authorization was decided at open; the stream carries it.
		return st.account, nil
	}
	return g.authorize(ctx, peer, resource, action)
}

// authorize reproduces the container's pre-gate behavior for ordinary
// calls. When the router lifted a trace context off the envelope, the
// decision is recorded as a server.authz span in the caller's trace.
func (g *gt3AuthGate) authorize(ctx context.Context, peer Peer, resource, action string) (account string, err error) {
	if g.tracer != nil {
		asp := g.tracer.StartRemote(trace.RemoteFromContext(ctx), "server.authz")
		asp.SetPeer(peerKey(peer))
		defer func() {
			asp.SetError(err)
			asp.End()
		}()
	}
	if g.pipeline != nil {
		return g.pipeline.AuthorizeChain(ctx, peer, resource, action)
	}
	if g.engine != nil {
		req := Request{Subject: peer.Identity, Resource: resource, Action: action}
		if g.env != nil {
			req.Time = g.env.Now()
		} else {
			req.Time = time.Now()
		}
		decision, err := g.engine.Authorize(req)
		if err != nil {
			return "", err
		}
		if decision != authz.Permit {
			return "", fmt.Errorf("gsi: %q denied %s", peer.Identity, action)
		}
	}
	return "", nil
}
