package gsi

import (
	"context"
	"errors"
	"net"
	"net/http"
	"sync"
	"time"

	"repro/internal/cas"
	"repro/internal/ogsa"
)

// Server is the acceptor handle of the redesigned API: a service
// credential bound to an Environment, serving secured exchanges over a
// chosen Transport. The environment's authorizer (if any) gates every
// exchange before the handler runs, so the handler sees only
// authenticated, authorized calls — the paper's hosting-environment
// pipeline as an API shape.
//
//	server, _ := env.NewServer(hostCred, gsi.WithTransport(gsi.TransportGT3()))
//	ep, _ := server.Serve(ctx, "127.0.0.1:0", handler)
//	defer ep.Close()
type Server struct {
	env  *Environment
	cred *Credential
	base settings

	// Control-plane state (PR 6). src lives for the Server's lifetime
	// so metric closures registered into an external registry never
	// dangle; ctrl is the running reloader + metrics listener,
	// refcounted across live endpoints so the goroutine and socket
	// close with the last endpoint's Close.
	mu          sync.Mutex
	src         *serverMetricSources
	metricsDone map[*MetricsRegistry]bool
	ctrl        *serverControl
}

// serverControl is the running control plane behind a server's
// endpoints: one reload watcher and one plaintext metrics listener,
// shared by however many endpoints the server currently serves.
type serverControl struct {
	refs     int
	reloader *Reloader
	httpSrv  *http.Server
	casSync  *casSyncer
}

// NewServer builds a Server handle. A credential is mandatory: GSI
// always authenticates the service side. Pipeline options given here
// (WithLocalPolicy, WithTrustedVO, WithGridMap, WithDecisionCache,
// WithAuditSink) assemble one authorization pipeline shared by every
// endpoint the server opens; WithAuthorizationPipeline adopts a
// prebuilt one instead.
func (e *Environment) NewServer(cred *Credential, opts ...Option) (*Server, error) {
	if cred == nil {
		return nil, opErr("gsi.NewServer", errors.New("gsi: server requires a credential"))
	}
	base := settings{transport: TransportGT2()}
	base, err := base.apply(opts)
	if err != nil {
		return nil, opErr("gsi.NewServer", err)
	}
	if base.authzAdopted && base.authzRev > 0 {
		// Same refusal Serve makes for the per-call combination: a
		// prebuilt pipeline cannot be modified by assembly or tuning
		// options, and dropping them silently would serve under weaker
		// policy than the operator wrote down.
		return nil, opErr("gsi.NewServer", errors.New("gsi: pipeline options cannot modify a prebuilt authorization pipeline; build the variant with Environment.NewAuthorizationPipeline and pass it via WithAuthorizationPipeline"))
	}
	if err := base.materializeDurable(); err != nil {
		return nil, opErr("gsi.NewServer", err)
	}
	if base.durable != nil && base.casPublish != nil {
		// A community server with durable state journals its membership
		// and VO policy through the same log as the local trust plane.
		if err := base.durable.AttachCAS(base.casPublish); err != nil {
			return nil, opErr("gsi.NewServer", err)
		}
	}
	if base.authzEnabled && base.authzPipeline == nil {
		base.authzPipeline = newPipeline(e, base)
	}
	if err := base.buildTracer(); err != nil {
		return nil, opErr("gsi.NewServer", err)
	}
	return &Server{env: e, cred: cred, base: base}, nil
}

// Environment returns the server's environment.
func (s *Server) Environment() *Environment { return s.env }

// AuthorizationPipeline returns the server's policy decision point —
// the pipeline NewServer assembled from enforcement options, or the
// prebuilt one adopted via WithAuthorizationPipeline. Nil when the
// server enforces nothing. The pipeline is live: mutating its policy,
// gridmap, or VO trust set takes effect on the serving hot path
// through the generation counters.
func (s *Server) AuthorizationPipeline() *AuthorizationPipeline { return s.base.authzPipeline }

// Identity returns the server's grid identity.
func (s *Server) Identity() Name { return s.cred.Leaf().Subject }

// Serve starts accepting secured sessions on addr ("host:port";
// ":0"-style addresses pick an ephemeral port — read the dialable form
// from Endpoint.Addr). The endpoint stops when ctx ends or Close is
// called; in-flight handshakes and exchanges abort with the context.
func (s *Server) Serve(ctx context.Context, addr string, h Handler, opts ...Option) (Endpoint, error) {
	const op = "gsi.Server.Serve"
	if h == nil {
		return nil, opErr(op, errors.New("gsi: nil handler"))
	}
	resolved, err := s.base.apply(opts)
	if err != nil {
		return nil, opErr(op, err)
	}
	if resolved.durableDir != s.base.durableDir {
		// Durable state is a handle-lifetime object (one WAL, one set of
		// bound stores); a per-call directory would open a second journal
		// behind the handle's back.
		return nil, opErr(op, errors.New("gsi: WithDurableState is a handle option; pass it to NewServer, not Serve"))
	}
	pipeline := resolved.authzPipeline
	switch {
	case resolved.authzAssemblyDiffers(s.base) && resolved.authzAdopted:
		// Assembly or tuning options combined with an adopted pipeline —
		// whether the adoption came from NewServer or this very call. A
		// prebuilt pipeline's policy lives inside the pipeline object,
		// not in these settings, so "merging" would rebuild an empty
		// deny-all pipeline and silently dropping the options would be
		// just as wrong — refuse loudly instead.
		return nil, opErr(op, errors.New("gsi: per-call pipeline options cannot modify a prebuilt authorization pipeline; build the variant with Environment.NewAuthorizationPipeline and pass it via WithAuthorizationPipeline"))
	case resolved.authzEnabled && resolved.authzAssemblyDiffers(s.base):
		// Assembly options appeared (or changed) per-call on a handle
		// whose pipeline — if any — was assembled from these same
		// settings, so the merged settings fully describe the variant:
		// this endpoint gets a private pipeline (its own decision
		// cache). A per-call WithAuthorizationPipeline without assembly
		// options falls through both cases and replaces the handle's
		// pipeline as-is.
		pipeline = newPipeline(s.env, resolved)
	}
	// Per-call trace options materialize an endpoint-private tracer;
	// otherwise the handle's (possibly nil) tracer serves.
	if err := resolved.buildTracer(); err != nil {
		return nil, opErr(op, err)
	}
	scfg := ServeConfig{
		Context:       resolved.contextConfig(s.env, s.cred),
		Handler:       h,
		StreamHandler: resolved.streamHandler,
		Environment:   s.env,
		Pipeline:      pipeline,
		Tracer:        resolved.tracer,
	}
	wantCtrl := resolved.metrics != nil || resolved.reloadCfg != nil ||
		resolved.metricsAddr != "" || resolved.adminEnable ||
		resolved.casUpstream != nil || resolved.casPublish != nil
	if wantCtrl {
		if resolved.adminEnable {
			if _, ok := resolved.transport.(gt3Transport); !ok {
				return nil, opErr(op, errors.New("gsi: the admin surface requires the GT3 transport (a hosting container to publish gsi.__admin on)"))
			}
		}
		if resolved.casPublish != nil {
			if _, ok := resolved.transport.(gt3Transport); !ok {
				return nil, opErr(op, errors.New("gsi: publishing a CAS bundle feed requires the GT3 transport (a hosting container to publish gsi.__cas.sync on)"))
			}
			if pipeline == nil {
				return nil, opErr(op, errors.New("gsi: publishing a CAS bundle feed requires an authorization pipeline (which resource servers may read the VO's roll is policy)"))
			}
		}
		if err := s.acquireControl(resolved, pipeline); err != nil {
			return nil, opErr(op, err)
		}
		scfg.ConfigureContainer = s.containerHook(resolved, pipeline)
	}
	ep, err := resolved.transport.Serve(ctx, addr, scfg)
	if err != nil {
		if wantCtrl {
			s.releaseControl()
		}
		return nil, opErr(op, err)
	}
	if wantCtrl {
		ep = &controlledEndpoint{Endpoint: ep, s: s}
	}
	return ep, nil
}

// sources returns the server's metric-source registry, creating it on
// first use. Never nil after a control-plane Serve; callers from the
// admin path tolerate nil (a server that never served with control
// options).
func (s *Server) sources() *serverMetricSources {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.src == nil {
		s.src = &serverMetricSources{}
	}
	return s.src
}

// DurableState returns the WAL-backed trust plane opened by
// WithDurableState, or nil. Mutate policy and gridmap through its
// objects — every mutation journals before it applies, so a restarted
// server resumes with identical state and generation counters.
func (s *Server) DurableState() *DurableState {
	if s.base.durable != nil {
		return s.base.durable
	}
	if s.base.authzPipeline != nil {
		return s.base.authzPipeline.DurableState()
	}
	return nil
}

// CASSyncStatus snapshots the CAS replication state: the replica's
// applied bundle version and generation plus the syncer's pull history.
// Configured is false while no control-plane endpoint with
// WithCASUpstream is serving.
func (s *Server) CASSyncStatus() CASSyncStatus {
	if cs := s.currentCASSyncer(); cs != nil {
		return cs.status()
	}
	return CASSyncStatus{}
}

// currentCASSyncer returns the live bundle syncer, nil when no control
// plane with WithCASUpstream is running.
func (s *Server) currentCASSyncer() *casSyncer {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ctrl == nil {
		return nil
	}
	return s.ctrl.casSync
}

// Reloader returns the live reload watcher started by WithReload, or
// nil while no control-plane endpoint is serving. It lets an operator
// (or a test) force a reload and read per-source health without going
// through the gsi.__admin port type.
func (s *Server) Reloader() *Reloader { return s.currentReloader() }

// currentReloader returns the live reload watcher, nil when no
// control plane with WithReload is running.
func (s *Server) currentReloader() *Reloader {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ctrl == nil {
		return nil
	}
	return s.ctrl.reloader
}

// acquireControl brings the control plane up (first endpoint) or joins
// the running one, and lands the server's metric series in the
// registry — once per registry, since re-registering fresh closures
// under the same names is a registration conflict by design.
//
// The control plane is per-server, first-Serve-wins: the reload
// configuration and listener address of the first control-plane Serve
// stay in force until the last such endpoint closes, at which point a
// later Serve may bring it up with new settings.
func (s *Server) acquireControl(resolved settings, pipeline *AuthorizationPipeline) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.src == nil {
		s.src = &serverMetricSources{}
	}
	if resolved.metrics != nil && !s.metricsDone[resolved.metrics] {
		if err := registerServerMetrics(resolved.metrics, metricID(s.cred), pipeline, s.src, resolved.tracer); err != nil {
			return err
		}
		if s.metricsDone == nil {
			s.metricsDone = make(map[*MetricsRegistry]bool)
		}
		s.metricsDone[resolved.metrics] = true
	}
	if s.ctrl == nil {
		ctrl := &serverControl{}
		if resolved.reloadCfg != nil {
			r, err := newReloader(*resolved.reloadCfg, s.env, pipeline)
			if err != nil {
				return err
			}
			ctrl.reloader = r
		}
		if resolved.casUpstream != nil && pipeline != nil {
			if rep := pipeline.Replica(); rep != nil {
				cs, err := newCASSyncer(s.env, s.cred, pipeline, *resolved.casUpstream, resolved.cacheWarmN)
				if err != nil {
					return err
				}
				ctrl.casSync = cs
			}
		}
		if resolved.metricsAddr != "" {
			if resolved.metrics == nil {
				return errors.New("gsi: a metrics listener requires a registry (WithMetrics)")
			}
			lis, err := net.Listen("tcp", resolved.metricsAddr)
			if err != nil {
				return err
			}
			mux := http.NewServeMux()
			mux.Handle("/metrics", resolved.metrics)
			mux.HandleFunc("/healthz", s.serveHealthz)
			// The plaintext listener faces whatever can reach the scrape
			// port: bound header/body reading and slow-client writes so a
			// stuck or hostile scraper cannot pin accept loops open.
			ctrl.httpSrv = &http.Server{
				Addr:              lis.Addr().String(),
				Handler:           mux,
				ReadHeaderTimeout: 5 * time.Second,
				ReadTimeout:       10 * time.Second,
				WriteTimeout:      30 * time.Second,
				IdleTimeout:       2 * time.Minute,
				MaxHeaderBytes:    1 << 16,
			}
			go ctrl.httpSrv.Serve(lis)
		}
		if ctrl.reloader != nil {
			s.src.setReloader(ctrl.reloader)
			ctrl.reloader.start()
		}
		if ctrl.casSync != nil {
			s.src.setCASSyncer(ctrl.casSync)
			ctrl.casSync.start()
		}
		s.ctrl = ctrl
	}
	s.ctrl.refs++
	return nil
}

// releaseControl drops one endpoint's hold on the control plane,
// tearing it down with the last.
func (s *Server) releaseControl() {
	s.mu.Lock()
	ctrl := s.ctrl
	if ctrl == nil {
		s.mu.Unlock()
		return
	}
	ctrl.refs--
	if ctrl.refs > 0 {
		s.mu.Unlock()
		return
	}
	s.ctrl = nil
	s.mu.Unlock()
	if ctrl.reloader != nil {
		ctrl.reloader.close()
	}
	if ctrl.httpSrv != nil {
		ctrl.httpSrv.Close()
	}
	if ctrl.casSync != nil {
		ctrl.casSync.close()
	}
}

// serveHealthz answers the plaintext listener's health probe: 200 while
// every watched configuration file last applied cleanly, 503 naming the
// unhealthy sources otherwise — so a scrape target going "unhealthy"
// after a bad config push is visible to orchestration, not only in the
// reload_failures counter.
func (s *Server) serveHealthz(w http.ResponseWriter, _ *http.Request) {
	if r := s.currentReloader(); r != nil {
		var sick []string
		for _, src := range r.Status() {
			if !src.Healthy {
				sick = append(sick, src.Name+": "+src.Error)
			}
		}
		if len(sick) > 0 {
			w.WriteHeader(http.StatusServiceUnavailable)
			for _, line := range sick {
				w.Write([]byte(line + "\n"))
			}
			return
		}
	}
	w.Write([]byte("ok\n"))
}

// containerHook is the GT3 container hook of a control-plane endpoint:
// it folds the endpoint's conversation table into the server's gauges
// and, when WithAdmin is on, publishes the admin port type — refused by
// EnableAdmin if the container cannot authorize it.
func (s *Server) containerHook(resolved settings, pipeline *AuthorizationPipeline) func(*ogsa.Container) error {
	return func(c *ogsa.Container) error {
		s.sources().addConvMgr(c.ConversationManager())
		if resolved.casPublish != nil {
			// The sync service enforces its own channel rules; route-step
			// authorization (resource "ogsa:gsi.__cas.sync") is the
			// container's, which Serve guaranteed has a pipeline. The
			// pipeline also feeds the hot-key export: keys only, never
			// decisions, and reading them is itself an authorized op.
			svc := cas.NewSyncService(resolved.casPublish, resolved.authzAudit)
			svc.SetHotKeySource(pipeline.HotDecisionKeys)
			c.Publish(cas.SyncHandle, svc)
		}
		if !resolved.adminEnable {
			return nil
		}
		backend := &adminBackend{
			server:   s,
			pipeline: pipeline,
			reg:      resolved.metrics,
			pool:     resolved.adminPool,
			tracer:   resolved.tracer,
		}
		_, err := c.EnableAdmin(ogsa.AdminConfig{Backend: backend})
		return err
	}
}

// controlledEndpoint ties the control plane's lifetime to the
// endpoint's: Close releases the server's reload watcher and metrics
// listener along with the transport endpoint (idempotently — Endpoint
// Close may be called more than once).
type controlledEndpoint struct {
	Endpoint
	s    *Server
	once sync.Once
}

func (e *controlledEndpoint) Close() error {
	err := e.Endpoint.Close()
	e.once.Do(e.s.releaseControl)
	return err
}
