package gsi

import (
	"context"
	"errors"
)

// Server is the acceptor handle of the redesigned API: a service
// credential bound to an Environment, serving secured exchanges over a
// chosen Transport. The environment's authorizer (if any) gates every
// exchange before the handler runs, so the handler sees only
// authenticated, authorized calls — the paper's hosting-environment
// pipeline as an API shape.
//
//	server, _ := env.NewServer(hostCred, gsi.WithTransport(gsi.TransportGT3()))
//	ep, _ := server.Serve(ctx, "127.0.0.1:0", handler)
//	defer ep.Close()
type Server struct {
	env  *Environment
	cred *Credential
	base settings
}

// NewServer builds a Server handle. A credential is mandatory: GSI
// always authenticates the service side. Pipeline options given here
// (WithLocalPolicy, WithTrustedVO, WithGridMap, WithDecisionCache,
// WithAuditSink) assemble one authorization pipeline shared by every
// endpoint the server opens; WithAuthorizationPipeline adopts a
// prebuilt one instead.
func (e *Environment) NewServer(cred *Credential, opts ...Option) (*Server, error) {
	if cred == nil {
		return nil, opErr("gsi.NewServer", errors.New("gsi: server requires a credential"))
	}
	base := settings{transport: TransportGT2()}
	base, err := base.apply(opts)
	if err != nil {
		return nil, opErr("gsi.NewServer", err)
	}
	if base.authzAdopted && base.authzRev > 0 {
		// Same refusal Serve makes for the per-call combination: a
		// prebuilt pipeline cannot be modified by assembly or tuning
		// options, and dropping them silently would serve under weaker
		// policy than the operator wrote down.
		return nil, opErr("gsi.NewServer", errors.New("gsi: pipeline options cannot modify a prebuilt authorization pipeline; build the variant with Environment.NewAuthorizationPipeline and pass it via WithAuthorizationPipeline"))
	}
	if base.authzEnabled && base.authzPipeline == nil {
		base.authzPipeline = newPipeline(e, base)
	}
	return &Server{env: e, cred: cred, base: base}, nil
}

// Environment returns the server's environment.
func (s *Server) Environment() *Environment { return s.env }

// Identity returns the server's grid identity.
func (s *Server) Identity() Name { return s.cred.Leaf().Subject }

// Serve starts accepting secured sessions on addr ("host:port";
// ":0"-style addresses pick an ephemeral port — read the dialable form
// from Endpoint.Addr). The endpoint stops when ctx ends or Close is
// called; in-flight handshakes and exchanges abort with the context.
func (s *Server) Serve(ctx context.Context, addr string, h Handler, opts ...Option) (Endpoint, error) {
	const op = "gsi.Server.Serve"
	if h == nil {
		return nil, opErr(op, errors.New("gsi: nil handler"))
	}
	resolved, err := s.base.apply(opts)
	if err != nil {
		return nil, opErr(op, err)
	}
	pipeline := resolved.authzPipeline
	switch {
	case resolved.authzAssemblyDiffers(s.base) && resolved.authzAdopted:
		// Assembly or tuning options combined with an adopted pipeline —
		// whether the adoption came from NewServer or this very call. A
		// prebuilt pipeline's policy lives inside the pipeline object,
		// not in these settings, so "merging" would rebuild an empty
		// deny-all pipeline and silently dropping the options would be
		// just as wrong — refuse loudly instead.
		return nil, opErr(op, errors.New("gsi: per-call pipeline options cannot modify a prebuilt authorization pipeline; build the variant with Environment.NewAuthorizationPipeline and pass it via WithAuthorizationPipeline"))
	case resolved.authzEnabled && resolved.authzAssemblyDiffers(s.base):
		// Assembly options appeared (or changed) per-call on a handle
		// whose pipeline — if any — was assembled from these same
		// settings, so the merged settings fully describe the variant:
		// this endpoint gets a private pipeline (its own decision
		// cache). A per-call WithAuthorizationPipeline without assembly
		// options falls through both cases and replaces the handle's
		// pipeline as-is.
		pipeline = newPipeline(s.env, resolved)
	}
	ep, err := resolved.transport.Serve(ctx, addr, ServeConfig{
		Context:       resolved.contextConfig(s.env, s.cred),
		Handler:       h,
		StreamHandler: resolved.streamHandler,
		Environment:   s.env,
		Pipeline:      pipeline,
	})
	if err != nil {
		return nil, opErr(op, err)
	}
	return ep, nil
}
