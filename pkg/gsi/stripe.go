package gsi

import (
	"context"
	"errors"
	"fmt"
	"io"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/gridcrypto"
	"repro/internal/gsitransport"
	"repro/internal/record"
	"repro/internal/trace"
	"repro/internal/wire"
)

// Striped streams: one logical byte stream fanned over K secured GT2
// sessions, the facade form of GridFTP's parallel stripes. Each stripe
// is an ordinary pooled session — the handshake amortization of the
// pool applies per stripe — and each stripe seals/opens on its own
// connection, so K stripes drive up to K cores through the record
// layer. The data plane is internal/gsitransport's StripedWriter and
// StripedReader: globally sequenced DATA chunks dealt round-robin, and
// a FIN trailer carrying the total chunk count on every stripe, so a
// stripe that dies mid-flight is always an error, never a silently
// truncated transfer.

// stripedOpenOp binds one session into a striped stream. Its body
// carries (op, group id, stripe index, stripe count); the server
// authorizes op per stripe and collects the group's connections until
// all count stripes arrived, then runs the StreamHandler over them.
const stripedOpenOp = reservedOpPrefix + "stream.sopen"

// maxStripes bounds the stripe count a client may request and a server
// will grant.
const maxStripes = 16

// stripeJoinTimeout bounds how long a server-side stripe waits for the
// rest of its group: a client that dies between opens must not park
// serve goroutines forever.
const stripeJoinTimeout = 10 * time.Second

// maxStripeGroups bounds concurrently forming groups per endpoint so a
// hostile peer cannot park unbounded serve goroutines.
const maxStripeGroups = 256

// OpenStripedStream opens a stream for op fanned over the WithStripes
// stripe count: it checks that many sessions out (from the pool on a
// pooling client), binds them into one group on the server, and
// returns a Stream whose bytes travel over all stripes in parallel.
// With a stripe count of 1 (or none configured) it is exactly
// OpenStream. Striping requires the GT2 transport — GT3 carries chunks
// as calls and has no connection to stripe over.
func (c *Client) OpenStripedStream(ctx context.Context, endpoint, op string, opts ...Option) (Stream, error) {
	const opName = "gsi.Client.OpenStripedStream"
	_, cancelSkew, s, err := c.resolve(ctx, opts)
	cancelSkew() // settings only; session I/O budgets its own deadlines
	if err != nil {
		return nil, opErr(opName, err)
	}
	if s.stripes <= 1 {
		return c.OpenStream(ctx, endpoint, op, opts...)
	}
	if op == "" || strings.HasPrefix(op, reservedOpPrefix) {
		return nil, opErr(opName, fmt.Errorf("gsi: invalid stream op %q", op))
	}
	if s.transport.String() != "gt2" {
		return nil, opErr(opName, fmt.Errorf("%w: striping requires the GT2 transport", errStreamsUnsupported))
	}
	group, err := gridcrypto.RandomBytes(16)
	if err != nil {
		return nil, opErr(opName, err)
	}
	k := s.stripes
	// One root span covers the whole transfer; each stripe gets a lane
	// child whose context crosses on that stripe's open, so the server's
	// per-lane spans join the same trace.
	var (
		sp    *trace.Span
		lanes []*trace.Span
	)
	if tr := c.base.tracer; tr != nil {
		sp = tr.StartRoot("client.stream")
	}
	var (
		owners  []Session     // checkouts to release at Close
		members []*gt2Session // sessions locked and bound into the group
	)
	cleanup := func() {
		// Members are mid-group on the server: break their connections so
		// the server's group wait fails fast and the pool discards them
		// instead of parking half-open stripes.
		for _, m := range members {
			m.conn.Close()
			m.mu.Unlock()
		}
		for _, o := range owners {
			o.Close()
		}
		for _, lane := range lanes {
			lane.End()
		}
		sp.End()
	}
	for i := 0; i < k; i++ {
		lctx := ctx
		var lane *trace.Span
		if sp != nil {
			lane = sp.StartChild("client.stripe")
			lanes = append(lanes, lane)
			lctx = trace.ContextWithSpan(ctx, lane)
		}
		sess, err := c.Connect(lctx, endpoint, opts...)
		if err != nil {
			sp.SetError(err)
			cleanup()
			return nil, opErr(opName, err)
		}
		owners = append(owners, sess)
		g := gt2SessionOf(sess)
		if g == nil {
			err := fmt.Errorf("%w: striping requires GT2 sessions", errStreamsUnsupported)
			sp.SetError(err)
			cleanup()
			return nil, opErr(opName, err)
		}
		lane.SetPeer(peerDNOf(g.conn.Peer()))
		body := wire.NewEncoder().Str(op).Bytes(group).U32(uint32(i)).U32(uint32(k)).Finish()
		g.mu.Lock()
		payload, buf, err := g.roundTrip(lctx, stripedOpenOp, body)
		if err != nil {
			g.mu.Unlock()
			sp.SetError(err)
			cleanup()
			return nil, opErr(opName, err)
		}
		_ = payload
		buf.Free()
		members = append(members, g)
	}
	conns := make([]*gsitransport.Conn, k)
	for i, m := range members {
		conns[i] = m.conn
	}
	var out Stream = &gt2StripedStream{
		members: members,
		owners:  owners,
		w:       gsitransport.NewStripedWriter(ctx, conns),
		r:       gsitransport.NewStripedReader(ctx, conns, 0),
		peer:    members[0].conn.Peer(),
	}
	if sp != nil {
		dn := peerDNOf(members[0].conn.Peer())
		sp.SetPeer(dn)
		ts := newTracedStream(out, sp, "client")
		ts.lanes = lanes
		ts.xfer = c.base.tracer.Transfers().Begin("sopen:"+op, dn, k, sp.Context().TraceID)
		out = ts
	}
	return out, nil
}

// gt2SessionOf unwraps a facade Session to the GT2 session holding the
// transport connection, through any pool wrapper.
func gt2SessionOf(s Session) *gt2Session {
	for {
		switch v := s.(type) {
		case *gt2Session:
			return v
		case *pooledSession:
			s = v.sess
		default:
			return nil
		}
	}
}

// gt2StripedStream is the client-side striped Stream: K locked
// sessions, a striped writer/reader pair over their connections, and a
// Close that resynchronizes every stripe before releasing the
// checkouts (so a pooling client parks only clean connections).
type gt2StripedStream struct {
	members []*gt2Session
	owners  []Session
	w       *gsitransport.StripedWriter
	r       *gsitransport.StripedReader
	peer    Peer
	closed  atomic.Bool
}

func (g *gt2StripedStream) Read(p []byte) (int, error) {
	n, err := g.r.Read(p)
	return n, streamErr(err)
}

func (g *gt2StripedStream) Write(p []byte) (int, error) {
	n, err := g.w.Write(p)
	return n, streamErr(err)
}

func (g *gt2StripedStream) CloseWrite() error { return streamErr(g.w.Close()) }

func (g *gt2StripedStream) Peer() Peer { return g.peer }

// Close terminates both halves — FIN trailer on every stripe if the
// write half is still open, read half consumed to completion — and
// releases every session. A stripe that cannot resynchronize leaves
// its connection broken, which the pool observes at release.
func (g *gt2StripedStream) Close() error {
	if g.closed.Swap(true) {
		return nil
	}
	firstErr := g.w.Close()
	if err := drainStriped(g.r); err != nil {
		var peerErr *record.PeerError
		if !errors.As(err, &peerErr) {
			if firstErr == nil {
				firstErr = err
			}
			g.r.Abort()
		} else {
			g.r.Join()
		}
	} else {
		g.r.Join()
	}
	for _, m := range g.members {
		m.mu.Unlock()
	}
	for _, o := range g.owners {
		if err := o.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return streamErr(firstErr)
}

// drainStriped consumes a striped reader to its clean end. A peer
// abort (ERROR record) returns the *record.PeerError with every
// stripe already resynchronized.
func drainStriped(r *gsitransport.StripedReader) error {
	var scratch [4096]byte
	for {
		_, err := r.Read(scratch[:])
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
	}
}

// serverStripedStream is the handler-facing Stream of a striped group.
// Termination and drain are owned by the group runner, so Close only
// flushes the write half (mirroring serverGT2Stream).
type serverStripedStream struct {
	w    *gsitransport.StripedWriter
	r    *gsitransport.StripedReader
	peer Peer
}

func (s *serverStripedStream) Read(p []byte) (int, error) {
	n, err := s.r.Read(p)
	return n, streamErr(err)
}

func (s *serverStripedStream) Write(p []byte) (int, error) {
	n, err := s.w.Write(p)
	return n, streamErr(err)
}

func (s *serverStripedStream) CloseWrite() error { return streamErr(s.w.Close()) }
func (s *serverStripedStream) Close() error      { return streamErr(s.w.Close()) }
func (s *serverStripedStream) Peer() Peer        { return s.peer }

// --- server-side stripe group registry ----------------------------------

// stripeGroupKey binds a forming group to the authenticated peer that
// opens it: stripes under one group id must all arrive from the same
// identity.
type stripeGroupKey struct {
	peer string
	id   string
}

// stripeGroup is one striped stream forming (or running) on a server:
// connections indexed by stripe, collected until count arrive. started
// closes when the group is complete; done closes when the transfer —
// handler plus resynchronization — has finished and the connections
// belong to their serve loops again.
type stripeGroup struct {
	op      string
	peer    Peer
	count   int
	conns   []*gsitransport.Conn
	joined  int
	failed  bool
	started chan struct{}
	done    chan struct{}
}

// stripeGroups is the per-endpoint registry of forming groups, created
// by gt2Transport.Serve and shared by its connection goroutines.
type stripeGroups struct {
	mu sync.Mutex
	m  map[stripeGroupKey]*stripeGroup
}

func newStripeGroups() *stripeGroups {
	return &stripeGroups{m: make(map[stripeGroupKey]*stripeGroup)}
}

// join registers one stripe's connection under its group, creating the
// group on first arrival. The completing arrival is the group's runner
// (second return true); the group leaves the registry at that moment —
// its remaining lifecycle is carried by the started/done channels.
func (g *stripeGroups) join(key stripeGroupKey, idx, count int, conn *gsitransport.Conn, peer Peer, op string) (*stripeGroup, bool, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	grp := g.m[key]
	if grp == nil {
		if len(g.m) >= maxStripeGroups {
			return nil, false, errors.New("gsi: too many forming stripe groups")
		}
		grp = &stripeGroup{
			op:      op,
			peer:    peer,
			count:   count,
			conns:   make([]*gsitransport.Conn, count),
			started: make(chan struct{}),
			done:    make(chan struct{}),
		}
		g.m[key] = grp
	}
	switch {
	case grp.failed:
		return nil, false, errors.New("gsi: stripe group already failed")
	case count != grp.count:
		return nil, false, errors.New("gsi: stripe count disagrees within group")
	case op != grp.op:
		return nil, false, errors.New("gsi: stream op disagrees within group")
	case grp.conns[idx] != nil:
		return nil, false, errors.New("gsi: duplicate stripe index")
	}
	grp.conns[idx] = conn
	grp.joined++
	if grp.joined == grp.count {
		close(grp.started)
		delete(g.m, key)
		return grp, true, nil
	}
	return grp, false, nil
}

// abandon fails a group whose remaining stripes never arrived. Reports
// false when the group completed concurrently — the caller's stripe is
// then part of a running transfer and must wait for done instead.
func (g *stripeGroups) abandon(key stripeGroupKey, grp *stripeGroup) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	select {
	case <-grp.started:
		return false
	default:
	}
	grp.failed = true
	if g.m[key] == grp {
		delete(g.m, key)
	}
	return true
}

// serveGT2StripedOpen handles one gsi.__stream.sopen exchange: validate
// and authorize the carried op (per stripe — the decision cache makes
// repeats cheap), join the group, and either run the group's transfer
// (last arrival) or park until it finishes. Reports whether the
// connection is still usable for further exchanges.
func serveGT2StripedOpen(ctx context.Context, conn *gsitransport.Conn, cfg ServeConfig, peer Peer, authorizer Engine, groups *stripeGroups, body []byte, rbuf *record.Buf, sp *trace.Span) bool {
	bg := context.Background()
	d := wire.NewDecoder(body)
	op := d.Str()
	groupID := string(d.Bytes())
	idx := int(d.U32())
	count := int(d.U32())
	derr := d.Done()
	rbuf.Free()
	refuse := func(err error) {
		sp.SetError(err)
		sp.End()
	}
	if cfg.StreamHandler == nil {
		refuse(errors.New("no stream handler"))
		return sendGT2Reply(bg, conn, gt2StatusNotFound, []byte("gsi: endpoint does not accept streams")) == nil
	}
	if derr != nil || len(groupID) != 16 || count < 1 || count > maxStripes || idx < 0 || idx >= count {
		refuse(errors.New("malformed striped open"))
		return sendGT2Reply(bg, conn, gt2StatusNotFound, []byte("gsi: malformed striped open")) == nil
	}
	if op == "" || strings.HasPrefix(op, reservedOpPrefix) {
		refuse(errors.New("invalid stream op"))
		return sendGT2Reply(bg, conn, gt2StatusNotFound, []byte("gsi: invalid stream op "+op)) == nil
	}
	asp := sp.StartChild("server.authz")
	exPeer := peer
	var authErr error
	if cfg.Pipeline != nil {
		exPeer, authErr = authorizePipelined(ctx, cfg.Pipeline, peer, op)
	} else {
		authErr = authorizeExchange(authorizer, cfg.Environment, peer, op)
	}
	asp.SetError(authErr)
	asp.End()
	if authErr != nil {
		refuse(authErr)
		return sendGT2Reply(bg, conn, gt2Status(authErr), []byte(authErr.Error())) == nil
	}
	key := stripeGroupKey{peer: peerKey(peer), id: groupID}
	grp, runner, jerr := groups.join(key, idx, count, conn, exPeer, op)
	if jerr != nil {
		refuse(jerr)
		return sendGT2Reply(bg, conn, gt2StatusError, []byte(jerr.Error())) == nil
	}
	// From here the connection belongs to the group until done: even on
	// a failed reply it must not be closed out from under the transfer.
	replyErr := sendGT2Reply(bg, conn, gt2StatusOK, nil)
	if runner {
		runStripeGroup(ctx, cfg, grp, sp)
		sp.End()
		return replyErr == nil && !conn.Broken()
	}
	select {
	case <-grp.started:
	case <-time.After(stripeJoinTimeout):
		if groups.abandon(key, grp) {
			// The group never completed; this stripe was never handed to a
			// transfer, so the connection can simply die.
			refuse(errors.New("stripe group incomplete"))
			return false
		}
		// Lost the race with the completing join: fall through and wait.
	}
	<-grp.done
	sp.End()
	return replyErr == nil && !conn.Broken()
}

// runStripeGroup executes one striped stream on the completing
// arrival's goroutine: handler, terminal records on every stripe, then
// the client half consumed so all K connections resynchronize. The
// runner's lane span (when traced) parents a server.stream span
// covering the handler's whole transfer.
func runStripeGroup(ctx context.Context, cfg ServeConfig, grp *stripeGroup, sp *trace.Span) {
	defer close(grp.done)
	bg := context.Background() // conn-lifetime CloseOnDone carries cancellation
	w := gsitransport.NewStripedWriter(bg, grp.conns)
	r := gsitransport.NewStripedReader(bg, grp.conns, 0)
	var hstream Stream = &serverStripedStream{w: w, r: r, peer: grp.peer}
	var ts *tracedStream
	if sp != nil && cfg.Tracer != nil {
		gsp := sp.StartChild("server.stream")
		dn := peerDNOf(grp.peer)
		gsp.SetPeer(dn)
		ts = newTracedStream(hstream, gsp, "server")
		ts.xfer = cfg.Tracer.Transfers().Begin("sopen:"+grp.op, dn, grp.count, gsp.Context().TraceID)
		hstream = ts
	}
	herr := cfg.StreamHandler(ctx, grp.peer, grp.op, hstream)
	if ts != nil {
		ts.finish(herr)
	}
	var closeErr error
	if herr != nil {
		closeErr = w.CloseWithError(herr.Error())
	} else {
		closeErr = w.Close()
	}
	if closeErr != nil {
		r.Abort()
		return
	}
	if err := drainStriped(r); err != nil {
		var peerErr *record.PeerError
		if !errors.As(err, &peerErr) {
			r.Abort()
			return
		}
	}
	r.Join()
}
