package gsi

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/authz"
	"repro/internal/cas"
	"repro/internal/gridcert"
	"repro/internal/gss"
	"repro/internal/ogsa"
	"repro/internal/trace"
)

// AuditSink receives security-relevant events. secsvc.AuditLog — the
// paper's §4.1 audit service with its tamper-evident hash chain —
// implements it, as does any ogsa.AuditSink.
type AuditSink = ogsa.AuditSink

// AuthzDecision is one explained authorization outcome from an
// AuthorizationPipeline: the combined decision, its local and VO
// components, the authenticated identity and its gridmap account, and
// whether the answer came from the decision cache.
type AuthzDecision struct {
	// Decision is the effective outcome: Permit or Deny (the pipeline
	// never returns NotApplicable — an unmatched request denies).
	Decision Decision
	// Local and VO are the component decisions (VO is NotApplicable
	// when the peer presented no CAS assertion).
	Local Decision
	VO    Decision
	// Identity is the authenticated requester (end-entity DN).
	Identity Name
	// VOName is the community that issued the applied assertion (empty
	// without one).
	VOName Name
	// LocalAccount is the grid-mapfile account for the identity (empty
	// when the pipeline has no gridmap).
	LocalAccount string
	// Reason explains the decision for humans and audit trails.
	Reason string
	// Cached reports that the decision was served from the cache.
	Cached bool
}

// DefaultDecisionTTL bounds how long a cached authorization decision
// may be served without re-evaluation. Generation counters invalidate
// cached decisions immediately on policy, gridmap, VO-set, or
// trust-store mutation; the TTL is the backstop for state the counters
// cannot see (e.g. wall-clock movement across a rule's NotAfter).
const DefaultDecisionTTL = 30 * time.Second

// AuthorizationPipeline is the facade's policy decision point: the
// paper's §4.1 authorization service joined with Figure 2's resource
// rule ("the resource checks both local policy and the VO policy").
// For each exchange it takes the authenticated peer's verified chain,
// extracts and verifies any embedded CAS assertion, evaluates the
// intersection of VO and local policy with the peer's community
// groups/roles in scope, maps the identity through the grid-mapfile,
// and emits the decision to the audit sink. A sharded decision cache
// keyed by (credential fingerprint, resource, action, policy
// generations) makes the hot path one map lookup instead of chain
// crypto plus rule-list scans.
//
// Build one with Environment.NewAuthorizationPipeline and attach it to
// servers with WithAuthorizationPipeline, or let a Server assemble a
// private one from WithLocalPolicy/WithTrustedVO/WithGridMap options.
type AuthorizationPipeline struct {
	env     *Environment
	local   *Policy
	gridmap *GridMap
	audit   AuditSink
	cache   *decisionCache // nil when disabled
	// replica is the pulled CAS policy bundle (WithCASUpstream): when a
	// member arrives WITHOUT an assertion, the replica answers the VO's
	// half of the decision from the last applied bundle. nil = none.
	replica *cas.Replica
	// durable is the WAL-backed state the pipeline's policy/gridmap/audit
	// came from (WithDurableState); nil for in-memory pipelines.
	durable *DurableState

	mu    sync.RWMutex
	vos   map[string]*Certificate // trusted CAS signing certs by VO DN
	voGen uint64
}

// TraceAuditSink is the optional extension of AuditSink that carries
// the active trace id into the audit record. secsvc.AuditLog implements
// it — the id joins the hash chain, so the decision↔trace correlation
// is as tamper-evident as the decision itself.
type TraceAuditSink interface {
	AuditSink
	RecordTrace(event, subject, detail, traceID string)
}

// NewAuthorizationPipeline builds a standalone pipeline from the
// environment's trust roots and clock plus the pipeline options
// (WithLocalPolicy, WithTrustedVO, WithGridMap, WithDecisionCache,
// WithAuditSink). Without WithLocalPolicy the pipeline denies
// everything: resources are closed-world, so policy must be stated.
func (e *Environment) NewAuthorizationPipeline(opts ...Option) (*AuthorizationPipeline, error) {
	var s settings
	s, err := s.apply(opts)
	if err != nil {
		return nil, opErr("gsi.NewAuthorizationPipeline", err)
	}
	if s.authzAdopted {
		// Accepting it silently would discard the prebuilt pipeline and
		// hand back a policy-less deny-all one — the same trap NewServer
		// and Serve refuse loudly.
		return nil, opErr("gsi.NewAuthorizationPipeline", errors.New("gsi: WithAuthorizationPipeline is a server option; NewAuthorizationPipeline builds pipelines from assembly options"))
	}
	if err := s.materializeDurable(); err != nil {
		return nil, opErr("gsi.NewAuthorizationPipeline", err)
	}
	return newPipeline(e, s), nil
}

// newPipeline assembles a pipeline from resolved settings.
func newPipeline(e *Environment, s settings) *AuthorizationPipeline {
	p := &AuthorizationPipeline{
		env:     e,
		local:   s.authzLocal,
		gridmap: s.authzGridMap,
		audit:   s.authzAudit,
		durable: s.durable,
		vos:     make(map[string]*Certificate),
	}
	ttl := DefaultDecisionTTL
	if s.authzTTLSet {
		ttl = s.authzTTL
	}
	if ttl > 0 {
		p.cache = newDecisionCache(ttl)
	}
	for _, cert := range s.authzVOs {
		p.vos[cert.Subject.String()] = cert
	}
	if s.casUpstream != nil {
		p.replica = cas.NewReplica(s.casUpstream.Cert)
		// Bundles from the upstream VO are as trusted as assertions it
		// signs: pulling implies trusting.
		p.vos[s.casUpstream.Cert.Subject.String()] = s.casUpstream.Cert
	}
	return p
}

// Replica returns the pipeline's CAS bundle replica (nil unless
// WithCASUpstream configured one).
func (p *AuthorizationPipeline) Replica() *cas.Replica { return p.replica }

// DurableState returns the WAL-backed state the pipeline was assembled
// over (nil for in-memory pipelines).
func (p *AuthorizationPipeline) DurableState() *DurableState { return p.durable }

// TrustVO registers a CAS signing certificate at runtime: the resource
// provider's act of outsourcing a policy slice to that community.
// Registration bumps the VO-set generation, so cached decisions made
// under the previous set re-evaluate on their next lookup.
func (p *AuthorizationPipeline) TrustVO(certs ...*Certificate) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, cert := range certs {
		p.vos[cert.Subject.String()] = cert
	}
	p.voGen++
}

// DistrustVO removes a community's signing certificate; assertions it
// issued stop being honored on the very next exchange.
func (p *AuthorizationPipeline) DistrustVO(vo Name) {
	p.mu.Lock()
	defer p.mu.Unlock()
	delete(p.vos, vo.String())
	p.voGen++
}

func (p *AuthorizationPipeline) trustedVO(vo Name) (*Certificate, bool) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	cert, ok := p.vos[vo.String()]
	return cert, ok
}

// LocalPolicy returns the pipeline's local policy (nil when none was
// configured; such a pipeline denies everything).
func (p *AuthorizationPipeline) LocalPolicy() *Policy { return p.local }

// GridMap returns the pipeline's grid-mapfile (nil when none).
func (p *AuthorizationPipeline) GridMap() *GridMap { return p.gridmap }

// CacheStats reports decision-cache effectiveness; the zero value when
// the cache is disabled.
func (p *AuthorizationPipeline) CacheStats() DecisionCacheStats {
	if p.cache == nil {
		return DecisionCacheStats{}
	}
	return p.cache.stats()
}

// generations snapshots every counter a cached decision depends on.
func (p *AuthorizationPipeline) generations() [5]uint64 {
	var g [5]uint64
	if p.local != nil {
		g[0] = p.local.Generation()
	}
	if p.gridmap != nil {
		g[1] = p.gridmap.Generation()
	}
	p.mu.RLock()
	g[2] = p.voGen
	p.mu.RUnlock()
	g[3] = p.env.trust.Generation()
	if p.replica != nil {
		// Each applied bundle bumps the replica generation, so decisions
		// computed under the previous bundle stop being addressable.
		g[4] = p.replica.Generation()
	}
	return g
}

// Authorize runs the pipeline for one request: may the authenticated
// peer perform action on resource? The returned error is non-nil only
// for infrastructure failures (context ended, chain rejected); a clean
// policy deny is reported in AuthzDecision.Decision with a nil error.
// Every decision — cached or cold — is recorded to the audit sink.
func (p *AuthorizationPipeline) Authorize(ctx context.Context, peer Peer, resource, action string) (AuthzDecision, error) {
	if err := ctx.Err(); err != nil {
		// Audited like every other deny: the caller observed a refusal,
		// so the refusal must be in the trail.
		d, _ := p.finish(ctx, AuthzDecision{Decision: Deny, Reason: "request context ended"}, resource, action)
		return d, err
	}
	if peer.Anonymous {
		return p.finish(ctx, AuthzDecision{Decision: Deny, Reason: "anonymous peers are never authorized"}, resource, action)
	}
	leaf := peerLeaf(peer)
	if leaf == nil {
		return p.finish(ctx, AuthzDecision{Decision: Deny, Reason: "peer presented no certificate chain"}, resource, action)
	}
	now := p.env.Now()
	gens := p.generations()
	key := decisionKey{fp: leaf.Fingerprint(), resource: resource, action: action, gens: gens}
	if p.cache != nil {
		if d, warmed, ok := p.cache.lookup(key, now); ok {
			if !warmed {
				d.Cached = true
				return p.finish(ctx, d, resource, action)
			}
			// A warmed entry's decision came from this pipeline's own
			// policy state, but its fp→identity binding is the
			// publisher's unverified claim. Honor it only once the
			// peer's own verified chain proves the binding; otherwise
			// drop the entry and take the cold path, which decides from
			// scratch. A forged hot key can therefore waste one
			// evaluation, never flip a decision.
			if info := p.verifiedPeerInfo(peer, now); info != nil && info.Identity.Equal(d.Identity) {
				p.cache.confirmWarm(key, chainNotAfter(peer, leaf))
				d.Cached = true
				return p.finish(ctx, d, resource, action)
			}
			p.cache.remove(key)
		}
	}
	d, expiry, err := p.evaluate(peer, leaf, resource, action, now)
	if err != nil {
		d, _ = p.finish(ctx, d, resource, action)
		return d, err
	}
	if p.cache != nil {
		p.cache.store(key, d, expiry, now)
	}
	return p.finish(ctx, d, resource, action)
}

// finish records the decision to the audit sink and returns it. When
// the sink understands trace ids and the context carries an active
// span, the trace id is recorded — and hash-chained — with the event.
func (p *AuthorizationPipeline) finish(ctx context.Context, d AuthzDecision, resource, action string) (AuthzDecision, error) {
	if p.audit != nil {
		detail := fmt.Sprintf("%s %s: %s", action, resource, d.Reason)
		if d.Cached {
			detail += " (cached)"
		}
		event := "authz-" + d.Decision.String()
		if ts, ok := p.audit.(TraceAuditSink); ok {
			if span := trace.SpanFromContext(ctx); span != nil {
				if sc := span.Context(); sc.Valid() {
					ts.RecordTrace(event, d.Identity.String(), detail, sc.TraceID.String())
					return d, nil
				}
			}
		}
		p.audit.Record(event, d.Identity.String(), detail)
	}
	return d, nil
}

// peerLeaf picks the certificate that keys per-credential caches.
func peerLeaf(peer Peer) *Certificate {
	if len(peer.Chain) > 0 {
		return peer.Chain[0]
	}
	if peer.Info != nil {
		return peer.Info.Leaf
	}
	return nil
}

// evaluate is the cold path: full chain validation (skipped when the
// transport already did it), CAS assertion verification, VO ∩ local
// policy, gridmap mapping. It returns the decision and the instant it
// may be cached until.
func (p *AuthorizationPipeline) evaluate(peer Peer, leaf *Certificate, resource, action string, now time.Time) (AuthzDecision, time.Time, error) {
	expiry := now.Add(p.cacheTTL())
	// The chain bounds every cached decision: a permit must never
	// outlive the credential it was granted to.
	if notAfter := chainNotAfter(peer, leaf); notAfter.Before(expiry) {
		expiry = notAfter
	}

	info := peer.Info
	if len(peer.Chain) > 0 {
		// Re-validate even when the handshake already did: the peer's
		// Info was computed at connect time, and a long-lived session
		// must not keep a credential alive across a CRL or root removal.
		// The environment's verified-chain cache makes this one digest
		// on the steady state, and its entries are themselves keyed on
		// trust-store generation and bounded by the validity window —
		// so revocation bites on the next exchange, not at reconnect.
		var err error
		info, err = p.env.trust.VerifyCached(p.env.chains, gridcert.EncodeChain(peer.Chain), peer.Chain, gridcert.VerifyOptions{Now: now})
		if err != nil {
			return AuthzDecision{Decision: Deny, Reason: "authentication failed"}, expiry, err
		}
	} else if info == nil {
		return AuthzDecision{Decision: Deny, Reason: "peer presented no certificate chain"}, expiry, nil
	}
	d := AuthzDecision{Identity: info.Identity, VO: NotApplicable}
	// The environment clock rides on every rule evaluation, so
	// time-bounded rules are testable under WithClock and consistent
	// with chain validation (no time.Now fallback inside the engine).
	req := authz.Request{Subject: info.Identity, Resource: resource, Action: action, Time: now}

	// Assertion handling is the enforcer's exact logic (cas.CheckAssertion
	// is shared, so the two paths cannot drift): absent falls back to
	// local policy; present-but-unusable denies outright.
	assertion, reason, aerr := cas.CheckAssertion(info, p.trustedVO, now)
	if reason != "" {
		d.Decision = Deny
		d.Reason = reason
		if aerr != nil {
			// Keep the root cause in the decision (and thus the audit
			// trail): "invalid assertion" without the decode/signature
			// detail is undebuggable for the community that issued it.
			d.Reason = reason + ": " + aerr.Error()
		}
		return d, expiry, nil
	}

	// The VO layer comes from the assertion when one was presented, or —
	// for members that arrive bare — from the replicated policy bundle
	// pulled from the community server. Either way the intersection rule
	// is the same: both layers must permit.
	voLayer := false
	if assertion != nil {
		voLayer = true
		d.VOName = assertion.VO
		// Verified community attributes flow into the request: local
		// policy may reference VO groups and roles.
		req.Groups = assertion.Groups
		req.Roles = assertion.Roles
		voPolicy := authz.NewPolicy(authz.DenyOverrides)
		if err := voPolicy.AddChecked(assertion.Rules...); err != nil {
			d.Decision = Deny
			d.Reason = "assertion carries a rule with an invalid effect"
			return d, expiry, nil
		}
		d.VO = voPolicy.Evaluate(req)
		// A cached grant must not outlive the assertion that backs it.
		if assertion.ExpiresAt.Before(expiry) {
			expiry = assertion.ExpiresAt
		}
	} else {
		voLayer = p.replicaLayer(&d, &req)
	}

	p.combineAndMap(&d, req, voLayer, assertion != nil)
	return d, expiry, nil
}

// replicaLayer fills the VO half of a decision for a peer that arrived
// without an assertion, from the replicated policy bundle. A non-member
// falls through to local policy alone — the bundle vouches for members
// only; it never blocks identities the VO has nothing to say about.
// Shared by the cold path and warm-cache promotion so the two cannot
// drift.
func (p *AuthorizationPipeline) replicaLayer(d *AuthzDecision, req *authz.Request) (voLayer bool) {
	if p.replica == nil {
		return false
	}
	groups, roles, ok := p.replica.Lookup(req.Subject)
	if !ok {
		return false
	}
	d.VOName = p.replica.VO()
	req.Groups = groups
	req.Roles = roles
	d.VO = p.replica.Evaluate(authz.Request{Subject: req.Subject, Resource: req.Resource, Action: req.Action, Time: req.Time})
	return true
}

// combineAndMap finishes a decision: local policy, the Figure-2
// intersection when a VO layer is in scope, and the grid-mapfile
// mapping. Shared by the cold path and warm-cache promotion.
func (p *AuthorizationPipeline) combineAndMap(d *AuthzDecision, req authz.Request, voLayer, viaAssertion bool) {
	if p.local != nil {
		d.Local = p.local.Evaluate(req)
	} else {
		d.Local = NotApplicable
	}

	if voLayer {
		// Figure 2 step 3: the intersection — both layers must permit.
		d.Decision = authz.Combine(d.Local, d.VO)
		if d.Decision != Permit {
			d.Decision = Deny
			d.Reason = fmt.Sprintf("intersection of local (%s) and VO (%s) policy", d.Local, d.VO)
		} else if viaAssertion {
			d.Reason = "permitted by local ∩ VO policy"
		} else {
			d.Reason = "permitted by local ∩ replicated VO policy"
		}
	} else {
		d.Decision = d.Local
		if d.Decision != Permit {
			d.Decision = Deny
			d.Reason = "no CAS assertion and local policy does not permit"
		} else {
			d.Reason = "permitted by local policy alone"
		}
	}

	// Grid-mapfile mapping (paper §5.3 step 3): a permitted requester
	// with no local account cannot be served — fail closed.
	if d.Decision == Permit && p.gridmap != nil {
		account, ok := p.gridmap.Lookup(req.Subject)
		if !ok {
			d.Decision = Deny
			d.Reason = fmt.Sprintf("no gridmap entry for %q", req.Subject)
			return
		}
		d.LocalAccount = account
	}
}

// verifiedPeerInfo returns the peer's verified validation info, or nil
// when the chain does not verify: the presented chain when one is in
// hand (via the environment's verified-chain cache), else the
// transport's connect-time info.
func (p *AuthorizationPipeline) verifiedPeerInfo(peer Peer, now time.Time) *gridcert.ChainInfo {
	if len(peer.Chain) > 0 {
		info, err := p.env.trust.VerifyCached(p.env.chains, gridcert.EncodeChain(peer.Chain), peer.Chain, gridcert.VerifyOptions{Now: now})
		if err != nil {
			return nil
		}
		return info
	}
	return peer.Info
}

// HotDecisionKeys exports the decision cache's top-n hottest live keys
// (subject DN, chain fingerprint, resource, action — never decisions)
// for a standby's warm-cache promotion. Nil when caching is disabled.
func (p *AuthorizationPipeline) HotDecisionKeys(n int) []cas.HotKey {
	if p.cache == nil || n <= 0 {
		return nil
	}
	if n > cas.MaxHotKeys {
		n = cas.MaxHotKeys
	}
	return p.cache.hotKeys(n, p.env.Now(), p.generations())
}

// WarmDecisions pre-computes decisions for publisher-exported hot keys
// through this pipeline's OWN policy state — replica bundle, local
// policy, gridmap — and installs them as warmed cache entries, so a
// standby promotes serving hits instead of stampeding cold misses.
// Nothing in the keys is trusted as authority: the decision is computed
// here, its expiry is capped by the exporter's NotAfter, a live entry
// is never displaced, and the fp→identity binding stays unverified
// until a real peer's chain proves it (see Authorize). Returns how many
// entries were installed.
func (p *AuthorizationPipeline) WarmDecisions(keys []cas.HotKey) int {
	if p.cache == nil {
		return 0
	}
	now := p.env.Now()
	warmed := 0
	for _, k := range keys {
		if k.Resource == "" || k.Action == "" {
			continue
		}
		identity, err := gridcert.ParseName(k.Subject)
		if err != nil {
			continue
		}
		gens := p.generations()
		key := decisionKey{fp: k.FP, resource: k.Resource, action: k.Action, gens: gens}
		d := AuthzDecision{Identity: identity, VO: NotApplicable}
		req := authz.Request{Subject: identity, Resource: k.Resource, Action: k.Action, Time: now}
		voLayer := p.replicaLayer(&d, &req)
		p.combineAndMap(&d, req, voLayer, false)
		expiry := now.Add(p.cacheTTL())
		if k.NotAfter > 0 {
			if na := time.Unix(k.NotAfter, 0); na.Before(expiry) {
				expiry = na
			}
		}
		if !expiry.After(now) {
			continue
		}
		if p.cache.storeWarm(key, d, expiry, now) {
			warmed++
		}
	}
	return warmed
}

func (p *AuthorizationPipeline) cacheTTL() time.Duration {
	if p.cache != nil {
		return p.cache.ttl
	}
	return DefaultDecisionTTL
}

// chainNotAfter returns the earliest NotAfter across the peer's chain
// (or the leaf's alone when only validation info is at hand).
func chainNotAfter(peer Peer, leaf *Certificate) time.Time {
	notAfter := leaf.NotAfter
	for _, c := range peer.Chain {
		if c.NotAfter.Before(notAfter) {
			notAfter = c.NotAfter
		}
	}
	return notAfter
}

// AuthorizeChain implements ogsa.ChainAuthorizer, adapting the pipeline
// to the container's Figure-3 step-5 hook: a non-Permit decision comes
// back as an ErrUnauthorized-classified error.
func (p *AuthorizationPipeline) AuthorizeChain(ctx context.Context, peer gss.Peer, resource, action string) (string, error) {
	d, err := p.Authorize(ctx, peer, resource, action)
	if err != nil {
		return "", err
	}
	if d.Decision != Permit {
		return "", &Error{
			Op:   "gsi.AuthorizationPipeline",
			Kind: ErrUnauthorized,
			Err:  fmt.Errorf("gsi: %q denied %s on %s: %s", d.Identity, action, resource, d.Reason),
		}
	}
	return d.LocalAccount, nil
}

var _ ogsa.ChainAuthorizer = (*AuthorizationPipeline)(nil)

// --- the sharded decision cache ----------------------------------------

const decisionShardCount = 16

// decisionShardCap bounds entries per shard; overflow evicts an
// arbitrary victim (the cache is a performance aid, not a registry).
const decisionShardCap = 4096

type decisionKey struct {
	fp       [32]byte
	resource string
	action   string
	// gens pins the key to the exact policy state the decision was
	// computed under: local policy, gridmap, trusted-VO set, trust
	// store, and CAS bundle replica. Any mutation bumps a counter, so
	// stale entries simply stop being addressable — invalidation
	// without a sweep.
	gens [5]uint64
}

type decisionEntry struct {
	d      AuthzDecision
	expiry time.Time
	// warmed marks an entry pre-computed from a publisher-exported hot
	// key: its decision came from this pipeline's own policy state, but
	// the fp→identity binding is the publisher's claim, unverified until
	// the first real peer presents a chain that proves it (see
	// Authorize). d and expiry are written only under the shard lock;
	// hits is the only field mutated on the read path.
	warmed bool
	hits   atomic.Uint64
}

type decisionShard struct {
	mu sync.RWMutex
	m  map[decisionKey]*decisionEntry
}

// decisionCache is the per-pipeline decision memo: sharded by key hash
// so concurrent exchanges from many peers do not serialize on one lock.
type decisionCache struct {
	ttl    time.Duration
	shards [decisionShardCount]decisionShard
	hits   atomic.Uint64
	misses atomic.Uint64
}

// DecisionCacheStats reports decision-cache effectiveness. MaxShard is
// the fullest shard's entry count — shard pressure: Len near
// shards×capacity with MaxShard at capacity means evictions are
// displacing live decisions.
type DecisionCacheStats struct {
	Hits     uint64
	Misses   uint64
	Len      int
	MaxShard int
}

func newDecisionCache(ttl time.Duration) *decisionCache {
	c := &decisionCache{ttl: ttl}
	for i := range c.shards {
		c.shards[i].m = make(map[decisionKey]*decisionEntry)
	}
	return c
}

func (c *decisionCache) shard(key decisionKey) *decisionShard {
	h := fnv.New32a()
	h.Write(key.fp[:8])
	h.Write([]byte(key.resource))
	h.Write([]byte(key.action))
	return &c.shards[h.Sum32()%decisionShardCount]
}

func (c *decisionCache) lookup(key decisionKey, now time.Time) (d AuthzDecision, warmed, ok bool) {
	s := c.shard(key)
	s.mu.RLock()
	e, live := s.m[key]
	var expired bool
	if live {
		// Copy under the lock: confirmWarm mutates expiry/warmed.
		d, warmed = e.d, e.warmed
		expired = now.After(e.expiry)
		if !expired {
			e.hits.Add(1)
		}
	}
	s.mu.RUnlock()
	if live && expired {
		// Reap in place so dead entries do not sit at a shard's cap
		// crowding out live ones.
		s.mu.Lock()
		if e2, still := s.m[key]; still && now.After(e2.expiry) {
			delete(s.m, key)
		}
		s.mu.Unlock()
		live = false
	}
	if !live {
		c.misses.Add(1)
		return AuthzDecision{}, false, false
	}
	c.hits.Add(1)
	return d, warmed, true
}

// confirmWarm upgrades a warmed entry whose fp→identity binding a real
// peer's verified chain just proved: the entry becomes a normal cached
// decision, with its expiry tightened to the chain's horizon (the
// warm-time entry could not know it).
func (c *decisionCache) confirmWarm(key decisionKey, chainNotAfter time.Time) {
	s := c.shard(key)
	s.mu.Lock()
	if e, ok := s.m[key]; ok && e.warmed {
		e.warmed = false
		if chainNotAfter.Before(e.expiry) {
			e.expiry = chainNotAfter
		}
	}
	s.mu.Unlock()
}

// remove drops an entry (a warmed entry whose binding failed to prove).
func (c *decisionCache) remove(key decisionKey) {
	s := c.shard(key)
	s.mu.Lock()
	delete(s.m, key)
	s.mu.Unlock()
}

// evictionScan bounds how many entries a full shard examines looking
// for a dead victim before giving up and evicting arbitrarily.
const evictionScan = 32

// makeRoomLocked frees one slot when the shard is at cap and key is not
// already present; the caller holds s.mu. Prefer dead victims: entries
// past their TTL or computed under superseded generations (the incoming
// key carries the current ones) are unreachable and should go first;
// only a shard full of live entries sacrifices an arbitrary one.
func (s *decisionShard) makeRoomLocked(key decisionKey, now time.Time) {
	if _, exists := s.m[key]; exists || len(s.m) < decisionShardCap {
		return
	}
	var fallback decisionKey
	haveFallback, evicted := false, false
	scanned := 0
	for k, e := range s.m {
		if now.After(e.expiry) || k.gens != key.gens {
			delete(s.m, k)
			evicted = true
			break
		}
		if !haveFallback {
			fallback, haveFallback = k, true
		}
		if scanned++; scanned >= evictionScan {
			break
		}
	}
	if !evicted && haveFallback {
		delete(s.m, fallback)
	}
}

func (c *decisionCache) store(key decisionKey, d AuthzDecision, expiry time.Time, now time.Time) {
	s := c.shard(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.makeRoomLocked(key, now)
	e := &decisionEntry{d: d, expiry: expiry}
	if old, ok := s.m[key]; ok {
		// Re-evaluation of a hot key keeps its heat.
		e.hits.Store(old.hits.Load())
	}
	s.m[key] = e
}

// storeWarm installs a pre-computed (warmed) decision unless a live
// entry — real or already warmed — holds the slot. Reports whether the
// entry was installed.
func (c *decisionCache) storeWarm(key decisionKey, d AuthzDecision, expiry time.Time, now time.Time) bool {
	s := c.shard(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if e, ok := s.m[key]; ok && !now.After(e.expiry) {
		return false
	}
	s.makeRoomLocked(key, now)
	s.m[key] = &decisionEntry{d: d, expiry: expiry, warmed: true}
	return true
}

// hotKeys exports the cache's hottest live, confirmed entries as CAS
// hot keys: identifiers only, never decisions. Entries under superseded
// generations, expired, warmed-but-unconfirmed, or without an identity
// (early-path denies) are skipped.
func (c *decisionCache) hotKeys(n int, now time.Time, gens [5]uint64) []cas.HotKey {
	type cand struct {
		key  cas.HotKey
		hits uint64
	}
	var cands []cand
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.RLock()
		for k, e := range s.m {
			if k.gens != gens || e.warmed || now.After(e.expiry) {
				continue
			}
			subject := e.d.Identity.String()
			if subject == "" {
				continue
			}
			cands = append(cands, cand{
				key: cas.HotKey{
					Subject:  subject,
					FP:       k.fp,
					Resource: k.resource,
					Action:   k.action,
					NotAfter: e.expiry.Unix(),
				},
				hits: e.hits.Load(),
			})
		}
		s.mu.RUnlock()
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].hits > cands[j].hits })
	if len(cands) > n {
		cands = cands[:n]
	}
	keys := make([]cas.HotKey, len(cands))
	for i, c := range cands {
		keys[i] = c.key
	}
	return keys
}

func (c *decisionCache) stats() DecisionCacheStats {
	st := DecisionCacheStats{Hits: c.hits.Load(), Misses: c.misses.Load()}
	for i := range c.shards {
		c.shards[i].mu.RLock()
		n := len(c.shards[i].m)
		c.shards[i].mu.RUnlock()
		st.Len += n
		if n > st.MaxShard {
			st.MaxShard = n
		}
	}
	return st
}
