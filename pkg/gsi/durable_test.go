// Crash-recovery semantics of the durable trust plane: a child process
// churns policy/gridmap/audit mutations through a WAL-backed
// DurableState, reporting the generations it has made durable; the
// parent kills it with SIGKILL mid-churn and reopens the directory. The
// reopened state must resume at-or-beyond every reported generation
// with the audit hash chain intact — and a clean close/reopen must
// resume at *identical* generations, which is what keeps the sharded
// decision cache warm across a restart.
package gsi_test

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"os"
	"os/exec"
	"strings"
	"testing"
	"time"

	"repro/internal/trace"
	"repro/internal/wal"
	"repro/pkg/gsi"
)

// TestDurableCrashChild is the churn half of the crash test; it only
// runs re-exec'd by TestDurableCrashRecovery and loops until killed.
func TestDurableCrashChild(t *testing.T) {
	dir := os.Getenv("GSI_CRASH_DIR")
	if dir == "" {
		t.Skip("re-exec helper for TestDurableCrashRecovery")
	}
	ds, err := gsi.OpenDurableState(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; ; i++ {
		if err := ds.Policy().AddChecked(gsi.Rule{
			ID:        fmt.Sprintf("rule-%06d", i),
			Effect:    gsi.EffectPermit,
			Subjects:  []string{fmt.Sprintf("/O=Crash/CN=u%06d", i)},
			Resources: []string{"data:/crash/*"},
			Actions:   []string{"read"},
		}); err != nil {
			t.Fatal(err)
		}
		if err := ds.GridMap().AddChecked(gsi.MustParseName(fmt.Sprintf("/O=Crash/CN=u%06d", i)), "crash"); err != nil {
			t.Fatal(err)
		}
		ds.Audit().Record("churn", fmt.Sprintf("/O=Crash/CN=u%06d", i), "crash-test mutation")
		if err := ds.Audit().JournalError(); err != nil {
			t.Fatal(err)
		}
		// Everything above is journaled with fsync-before-apply, so a
		// printed line is a durability claim the parent may hold us to
		// even if the very next instruction is SIGKILL.
		fmt.Printf("GEN %d %d %d\n", ds.Policy().Generation(), ds.GridMap().Generation(), ds.Audit().Len())
	}
}

func TestDurableCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	cmd := exec.Command(os.Args[0], "-test.run=^TestDurableCrashChild$", "-test.timeout=2m")
	cmd.Env = append(os.Environ(), "GSI_CRASH_DIR="+dir)
	cmd.Stderr = os.Stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}

	// Collect durability claims, then kill without warning mid-churn.
	var lastPolicy, lastGridmap, lastAudit uint64
	sc := bufio.NewScanner(stdout)
	lines := 0
	for sc.Scan() {
		var p, g, a uint64
		if _, err := fmt.Sscanf(sc.Text(), "GEN %d %d %d", &p, &g, &a); err != nil {
			continue
		}
		lastPolicy, lastGridmap, lastAudit = p, g, a
		if lines++; lines >= 25 {
			break
		}
	}
	if lines < 25 {
		cmd.Process.Kill()
		cmd.Wait()
		t.Fatalf("child produced only %d GEN lines", lines)
	}
	if err := cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	cmd.Wait() // SIGKILL: error expected, exit state irrelevant

	// First reopen: recovery replays the WAL. Every durability claim
	// must hold, and the replayed audit chain must verify end to end.
	ds, err := gsi.OpenDurableState(dir)
	if err != nil {
		t.Fatal(err)
	}
	pGen, gGen, aLen := ds.Policy().Generation(), ds.GridMap().Generation(), uint64(ds.Audit().Len())
	if pGen < lastPolicy || gGen < lastGridmap || aLen < lastAudit {
		t.Fatalf("recovered generations %d/%d/%d below reported %d/%d/%d",
			pGen, gGen, aLen, lastPolicy, lastGridmap, lastAudit)
	}
	if bad := ds.Audit().VerifyChain(); bad != -1 {
		t.Fatalf("audit chain broken at event %d after crash recovery", bad)
	}
	// Fold the replayed journal into a snapshot, then close cleanly.
	if err := ds.Compact(); err != nil {
		t.Fatal(err)
	}
	if err := ds.Close(); err != nil {
		t.Fatal(err)
	}

	// Second reopen (snapshot path): a clean restart resumes at
	// IDENTICAL generations — not merely consistent ones.
	ds2, err := gsi.OpenDurableState(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer ds2.Close()
	if p2, g2, a2 := ds2.Policy().Generation(), ds2.GridMap().Generation(), uint64(ds2.Audit().Len()); p2 != pGen || g2 != gGen || a2 != aLen {
		t.Fatalf("clean restart moved generations: %d/%d/%d, want %d/%d/%d", p2, g2, a2, pGen, gGen, aLen)
	}
	if bad := ds2.Audit().VerifyChain(); bad != -1 {
		t.Fatalf("audit chain broken at event %d after compacted restart", bad)
	}
	// And the recovered state still journals: a post-recovery mutation
	// must bump the generation past the crash-time value.
	if err := ds2.Policy().AddChecked(gsi.Rule{
		ID:        "post-recovery",
		Effect:    gsi.EffectPermit,
		Subjects:  []string{"/O=Crash/CN=after"},
		Resources: []string{"data:/crash/*"},
		Actions:   []string{"read"},
	}); err != nil {
		t.Fatal(err)
	}
	if ds2.Policy().Generation() <= pGen {
		t.Fatal("post-recovery mutation did not advance the generation")
	}
}

// TestCompactCrashChild is the churn half of the background-compaction
// crash test; it only runs re-exec'd by TestCompactCrashRecovery. It
// opens the directory with auto-compaction at aggressive thresholds and
// churns mutations; the snapshot stage hook kills the process with
// SIGKILL the moment the background compactor completes the stage named
// by GSI_CRASH_STAGE, so each run dies at a different point of the
// stage → rotate → rename → cleanup sequence.
func TestCompactCrashChild(t *testing.T) {
	dir := os.Getenv("GSI_CRASH_DIR")
	stage := os.Getenv("GSI_CRASH_STAGE")
	if dir == "" || stage == "" {
		t.Skip("re-exec helper for TestCompactCrashRecovery")
	}
	wal.SnapshotStageHook = func(s string) {
		if s != stage {
			return
		}
		// The printed line is both the parent's proof that the compactor
		// reached this stage and the last thing this process ever does:
		// SIGKILL gives deferred cleanup no chance to tidy the journal.
		fmt.Printf("STAGE %s\n", s)
		p, _ := os.FindProcess(os.Getpid())
		p.Kill()
		select {} // freeze the compactor until the signal lands
	}
	ds, err := gsi.OpenDurableState(dir, gsi.WithAutoCompact(gsi.AutoCompactConfig{
		MaxRecords: 16,
		Interval:   5 * time.Millisecond,
	}))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; ; i++ {
		if err := ds.Policy().AddChecked(gsi.Rule{
			ID:        fmt.Sprintf("rule-%06d", i),
			Effect:    gsi.EffectPermit,
			Subjects:  []string{fmt.Sprintf("/O=Crash/CN=u%06d", i)},
			Resources: []string{"data:/crash/*"},
			Actions:   []string{"read"},
		}); err != nil {
			t.Fatal(err)
		}
		ds.Audit().Record("churn", fmt.Sprintf("/O=Crash/CN=u%06d", i), "compact-crash mutation")
		if err := ds.Audit().JournalError(); err != nil {
			t.Fatal(err)
		}
		fmt.Printf("GEN %d %d\n", ds.Policy().Generation(), ds.Audit().Len())
		// Burst-then-pause: WriteSnapshotAt refuses any snapshot a
		// concurrent append outran, so gapless append-per-microsecond
		// churn can starve the compactor indefinitely (documented
		// behavior — it just retries next tick). Real mutation streams
		// have gaps; give the compactor one every 20 mutations so each
		// run deterministically reaches the stage under test, even at
		// race-detector speed.
		if i%20 == 19 {
			time.Sleep(50 * time.Millisecond)
		}
	}
}

// TestCompactCrashRecovery kills a child at every stage of a background
// compaction — after the snapshot is staged, after the segment rotates,
// after the snapshot renames live, and after old segments are cleaned —
// and proves recovery from each torn state: every durability claim the
// child printed holds, the audit chain verifies, and the reopened
// journal still compacts and mutates.
func TestCompactCrashRecovery(t *testing.T) {
	for _, stage := range []string{"staged", "rotated", "renamed", "cleaned"} {
		t.Run(stage, func(t *testing.T) {
			dir := t.TempDir()
			cmd := exec.Command(os.Args[0], "-test.run=^TestCompactCrashChild$", "-test.timeout=2m")
			cmd.Env = append(os.Environ(), "GSI_CRASH_DIR="+dir, "GSI_CRASH_STAGE="+stage)
			cmd.Stderr = os.Stderr
			stdout, err := cmd.StdoutPipe()
			if err != nil {
				t.Fatal(err)
			}
			if err := cmd.Start(); err != nil {
				t.Fatal(err)
			}
			// Read claims until the self-SIGKILL closes the pipe.
			var lastPolicy, lastAudit uint64
			gens, sawStage := 0, false
			sc := bufio.NewScanner(stdout)
			for sc.Scan() {
				var p, a uint64
				if _, err := fmt.Sscanf(sc.Text(), "GEN %d %d", &p, &a); err == nil {
					lastPolicy, lastAudit = p, a
					gens++
					continue
				}
				var s string
				if _, err := fmt.Sscanf(sc.Text(), "STAGE %s", &s); err == nil && s == stage {
					sawStage = true
				}
			}
			cmd.Wait() // SIGKILL: error expected
			if !sawStage {
				t.Fatalf("child died before the compactor reached stage %q", stage)
			}
			if gens == 0 {
				t.Fatal("child reported no durability claims")
			}

			// Recovery: every claim printed before the kill must hold.
			ds, err := gsi.OpenDurableState(dir)
			if err != nil {
				t.Fatalf("reopen after crash at %q: %v", stage, err)
			}
			pGen, aLen := ds.Policy().Generation(), uint64(ds.Audit().Len())
			if pGen < lastPolicy || aLen < lastAudit {
				t.Fatalf("recovered generations %d/%d below reported %d/%d", pGen, aLen, lastPolicy, lastAudit)
			}
			if bad := ds.Audit().VerifyChain(); bad != -1 {
				t.Fatalf("audit chain broken at event %d after crash at %q", bad, stage)
			}
			// The torn journal must still compact, close, and reopen at
			// identical generations — and keep journaling.
			if err := ds.Compact(); err != nil {
				t.Fatalf("Compact after crash at %q: %v", stage, err)
			}
			if err := ds.Close(); err != nil {
				t.Fatal(err)
			}
			ds2, err := gsi.OpenDurableState(dir)
			if err != nil {
				t.Fatal(err)
			}
			defer ds2.Close()
			if p2, a2 := ds2.Policy().Generation(), uint64(ds2.Audit().Len()); p2 != pGen || a2 != aLen {
				t.Fatalf("clean restart moved generations: %d/%d, want %d/%d", p2, a2, pGen, aLen)
			}
			if err := ds2.Policy().AddChecked(gsi.Rule{
				ID:        "post-recovery",
				Effect:    gsi.EffectPermit,
				Subjects:  []string{"/O=Crash/CN=after"},
				Resources: []string{"data:/crash/*"},
				Actions:   []string{"read"},
			}); err != nil {
				t.Fatal(err)
			}
			if ds2.Policy().Generation() <= pGen {
				t.Fatal("post-recovery mutation did not advance the generation")
			}
		})
	}
}

// TestCompactNeverLosesRacingMutations is the regression for the
// compaction lost-update race: mutations journal under each object's
// own lock, not the DurableState's, so a record can land between the
// snapshot encode and its write. The WAL must refuse such a stale
// snapshot (Compact re-captures and retries) — an acknowledged,
// journaled mutation must survive compaction-under-churn and a reopen,
// every time.
func TestCompactNeverLosesRacingMutations(t *testing.T) {
	dir := t.TempDir()
	ds, err := gsi.OpenDurableState(dir)
	if err != nil {
		t.Fatal(err)
	}
	const n = 200
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < n; i++ {
			if err := ds.Policy().AddChecked(gsi.Rule{
				ID:        fmt.Sprintf("churn-%03d", i),
				Effect:    gsi.EffectPermit,
				Subjects:  []string{fmt.Sprintf("/O=Churn/CN=u%03d", i)},
				Resources: []string{"data:/churn/*"},
				Actions:   []string{"read"},
			}); err != nil {
				t.Errorf("AddChecked(%d): %v", i, err)
				return
			}
			ds.Audit().Record("churn", fmt.Sprintf("/O=Churn/CN=u%03d", i), "")
		}
	}()
	for running := true; running; {
		select {
		case <-done:
			running = false
		default:
			// Under churn Compact may exhaust its retries and report the
			// stale snapshot; that is the correct refusal, not a failure.
			if err := ds.Compact(); err != nil && !errors.Is(err, wal.ErrSnapshotStale) {
				t.Fatalf("Compact under churn: %v", err)
			}
		}
	}
	// Quiescent now: the final compaction must succeed.
	if err := ds.Compact(); err != nil {
		t.Fatalf("quiescent Compact: %v", err)
	}
	pGen, aLen := ds.Policy().Generation(), ds.Audit().Len()
	if pGen != n {
		t.Fatalf("policy generation %d, want %d", pGen, n)
	}
	if err := ds.Close(); err != nil {
		t.Fatal(err)
	}

	ds2, err := gsi.OpenDurableState(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer ds2.Close()
	if g := ds2.Policy().Generation(); g != pGen {
		t.Fatalf("reopened policy generation %d, want %d", g, pGen)
	}
	if l := ds2.Audit().Len(); l != aLen {
		t.Fatalf("reopened audit length %d, want %d", l, aLen)
	}
	if bad := ds2.Audit().VerifyChain(); bad != -1 {
		t.Fatalf("audit chain broken at %d after compaction under churn", bad)
	}
}

// TestTraceAuditDurableRoundTrip is the regression for the decision↔
// trace correlation surviving the full durability cycle: a traced
// authorization lands its trace id in the journaled audit chain, and a
// reopen of the directory replays the same event with the same id and
// an intact chain.
func TestTraceAuditDurableRoundTrip(t *testing.T) {
	dir := t.TempDir()
	authority, err := gsi.NewCA("/O=Grid/CN=Trace CA", 24*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	alice, err := authority.NewEntity(gsi.MustParseName("/O=Grid/CN=Alice"), 12*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	env, err := gsi.NewEnvironment(gsi.WithRoots(authority.Certificate()))
	if err != nil {
		t.Fatal(err)
	}
	pipe, err := env.NewAuthorizationPipeline(gsi.WithDurableState(dir))
	if err != nil {
		t.Fatal(err)
	}
	ds := pipe.DurableState()
	if ds == nil {
		t.Fatal("pipeline has no durable state")
	}
	if err := ds.Policy().AddChecked(gsi.Rule{
		ID:        "alice-read",
		Effect:    gsi.EffectPermit,
		Subjects:  []string{alice.Identity().String()},
		Resources: []string{"data:/trace/*"},
		Actions:   []string{"read"},
	}); err != nil {
		t.Fatal(err)
	}
	if err := ds.GridMap().AddChecked(alice.Identity(), "alice"); err != nil {
		t.Fatal(err)
	}

	tracer := trace.New(trace.Config{})
	sp := tracer.StartRoot("client.exchange")
	tid := sp.Context().TraceID.String()
	ctx := trace.ContextWithSpan(context.Background(), sp)
	d, err := pipe.Authorize(ctx, gsi.Peer{Identity: alice.Identity(), Chain: alice.Chain}, "data:/trace/x", "read")
	if err != nil || d.Decision != gsi.Permit {
		t.Fatalf("authorize: %+v err=%v", d, err)
	}
	sp.End()

	findTraced := func(events []gsi.AuditEvent) *gsi.AuditEvent {
		for i := range events {
			if events[i].Trace == tid && strings.HasPrefix(events[i].Event, "authz-") {
				return &events[i]
			}
		}
		return nil
	}
	live := findTraced(ds.Audit().Events())
	if live == nil {
		t.Fatalf("no audit event carries trace %s: %+v", tid, ds.Audit().Events())
	}
	if live.Subject != alice.Identity().String() {
		t.Fatalf("traced event subject %q", live.Subject)
	}
	if err := ds.Close(); err != nil {
		t.Fatal(err)
	}

	// The correlation must survive the journal round trip.
	ds2, err := gsi.OpenDurableState(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer ds2.Close()
	replayed := findTraced(ds2.Audit().Events())
	if replayed == nil {
		t.Fatalf("replayed audit chain lost trace %s", tid)
	}
	if replayed.Hash != live.Hash {
		t.Fatal("replayed traced event differs from the recorded one")
	}
	if bad := ds2.Audit().VerifyChain(); bad != -1 {
		t.Fatalf("replayed audit chain broken at %d", bad)
	}
}
