package gsi_test

import (
	"context"
	"encoding/json"
	"io"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/ogsa"
	"repro/pkg/gsi"
)

// waitSpans polls a tracer's flight recorder until at least min spans
// match the query: span records land when spans End, which on the
// server side can trail the client's observed completion by a
// scheduler quantum.
func waitSpans(t *testing.T, tr *gsi.Tracer, q gsi.TraceQuery, min int) []gsi.SpanRecord {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		recs := tr.Recorder().Snapshot(q)
		if len(recs) >= min {
			return recs
		}
		if time.Now().After(deadline) {
			t.Fatalf("wanted %d spans for %+v, recorder holds %d: %+v", min, q, len(recs), recs)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// opCount tallies records per op name.
func opCount(recs []gsi.SpanRecord) map[string]int {
	m := make(map[string]int)
	for _, r := range recs {
		m[r.Op]++
	}
	return m
}

// testTraceExchange drives one traced Exchange over a transport and
// asserts the tentpole's core property: the client's root span and the
// server's spans — exchange, authorization — share one trace id, with
// the server's span marked as continuing a remote context.
func testTraceExchange(t *testing.T, transport gsi.Transport) {
	bed := newAuthzBed(t)
	pl := bed.pipeline(t)
	reg := gsi.NewMetricsRegistry()
	server, err := bed.env.NewServer(bed.host,
		gsi.WithTransport(transport),
		gsi.WithAuthorizationPipeline(pl),
		gsi.WithMetrics(reg),
		gsi.WithTracing())
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	ep, err := server.Serve(ctx, "127.0.0.1:0",
		func(ctx context.Context, peer gsi.Peer, op string, body []byte) ([]byte, error) {
			return body, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	defer ep.Close()

	client, err := bed.env.NewClient(bed.alice,
		gsi.WithTransport(transport),
		gsi.WithTracing())
	if err != nil {
		t.Fatal(err)
	}
	if client.Tracer() == nil || server.Tracer() == nil {
		t.Fatal("WithTracing did not materialize a tracer")
	}
	if _, err := client.Exchange(ctx, ep.Addr(), "echo", []byte("ping")); err != nil {
		t.Fatal(err)
	}

	roots := waitSpans(t, client.Tracer(), gsi.TraceQuery{Op: "client.exchange"}, 1)
	root := roots[0]
	if root.Remote {
		t.Fatal("client root span marked remote")
	}
	tid := root.TraceID.String()

	// Every server span of the trace carries the client's trace id —
	// that IS the cross-wire propagation.
	srv := waitSpans(t, server.Tracer(), gsi.TraceQuery{TraceID: tid, N: 100}, 2)
	ops := opCount(srv)
	if ops["server.exchange"] != 1 {
		t.Fatalf("trace %s: server.exchange count = %d, spans %+v", tid, ops["server.exchange"], srv)
	}
	if ops["server.authz"] != 1 {
		t.Fatalf("trace %s: server.authz count = %d, spans %+v", tid, ops["server.authz"], srv)
	}
	for _, r := range srv {
		if r.Op == "server.exchange" {
			if !r.Remote {
				t.Fatal("server.exchange span not marked remote despite inbound context")
			}
			if !strings.Contains(r.Peer, "Alice") {
				t.Fatalf("server.exchange peer = %q, want Alice's DN", r.Peer)
			}
		}
	}

	// The latency histograms observed the ops into the shared registry.
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "gsi_op_seconds") {
		t.Fatalf("registry missing gsi_op_seconds after traced exchange:\n%s", sb.String())
	}
}

func TestTraceExchangePropagation(t *testing.T) {
	t.Run("GT2", func(t *testing.T) { testTraceExchange(t, gsi.TransportGT2()) })
	t.Run("GT3", func(t *testing.T) { testTraceExchange(t, gsi.TransportGT3()) })
}

// TestTraceStripedStream is the acceptance trace of the issue: one
// client-side striped transfer produces ONE trace whose spans cover the
// root stream, every stripe lane on the client, and — on the server,
// under the same trace id — per-stripe lanes, per-stripe authorization,
// and the group's stream span.
func TestTraceStripedStream(t *testing.T) {
	const stripes = 3
	bed := newAuthzBed(t)
	bed.local.Add(gsi.Rule{
		ID:        "streams",
		Effect:    gsi.EffectPermit,
		Subjects:  []string{"*"},
		Resources: []string{"*"},
		Actions:   []string{"*"},
	})
	pl := bed.pipeline(t)
	server, err := bed.env.NewServer(bed.host,
		gsi.WithTransport(gsi.TransportGT2()),
		gsi.WithAuthorizationPipeline(pl),
		gsi.WithStreamHandler(func(ctx context.Context, peer gsi.Peer, op string, st gsi.Stream) error {
			_, err := io.Copy(io.Discard, st)
			return err
		}),
		gsi.WithTracing())
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	ep, err := server.Serve(ctx, "127.0.0.1:0",
		func(ctx context.Context, peer gsi.Peer, op string, body []byte) ([]byte, error) {
			return body, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	defer ep.Close()

	client, err := bed.env.NewClient(bed.alice,
		gsi.WithTransport(gsi.TransportGT2()),
		gsi.WithStripes(stripes),
		gsi.WithTracing())
	if err != nil {
		t.Fatal(err)
	}
	st, err := client.OpenStripedStream(ctx, ep.Addr(), "bulk")
	if err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, 1<<20)
	for i := range payload {
		payload[i] = byte(i)
	}
	if _, err := st.Write(payload); err != nil {
		t.Fatal(err)
	}
	if err := st.CloseWrite(); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	roots := waitSpans(t, client.Tracer(), gsi.TraceQuery{Op: "client.stream"}, 1)
	root := roots[0]
	if root.Bytes < int64(len(payload)) {
		t.Fatalf("client.stream root accounts %d bytes, wrote %d", root.Bytes, len(payload))
	}
	tid := root.TraceID.String()

	cli := waitSpans(t, client.Tracer(), gsi.TraceQuery{TraceID: tid, N: 100}, 1+stripes)
	cops := opCount(cli)
	if cops["client.stripe"] != stripes {
		t.Fatalf("trace %s: client.stripe count = %d, want %d (spans %+v)", tid, cops["client.stripe"], stripes, cli)
	}

	// The same trace id on the server covers every lane, every per-lane
	// authorization decision, and the group's stream span.
	srv := waitSpans(t, server.Tracer(), gsi.TraceQuery{TraceID: tid, N: 100}, 2*stripes+1)
	sops := opCount(srv)
	if sops["server.stripe"] != stripes {
		t.Fatalf("trace %s: server.stripe count = %d, want %d (spans %+v)", tid, sops["server.stripe"], stripes, srv)
	}
	if sops["server.authz"] != stripes {
		t.Fatalf("trace %s: server.authz count = %d, want %d", tid, sops["server.authz"], stripes)
	}
	if sops["server.stream"] != 1 {
		t.Fatalf("trace %s: server.stream count = %d, want 1", tid, sops["server.stream"])
	}
	for _, r := range srv {
		if !r.Remote && r.Op == "server.stripe" {
			t.Fatalf("server.stripe lane not marked remote: %+v", r)
		}
	}
}

// TestTracePropagationConcurrent hammers one traced server from
// concurrent traced clients over both transports at once and checks
// that every client-side root trace reappears server-side — contexts
// must not bleed between interleaved exchanges. Run under -race this
// doubles as the data-race proof for the span plumbing.
func TestTracePropagationConcurrent(t *testing.T) {
	bed := newAuthzBed(t)
	pl := bed.pipeline(t)
	ctx := context.Background()
	const (
		workers    = 4
		perWorker  = 20
		transports = 2
	)

	type side struct {
		transport gsi.Transport
		server    *gsi.Server
		client    *gsi.Client
		addr      string
	}
	sides := make(map[string]*side)
	for _, trName := range []string{"gt2", "gt3"} {
		transport := gsi.TransportGT2()
		if trName == "gt3" {
			transport = gsi.TransportGT3()
		}
		server, err := bed.env.NewServer(bed.host,
			gsi.WithTransport(transport),
			gsi.WithAuthorizationPipeline(pl),
			gsi.WithTracing())
		if err != nil {
			t.Fatal(err)
		}
		ep, err := server.Serve(ctx, "127.0.0.1:0",
			func(ctx context.Context, peer gsi.Peer, op string, body []byte) ([]byte, error) {
				return body, nil
			})
		if err != nil {
			t.Fatal(err)
		}
		defer ep.Close()
		client, err := bed.env.NewClient(bed.alice,
			gsi.WithTransport(transport),
			gsi.WithSessionPool(nil),
			gsi.WithTracing())
		if err != nil {
			t.Fatal(err)
		}
		defer client.Pool().Close()
		sides[trName] = &side{transport: transport, server: server, client: client, addr: ep.Addr()}
	}

	// Both transports hammered at once: contexts must not bleed across
	// interleaved exchanges, pooled sessions, or transports.
	var wg sync.WaitGroup
	for trName, s := range sides {
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(name string, s *side) {
				defer wg.Done()
				for i := 0; i < perWorker; i++ {
					if _, err := s.client.Exchange(ctx, s.addr, "echo", []byte("c")); err != nil {
						t.Errorf("%s exchange: %v", name, err)
						return
					}
				}
			}(trName, s)
		}
	}
	wg.Wait()

	want := workers * perWorker
	for trName, s := range sides {
		// Every client-side root must reappear server-side under the same
		// trace id, and no two exchanges may share one.
		clientTIDs := make(map[string]bool)
		for _, r := range s.client.Tracer().Recorder().Snapshot(gsi.TraceQuery{Op: "client.exchange", N: want + 50}) {
			clientTIDs[r.TraceID.String()] = true
		}
		if len(clientTIDs) != want {
			t.Fatalf("%s: client produced %d distinct trace ids, want %d", trName, len(clientTIDs), want)
		}
		deadline := time.Now().Add(10 * time.Second)
		for {
			recs := s.server.Tracer().Recorder().Snapshot(gsi.TraceQuery{Op: "server.exchange", N: want + 50})
			serverTIDs := make(map[string]bool)
			for _, r := range recs {
				if r.Remote {
					serverTIDs[r.TraceID.String()] = true
				}
			}
			if len(serverTIDs) >= want {
				for tid := range clientTIDs {
					if !serverTIDs[tid] {
						t.Fatalf("%s: client trace %s never reached the server", trName, tid)
					}
				}
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("%s: server recorded %d distinct remote traces, want %d", trName, len(serverTIDs), want)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
}

// TestAdminTracesAndTransfers exercises the admin plane the gsictl
// subcommands call: the Traces op filters the flight recorder by op,
// the Transfers op lists a live stream while it is in flight, and a
// server without WithTracing refuses both with a typed fault.
func TestAdminTracesAndTransfers(t *testing.T) {
	bed := newAuthzBed(t)
	bed.local.Add(gsi.Rule{
		ID:        "admin-ops",
		Effect:    gsi.EffectPermit,
		Subjects:  []string{bed.alice.Identity().String()},
		Resources: []string{"ogsa:" + ogsa.AdminHandle},
		Actions:   []string{"*"},
	})
	bed.local.Add(gsi.Rule{
		ID:        "streams",
		Effect:    gsi.EffectPermit,
		Subjects:  []string{"*"},
		Resources: []string{"ogsa:bulk"},
		Actions:   []string{"*"},
	})
	pl := bed.pipeline(t)
	release := make(chan struct{})
	server, err := bed.env.NewServer(bed.host,
		gsi.WithTransport(gsi.TransportGT3()),
		gsi.WithAuthorizationPipeline(pl),
		gsi.WithStreamHandler(func(ctx context.Context, peer gsi.Peer, op string, st gsi.Stream) error {
			<-release // hold the transfer open for the Transfers snapshot
			_, err := io.Copy(io.Discard, st)
			return err
		}),
		gsi.WithAdmin(),
		gsi.WithTracing())
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	ep, err := server.Serve(ctx, "127.0.0.1:0",
		func(ctx context.Context, peer gsi.Peer, op string, body []byte) ([]byte, error) {
			return body, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	defer ep.Close()

	client, err := bed.env.NewClient(bed.alice,
		gsi.WithTransport(gsi.TransportGT3()),
		gsi.WithTracing())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client.Exchange(ctx, ep.Addr(), "echo", []byte("ping")); err != nil {
		t.Fatal(err)
	}

	// A stream held open by the handler shows up as an active transfer:
	// the registration happens at open, before any byte moves.
	st, err := client.OpenStream(ctx, ep.Addr(), "bulk")
	if err != nil {
		t.Fatal(err)
	}

	out, _, err := client.Invoke(ctx, ep.Addr(), ogsa.AdminHandle, ogsa.AdminOpTransfers, nil)
	if err != nil {
		t.Fatalf("Transfers as admin: %v", err)
	}
	var transfers []struct {
		Op      string `json:"op"`
		Peer    string `json:"peer"`
		Stripes int    `json:"stripes"`
	}
	if err := json.Unmarshal(out, &transfers); err != nil {
		t.Fatalf("Transfers is not JSON: %v\n%s", err, out)
	}
	foundStream := false
	for _, tr := range transfers {
		if tr.Op == "stream:bulk" {
			foundStream = true
			if tr.Stripes != 1 {
				t.Fatalf("stream transfer lists %d stripes, want 1", tr.Stripes)
			}
			if !strings.Contains(tr.Peer, "Alice") {
				t.Fatalf("stream transfer peer = %q, want Alice's DN", tr.Peer)
			}
		}
	}
	if !foundStream {
		t.Fatalf("active stream missing from Transfers: %s", out)
	}
	close(release)
	if err := st.CloseWrite(); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// Traces: filter the recorder by op, exactly the gsictl traces -op
	// path. The server.exchange span of the earlier echo must be there,
	// remote, under Alice's DN.
	query := []byte(`{"op":"server.exchange","peer":"Alice"}`)
	deadline := time.Now().Add(5 * time.Second)
	var spans []struct {
		Trace  string `json:"trace"`
		Span   string `json:"span"`
		Op     string `json:"op"`
		Peer   string `json:"peer"`
		DurUS  int64  `json:"dur_us"`
		Remote bool   `json:"remote"`
	}
	for {
		out, _, err = client.Invoke(ctx, ep.Addr(), ogsa.AdminHandle, ogsa.AdminOpTraces, query)
		if err != nil {
			t.Fatalf("Traces as admin: %v", err)
		}
		spans = spans[:0]
		if err := json.Unmarshal(out, &spans); err != nil {
			t.Fatalf("Traces is not JSON: %v\n%s", err, out)
		}
		if len(spans) >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("Traces never surfaced the exchange span: %s", out)
		}
		time.Sleep(5 * time.Millisecond)
	}
	for _, sp := range spans {
		if sp.Op != "server.exchange" {
			t.Fatalf("op-filtered query returned op %q", sp.Op)
		}
		if !sp.Remote {
			t.Fatalf("server.exchange span not remote: %+v", sp)
		}
		if len(sp.Trace) != 32 || len(sp.Span) != 16 {
			t.Fatalf("malformed ids in %+v", sp)
		}
	}

	// Errors-only on a clean server comes back empty, not faulted.
	out, _, err = client.Invoke(ctx, ep.Addr(), ogsa.AdminHandle, ogsa.AdminOpTraces, []byte(`{"errors_only":true,"op":"server.exchange"}`))
	if err != nil {
		t.Fatalf("Traces errors_only: %v", err)
	}
	var errSpans []json.RawMessage
	if err := json.Unmarshal(out, &errSpans); err != nil {
		t.Fatalf("errors_only result not JSON: %v\n%s", err, out)
	}
	if len(errSpans) != 0 {
		t.Fatalf("errors_only returned %d spans for a clean server", len(errSpans))
	}

	// A tracing-less admin server answers Traces with a typed fault
	// pointing at WithTracing, not a denial and not a panic.
	dark, err := bed.env.NewServer(bed.host,
		gsi.WithTransport(gsi.TransportGT3()),
		gsi.WithAuthorizationPipeline(bed.pipeline(t)),
		gsi.WithAdmin())
	if err != nil {
		t.Fatal(err)
	}
	dep, err := dark.Serve(ctx, "127.0.0.1:0",
		func(ctx context.Context, peer gsi.Peer, op string, body []byte) ([]byte, error) {
			return body, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	defer dep.Close()
	if _, _, err := client.Invoke(ctx, dep.Addr(), ogsa.AdminHandle, ogsa.AdminOpTraces, nil); err == nil ||
		!strings.Contains(err.Error(), "WithTracing") {
		t.Fatalf("Traces without tracer: %v, want WithTracing hint", err)
	}
}

// TestTraceSamplerGates pins the sampling contract: SampleNever keeps
// the flight recorder empty while the per-op latency histograms still
// observe every operation.
func TestTraceSamplerGates(t *testing.T) {
	bed := newAuthzBed(t)
	pl := bed.pipeline(t)
	reg := gsi.NewMetricsRegistry()
	server, err := bed.env.NewServer(bed.host,
		gsi.WithTransport(gsi.TransportGT2()),
		gsi.WithAuthorizationPipeline(pl),
		gsi.WithMetrics(reg),
		gsi.WithTraceSampler(gsi.SampleNever()))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	ep, err := server.Serve(ctx, "127.0.0.1:0",
		func(ctx context.Context, peer gsi.Peer, op string, body []byte) ([]byte, error) {
			return body, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	defer ep.Close()

	client, err := bed.env.NewClient(bed.alice, gsi.WithTransport(gsi.TransportGT2()))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := client.Exchange(ctx, ep.Addr(), "echo", []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	if n := server.Tracer().Recorder().Len(); n != 0 {
		t.Fatalf("SampleNever recorded %d spans", n)
	}
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `gsi_op_seconds`) ||
		!strings.Contains(sb.String(), `op="server.exchange"`) {
		t.Fatalf("histograms stopped observing under SampleNever:\n%s", sb.String())
	}
}

// BenchmarkExchangeTracingDisabled is BenchmarkExchangeInstrumented
// with the tracing feature present in the binary but NOT enabled —
// the Makefile's alloc gate pins it to the same 2 allocs/op as the
// baseline, proving the nil-tracer checks on the hot path are free.
func BenchmarkExchangeTracingDisabled(b *testing.B) {
	authority, err := gsi.NewCA("/O=Grid/CN=Bench CA", 24*time.Hour)
	if err != nil {
		b.Fatal(err)
	}
	env, err := gsi.NewEnvironment(gsi.WithRoots(authority.Certificate()))
	if err != nil {
		b.Fatal(err)
	}
	alice, err := authority.NewEntity(gsi.MustParseName("/O=Grid/CN=Alice"), 12*time.Hour)
	if err != nil {
		b.Fatal(err)
	}
	host, err := authority.NewHostEntity(gsi.MustParseName("/O=Grid/CN=host bench"), 12*time.Hour)
	if err != nil {
		b.Fatal(err)
	}
	reg := gsi.NewMetricsRegistry()
	server, err := env.NewServer(host, gsi.WithMetrics(reg))
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	ep, err := server.Serve(ctx, "127.0.0.1:0",
		func(ctx context.Context, peer gsi.Peer, op string, body []byte) ([]byte, error) {
			return body, nil
		})
	if err != nil {
		b.Fatal(err)
	}
	defer ep.Close()
	client, err := env.NewClient(alice, gsi.WithSessionPool(nil), gsi.WithMetrics(reg))
	if err != nil {
		b.Fatal(err)
	}
	defer client.Pool().Close()
	if client.Tracer() != nil {
		b.Fatal("tracer materialized without WithTracing")
	}
	payload := []byte("steady")
	if _, err := client.Exchange(ctx, ep.Addr(), "echo", payload); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := client.Exchange(ctx, ep.Addr(), "echo", payload); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExchangeTraced measures the cost of tracing ON (always
// sampled, both ends): not alloc-gated, reported by make bench-trace
// so the overhead stays visible over time.
func BenchmarkExchangeTraced(b *testing.B) {
	authority, err := gsi.NewCA("/O=Grid/CN=Bench CA", 24*time.Hour)
	if err != nil {
		b.Fatal(err)
	}
	env, err := gsi.NewEnvironment(gsi.WithRoots(authority.Certificate()))
	if err != nil {
		b.Fatal(err)
	}
	alice, err := authority.NewEntity(gsi.MustParseName("/O=Grid/CN=Alice"), 12*time.Hour)
	if err != nil {
		b.Fatal(err)
	}
	host, err := authority.NewHostEntity(gsi.MustParseName("/O=Grid/CN=host bench"), 12*time.Hour)
	if err != nil {
		b.Fatal(err)
	}
	reg := gsi.NewMetricsRegistry()
	server, err := env.NewServer(host, gsi.WithMetrics(reg), gsi.WithTracing())
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	ep, err := server.Serve(ctx, "127.0.0.1:0",
		func(ctx context.Context, peer gsi.Peer, op string, body []byte) ([]byte, error) {
			return body, nil
		})
	if err != nil {
		b.Fatal(err)
	}
	defer ep.Close()
	client, err := env.NewClient(alice,
		gsi.WithSessionPool(nil), gsi.WithMetrics(reg), gsi.WithTracing())
	if err != nil {
		b.Fatal(err)
	}
	defer client.Pool().Close()
	payload := []byte("steady")
	if _, err := client.Exchange(ctx, ep.Addr(), "echo", payload); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := client.Exchange(ctx, ep.Addr(), "echo", payload); err != nil {
			b.Fatal(err)
		}
	}
}
