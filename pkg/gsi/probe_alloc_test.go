package gsi

import (
	"context"
	"testing"
	"time"
)

// probeWorld stands up a GT2 endpoint and a raw (unpooled) GT2 session
// against it, exposing the prober the pool's idle health check uses.
func newProbeWorld(t testing.TB) (sessionProber, func()) {
	if h, ok := t.(interface{ Helper() }); ok {
		h.Helper()
	}
	authority, err := NewCA("/O=Grid/CN=Probe CA", 24*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	env, err := NewEnvironment(WithRoots(authority.Certificate()))
	if err != nil {
		t.Fatal(err)
	}
	alice, err := authority.NewEntity(MustParseName("/O=Grid/CN=Alice"), 12*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	host, err := authority.NewHostEntity(MustParseName("/O=Grid/CN=host probe"), 12*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	server, err := env.NewServer(host)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	ep, err := server.Serve(ctx, "127.0.0.1:0", func(ctx context.Context, peer Peer, op string, body []byte) ([]byte, error) {
		return body, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	sess, err := TransportGT2().Dial(ctx, ep.Addr(), DialConfig{
		Context: ContextConfig{Credential: alice, TrustStore: env.Trust()},
	})
	if err != nil {
		ep.Close()
		t.Fatal(err)
	}
	pr := sess.(sessionProber)
	return pr, func() {
		sess.Close()
		ep.Close()
	}
}

// The idle-pool liveness probe must not allocate: it assembles the ping
// in a pooled record buffer, seals in place, and discards the reply
// view instead of copying it — on both the client and the server loop.
func TestProbeZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; exactness only holds in plain builds")
	}
	pr, done := newProbeWorld(t)
	defer done()
	ctx := context.Background()
	if err := pr.Probe(ctx); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		if err := pr.Probe(ctx); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("idle probe allocates %.1f/op, want 0", allocs)
	}
}

// BenchmarkPoolProbe records the probe's cost for BENCH_record.json.
func BenchmarkPoolProbe(b *testing.B) {
	pr, done := newProbeWorld(b)
	defer done()
	ctx := context.Background()
	if err := pr.Probe(ctx); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := pr.Probe(ctx); err != nil {
			b.Fatal(err)
		}
	}
}
