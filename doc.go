// Package repro reproduces "Security for Grid Services" (Welch et al.,
// HPDC 2003): the Grid Security Infrastructure of the Globus Toolkit
// versions 2 and 3, built from scratch in Go on the standard library.
//
// The public API lives in pkg/gsi; the experiment harness regenerating
// the paper's figures and claims is in bench_test.go (run with
// go test -bench=. -benchmem). See DESIGN.md for the system inventory
// and EXPERIMENTS.md for paper-vs-measured results.
package repro
