// Race-enabled integration coverage for the session pool: many
// goroutines hammering one pooled Client against a live Server must
// share a bounded set of connections (exactly one handshake per pooled
// conn), run clean under -race, and drain on Close.
package repro

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/pkg/gsi"
)

type poolWorld struct {
	ca    *gsi.CA
	env   *gsi.Environment
	alice *gsi.Credential
	host  *gsi.Credential
}

func newPoolWorld(t testing.TB) poolWorld {
	t.Helper()
	authority, err := gsi.NewCA("/O=Grid/CN=CA", 24*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	env, err := gsi.NewEnvironment(gsi.WithRoots(authority.Certificate()))
	if err != nil {
		t.Fatal(err)
	}
	alice, err := authority.NewEntity(gsi.MustParseName("/O=Grid/CN=Alice"), 12*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	host, err := authority.NewHostEntity(gsi.MustParseName("/O=Grid/CN=host pool"), 12*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	return poolWorld{ca: authority, env: env, alice: alice, host: host}
}

// TestIntegrationPooledClientUnderLoad is the ISSUE's race harness: N
// goroutines × M exchanges through one pooled client, over both
// transports.
func TestIntegrationPooledClientUnderLoad(t *testing.T) {
	for _, tr := range []gsi.Transport{gsi.TransportGT2(), gsi.TransportGT3()} {
		t.Run(tr.String(), func(t *testing.T) {
			w := newPoolWorld(t)
			var served atomic.Int64
			handler := func(ctx context.Context, peer gsi.Peer, op string, body []byte) ([]byte, error) {
				served.Add(1)
				return body, nil
			}
			server, err := w.env.NewServer(w.host, gsi.WithTransport(tr))
			if err != nil {
				t.Fatal(err)
			}
			ep, err := server.Serve(context.Background(), "127.0.0.1:0", handler)
			if err != nil {
				t.Fatal(err)
			}
			defer ep.Close()

			const maxConns = 4
			pool, err := gsi.NewSessionPool(gsi.WithMaxIdle(maxConns), gsi.WithMaxConcurrentPerHost(maxConns))
			if err != nil {
				t.Fatal(err)
			}
			client, err := w.env.NewClient(w.alice, gsi.WithTransport(tr), gsi.WithSessionPool(pool))
			if err != nil {
				t.Fatal(err)
			}

			const goroutines, perG = 8, 25
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			var wg sync.WaitGroup
			errs := make(chan error, goroutines)
			for g := 0; g < goroutines; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					for i := 0; i < perG; i++ {
						payload := []byte(fmt.Sprintf("g%d-i%d", g, i))
						out, err := client.Exchange(ctx, ep.Addr(), "echo", payload)
						if err != nil {
							errs <- fmt.Errorf("goroutine %d call %d: %w", g, i, err)
							return
						}
						if string(out) != string(payload) {
							errs <- fmt.Errorf("goroutine %d call %d: got %q", g, i, out)
							return
						}
					}
				}(g)
			}
			wg.Wait()
			close(errs)
			for err := range errs {
				t.Fatal(err)
			}

			st := pool.Stats()
			if got := served.Load(); got != goroutines*perG {
				t.Fatalf("served = %d, want %d", got, goroutines*perG)
			}
			// Exactly one handshake per pooled conn: the dial count is the
			// conn count, and it never exceeds the per-host cap.
			if st.Dials == 0 || st.Dials > maxConns {
				t.Fatalf("dials = %d, want 1..%d", st.Dials, maxConns)
			}
			if st.Poisoned != 0 {
				t.Fatalf("poisoned = %d under a healthy server", st.Poisoned)
			}
			if st.Hits+st.Dials < goroutines*perG {
				t.Fatalf("stats %+v do not account for %d exchanges", st, goroutines*perG)
			}

			// Clean drain: Close empties the pool; later checkouts fail
			// with the taxonomy sentinel.
			if err := pool.Close(); err != nil {
				t.Fatalf("drain: %v", err)
			}
			if st := pool.Stats(); st.Idle != 0 || st.Active != 0 {
				t.Fatalf("post-drain stats = %+v", st)
			}
			if _, err := client.Exchange(ctx, ep.Addr(), "echo", nil); !errors.Is(err, gsi.ErrPoolExhausted) {
				t.Fatalf("exchange after Close: %v", err)
			}
		})
	}
}

// TestIntegrationPoolSharedAcrossClients: one pool serving clients with
// different credentials must key their sessions apart — Bob never rides
// Alice's authenticated connection.
func TestIntegrationPoolSharedAcrossClients(t *testing.T) {
	w := newPoolWorld(t)
	bob, err := w.ca.NewEntity(gsi.MustParseName("/O=Grid/CN=Bob"), 12*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	server, err := w.env.NewServer(w.host)
	if err != nil {
		t.Fatal(err)
	}
	whoami := func(ctx context.Context, peer gsi.Peer, op string, body []byte) ([]byte, error) {
		return []byte(peer.Identity.String()), nil
	}
	ep, err := server.Serve(context.Background(), "127.0.0.1:0", whoami)
	if err != nil {
		t.Fatal(err)
	}
	defer ep.Close()

	pool, err := gsi.NewSessionPool()
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	clientA, err := w.env.NewClient(w.alice, gsi.WithSessionPool(pool))
	if err != nil {
		t.Fatal(err)
	}
	clientB, err := w.env.NewClient(bob, gsi.WithSessionPool(pool))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	// Interleave so a naive pool would hand Bob Alice's parked session.
	for i := 0; i < 3; i++ {
		gotA, err := clientA.Exchange(ctx, ep.Addr(), "whoami", nil)
		if err != nil {
			t.Fatal(err)
		}
		gotB, err := clientB.Exchange(ctx, ep.Addr(), "whoami", nil)
		if err != nil {
			t.Fatal(err)
		}
		if string(gotA) != "/O=Grid/CN=Alice" || string(gotB) != "/O=Grid/CN=Bob" {
			t.Fatalf("identities through shared pool: %q / %q", gotA, gotB)
		}
	}
	if st := pool.Stats(); st.Dials != 2 {
		t.Fatalf("dials = %d, want 2 (credentials key separately)", st.Dials)
	}
}
