// Race-enabled integration test for the authorization pipeline: N
// goroutines exchange against a facade server enforcing VO ∩ local
// policy with a decision cache, while rules and gridmap entries mutate
// mid-traffic. The safety property under test: after a revocation
// returns, not one further exchange is permitted — the generation bump
// must be observed on the very next exchange, never masked by a stale
// cached decision. Run under `go test -race` (the Makefile `race`
// target) to also prove the pipeline's internal locking.
package repro

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/secsvc"
	"repro/pkg/gsi"
)

func testAuthzRevocationUnderLoad(t *testing.T, transport gsi.Transport) {
	const (
		goroutines        = 8
		exchangesPerPhase = 25
	)
	ctx := context.Background()

	authority, err := gsi.NewCA("/O=Grid/CN=CA", 24*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	env, err := gsi.NewEnvironment(gsi.WithRoots(authority.Certificate()))
	if err != nil {
		t.Fatal(err)
	}
	host, err := authority.NewHostEntity(gsi.MustParseName("/O=Grid/CN=host authz"), 12*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	alice, err := authority.NewEntity(gsi.MustParseName("/O=Grid/CN=Alice"), 12*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	voCred, err := authority.NewEntity(gsi.MustParseName("/O=Grid/CN=LoadVO CAS"), 12*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	vo := gsi.NewCASServer(voCred)
	vo.AddMember(alice.Identity(), "researchers")
	vo.AddPolicy(gsi.Rule{
		ID:        "vo-exchange",
		Effect:    gsi.EffectPermit,
		Groups:    []string{"researchers"},
		Resources: []string{"ogsa:gsi.exchange"},
		Actions:   []string{"*"},
	})
	seed, err := env.NewClient(alice)
	if err != nil {
		t.Fatal(err)
	}
	assertion, err := seed.RequestAssertion(ctx, vo)
	if err != nil {
		t.Fatal(err)
	}
	aliceVO, err := seed.EmbedAssertion(assertion)
	if err != nil {
		t.Fatal(err)
	}

	local := gsi.NewPolicy(gsi.Rule{
		ID:        "local-exchange",
		Effect:    gsi.EffectPermit,
		Subjects:  []string{"*"},
		Resources: []string{"ogsa:gsi.exchange"},
		Actions:   []string{"*"},
	})
	gridmap := gsi.NewGridMap()
	gridmap.Add(alice.Identity(), "alice")
	audit := secsvc.NewAuditLog()
	pipeline, err := env.NewAuthorizationPipeline(
		gsi.WithLocalPolicy(local),
		gsi.WithTrustedVO(vo.Certificate()),
		gsi.WithGridMap(gridmap),
		gsi.WithDecisionCache(time.Minute), // long TTL: invalidation must come from generations, not expiry
		gsi.WithAuditSink(audit),
	)
	if err != nil {
		t.Fatal(err)
	}
	server, err := env.NewServer(host,
		gsi.WithTransport(transport),
		gsi.WithAuthorizationPipeline(pipeline))
	if err != nil {
		t.Fatal(err)
	}
	ep, err := server.Serve(ctx, "127.0.0.1:0",
		func(ctx context.Context, peer gsi.Peer, op string, body []byte) ([]byte, error) {
			return []byte(peer.LocalAccount), nil
		})
	if err != nil {
		t.Fatal(err)
	}
	defer ep.Close()

	// Phase 1: concurrent traffic while unrelated policy and gridmap
	// state churns (every mutation bumps a generation and so flushes
	// the cache's addressability — traffic must keep flowing).
	churnStop := make(chan struct{})
	var churn sync.WaitGroup
	churn.Add(1)
	go func() {
		defer churn.Done()
		for i := 0; ; i++ {
			select {
			case <-churnStop:
				return
			default:
			}
			id := fmt.Sprintf("churn-%d", i%4)
			local.Add(gsi.Rule{
				ID:        id,
				Effect:    gsi.EffectDeny,
				Subjects:  []string{"/O=Grid/CN=Nobody"},
				Resources: []string{"other:*"},
			})
			local.Remove(id)
			dn := gsi.MustParseName(fmt.Sprintf("/O=Grid/CN=Ghost %d", i%4))
			gridmap.Add(dn, "ghost")
			gridmap.Remove(dn)
		}
	}()

	var phase1Failures atomic.Uint64
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			client, err := env.NewClient(aliceVO,
				gsi.WithTransport(transport), gsi.WithSessionPool(nil))
			if err != nil {
				phase1Failures.Add(1)
				return
			}
			defer client.Pool().Close()
			for i := 0; i < exchangesPerPhase; i++ {
				out, err := client.Exchange(ctx, ep.Addr(), "echo", []byte("x"))
				if err != nil || string(out) != "alice" {
					t.Logf("phase 1 exchange failed: %q %v", out, err)
					phase1Failures.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	close(churnStop)
	churn.Wait()
	if n := phase1Failures.Load(); n != 0 {
		t.Fatalf("%d exchanges failed under benign churn", n)
	}

	// Revocation: the local permit disappears. From this call's return
	// onward, zero exchanges may be permitted — a cached permit served
	// past this point is exactly the stale-grant bug the generation key
	// exists to prevent.
	if !local.Remove("local-exchange") {
		t.Fatal("revocation rule not found")
	}

	var staleGrants atomic.Uint64
	var misclassified atomic.Uint64
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			client, err := env.NewClient(aliceVO,
				gsi.WithTransport(transport), gsi.WithSessionPool(nil))
			if err != nil {
				misclassified.Add(1)
				return
			}
			defer client.Pool().Close()
			for i := 0; i < exchangesPerPhase; i++ {
				_, err := client.Exchange(ctx, ep.Addr(), "echo", []byte("x"))
				switch {
				case err == nil:
					staleGrants.Add(1)
				case !errors.Is(err, gsi.ErrUnauthorized):
					t.Logf("post-revocation exchange failed oddly: %v", err)
					misclassified.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	if n := staleGrants.Load(); n != 0 {
		t.Fatalf("%d exchanges permitted after revocation (stale cached grants)", n)
	}
	if n := misclassified.Load(); n != 0 {
		t.Fatalf("%d post-revocation failures were not ErrUnauthorized", n)
	}

	// The cache worked during phase 1 (hits), and every decision landed
	// in an intact audit chain.
	if st := pipeline.CacheStats(); st.Hits == 0 {
		t.Fatalf("decision cache never hit under load: %+v", st)
	}
	if i := audit.VerifyChain(); i >= 0 {
		t.Fatalf("audit chain corrupt at %d", i)
	}
}

func TestAuthzRevocationUnderLoadGT2(t *testing.T) {
	testAuthzRevocationUnderLoad(t, gsi.TransportGT2())
}

func TestAuthzRevocationUnderLoadGT3(t *testing.T) {
	testAuthzRevocationUnderLoad(t, gsi.TransportGT3())
}
