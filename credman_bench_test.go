// Benchmarks for the credential lifecycle subsystem: what a rotation
// costs the hot path. BenchmarkExchangeSteadyState is pooled traffic
// under one stable credential; BenchmarkExchangeAcrossRotation runs the
// same traffic while the manager rotates the credential every
// rotationPeriod exchanges, forcing pool rekeys and fresh handshakes.
// `make bench-credman` records both into BENCH_credman.json.
package repro

import (
	"context"
	"testing"
	"time"

	"repro/pkg/gsi"
)

// rotationPeriod is how many exchanges separate two rotations in the
// across-rotation benchmark — roughly "a long-running client that
// renews its proxy while staying busy".
const rotationPeriod = 256

type benchRotationWorld struct {
	env    *gsi.Environment
	alice  *gsi.Credential
	client *gsi.Client
	cm     *gsi.CredentialManager
	addr   string
	done   func()
}

func newBenchRotationWorld(b *testing.B, managed bool) *benchRotationWorld {
	b.Helper()
	authority, err := gsi.NewCA("/O=Grid/CN=Bench CA", 24*time.Hour)
	if err != nil {
		b.Fatal(err)
	}
	env, err := gsi.NewEnvironment(gsi.WithRoots(authority.Certificate()))
	if err != nil {
		b.Fatal(err)
	}
	alice, err := authority.NewEntity(gsi.MustParseName("/O=Grid/CN=Alice"), 12*time.Hour)
	if err != nil {
		b.Fatal(err)
	}
	host, err := authority.NewHostEntity(gsi.MustParseName("/O=Grid/CN=host bench"), 12*time.Hour)
	if err != nil {
		b.Fatal(err)
	}
	server, err := env.NewServer(host)
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	ep, err := server.Serve(ctx, "127.0.0.1:0", func(ctx context.Context, peer gsi.Peer, op string, body []byte) ([]byte, error) {
		return body, nil
	})
	if err != nil {
		b.Fatal(err)
	}
	initial, err := gsi.NewProxy(alice, gsi.ProxyOptions{Lifetime: 2 * time.Hour})
	if err != nil {
		b.Fatal(err)
	}
	w := &benchRotationWorld{env: env, alice: alice, addr: ep.Addr()}
	opts := []gsi.Option{gsi.WithSessionPool(nil)}
	if managed {
		cm, err := env.NewCredentialManager(initial,
			gsi.DelegationRenewal(alice, gsi.ProxyOptions{Lifetime: 2 * time.Hour}))
		if err != nil {
			b.Fatal(err)
		}
		w.cm = cm
		opts = append(opts, gsi.WithCredentialManager(cm))
		w.client, err = env.NewClient(nil, opts...)
		if err != nil {
			b.Fatal(err)
		}
	} else {
		w.client, err = env.NewClient(initial, opts...)
		if err != nil {
			b.Fatal(err)
		}
	}
	w.done = func() {
		w.client.Pool().Close()
		if w.cm != nil {
			w.cm.Close()
		}
		ep.Close()
	}
	return w
}

// BenchmarkExchangeSteadyState is the baseline: pooled exchanges under
// one credential, no rotations (every call after the first reuses the
// pooled session).
func BenchmarkExchangeSteadyState(b *testing.B) {
	w := newBenchRotationWorld(b, false)
	defer w.done()
	ctx := context.Background()
	payload := []byte("steady")
	if _, err := w.client.Exchange(ctx, w.addr, "echo", payload); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := w.client.Exchange(ctx, w.addr, "echo", payload); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExchangeAcrossRotation interleaves rotations with traffic:
// every rotationPeriod exchanges the manager publishes a successor,
// retiring the pool's sessions and invalidating resumption state, so
// the next exchange pays a full handshake. The per-op delta against
// steady state is the amortized cost of non-disruptive rotation.
func BenchmarkExchangeAcrossRotation(b *testing.B) {
	w := newBenchRotationWorld(b, true)
	defer w.done()
	ctx := context.Background()
	payload := []byte("rotate")
	if _, err := w.client.Exchange(ctx, w.addr, "echo", payload); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	rotations := 0
	for i := 0; i < b.N; i++ {
		if i%rotationPeriod == rotationPeriod-1 {
			b.StopTimer() // rotation itself is background work …
			if _, err := w.cm.Renew(ctx); err != nil {
				b.Fatal(err)
			}
			b.StartTimer() // … but its fallout (rekeyed pool) is timed
			rotations++
		}
		if _, err := w.client.Exchange(ctx, w.addr, "echo", payload); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(rotations), "rotations")
}
