// Benchmarks for the control-plane fast path (PR 10): what keeping a
// resource server's replicated VO state fresh costs once the initial
// full bundle is down, and what warm-cache promotion buys a standby's
// first decisions.
//
// BenchmarkCASDeltaSync100k is the steady state — a 100k-member VO
// whose replica follows by signed delta: each iteration the VO mutates
// and the replica exports, decodes, verifies, and applies the delta.
// The bytes metrics record the headline transfer claim: the signed
// delta for 100 membership changes against the full 100k-member bundle
// those changes would otherwise re-ship. BenchmarkCASFullSync100k is
// the same catch-up paid the old way, re-applying the full bundle.
//
// The promotion pair measures a standby's first decision for a subject
// it has never served: cold (full evaluation — replica lookup, VO ∩
// local policy, gridmap) vs warm (the key was pre-computed from the
// publisher's hot-key export, so the first request is a cache hit that
// only has to confirm the requester's verified identity). `make
// bench-ctrlplane` records all rows into BENCH_ctrlplane.json.
package repro

import (
	"context"
	"fmt"
	"testing"
	"time"

	"repro/internal/cas"
	"repro/pkg/gsi"
)

// newBenchVO stands up a CAS server with the given membership and one
// group-scoped policy rule.
func newBenchVO(b *testing.B, members int) (*gsi.CA, *gsi.CASServer) {
	b.Helper()
	ca, err := gsi.NewCA("/O=Grid/CN=Bench CA", 24*time.Hour)
	if err != nil {
		b.Fatal(err)
	}
	voCred, err := ca.NewEntity(gsi.MustParseName("/O=Grid/CN=BenchVO CAS"), 12*time.Hour)
	if err != nil {
		b.Fatal(err)
	}
	vo := gsi.NewCASServer(voCred)
	for i := 0; i < members; i++ {
		vo.AddMember(gsi.MustParseName(fmt.Sprintf("/O=Grid/CN=member %06d", i)), "researchers")
	}
	vo.AddPolicy(gsi.Rule{
		ID:        "vo-read",
		Effect:    gsi.EffectPermit,
		Groups:    []string{"researchers"},
		Resources: []string{"data:/climate/*"},
		Actions:   []string{"read"},
	})
	return ca, vo
}

const benchVOMembers = 100_000

// BenchmarkCASDeltaSync100k: steady-state delta following against a
// 100k-member VO. Each iteration is one sync round: two mutations on
// the publisher (a member joins and leaves, so membership stays put),
// then export → encode → decode → verify → apply on the replica. The
// reported bytes metrics compare a 100-change delta with the full
// bundle.
func BenchmarkCASDeltaSync100k(b *testing.B) {
	_, vo := newBenchVO(b, benchVOMembers)
	rep := cas.NewReplica(vo.Certificate())
	base, err := vo.ExportBundle()
	if err != nil {
		b.Fatal(err)
	}
	if err := rep.Apply(base); err != nil {
		b.Fatal(err)
	}
	baseVersion := vo.Version()
	for i := 0; i < 100; i++ {
		vo.AddMember(gsi.MustParseName(fmt.Sprintf("/O=Grid/CN=joiner %03d", i)), "researchers")
	}
	delta, err := vo.ExportDelta(baseVersion)
	if err != nil {
		b.Fatal(err)
	}
	full, err := vo.ExportBundle()
	if err != nil {
		b.Fatal(err)
	}
	deltaBytes, fullBytes := len(delta.Encode()), len(full.Encode())
	d2, err := cas.DecodeDelta(delta.Encode())
	if err != nil {
		b.Fatal(err)
	}
	if err := rep.ApplyDelta(d2); err != nil {
		b.Fatal(err)
	}

	joiner := gsi.MustParseName("/O=Grid/CN=churning member")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		vo.AddMember(joiner, "researchers")
		vo.RemoveMember(joiner)
		d, err := vo.ExportDelta(rep.Version())
		if err != nil {
			b.Fatal(err)
		}
		dd, err := cas.DecodeDelta(d.Encode())
		if err != nil {
			b.Fatal(err)
		}
		if err := rep.ApplyDelta(dd); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(deltaBytes), "delta-bytes")
	b.ReportMetric(float64(fullBytes), "full-bytes")
	b.ReportMetric(float64(fullBytes)/float64(deltaBytes), "full/delta-ratio")
}

// BenchmarkCASFullSync100k: the same 100-change catch-up paid by
// re-shipping the full 100k-member bundle. Each iteration decodes and
// applies the full bundle to a replica sitting 100 versions behind
// (rebuilt untimed).
func BenchmarkCASFullSync100k(b *testing.B) {
	_, vo := newBenchVO(b, benchVOMembers)
	base, err := vo.ExportBundle()
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		vo.AddMember(gsi.MustParseName(fmt.Sprintf("/O=Grid/CN=joiner %03d", i)), "researchers")
	}
	full, err := vo.ExportBundle()
	if err != nil {
		b.Fatal(err)
	}
	enc := full.Encode()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		rep := cas.NewReplica(vo.Certificate())
		if err := rep.Apply(base); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		decoded, err := cas.DecodeBundle(enc)
		if err != nil {
			b.Fatal(err)
		}
		if err := rep.Apply(decoded); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(len(enc)), "full-bytes")
}

// newPromotionWorld builds a standby resource server's pipeline: a
// replica holding the VO bundle, wildcard local policy, a gridmap, and
// a decision cache — plus the member peer whose first decisions the
// promotion pair measures.
func newPromotionWorld(b *testing.B) (*gsi.AuthorizationPipeline, gsi.Peer) {
	b.Helper()
	ca, vo := newBenchVO(b, 1000)
	env, err := gsi.NewEnvironment(gsi.WithRoots(ca.Certificate()))
	if err != nil {
		b.Fatal(err)
	}
	alice, err := ca.NewEntity(gsi.MustParseName("/O=Grid/CN=Alice"), 12*time.Hour)
	if err != nil {
		b.Fatal(err)
	}
	vo.AddMember(alice.Identity(), "researchers")
	local := gsi.NewPolicy(gsi.Rule{
		ID:        "local-read",
		Effect:    gsi.EffectPermit,
		Subjects:  []string{"*"},
		Resources: []string{"data:/*"},
		Actions:   []string{"read"},
	})
	gridmap := gsi.NewGridMap()
	gridmap.Add(alice.Identity(), "alice")
	pl, err := env.NewAuthorizationPipeline(
		gsi.WithLocalPolicy(local),
		gsi.WithGridMap(gridmap),
		gsi.WithDecisionCache(time.Hour),
		gsi.WithCASUpstream(gsi.CASUpstreamConfig{
			Endpoints: []string{"unused:0"}, // no syncer on a bare pipeline; the bundle is applied below
			Cert:      vo.Certificate(),
		}),
	)
	if err != nil {
		b.Fatal(err)
	}
	bundle, err := vo.ExportBundle()
	if err != nil {
		b.Fatal(err)
	}
	if err := pl.Replica().Apply(bundle); err != nil {
		b.Fatal(err)
	}
	info, err := env.Trust().Verify(alice.Chain, gsi.VerifyOptions{})
	if err != nil {
		b.Fatal(err)
	}
	return pl, gsi.Peer{Identity: info.Identity, Subject: info.Subject, Chain: alice.Chain, Info: info}
}

// BenchmarkPromotionColdFirstDecision: every iteration is a first
// decision — a distinct resource keys a cache miss, so the standby pays
// the full evaluation (replica lookup, VO ∩ local policy, gridmap).
func BenchmarkPromotionColdFirstDecision(b *testing.B) {
	pl, peer := newPromotionWorld(b)
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d, err := pl.Authorize(ctx, peer, fmt.Sprintf("data:/climate/run%d", i), "read")
		if err != nil || d.Decision != gsi.Permit {
			b.Fatalf("%+v %v", d, err)
		}
		if d.Cached {
			b.Fatal("cold decision served from cache")
		}
	}
}

// BenchmarkPromotionWarmFirstDecision: the same first decision after
// warm-cache promotion — the publisher exported the key, the standby
// pre-computed the decision through its own pipeline, and the first
// request is a hit that confirms the requester's verified identity
// against the warmed entry.
func BenchmarkPromotionWarmFirstDecision(b *testing.B) {
	pl, peer := newPromotionWorld(b)
	ctx := context.Background()
	fp := peer.Chain[0].Fingerprint()
	notAfter := time.Now().Add(time.Hour).Unix()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := fmt.Sprintf("data:/climate/run%d", i)
		b.StopTimer()
		if n := pl.WarmDecisions([]cas.HotKey{{
			Subject: peer.Identity.String(), FP: fp, Resource: res, Action: "read", NotAfter: notAfter,
		}}); n != 1 {
			b.Fatalf("warmed %d entries, want 1", n)
		}
		b.StartTimer()
		d, err := pl.Authorize(ctx, peer, res, "read")
		if err != nil || d.Decision != gsi.Permit {
			b.Fatalf("%+v %v", d, err)
		}
		if !d.Cached {
			b.Fatal("warmed decision missed the cache")
		}
	}
}
